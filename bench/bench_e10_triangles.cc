// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E10 (Corollary 5.3): triangle counting over sliding edge
// windows via the Buriol et al. estimator, swept over the estimator
// registry's substrate grid — including the TIMESTAMP substrate, which is
// new capability the generalized payload unit enables: triangle counting
// over "the last t0 seconds of edges" rather than the last n edges. The
// workload is a dense random graph whose window is organically rich in
// triangles; ground truth is brute force over the window's distinct edges
// with multi-word adjacency bitsets.

#include <cmath>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "apps/estimator_registry.h"
#include "apps/triangles.h"
#include "bench/bench_util.h"
#include "stream/driver.h"
#include "util/rng.h"

namespace swsample::bench {
namespace {

/// Exact triangle count over the distinct edges of the window, any V.
uint64_t ExactTriangles(const std::deque<uint64_t>& window_edges,
                        uint32_t v) {
  const uint32_t words = (v + 63) / 64;
  std::vector<uint64_t> adj(static_cast<size_t>(v) * words, 0);
  std::set<uint64_t> distinct(window_edges.begin(), window_edges.end());
  for (uint64_t e : distinct) {
    uint32_t a, b;
    DecodeEdge(e, &a, &b);
    adj[a * words + b / 64] |= uint64_t{1} << (b % 64);
    adj[b * words + a / 64] |= uint64_t{1} << (a % 64);
  }
  // Sum over edges of |common neighborhood|: each triangle is counted once
  // per incident edge, i.e. 3 times.
  uint64_t incidences = 0;
  for (uint64_t e : distinct) {
    uint32_t a, b;
    DecodeEdge(e, &a, &b);
    for (uint32_t w = 0; w < words; ++w) {
      incidences += static_cast<uint64_t>(
          __builtin_popcountll(adj[a * words + w] & adj[b * words + w]));
    }
  }
  return incidences / 3;
}

std::vector<Item> RandomEdgeStream(uint32_t v, uint64_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<Item> items(len);
  for (uint64_t i = 0; i < len; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.UniformIndex(v));
    uint32_t b;
    do {
      b = static_cast<uint32_t>(rng.UniformIndex(v));
    } while (b == a);
    items[i] = Item{EncodeEdge(a, b), i, static_cast<Timestamp>(i)};
  }
  return items;
}

void Run() {
  Banner("E10: triangles over a sliding window of 512 edges (V=48, dense "
         "random graph), estimator x substrate sweep",
         "Buriol-style estimate tracks the exact windowed count; "
         "concentration improves with r");
  const uint32_t v = 48;
  const uint64_t n = 512;
  const uint64_t len = 3 * n;

  // Workload: uniform random edges over V=48 (window covers ~37% of the
  // 1128 possible edges, so the window graph is dense and organically rich
  // in triangles; mean multiplicity of a present edge is ~1.25). One edge
  // per time step, so the sequence window of n edges and the timestamp
  // window of t0 = n steps hold the SAME edges — the substrate sweep is
  // directly comparable across models.
  std::vector<Item> items = RandomEdgeStream(v, len, 77);

  std::deque<uint64_t> window;
  for (const Item& item : items) {
    window.push_back(item.value);
    if (window.size() > n) window.pop_front();
  }
  const uint64_t exact = ExactTriangles(window, v);

  StreamDriver driver;
  Row({"substrate", "r", "exact-T3", "estimate", "ratio", "words"});
  const std::vector<uint64_t> full = {256, 1024, 4096, 16384};
  const std::vector<uint64_t> smoke = {256};
  for (const char* substrate :
       {"bop-seq-single", "exact-seq", "bop-ts-single"}) {
    for (uint64_t r : (SmokeMode() ? smoke : full)) {
      EstimatorConfig config;
      config.substrate = substrate;
      config.window_n = n;
      config.window_t = static_cast<Timestamp>(n);
      config.r = r;
      config.num_vertices = v;
      config.seed = Rng::ForkSeed(500, r);
      auto est = CreateEstimator("buriol-triangles", config).ValueOrDie();
      DriveReport drive = driver.Drive(std::span<const Item>(items), *est);
      const double estimate = est->Estimate().value;
      Row({substrate, U(r), U(exact), F(estimate, 1),
           F(estimate / static_cast<double>(exact), 3),
           U(drive.memory_words)});
    }
  }
  std::printf(
      "\nshape check: within each substrate block the ratio concentrates\n"
      "as r grows near ~1 times the window's mean triangle-edge\n"
      "multiplicity (~1.2-1.4 here): repeated copies of an edge whose\n"
      "closers reappear later each count as a detection opportunity in\n"
      "the multiset window. The bop-ts-single block (timestamp window of\n"
      "t0 = 512 steps, same active edges) agrees with the sequence rows\n"
      "up to its O(log n)-candidate variance — Corollary 5.3 on the\n"
      "timestamp model.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
