// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E10 (Corollary 5.3): triangle counting over sliding edge
// windows via the Buriol et al. estimator on our samplers. The workload
// plants a known set of triangles in a background of random edges drawn
// from a large vertex universe (so window edges are mostly distinct and
// the estimator's estimand coincides with the distinct-edge triangle
// count). Ground truth is computed by brute force over the window's
// distinct edges with multi-word adjacency bitsets.

#include <cmath>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "apps/triangles.h"
#include "bench/bench_util.h"
#include "util/rng.h"

namespace swsample::bench {
namespace {

/// Exact triangle count over the distinct edges of the window, any V.
uint64_t ExactTriangles(const std::deque<uint64_t>& window_edges,
                        uint32_t v) {
  const uint32_t words = (v + 63) / 64;
  std::vector<uint64_t> adj(static_cast<size_t>(v) * words, 0);
  std::set<uint64_t> distinct(window_edges.begin(), window_edges.end());
  for (uint64_t e : distinct) {
    uint32_t a, b;
    DecodeEdge(e, &a, &b);
    adj[a * words + b / 64] |= uint64_t{1} << (b % 64);
    adj[b * words + a / 64] |= uint64_t{1} << (a % 64);
  }
  // Sum over edges of |common neighborhood|: each triangle is counted once
  // per incident edge, i.e. 3 times.
  uint64_t incidences = 0;
  for (uint64_t e : distinct) {
    uint32_t a, b;
    DecodeEdge(e, &a, &b);
    for (uint32_t w = 0; w < words; ++w) {
      incidences += static_cast<uint64_t>(
          __builtin_popcountll(adj[a * words + w] & adj[b * words + w]));
    }
  }
  return incidences / 3;
}

void Run() {
  Banner("E10: triangles over a sliding window of 512 edges (V=48, dense "
         "random graph)",
         "Buriol-style estimate tracks the exact windowed count; "
         "concentration improves with r");
  const uint32_t v = 48;
  const uint64_t n = 512;
  const uint64_t len = 3 * n;

  // Workload: uniform random edges over V=48 (window covers ~37% of the
  // 1128 possible edges, so the window graph is dense and organically rich
  // in triangles; mean multiplicity of a present edge is ~1.25).
  Rng rng(77);
  std::vector<uint64_t> edges(len);
  for (auto& e : edges) {
    uint32_t a = static_cast<uint32_t>(rng.UniformIndex(v));
    uint32_t b;
    do {
      b = static_cast<uint32_t>(rng.UniformIndex(v));
    } while (b == a);
    e = EncodeEdge(a, b);
  }

  std::deque<uint64_t> window;
  for (uint64_t e : edges) {
    window.push_back(e);
    if (window.size() > n) window.pop_front();
  }
  const uint64_t exact = ExactTriangles(window, v);

  Row({"r", "exact-T3", "estimate", "ratio"});
  for (uint64_t r : {256u, 1024u, 4096u, 16384u}) {
    auto est = SlidingTriangleEstimator::Create(n, v, r, 500 + r).ValueOrDie();
    for (uint64_t i = 0; i < len; ++i) {
      est->Observe(Item{edges[i], i, static_cast<Timestamp>(i)});
    }
    const double estimate = est->Estimate();
    Row({U(r), U(exact), F(estimate, 1),
         F(estimate / static_cast<double>(exact), 3)});
  }
  std::printf(
      "\nshape check: the ratio concentrates as r grows near ~1 times the\n"
      "window's mean triangle-edge multiplicity (~1.2-1.4 here): repeated\n"
      "copies of an edge whose closers reappear later each count as a\n"
      "detection opportunity in the multiset window.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
