// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E11 (Section 1.3.4): samples for disjoint windows are
// independent. Driven through the ESTIMATOR registry: a "dkw-quantile"
// estimator with r = 1 over a value-equals-index stream reveals exactly
// the substrate's sampled position, so querying it at the end of two
// disjoint windows gives the joint (position-in-W1, position-in-W2)
// distribution, tested against the product of uniforms (chi-square) plus
// a Pearson correlation check — per substrate, sequence and timestamp.

#include <vector>

#include "apps/estimator_registry.h"
#include "bench/bench_util.h"
#include "stats/tests.h"

namespace swsample::bench {
namespace {

struct GridCase {
  const char* substrate;
  bool timestamped;
};

void Run() {
  Banner("E11: independence of samples for disjoint windows, via the "
         "estimator registry",
         "joint distribution over two disjoint windows is the product of "
         "uniforms");
  Row({"estimator", "substrate", "cells", "trials", "chi2", "p-value",
       "corr", "verdict"});
  const uint64_t n = 6;
  const int trials = static_cast<int>(Scaled(120000, 100));
  for (const GridCase& grid : {GridCase{"bop-seq-swr", false},
                               GridCase{"bop-ts-swr", true}}) {
    std::vector<uint64_t> joint(n * n, 0);
    std::vector<double> xs, ys;
    for (int t = 0; t < trials; ++t) {
      EstimatorConfig config;
      config.substrate = grid.substrate;
      config.window_n = n;
      config.window_t = static_cast<Timestamp>(n);
      config.r = 1;
      config.seed = Rng::ForkSeed(grid.timestamped ? 500000 : 100,
                                  static_cast<uint64_t>(t));
      auto est = CreateEstimator("dkw-quantile", config).ValueOrDie();
      // One arrival per step; value = index, so the quantile of a
      // 1-sample IS the sampled position.
      uint64_t first = 0, second = 0;
      const uint64_t steps = grid.timestamped ? 2 * n : 4 * n;
      for (uint64_t i = 0; i < steps; ++i) {
        est->Observe(Item{i, i, static_cast<Timestamp>(i)});
        if (grid.timestamped) {
          if (i + 1 == n) first = static_cast<uint64_t>(est->Estimate().value);
          if (i + 1 == 2 * n) {
            second = static_cast<uint64_t>(est->Estimate().value) - n;
          }
        } else {
          if (i + 1 == 2 * n) {
            first = static_cast<uint64_t>(est->Estimate().value) - n;
          }
          if (i + 1 == 4 * n) {
            second = static_cast<uint64_t>(est->Estimate().value) - 3 * n;
          }
        }
      }
      joint[first * n + second]++;
      xs.push_back(static_cast<double>(first));
      ys.push_back(static_cast<double>(second));
    }
    auto r = ChiSquareUniform(joint);
    double corr = PearsonCorrelation(xs, ys);
    Row({"dkw-quantile", grid.substrate, U(n * n),
         U(static_cast<uint64_t>(trials)), F(r.statistic, 1),
         Sci(r.p_value), F(corr, 4),
         r.p_value > 1e-4 || SmokeMode() ? "PASS" : "FAIL"});
  }
  std::printf(
      "\nshape check: both rows PASS with correlation ~0 — the property\n"
      "that makes the samplers composable across consecutive windows, now\n"
      "observed through the Theorem 5.1 estimator layer.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
