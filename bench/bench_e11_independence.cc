// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E11 (Section 1.3.4): samples for disjoint windows are
// independent. For both the sequence-based and timestamp-based samplers,
// draw the sample of window W1 and later of the disjoint window W2, and
// test the joint distribution over (position-in-W1, position-in-W2) against
// the product of uniforms (chi-square) plus a Pearson correlation check.

#include <vector>

#include "bench/bench_util.h"
#include "core/registry.h"
#include "stats/tests.h"

namespace swsample::bench {
namespace {

void Run() {
  Banner("E11: independence of samples for disjoint windows",
         "joint distribution over two disjoint windows is the product of "
         "uniforms");
  Row({"sampler", "cells", "trials", "chi2", "p-value", "corr", "verdict"});
  const uint64_t n = 6;
  const int trials = 120000;
  {
    std::vector<uint64_t> joint(n * n, 0);
    std::vector<double> xs, ys;
    for (int t = 0; t < trials; ++t) {
      SamplerConfig config;
      config.window_n = n;
      config.seed = 100 + static_cast<uint64_t>(t);
      auto s = CreateSampler("bop-seq-swr", config).ValueOrDie();
      uint64_t first = 0, second = 0;
      for (uint64_t i = 0; i < 4 * n; ++i) {
        s->Observe(Item{i, i, static_cast<Timestamp>(i)});
        if (i + 1 == 2 * n) first = s->Sample()[0].index - n;
        if (i + 1 == 4 * n) second = s->Sample()[0].index - 3 * n;
      }
      joint[first * n + second]++;
      xs.push_back(static_cast<double>(first));
      ys.push_back(static_cast<double>(second));
    }
    auto r = ChiSquareUniform(joint);
    double corr = PearsonCorrelation(xs, ys);
    Row({"bop-seq-swr", U(n * n), U(static_cast<uint64_t>(trials)),
         F(r.statistic, 1), Sci(r.p_value), F(corr, 4),
         r.p_value > 1e-4 ? "PASS" : "FAIL"});
  }
  {
    const Timestamp t0 = 6;
    std::vector<uint64_t> joint(t0 * t0, 0);
    std::vector<double> xs, ys;
    for (int t = 0; t < trials; ++t) {
      SamplerConfig config;
      config.window_t = t0;
      config.seed = 500000 + static_cast<uint64_t>(t);
      auto s = CreateSampler("bop-ts-swr", config).ValueOrDie();
      uint64_t first = 0, second = 0;
      for (Timestamp i = 0; i < 2 * t0; ++i) {
        s->Observe(
            Item{static_cast<uint64_t>(i), static_cast<uint64_t>(i), i});
        if (i == t0 - 1) first = s->Sample()[0].index;
        if (i == 2 * t0 - 1) second = s->Sample()[0].index - t0;
      }
      joint[first * t0 + second]++;
      xs.push_back(static_cast<double>(first));
      ys.push_back(static_cast<double>(second));
    }
    auto r = ChiSquareUniform(joint);
    double corr = PearsonCorrelation(xs, ys);
    Row({"bop-ts-swr", U(static_cast<uint64_t>(t0 * t0)),
         U(static_cast<uint64_t>(trials)), F(r.statistic, 1), Sci(r.p_value),
         F(corr, 4), r.p_value > 1e-4 ? "PASS" : "FAIL"});
  }
  std::printf(
      "\nshape check: both rows PASS with correlation ~0 -- the property\n"
      "that makes the samplers composable across consecutive windows.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
