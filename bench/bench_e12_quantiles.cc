// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E12 (Theorem 5.1 client): windowed quantile estimation, swept
// over the estimator registry's substrate grid ("dkw-quantile" x paper
// SWOR, the chain-sampling baseline, and the exact-window oracle). For a
// drifting value distribution the table reports the exact window median /
// p90 against the sampled estimates at several sample sizes k, with the
// DKW-predicted rank error alongside the measured one — the point being
// that the entire guarantee transfers to sliding windows at O(k) words on
// the paper substrate, where the baselines pay randomized or O(n) memory.

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "apps/estimator_registry.h"
#include "apps/quantiles.h"
#include "bench/bench_util.h"
#include "stream/driver.h"

namespace swsample::bench {
namespace {

double RankOf(uint64_t value, std::vector<uint64_t> window) {
  std::sort(window.begin(), window.end());
  auto it = std::lower_bound(window.begin(), window.end(), value);
  return static_cast<double>(it - window.begin()) /
         static_cast<double>(window.size());
}

void Run() {
  Banner("E12: windowed quantiles from k-samples, estimator x substrate "
         "sweep through the registry",
         "rank error tracks the DKW bound eps = sqrt(ln(2/0.05)/(2k)); "
         "memory stays O(k) on the paper substrate");
  const uint64_t n = Scaled(1 << 15);
  Row({"substrate", "k", "dkw-eps", "q", "exact", "estimate", "rank-err",
       "words"});

  // Drifting lognormal-ish integer values.
  Rng rng(5);
  std::vector<Item> items(3 * n);
  for (uint64_t i = 0; i < items.size(); ++i) {
    uint64_t base = 1000 + i / 64;  // drift
    items[i] = Item{base + rng.UniformIndex(1 + i % 997), i,
                    static_cast<Timestamp>(i)};
  }
  std::deque<uint64_t> window_q;
  for (const Item& item : items) {
    window_q.push_back(item.value);
    if (window_q.size() > n) window_q.pop_front();
  }
  std::vector<uint64_t> window(window_q.begin(), window_q.end());
  std::vector<uint64_t> sorted = window;
  std::sort(sorted.begin(), sorted.end());

  StreamDriver driver;
  const std::vector<uint64_t> full = {64, 256, 1024, 4096};
  const std::vector<uint64_t> smoke = {64};
  for (const char* substrate : {"bop-seq-swor", "bdm-chain", "exact-seq"}) {
    for (uint64_t k : (SmokeMode() ? smoke : full)) {
      const double eps = std::sqrt(std::log(2.0 / 0.05) / (2.0 * k));
      EstimatorConfig config;
      config.substrate = substrate;
      config.window_n = n;
      config.r = k;
      config.seed = Rng::ForkSeed(40, k);
      auto est = CreateEstimator("dkw-quantile", config).ValueOrDie();
      driver.Drive(std::span<const Item>(items), *est);
      // One drive per cell; both quantiles come from ONE sample draw
      // (consistent ranks) through the concrete estimator's multi-q
      // query. The registry hands back the only type behind this name.
      auto* quantiles = dynamic_cast<QuantileEstimator*>(est.get());
      const std::vector<uint64_t> estimates =
          quantiles->Quantiles({0.5, 0.9});
      const double qs[] = {0.5, 0.9};
      for (int i = 0; i < 2; ++i) {
        const double q = qs[i];
        const uint64_t exact =
            sorted[static_cast<size_t>(q * static_cast<double>(n - 1))];
        Row({substrate, U(k), F(eps, 4), F(q, 2), U(exact),
             U(estimates[i]),
             F(std::fabs(RankOf(estimates[i], window) - q), 4),
             U(est->MemoryWords())});
      }
    }
  }
  std::printf(
      "\nshape check: rank-err stays below (roughly) dkw-eps and shrinks\n"
      "like 1/sqrt(k) in every substrate block — the DKW guarantee is\n"
      "substrate-independent, which IS Theorem 5.1. The words column is\n"
      "~6k+O(1) for bop-seq-swor (independent of the 32768-item window),\n"
      "randomized O(k log n) for bdm-chain, O(n) for the oracle.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
