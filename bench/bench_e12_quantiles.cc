// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E12 (Theorem 5.1 client): windowed quantile estimation. For a
// drifting value distribution the table reports the exact window median /
// p90 against the sampled estimates at several sample sizes k, with the
// DKW-predicted rank error alongside the measured one -- the point being
// that the entire guarantee transfers to sliding windows at O(k) words.

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "apps/quantiles.h"
#include "bench/bench_util.h"
#include "core/seq_swor.h"

namespace swsample::bench {
namespace {

double RankOf(uint64_t value, std::vector<uint64_t> window) {
  std::sort(window.begin(), window.end());
  auto it = std::lower_bound(window.begin(), window.end(), value);
  return static_cast<double>(it - window.begin()) /
         static_cast<double>(window.size());
}

void Run() {
  Banner("E12: windowed quantiles from k-samples without replacement",
         "rank error tracks the DKW bound eps = sqrt(ln(2/0.05)/(2k)); "
         "memory stays O(k)");
  const uint64_t n = 1 << 15;
  Row({"k", "dkw-eps", "q", "exact", "estimate", "rank-err", "words"});

  // Drifting lognormal-ish integer values.
  Rng rng(5);
  std::vector<uint64_t> values(3 * n);
  for (uint64_t i = 0; i < values.size(); ++i) {
    uint64_t base = 1000 + i / 64;  // drift
    values[i] = base + rng.UniformIndex(1 + i % 997);
  }
  std::deque<uint64_t> window_q;
  for (uint64_t v : values) {
    window_q.push_back(v);
    if (window_q.size() > n) window_q.pop_front();
  }
  std::vector<uint64_t> window(window_q.begin(), window_q.end());
  std::vector<uint64_t> sorted = window;
  std::sort(sorted.begin(), sorted.end());

  for (uint64_t k : {64u, 256u, 1024u, 4096u}) {
    auto est = SlidingQuantileEstimator::Create(
                   SequenceSworSampler::Create(n, k, 40 + k).ValueOrDie())
                   .ValueOrDie();
    for (uint64_t i = 0; i < values.size(); ++i) {
      est->Observe(Item{values[i], i, static_cast<Timestamp>(i)});
    }
    const double eps = std::sqrt(std::log(2.0 / 0.05) / (2.0 * k));
    const uint64_t words = est->sampler().MemoryWords();
    for (double q : {0.5, 0.9}) {
      const uint64_t exact =
          sorted[static_cast<size_t>(q * static_cast<double>(n - 1))];
      const uint64_t estimate = est->Quantile(q);
      Row({U(k), F(eps, 4), F(q, 2), U(exact), U(estimate),
           F(std::fabs(RankOf(estimate, window) - q), 4), U(words)});
    }
  }
  std::printf(
      "\nshape check: rank-err stays below (roughly) dkw-eps and shrinks\n"
      "like 1/sqrt(k); the words column is ~6k+O(1), independent of the\n"
      "32768-item window.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
