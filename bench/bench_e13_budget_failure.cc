// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E13 (Section 1.1 related work, the Gemulla bounded-space
// regime): with a hard memory budget, sample availability has NO global
// lower bound -- bursts flush the budgeted staircase and the sampler goes
// dark while the window is still populated. The table reports true failure
// rates (dark query while the oracle window is non-empty) vs the budget,
// next to our Theorem 3.9 sampler which answers every query by
// construction with deterministic O(log n) words.

#include <algorithm>
#include <memory>
#include <vector>

#include "baseline/budget_priority_sampler.h"
#include "baseline/exact_window.h"
#include "bench/bench_util.h"
#include "core/ts_single.h"
#include "util/rng.h"

namespace swsample::bench {
namespace {

void Run() {
  Banner("E13: bounded-space sampling availability under bursts",
         "budgeted priority sampling fails with positive probability at any "
         "finite budget; bop-ts answers every query (deterministic words)");
  const Timestamp t0 = 32;
  const Timestamp horizon = 20000;
  Row({"sampler", "capacity", "max-words", "queries", "true-fails", "fail%"});

  // One fixed burst/silence trace shared by every row: at each step, with
  // probability 0.1 a burst of ~40 items arrives, else silence. Bursts
  // whose staircase entries get budget-dropped, followed by the earlier
  // burst expiring, are exactly the dark-window scenario.
  std::vector<std::vector<Item>> trace(horizon);
  {
    Rng trace_rng(50);
    uint64_t index = 0;
    for (Timestamp t = 0; t < horizon; ++t) {
      if (trace_rng.Bernoulli(0.1)) {
        const uint64_t burst = 20 + trace_rng.UniformIndex(40);
        for (uint64_t i = 0; i < burst; ++i) {
          trace[t].push_back(Item{trace_rng.UniformIndex(1 << 16), index++, t});
        }
      }
    }
  }

  for (uint64_t capacity : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto s = BudgetPrioritySampler::Create(t0, capacity, 3).ValueOrDie();
    auto oracle = ExactWindow::CreateTimestamp(t0, 1, true, 4).ValueOrDie();
    uint64_t queries = 0, true_fails = 0;
    for (Timestamp t = 0; t < horizon; ++t) {
      for (const Item& item : trace[t]) {
        s.Observe(item);
        oracle->Observe(item);
      }
      s.AdvanceTime(t);
      oracle->AdvanceTime(t);
      ++queries;
      if (!s.Sample().has_value() && oracle->size() > 0) ++true_fails;
    }
    Row({"budget-prio", U(capacity), U(s.MemoryWordsBound()), U(queries),
         U(true_fails),
         F(100.0 * static_cast<double>(true_fails) /
               static_cast<double>(queries), 3)});
  }

  {
    auto s = TsSingleSampler::Create(t0, 5).ValueOrDie();
    auto oracle = ExactWindow::CreateTimestamp(t0, 1, true, 6).ValueOrDie();
    uint64_t queries = 0, true_fails = 0, max_words = 0;
    for (Timestamp t = 0; t < horizon; ++t) {
      for (const Item& item : trace[t]) {
        s.Observe(item);
        oracle->Observe(item);
      }
      s.AdvanceTime(t);
      oracle->AdvanceTime(t);
      ++queries;
      max_words = std::max(max_words, s.MemoryWords());
      if (!s.SampleOne().has_value() && oracle->size() > 0) ++true_fails;
    }
    Row({"bop-ts", "-", U(max_words), U(queries), U(true_fails), F(0.0, 3)});
  }
  std::printf(
      "\nshape check: budgeted failure rates are positive at every capacity\n"
      "(decreasing with it) -- 'no global lower bound other than 0'; the\n"
      "bop row never fails with comparable worst-case words.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
