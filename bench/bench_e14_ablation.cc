// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E14 -- ablations of the paper's design choices. Two pieces of
// the Section 3 machinery look redundant until removed:
//
//  A. Each bucket structure carries TWO independent samples R and Q: R
//     feeds the output, Q feeds the implicit-event coin (Lemma 3.6). If Q
//     is ablated to reuse R, the coin X becomes correlated with the output
//     candidate and the combined sample is provably non-uniform -- the
//     chi-square here catches it instantly.
//
//  B. The Incr merge combines two equal-width buckets with a FAIR coin per
//     sample. Ablating the coin to "always keep the older half's sample"
//     skews the bucket distribution toward old elements.
//
// Both ablations FAIL the same uniformity bar every correct sampler passes
// in E4, demonstrating the choices are load-bearing, not stylistic.

#include <vector>

#include "bench/bench_util.h"
#include "core/bucket_structure.h"
#include "core/implicit_events.h"
#include "stats/tests.h"
#include "util/bits.h"
#include "util/rng.h"

namespace swsample::bench {
namespace {

// ---- Part A: straddle combination with independent vs reused Q. --------
//
// Synthetic straddle state: B1 = indices [0, alpha) of which the last
// gamma are active; B2 = [alpha, alpha+beta) all active. One-per-step
// timestamps make expiry checks trivial.
ChiSquareResult StraddleCombination(bool independent_q, uint64_t alpha,
                                    uint64_t beta, uint64_t gamma,
                                    int trials, uint64_t seed) {
  const Timestamp t0 = static_cast<Timestamp>(gamma + beta);
  const Timestamp now = static_cast<Timestamp>(alpha + beta - 1);
  auto ts_of = [&](uint64_t idx) { return static_cast<Timestamp>(idx); };
  // Active <=> now - ts < t0 <=> idx > alpha - gamma - 1.
  Rng rng(seed);
  std::vector<uint64_t> counts(gamma + beta, 0);
  for (int t = 0; t < trials; ++t) {
    const uint64_t r1 = rng.UniformIndex(alpha);
    const uint64_t q1 = independent_q ? rng.UniformIndex(alpha) : r1;
    const uint64_t r2 = alpha + rng.UniformIndex(beta);
    BucketStructure bs;
    bs.x = 0;
    bs.y = alpha;
    bs.first_ts = ts_of(0);
    bs.r = Item{r1, r1, ts_of(r1)};
    bs.q = Item{q1, q1, ts_of(q1)};
    const ImplicitEventDraw draw = DrawImplicitEvent(bs, beta, now, t0, rng);
    const bool r1_active = now - ts_of(r1) < t0;
    const uint64_t v = (draw.x && r1_active) ? r1 : r2;
    // Map the active range [alpha-gamma, alpha+beta) onto cells.
    ++counts[v - (alpha - gamma)];
  }
  return ChiSquareUniform(counts);
}

// ---- Part B: merge chain with fair vs biased coin. ----------------------
//
// Build a width-2^h bucket sample by tournament-merging single-element
// buckets, as Incr does, with P(keep left) = p.
ChiSquareResult MergeChain(double keep_left_prob, uint32_t height,
                           int trials, uint64_t seed) {
  Rng rng(seed);
  const uint64_t width = Pow2(height);
  std::vector<uint64_t> counts(width, 0);
  std::vector<uint64_t> layer(width);
  for (int t = 0; t < trials; ++t) {
    for (uint64_t i = 0; i < width; ++i) layer[i] = i;
    uint64_t size = width;
    while (size > 1) {
      for (uint64_t i = 0; i < size / 2; ++i) {
        layer[i] = rng.Bernoulli(keep_left_prob) ? layer[2 * i]
                                                 : layer[2 * i + 1];
      }
      size /= 2;
    }
    ++counts[layer[0]];
  }
  return ChiSquareUniform(counts);
}

void Run() {
  Banner("E14: ablations of the Section 3 design choices",
         "independent Q sample and fair merge coins are load-bearing: "
         "ablated variants fail the E4 uniformity bar");
  const int trials = 200000;
  Row({"variant", "cells", "chi2", "p-value", "verdict(expect)"});
  {
    auto r = StraddleCombination(/*independent_q=*/true, 16, 24, 10, trials,
                                 1);
    Row({"A: independent Q", U(34u), F(r.statistic, 1), Sci(r.p_value),
         r.p_value > 1e-4 ? "PASS (pass)" : "FAIL (pass!)"});
  }
  {
    auto r = StraddleCombination(/*independent_q=*/false, 16, 24, 10, trials,
                                 2);
    Row({"A: Q := R (ablated)", U(34u), F(r.statistic, 1), Sci(r.p_value),
         r.p_value > 1e-4 ? "PASS (fail!)" : "FAIL (fail)"});
  }
  {
    auto r = MergeChain(/*keep_left_prob=*/0.5, /*height=*/5, trials, 3);
    Row({"B: fair merge coin", U(32u), F(r.statistic, 1), Sci(r.p_value),
         r.p_value > 1e-4 ? "PASS (pass)" : "FAIL (pass!)"});
  }
  {
    auto r = MergeChain(/*keep_left_prob=*/0.6, /*height=*/5, trials, 4);
    Row({"B: 0.6 merge coin (ablated)", U(32u), F(r.statistic, 1),
         Sci(r.p_value),
         r.p_value > 1e-4 ? "PASS (fail!)" : "FAIL (fail)"});
  }
  std::printf(
      "\nshape check: the two correct variants PASS, both ablations FAIL\n"
      "decisively (p ~ 0) at the same trial count -- the design choices\n"
      "are necessary for Theorem 3.9's uniformity, not stylistic.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
