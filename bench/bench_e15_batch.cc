// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E15: batched ingestion throughput. Compares per-item Observe against
// ObserveBatch across batch sizes for every registered sampler, through
// the shared StreamDriver. The sequence-based paper samplers override
// ObserveBatch with the skip-ahead replacement schedule (one RNG draw per
// reservoir replacement instead of per item), so their batched column
// should pull ahead by a widening margin as the batch grows; samplers on
// the default ObserveBatch should show parity (batching is then only a
// call-overhead win).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/estimator_registry.h"
#include "bench/bench_util.h"
#include "core/registry.h"
#include "stream/driver.h"

using namespace swsample;
using namespace swsample::bench;

namespace {

const uint64_t kItems = Scaled(1 << 20, 64);  // 1M arrivals (full mode)
constexpr uint64_t kWindow = 1 << 14;
constexpr uint64_t kK = 16;

std::vector<Item> MakeStream(uint64_t items, uint64_t seed) {
  Rng rng(seed);
  std::vector<Item> out;
  out.reserve(items);
  for (uint64_t i = 0; i < items; ++i) {
    out.push_back(Item{rng.UniformIndex(1 << 20), i,
                       static_cast<Timestamp>(i)});
  }
  return out;
}

double MItemsPerSec(const DriveReport& report) {
  return report.items_per_sec / 1e6;
}

}  // namespace

int main() {
  Banner("E15: Observe vs ObserveBatch throughput",
         "batched skip-ahead ingestion beats per-item Observe for the "
         "sequence samplers; default-path samplers show parity");

  const std::vector<Item> stream = MakeStream(kItems, /*seed=*/15);
  const std::vector<uint64_t> batch_sizes = {64, 1024, 16384};

  Row({"sampler", "per-item", "batch=64", "batch=1k", "batch=16k", "unit"});
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    // The O(n)-word oracles hold the whole window; keep them in the table
    // (they exercise the default path) but skip nothing else.
    SamplerConfig config;
    config.window_n = kWindow;
    config.window_t = static_cast<Timestamp>(kWindow);
    config.k = spec.single_sample ? 1 : kK;
    config.seed = 15;
    std::vector<std::string> cells = {spec.name};

    {
      auto sampler = CreateSampler(spec.name, config).ValueOrDie();
      StreamDriver::Options options;
      options.batch_size = 0;  // per-item Observe
      options.memory_probe_every = 0;
      auto report = StreamDriver(options).Drive(stream, *sampler);
      cells.push_back(F(MItemsPerSec(report), 2));
    }
    for (uint64_t batch : batch_sizes) {
      auto sampler = CreateSampler(spec.name, config).ValueOrDie();
      StreamDriver::Options options;
      options.batch_size = batch;
      options.memory_probe_every = 0;
      auto report = StreamDriver(options).Drive(stream, *sampler);
      cells.push_back(F(MItemsPerSec(report), 2));
    }
    cells.push_back("M items/s");
    Row(cells);
  }

  std::printf(
      "\nnote: bop-seq-{single,swr,swor} override ObserveBatch with the\n"
      "skip-ahead replacement schedule; every other row uses the default\n"
      "item-forwarding ObserveBatch and measures pure call overhead.\n");

  // --- Estimator layer: the same comparison through the estimator
  // registry. dkw-quantile inherits the sampler fast path wholesale;
  // ams-fk/ccm-entropy amortize the per-item reservoir draw with the
  // PayloadWindowUnit skip-ahead (payload updates stay per item, so the
  // margin is narrower than for raw samplers by design).
  std::printf("\n-- estimators (default substrates, r=64) --\n");
  Row({"estimator", "per-item", "batch=64", "batch=1k", "batch=16k",
       "unit"});
  for (const char* name : {"ams-fk", "ccm-entropy", "dkw-quantile"}) {
    EstimatorConfig config;
    config.window_n = kWindow;
    config.r = 64;
    config.seed = 15;
    std::vector<std::string> cells = {name};
    {
      auto est = CreateEstimator(name, config).ValueOrDie();
      StreamDriver::Options options;
      options.batch_size = 0;
      options.memory_probe_every = 0;
      auto report = StreamDriver(options).Drive(stream, *est);
      cells.push_back(F(MItemsPerSec(report), 2));
    }
    for (uint64_t batch : batch_sizes) {
      auto est = CreateEstimator(name, config).ValueOrDie();
      StreamDriver::Options options;
      options.batch_size = batch;
      options.memory_probe_every = 0;
      auto report = StreamDriver(options).Drive(stream, *est);
      cells.push_back(F(MItemsPerSec(report), 2));
    }
    cells.push_back("M items/s");
    Row(cells);
  }
  return 0;
}
