// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E15: batched ingestion throughput. Compares per-item Observe against
// ObserveBatch across batch sizes for every registered sampler, through
// the shared StreamDriver. The sequence-based paper samplers override
// ObserveBatch with the skip-ahead replacement schedule (one RNG draw per
// reservoir replacement instead of per item) and the timestamp-based ones
// with a batch-scoped merge-coin cache, so their batched columns should
// pull ahead; samplers on the default ObserveBatch should show parity.
//
// Every row is also funneled into the BenchReporter: running with
// SWSAMPLE_BENCH_JSON=<path> emits the machine-readable BENCH.json
// (items/s per mode, speedups, state bytes/item, p50/p99 batch latency)
// that the committed repo-root baseline and the CI regression gate use.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/estimator_registry.h"
#include "bench/bench_util.h"
#include "core/registry.h"
#include "stream/driver.h"

using namespace swsample;
using namespace swsample::bench;

namespace {

const uint64_t kItems = Scaled(1 << 20, 64);  // 1M arrivals (full mode)
constexpr uint64_t kWindow = 1 << 14;
constexpr uint64_t kK = 16;

std::vector<Item> MakeStream(uint64_t items, uint64_t seed) {
  Rng rng(seed);
  std::vector<Item> out;
  out.reserve(items);
  for (uint64_t i = 0; i < items; ++i) {
    out.push_back(Item{rng.UniformIndex(1 << 20), i,
                       static_cast<Timestamp>(i)});
  }
  return out;
}

double MItemsPerSec(const DriveReport& report) {
  return report.items_per_sec / 1e6;
}

DriveReport Run(std::span<const Item> stream, StreamSink& sink,
                uint64_t batch, bool track_latency = false) {
  StreamDriver::Options options;
  options.batch_size = batch;
  options.memory_probe_every = 0;
  options.track_batch_latency = track_latency;
  return StreamDriver(options).Drive(stream, sink);
}

/// One sweep of per-item vs batched modes for a sink factory; prints the
/// table row and records the reporter entry.
template <typename MakeSink>
void SweepModes(const std::string& bench, const std::string& name,
                std::span<const Item> stream, uint64_t window,
                MakeSink&& make_sink) {
  std::vector<std::string> cells = {name};
  auto item_sink = make_sink();
  const DriveReport item_report = Run(stream, *item_sink, 0);
  cells.push_back(F(MItemsPerSec(item_report), 2));
  DriveReport batch16k;
  for (uint64_t batch : {uint64_t{64}, uint64_t{1024}, uint64_t{16384}}) {
    auto sink = make_sink();
    const DriveReport report =
        Run(stream, *sink, batch, /*track_latency=*/batch == 16384);
    if (batch == 16384) batch16k = report;
    cells.push_back(F(MItemsPerSec(report), 2));
  }
  cells.push_back("M items/s");
  Row(cells);

  const double fill =
      static_cast<double>(std::min<uint64_t>(window, stream.size()));
  BenchReporter::Global().Report(
      bench, name,
      {{"items_per_sec_item", item_report.items_per_sec},
       {"items_per_sec_batch16k", batch16k.items_per_sec},
       {"speedup_batch16k",
        item_report.items_per_sec > 0
            ? batch16k.items_per_sec / item_report.items_per_sec
            : 0.0},
       {"state_bytes_per_item",
        fill > 0 ? static_cast<double>(batch16k.memory_words) * 8.0 / fill
                 : 0.0},
       {"p50_batch_seconds", batch16k.p50_batch_seconds},
       {"p99_batch_seconds", batch16k.p99_batch_seconds}});
}

}  // namespace

int main() {
  Banner("E15: Observe vs ObserveBatch throughput",
         "batched skip-ahead ingestion beats per-item Observe for the "
         "sequence samplers; ts samplers batch their merge coins; "
         "default-path samplers show parity");

  const std::vector<Item> stream = MakeStream(kItems, /*seed=*/15);

  Row({"sampler", "per-item", "batch=64", "batch=1k", "batch=16k", "unit"});
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    // The O(n)-word oracles hold the whole window; keep them in the table
    // (they exercise the default path) but skip nothing else.
    SamplerConfig config;
    config.window_n = kWindow;
    config.window_t = static_cast<Timestamp>(kWindow);
    config.k = spec.single_sample ? 1 : kK;
    config.seed = 15;
    SweepModes("e15", spec.name, std::span<const Item>(stream), kWindow,
               [&] { return CreateSampler(spec.name, config).ValueOrDie(); });
  }

  std::printf(
      "\nnote: bop-seq-{single,swr,swor} override ObserveBatch with the\n"
      "skip-ahead replacement schedule and bop-ts-* with horizon-scanned\n"
      "batched expiry plus the closed-form run append; the baselines carry\n"
      "devirtualized (bdm-*, gl-*, oversample) or bulk-append (exact-*)\n"
      "overrides, so no row pays per-item virtual dispatch.\n");

  // --- Estimator layer: the same comparison through the estimator
  // registry. dkw-quantile inherits the sampler fast path wholesale;
  // ams-fk/ccm-entropy amortize the per-item reservoir draw with the
  // PayloadWindowUnit skip-ahead (payload updates stay per item, so the
  // margin is narrower than for raw samplers by design).
  std::printf("\n-- estimators (default substrates, r=64) --\n");
  Row({"estimator", "per-item", "batch=64", "batch=1k", "batch=16k",
       "unit"});
  for (const char* name : {"ams-fk", "ccm-entropy", "dkw-quantile"}) {
    EstimatorConfig config;
    config.window_n = kWindow;
    config.r = 64;
    config.seed = 15;
    SweepModes("e15", std::string(name) + "/bop-seq-single",
               std::span<const Item>(stream), kWindow,
               [&] { return CreateEstimator(name, config).ValueOrDie(); });
  }

  // --- Timestamp substrates: the flat-map candidate state + batched
  // merge coins are exactly what this block exercises. Smaller stream and
  // r: the ts units carry O(log n) payload candidates each.
  const uint64_t ts_items = std::max<uint64_t>(kItems / 8, 1);
  const std::vector<Item> ts_stream = MakeStream(ts_items, /*seed=*/16);
  std::printf("\n-- estimators (bop-ts-single substrate, r=8) --\n");
  Row({"estimator", "per-item", "batch=64", "batch=1k", "batch=16k",
       "unit"});
  for (const char* name : {"ams-fk", "ccm-entropy"}) {
    EstimatorConfig config;
    config.substrate = "bop-ts-single";
    config.window_t = static_cast<Timestamp>(kWindow);
    config.r = 8;
    config.seed = 16;
    SweepModes("e15", std::string(name) + "/bop-ts-single",
               std::span<const Item>(ts_stream), kWindow,
               [&] { return CreateEstimator(name, config).ValueOrDie(); });
  }

  if (BenchReporter::Global().WriteJsonIfRequested()) {
    std::printf("\nwrote BENCH json to $SWSAMPLE_BENCH_JSON\n");
  }
  return 0;
}
