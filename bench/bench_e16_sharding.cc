// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E16: sharded ingestion scaling. Partitions one pre-materialized stream
// across N worker threads (round-robin chunks, shard windows n/N) and
// measures aggregate and per-core throughput against the single-threaded
// batched StreamDriver baseline, for the samplers whose merged output the
// engine can recombine (bop-seq-swr / bop-seq-swor) and for a merge-capable
// estimator (ams-fk over key-hash partitioning). The scaling claim needs
// real cores: on a 1-core host every multi-thread row collapses to ~1x,
// so the table prints the detected core count for context.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/estimator_registry.h"
#include "apps/sink_spec.h"
#include "bench/bench_util.h"
#include "core/registry.h"
#include "stream/driver.h"
#include "stream/sharded_driver.h"

using namespace swsample;
using namespace swsample::bench;

namespace {

// Sizes keep the kChunks exact-union alignment in both modes: the shard
// window (kWindow / threads) stays a multiple of kChunkItems and the
// stream length a multiple of kChunkItems * threads for threads <= 8.
const uint64_t kItems = Scaled(1 << 24, 256);  // 16M arrivals (full mode)
const uint64_t kWindow = Scaled(1 << 20, 256);
constexpr uint64_t kK = 64;
const uint64_t kChunkItems = Scaled(1 << 14, 256);

std::vector<Item> MakeStream(uint64_t items, uint64_t seed) {
  Rng rng(seed);
  std::vector<Item> out;
  out.reserve(items);
  for (uint64_t i = 0; i < items; ++i) {
    out.push_back(
        Item{rng.UniformIndex(1 << 16), i, static_cast<Timestamp>(i)});
  }
  return out;
}

/// Shard-count sweep for one sampler: aggregate M items/s, speedup over
/// the 1-thread StreamDriver baseline, and per-core efficiency.
void SamplerSweep(const char* name, std::span<const Item> stream,
                  const std::vector<uint64_t>& thread_counts) {
  SamplerConfig config;
  config.window_n = kWindow;
  config.k = kK;
  config.seed = 16;

  double baseline = 0.0;
  {
    auto sampler = CreateSampler(name, config).ValueOrDie();
    StreamDriver::Options options;
    options.batch_size = kChunkItems;
    options.memory_probe_every = 0;
    auto report = StreamDriver(options).Drive(stream, *sampler);
    baseline = report.items_per_sec;
    Row({name, "baseline", F(baseline / 1e6, 2), "1.00", "1.00",
         U(report.peak_memory_words)});
  }
  for (uint64_t threads : thread_counts) {
    auto shards = CreateShardedSinks(SamplerSinkSpec(name, config), threads).ValueOrDie();
    auto sinks = SinkPointers(shards);
    ShardedStreamDriver::Options options;
    options.threads = threads;
    options.chunk_items = kChunkItems;
    options.memory_probe_every = 0;
    options.partition = ShardPartition::kChunks;
    auto report =
        ShardedStreamDriver(options).Drive(stream, sinks).ValueOrDie();
    const double aggregate = report.total.items_per_sec;
    const double speedup = baseline > 0 ? aggregate / baseline : 0.0;
    Row({name, U(threads) + " thr", F(aggregate / 1e6, 2), F(speedup, 2),
         F(speedup / static_cast<double>(threads), 2),
         U(report.total.peak_memory_words)});
    // The merged draw must exist and stay inside the window — a cheap
    // end-to-end guard that the sweep measured a correct configuration.
    auto merged =
        MergedSnapshot(SamplerPointers(shards).ValueOrDie(), config.seed).ValueOrDie();
    const uint64_t window_start = stream.size() - kWindow;
    for (const Item& item : merged.sample) {
      SWS_CHECK(item.value >= window_start);  // value == global index here
    }
  }
}

void EstimatorSweep(std::span<const Item> stream,
                    const std::vector<uint64_t>& thread_counts) {
  EstimatorConfig config;
  config.substrate = "bop-seq-single";
  config.window_n = kWindow;
  config.r = 64;
  config.seed = 16;

  double baseline = 0.0;
  {
    auto est = CreateEstimator("ams-fk", config).ValueOrDie();
    StreamDriver::Options options;
    options.batch_size = kChunkItems;
    options.memory_probe_every = 0;
    auto report = StreamDriver(options).Drive(stream, *est);
    baseline = report.items_per_sec;
    Row({"ams-fk", "baseline", F(baseline / 1e6, 2), "1.00", "1.00",
         U(report.peak_memory_words)});
  }
  for (uint64_t threads : thread_counts) {
    auto shards =
        CreateShardedSinks(EstimatorSinkSpec("ams-fk", config), threads).ValueOrDie();
    auto sinks = SinkPointers(shards);
    ShardedStreamDriver::Options options;
    options.threads = threads;
    options.chunk_items = kChunkItems;
    options.memory_probe_every = 0;
    options.partition = ShardPartition::kKeyHash;
    auto report =
        ShardedStreamDriver(options).Drive(stream, sinks).ValueOrDie();
    const double aggregate = report.total.items_per_sec;
    const double speedup = baseline > 0 ? aggregate / baseline : 0.0;
    Row({"ams-fk", U(threads) + " thr", F(aggregate / 1e6, 2), F(speedup, 2),
         F(speedup / static_cast<double>(threads), 2),
         U(report.total.peak_memory_words)});
    SWS_CHECK(
        MergedEstimate(EstimatorPointers(shards).ValueOrDie()).ValueOrDie().value > 0);
  }
}

}  // namespace

int main() {
  Banner("E16: sharded ingestion scaling",
         "aggregate items/s grows with worker threads; target >= 3x at 4 "
         "threads for bop-seq-swr on a >= 4-core host");
  std::printf("host hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());

  // A stream with value == index makes window membership checkable after
  // the merged draw.
  std::vector<Item> stream;
  stream.reserve(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    stream.push_back(Item{i, i, static_cast<Timestamp>(i)});
  }

  std::vector<uint64_t> thread_counts = {1, 2, 4};
  if (std::thread::hardware_concurrency() >= 8) thread_counts.push_back(8);

  std::printf("\n-- samplers (round-robin chunks, shard windows n/N) --\n");
  Row({"sampler", "config", "M items/s", "speedup", "per-core", "peak wrds"});
  SamplerSweep("bop-seq-swr", stream, thread_counts);
  SamplerSweep("bop-seq-swor", stream, thread_counts);

  // Keyed workload: hashed values, key-hash partitioning, merged by the
  // F_k shard-sum identity.
  const std::vector<Item> keyed = MakeStream(kItems, /*seed=*/16);
  std::printf("\n-- estimator (key-hash partitioning, shard-sum merge) --\n");
  Row({"estimator", "config", "M items/s", "speedup", "per-core",
       "peak wrds"});
  EstimatorSweep(keyed, thread_counts);

  std::printf(
      "\nnote: the producer routes zero-copy sub-spans in chunks mode; the\n"
      "per-item re-index copy runs on the workers, so aggregate throughput\n"
      "scales with cores until memory bandwidth saturates. On a 1-core\n"
      "host (CI smoke) the rows collapse to ~1x by construction.\n");
  return 0;
}
