// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E17: checkpoint cost. The paper's deterministic state bounds (O(k)
// words for sequence windows, O(k log n) for timestamp windows, Theorems
// 2.1-4.4) price full-state checkpointing: a sampler's envelope blob
// should track those bounds — and stay FLAT as the window grows for the
// sequence samplers — while the exact-window oracle's blob grows
// linearly. The experiment sweeps window sizes and reports, per sampler:
// blob size (bytes and words), the k*max(1, log2 n) word yardstick, and
// save/restore round-trip latency.
//
// Honors SWSAMPLE_BENCH_SMOKE (tiny windows, few reps) like every bench.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "core/registry.h"
#include "stream/driver.h"
#include "util/rng.h"

namespace swsample {
namespace {

using bench::Banner;
using bench::F;
using bench::Row;
using bench::Scaled;
using bench::U;

using Clock = std::chrono::steady_clock;

double MicrosPerOp(const std::function<void()>& op, uint64_t reps) {
  const auto begin = Clock::now();
  for (uint64_t r = 0; r < reps; ++r) op();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  return seconds / static_cast<double>(reps) * 1e6;
}

void RunSweep() {
  Banner("E17: checkpoint blob size vs the O(k log n) state bound",
         "sequence blobs are flat in n, timestamp blobs ~ k log n words, "
         "the exact oracle pays Theta(n); save+restore are microseconds");
  Row({"sampler", "window", "k", "blob_B", "words", "k*log2n", "save_us",
       "restore_us"});

  const uint64_t k = 16;
  const uint64_t max_exp = bench::SmokeMode() ? 12 : 19;
  const uint64_t reps = Scaled(64, 8);
  const char* names[] = {"bop-seq-single", "bop-seq-swr", "bop-seq-swor",
                         "bop-ts-single",  "bop-ts-swr",  "bop-ts-swor",
                         "exact-seq"};
  StreamDriver driver;
  for (uint64_t exp = 10; exp <= max_exp; exp += 3) {
    const uint64_t window = uint64_t{1} << exp;
    // Two windows' worth of arrivals, one per clock tick.
    const uint64_t items_count = 2 * window;
    std::vector<Item> items;
    items.reserve(items_count);
    Rng value_rng(exp);
    for (uint64_t i = 0; i < items_count; ++i) {
      items.push_back(Item{value_rng.UniformIndex(1 << 16), i,
                           static_cast<Timestamp>(i)});
    }
    for (const char* name : names) {
      const SamplerSpec* spec = FindSamplerSpec(name);
      SamplerConfig config;
      config.window_n = window;
      config.window_t = static_cast<Timestamp>(window);
      config.k = spec->single_sample ? 1 : k;
      config.seed = 0xe17;
      auto sampler = CreateSampler(name, config).ValueOrDie();
      driver.Drive(items, *sampler);

      std::string blob = SaveSampler(*sampler, config).ValueOrDie();
      const double save_us = MicrosPerOp(
          [&] { SaveSampler(*sampler, config).ValueOrDie(); }, reps);
      const double restore_us =
          MicrosPerOp([&] { RestoreSampler(blob).ValueOrDie(); }, reps);
      const double bound =
          static_cast<double>(config.k) *
          std::max(1.0, std::log2(static_cast<double>(window)));
      Row({name, U(window), U(config.k), U(blob.size()),
           U(blob.size() / 8), F(bound, 0), F(save_us, 1),
           F(restore_us, 1)});
    }
  }
  std::printf(
      "\nshape check: bop-seq-* rows are flat across windows (O(k) words);\n"
      "bop-ts-* rows grow ~ log n; exact-seq grows ~ n. Restore cost\n"
      "includes registry construction + full validation.\n");
}

}  // namespace
}  // namespace swsample

int main() {
  swsample::RunSweep();
  return 0;
}
