// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E18: multi-tenant keyed engine scaling. Sweeps key cardinality
// 1e3 -> 1e6 under Zipfian and uniform key distributions and reports,
// per row: aggregate items/s through the engine, retained bytes per
// live key, live/spilled key counts, and (for the budgeted rows)
// eviction/restore latency plus whether the budget ever bound was
// exceeded.
//
// Row classes:
//  * sweep rows ("zipf/1eK", "uniform/1eK") — unbudgeted; TTL bounds the
//    live set at high cardinality. Measures directory + per-key sink
//    scaling.
//  * budget rows ("budget/zipf/1eK") — hard RetainedBytes budget with a
//    spill directory; evictions and restores are the measured path. The
//    `budget_exceeded` metric is 0 when ChargedBytes() stayed under the
//    budget at every arrival boundary (the engine's invariant), 1
//    otherwise.
//
// Gating: the 1e3/1e4 rows run IDENTICAL workloads in smoke and full
// mode and carry "gated": 1 — their bytes_per_key and budget_exceeded
// are deterministic (seeded streams, capacity-driven state) and are
// scored by scripts/bench_check.py. The 1e5/1e6 rows are full-mode only
// ("gated": 0, skipped by the gate); absolute items/s is informational
// everywhere, as host-dependent throughput always is in this repo.
//
// Spill durability (fsync per eviction) is off here: the bench measures
// working-set overflow, not crash recovery — the keyed_engine tests own
// the durability guarantee.

#include <cinttypes>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stream/keyed_engine.h"
#include "stream/value_gen.h"
#include "util/rng.h"

using namespace swsample;
using namespace swsample::bench;

namespace {

namespace fs = std::filesystem;

struct RowResult {
  double items_per_sec = 0.0;
  double bytes_per_key = 0.0;
  KeyedEngineStats stats;
};

std::unique_ptr<ValueGenerator> MakeValues(const std::string& dist,
                                           uint64_t keys) {
  if (dist == "zipf") {
    return ZipfValues::Create(keys, 1.1).ValueOrDie();
  }
  return UniformValues::Create(keys).ValueOrDie();
}

// Drives `items` keyed arrivals (timestamps = arrival index) through a
// fresh engine and measures wall-clock ingest throughput.
RowResult RunRow(const KeyedEngineOptions& options, const std::string& dist,
                 uint64_t keys, uint64_t items) {
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  auto values = MakeValues(dist, keys);
  Rng rng(0x18e * keys + (dist == "zipf" ? 1 : 2));

  // Pre-materialize so value generation stays out of the timed region.
  std::vector<Item> stream;
  stream.reserve(items);
  for (uint64_t i = 0; i < items; ++i) {
    stream.push_back(
        Item{values->Next(rng), i, static_cast<Timestamp>(i)});
  }

  const auto start = std::chrono::steady_clock::now();
  engine->ObserveBatch(stream);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!engine->status().ok()) {
    std::fprintf(stderr, "E18 engine error: %s\n",
                 engine->status().ToString().c_str());
    std::exit(1);
  }

  RowResult result;
  result.stats = engine->stats();
  result.items_per_sec = seconds > 0 ? items / seconds : 0.0;
  result.bytes_per_key =
      result.stats.live_keys > 0
          ? static_cast<double>(result.stats.charged_bytes) /
                static_cast<double>(result.stats.live_keys)
          : 0.0;
  return result;
}

std::string TempSpillDir(const std::string& row) {
  const fs::path dir = fs::temp_directory_path() / ("swsample_e18_" + row);
  fs::remove_all(dir);
  return dir.string();
}

}  // namespace

int main() {
  Banner("E18: keyed multi-tenant engine scaling",
         "per-key windows over 1e3..1e6 tenants ingest at memory bounded "
         "by the live set, with spill/restore absorbing budget overflow");

  Row({"row", "keys", "items", "Mitems/s", "B/key", "live", "spilled",
       "evict", "restore"});

  struct Config {
    uint64_t keys;
    const char* label;
    bool gated;  // identical workload in smoke + full; scored by the gate
  };
  const Config kConfigs[] = {
      {1000, "1e3", true},
      {10000, "1e4", true},
      {100000, "1e5", false},
      {1000000, "1e6", false},
  };

  for (const Config& config : kConfigs) {
    if (SmokeMode() && !config.gated) continue;
    // 16 arrivals per key on average, capped to keep the 1e6 row under
    // a minute; gated rows use the fixed (uncapped) size in both modes.
    const uint64_t items =
        config.gated ? config.keys * 16
                     : std::min<uint64_t>(config.keys * 16, 4000000);
    for (const char* dist : {"zipf", "uniform"}) {
      KeyedEngineOptions options;
      // Per-key timestamp window sized to the mean per-key arrival gap,
      // so a typical key holds a handful of active items.
      char spec[64];
      std::snprintf(spec, sizeof(spec), "bop-ts-single,t=%" PRIu64 ",seed=7",
                    4 * config.keys);
      options.spec = ParseSinkSpec(spec).ValueOrDie();
      // TTL bounds the live set at high cardinality (tenant departure);
      // sized so the gated rows never expire anyone (deterministic
      // bytes_per_key) while the 1e5/1e6 rows cap near ~128k live keys.
      options.idle_ttl = config.gated
                             ? static_cast<Timestamp>(items)
                             : std::min<Timestamp>(items, 131072);
      options.max_keys_hint = std::min<uint64_t>(config.keys, 1 << 17);
      const std::string row =
          std::string(dist) + "/" + config.label;
      const RowResult r = RunRow(options, dist, config.keys, items);
      Row({row, U(config.keys), U(items), F(r.items_per_sec / 1e6, 2),
           F(r.bytes_per_key, 1), U(r.stats.live_keys),
           U(r.stats.spilled_keys), U(r.stats.evictions),
           U(r.stats.restores)});
      BenchReporter::Global().Report(
          "e18", row,
          {{"gated", config.gated ? 1.0 : 0.0},
           {"items_per_sec", r.items_per_sec},
           {"bytes_per_key", r.bytes_per_key},
           {"live_keys", static_cast<double>(r.stats.live_keys)}});
    }
  }

  // Budget rows: a hard ChargedBytes() ceiling with spill/restore churn.
  // The budget is sized to bind (well under the unbudgeted live-set
  // footprint) so evictions and restores are actually on the hot path.
  struct BudgetConfig {
    uint64_t keys;
    const char* label;
    uint64_t budget_bytes;
    bool gated;
  };
  const BudgetConfig kBudgetConfigs[] = {
      {10000, "1e4", 2 << 20, true},
      {1000000, "1e6", 48 << 20, false},
  };
  for (const BudgetConfig& config : kBudgetConfigs) {
    if (SmokeMode() && !config.gated) continue;
    const uint64_t items =
        config.gated ? config.keys * 16
                     : std::min<uint64_t>(config.keys * 16, 4000000);
    const std::string row = std::string("budget/zipf/") + config.label;
    KeyedEngineOptions options;
    char spec[64];
    std::snprintf(spec, sizeof(spec), "bop-ts-single,t=%" PRIu64 ",seed=7",
                  4 * config.keys);
    options.spec = ParseSinkSpec(spec).ValueOrDie();
    options.memory_budget_bytes = config.budget_bytes;
    options.spill_dir = TempSpillDir(config.label);
    options.fsync_spills = false;
    options.idle_ttl = std::min<Timestamp>(items, 131072);
    options.max_keys_hint = std::min<uint64_t>(config.keys, 1 << 17);
    const RowResult r = RunRow(options, "zipf", config.keys, items);
    const bool exceeded =
        r.stats.peak_charged_bytes > config.budget_bytes;
    const double evict_us = r.stats.evictions > 0
                                ? 1e6 * r.stats.evict_seconds /
                                      static_cast<double>(r.stats.evictions)
                                : 0.0;
    const double restore_us =
        r.stats.restores > 0
            ? 1e6 * r.stats.restore_seconds /
                  static_cast<double>(r.stats.restores)
            : 0.0;
    Row({row, U(config.keys), U(items), F(r.items_per_sec / 1e6, 2),
         F(r.bytes_per_key, 1), U(r.stats.live_keys),
         U(r.stats.spilled_keys), U(r.stats.evictions),
         U(r.stats.restores)});
    std::printf("  %s: budget %.1f MiB, peak %.1f MiB%s, evict %.1f us, "
                "restore %.1f us\n",
                row.c_str(), config.budget_bytes / 1048576.0,
                r.stats.peak_charged_bytes / 1048576.0,
                exceeded ? " EXCEEDED" : "", evict_us, restore_us);
    BenchReporter::Global().Report(
        "e18", row,
        {{"gated", config.gated ? 1.0 : 0.0},
         {"items_per_sec", r.items_per_sec},
         {"bytes_per_key", r.bytes_per_key},
         {"budget_exceeded", exceeded ? 1.0 : 0.0},
         {"evictions", static_cast<double>(r.stats.evictions)},
         {"restores", static_cast<double>(r.stats.restores)},
         {"evict_us_avg", evict_us},
         {"restore_us_avg", restore_us}});
    fs::remove_all(options.spill_dir);
  }

  BenchReporter::Global().WriteJsonIfRequested();
  return 0;
}
