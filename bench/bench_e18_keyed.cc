// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E18: multi-tenant keyed engine scaling. Sweeps key cardinality
// 1e3 -> 1e7 under workload-generator streams (stream/workload.h:
// Zipf/uniform constant-rate, b-model burst cascades, adversarial churn)
// and reports, per row, BOTH delivery modes through the engine:
//
//   items_per_sec_item      one Observe() call per arrival
//   items_per_sec_batch16k  ObserveBatch() in 16384-item blocks — the
//                           key-run demux + per-key micro-batch path
//   speedup_batch16k        their ratio (scored by the gate: losing the
//                           demux fast path is a code regression even
//                           though absolute items/s is host noise)
//
// Row classes:
//  * sweep rows ("zipf/1eK", "uniform/1eK") — unbudgeted; TTL bounds the
//    live set at high cardinality. Measures directory + per-key sink
//    scaling; the 1e7 row is the full key-directory stress.
//  * burst/churn rows — b-model self-similar bursts and the PR-7
//    covering-churn stress through the keyed demux (runs are long
//    same-key plateaus, the demux best case; churn value cycling is
//    its worst case).
//  * budget rows ("budget/zipf/1eK") — hard ChargedBytes budget with a
//    spill directory; evictions and restores are the measured path.
//    `budget_exceeded` is 0 when ChargedBytes() stayed under the budget
//    at every enforcement boundary in BOTH modes, 1 otherwise.
//    `evict_us_avg` is the per-eviction wall cost of the item-wise run
//    (one spill file + enforcement pass per victim);
//    `evict_batch_amortized_us` is the batched run's per-eviction cost
//    with victims grouped into SpillBatch passes — the metric the gate
//    scores (lower is better).
//
// Gating: gated rows run IDENTICAL workloads in smoke and full mode;
// their bytes_per_key and budget_exceeded are deterministic (seeded
// workloads, capacity-driven state) and speedup_batch16k is a property
// of the code path, so scripts/bench_check.py scores all three. The
// 1e5/1e6/1e7 rows are full-mode only ("gated": 0, skipped by the gate).
//
// Spill durability (fsync per eviction) is off here: the bench measures
// working-set overflow, not crash recovery — the keyed_engine tests own
// the durability guarantee.

#include <cinttypes>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stream/keyed_engine.h"
#include "stream/workload.h"
#include "util/failpoint.h"

using namespace swsample;
using namespace swsample::bench;

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kBatchItems = 16384;
constexpr uint64_t kWorkloadSeed = 0x18e;

struct RowResult {
  double item_per_sec = 0.0;
  double batch_per_sec = 0.0;
  double speedup = 0.0;
  double bytes_per_key = 0.0;
  bool exceeded = false;        // either mode ever over budget
  KeyedEngineStats item_stats;  // item-wise run
  KeyedEngineStats stats;       // batched run (reported state)
};

// The same pre-materialized stream through fresh engines: one
// Observe() per item, then ObserveBatch() in 16k blocks. Workload
// generation stays outside both timed regions. Gated rows run each
// mode `reps` times and keep the fastest timing (the engines are
// deterministic, so every rep reports identical state): the gate
// scores the mode RATIO, and a single scheduler hiccup inside a
// tens-of-milliseconds timing region would otherwise swing it.
RowResult RunRow(const KeyedEngineOptions& options, const std::string& spec,
                 uint64_t items, int reps = 1) {
  auto generator =
      WorkloadGenerator::Create(spec, kWorkloadSeed).ValueOrDie();
  const std::vector<Item> stream = generator->Take(items);

  RowResult result;
  for (int rep = 0; rep < reps; ++rep) {
    if (!options.spill_dir.empty()) fs::remove_all(options.spill_dir);
    auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
    const auto start = std::chrono::steady_clock::now();
    for (const Item& item : stream) engine->Observe(item);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (!engine->status().ok()) {
      std::fprintf(stderr, "E18 engine error (item mode): %s\n",
                   engine->status().ToString().c_str());
      std::exit(1);
    }
    result.item_stats = engine->stats();
    result.item_per_sec =
        std::max(result.item_per_sec, seconds > 0 ? items / seconds : 0.0);
  }
  for (int rep = 0; rep < reps; ++rep) {
    // The previous run leaves its spill files behind; start each run
    // from the same clean slate.
    if (!options.spill_dir.empty()) fs::remove_all(options.spill_dir);
    auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
    const std::span<const Item> all(stream);
    const auto start = std::chrono::steady_clock::now();
    for (size_t offset = 0; offset < all.size(); offset += kBatchItems) {
      engine->ObserveBatch(
          all.subspan(offset, std::min<size_t>(kBatchItems,
                                               all.size() - offset)));
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (!engine->status().ok()) {
      std::fprintf(stderr, "E18 engine error (batch mode): %s\n",
                   engine->status().ToString().c_str());
      std::exit(1);
    }
    result.stats = engine->stats();
    result.batch_per_sec =
        std::max(result.batch_per_sec, seconds > 0 ? items / seconds : 0.0);
  }
  result.speedup = result.item_per_sec > 0
                       ? result.batch_per_sec / result.item_per_sec
                       : 0.0;
  result.bytes_per_key =
      result.stats.live_keys > 0
          ? static_cast<double>(result.stats.charged_bytes) /
                static_cast<double>(result.stats.live_keys)
          : 0.0;
  result.exceeded =
      options.memory_budget_bytes > 0 &&
      (result.stats.peak_charged_bytes > options.memory_budget_bytes ||
       result.item_stats.peak_charged_bytes > options.memory_budget_bytes);
  return result;
}

std::string TempSpillDir(const std::string& row) {
  const fs::path dir = fs::temp_directory_path() / ("swsample_e18_" + row);
  fs::remove_all(dir);
  return dir.string();
}

void PrintRow(const std::string& row, uint64_t keys, uint64_t items,
              const RowResult& r) {
  Row({row, U(keys), U(items), F(r.item_per_sec / 1e6, 2),
       F(r.batch_per_sec / 1e6, 2), F(r.speedup, 2), F(r.bytes_per_key, 1),
       U(r.stats.live_keys), U(r.stats.evictions), U(r.stats.restores)});
}

}  // namespace

int main() {
  Banner("E18: keyed multi-tenant engine scaling",
         "per-key windows over 1e3..1e7 tenants; batched key-run demux "
         "vs per-item routing, with spill/restore absorbing budget "
         "overflow");

  Row({"row", "keys", "items", "item M/s", "b16k M/s", "speedup", "B/key",
       "live", "evict", "restore"});

  // --- Sweep rows: constant-rate arrivals (4/step), Zipf vs uniform
  // tenant draws. The workload value IS the tenant key (key_shift 0).
  struct Config {
    uint64_t keys;
    const char* label;
    uint64_t items;
    bool gated;  // identical workload in smoke + full; scored by the gate
  };
  // Gated rows are sized so each timed mode runs for tens of
  // milliseconds: speedup_batch16k is gate-scored, and a 2 ms timing
  // region would make the ratio flap run to run.
  const Config kConfigs[] = {
      {1000, "1e3", 128000, true},
      {10000, "1e4", 640000, true},
      {100000, "1e5", 1600000, false},
      {1000000, "1e6", 4000000, false},
      {10000000, "1e7", 10000000, false},
  };

  for (const Config& config : kConfigs) {
    if (SmokeMode() && !config.gated) continue;
    for (const char* dist : {"zipf", "uniform"}) {
      // Constant rate 4 advances the clock every 4 items, so the total
      // stream spans items/4 time units; the per-key window covers the
      // last quarter of that and the gated rows' TTL never fires
      // (deterministic live set / bytes_per_key) while the full-mode
      // rows cap the live set near ~128k keys.
      char workload[128];
      std::snprintf(workload, sizeof(workload),
                    "constant@%s,rate=4,domain=%" PRIu64 "%s", dist,
                    config.keys,
                    std::string(dist) == "zipf" ? ",alpha=1.1" : "");
      KeyedEngineOptions options;
      char spec[64];
      std::snprintf(spec, sizeof(spec), "bop-ts-single,t=%" PRIu64 ",seed=7",
                    config.keys);
      options.spec = ParseSinkSpec(spec).ValueOrDie();
      options.idle_ttl = config.gated
                             ? static_cast<Timestamp>(config.items)
                             : std::min<Timestamp>(config.items, 131072);
      options.max_keys_hint = std::min<uint64_t>(config.keys, 1 << 17);
      const std::string row = std::string(dist) + "/" + config.label;
      const RowResult r =
          RunRow(options, workload, config.items, config.gated ? 2 : 1);
      PrintRow(row, config.keys, config.items, r);
      BenchReporter::Global().Report(
          "e18", row,
          {{"gated", config.gated ? 1.0 : 0.0},
           {"items_per_sec_item", r.item_per_sec},
           {"items_per_sec_batch16k", r.batch_per_sec},
           {"speedup_batch16k", r.speedup},
           {"bytes_per_key", r.bytes_per_key},
           {"live_keys", static_cast<double>(r.stats.live_keys)}});
    }
  }

  // --- Burst + churn rows: the demux's best case (b-model epochs are
  // long same-key plateau runs) and worst case (churn cycles values, so
  // nearly every item opens a new run).
  struct ShapeConfig {
    const char* row;
    const char* workload;
    uint64_t keys;  // window sizing + directory hint
    uint64_t items;
    bool gated;
  };
  const ShapeConfig kShapes[] = {
      {"burst/zipf/1e4",
       "bmodel@zipf,bias=0.75,levels=8,volume=4096,domain=10000,alpha=1.1",
       10000, 160000, true},
      {"burst/zipf/1e6",
       "bmodel@zipf,bias=0.75,levels=8,volume=4096,domain=1000000,alpha=1.1",
       1000000, 4000000, false},
      {"churn/1e4", "churn@zipf,t=4096,domain=10000,alpha=1.1", 10000,
       160000, true},
  };
  for (const ShapeConfig& config : kShapes) {
    if (SmokeMode() && !config.gated) continue;
    KeyedEngineOptions options;
    char spec[64];
    std::snprintf(spec, sizeof(spec), "bop-ts-single,t=%" PRIu64 ",seed=7",
                  config.keys);
    options.spec = ParseSinkSpec(spec).ValueOrDie();
    options.idle_ttl = 0;  // burst/churn clocks jump; no tenant departure
    options.max_keys_hint = std::min<uint64_t>(config.keys, 1 << 17);
    const RowResult r =
        RunRow(options, config.workload, config.items, config.gated ? 2 : 1);
    PrintRow(config.row, config.keys, config.items, r);
    BenchReporter::Global().Report(
        "e18", config.row,
        {{"gated", config.gated ? 1.0 : 0.0},
         {"items_per_sec_item", r.item_per_sec},
         {"items_per_sec_batch16k", r.batch_per_sec},
         {"speedup_batch16k", r.speedup},
         {"bytes_per_key", r.bytes_per_key},
         {"live_keys", static_cast<double>(r.stats.live_keys)}});
  }

  // --- Budget rows: a hard ChargedBytes() ceiling with spill/restore
  // churn. The budget is sized to bind (well under the unbudgeted
  // live-set footprint) so evictions and restores are on the hot path
  // in both delivery modes.
  struct BudgetConfig {
    uint64_t keys;
    const char* label;
    uint64_t items;
    uint64_t budget_bytes;
    bool gated;
  };
  const BudgetConfig kBudgetConfigs[] = {
      {10000, "1e4", 160000, 2 << 20, true},
      {1000000, "1e6", 4000000, 48 << 20, false},
  };
  for (const BudgetConfig& config : kBudgetConfigs) {
    if (SmokeMode() && !config.gated) continue;
    const std::string row = std::string("budget/zipf/") + config.label;
    KeyedEngineOptions options;
    char spec[64];
    std::snprintf(spec, sizeof(spec), "bop-ts-single,t=%" PRIu64 ",seed=7",
                  config.keys);
    options.spec = ParseSinkSpec(spec).ValueOrDie();
    char workload[128];
    std::snprintf(workload, sizeof(workload),
                  "constant@zipf,rate=4,domain=%" PRIu64 ",alpha=1.1",
                  config.keys);
    options.memory_budget_bytes = config.budget_bytes;
    options.spill_dir = TempSpillDir(config.label);
    options.fsync_spills = false;
    options.idle_ttl = std::min<Timestamp>(config.items, 131072);
    options.max_keys_hint = std::min<uint64_t>(config.keys, 1 << 17);
    const RowResult r =
        RunRow(options, workload, config.items, config.gated ? 2 : 1);
    const double evict_us =
        r.item_stats.evictions > 0
            ? 1e6 * r.item_stats.evict_seconds /
                  static_cast<double>(r.item_stats.evictions)
            : 0.0;
    const double evict_batch_us =
        r.stats.evictions > 0
            ? 1e6 * r.stats.evict_seconds /
                  static_cast<double>(r.stats.evictions)
            : 0.0;
    const double restore_us =
        r.stats.restores > 0
            ? 1e6 * r.stats.restore_seconds /
                  static_cast<double>(r.stats.restores)
            : 0.0;
    PrintRow(row, config.keys, config.items, r);
    std::printf("  %s: budget %.1f MiB, peak %.1f MiB%s, evict %.1f us "
                "item-wise / %.1f us batched (%" PRIu64
                " spill batches), restore %.1f us (%" PRIu64
                " prefetched)\n",
                row.c_str(), config.budget_bytes / 1048576.0,
                r.stats.peak_charged_bytes / 1048576.0,
                r.exceeded ? " EXCEEDED" : "", evict_us, evict_batch_us,
                r.stats.spill_batches, restore_us,
                r.stats.prefetched_restores);
    // Budget rows report the mode ratio under a name the gate does NOT
    // score: both timed regions are dominated by spill-file I/O, so the
    // ratio tracks page-cache and writeback state, not the code path.
    // The scored metrics here are budget_exceeded (invariant), the
    // deterministic eviction/restore counts, and the amortized batched
    // spill cost below.
    BenchReporter::Global().Report(
        "e18", row,
        {{"gated", config.gated ? 1.0 : 0.0},
         {"items_per_sec_item", r.item_per_sec},
         {"items_per_sec_batch16k", r.batch_per_sec},
         {"batch_vs_item_ratio", r.speedup},
         {"bytes_per_key", r.bytes_per_key},
         {"budget_exceeded", r.exceeded ? 1.0 : 0.0},
         {"evictions", static_cast<double>(r.stats.evictions)},
         {"restores", static_cast<double>(r.stats.restores)},
         {"evict_us_avg", evict_us},
         {"evict_batch_amortized_us", evict_batch_us},
         {"restore_us_avg", restore_us}});
    fs::remove_all(options.spill_dir);
  }

  // --- Shed row: the gated 1e4 budget workload again, but with the
  // spill store permanently down (spill.write armed with an unconditional
  // EIO) and the engine in kShed degradation mode. The first victim's
  // retry budget drains, the engine degrades and fails fast, and from
  // then on every enforcement pass drops LRU victims WITHOUT touching the
  // disk. The gate scores `evict_shed_amortized_us` — the per-drop wall
  // cost of holding the budget through an outage — which regresses by
  // orders of magnitude if shedding ever regains a (failing, retried)
  // I/O attempt per victim. Stats are deterministic: seeded workload,
  // unconditional fault, item-count-driven re-probe cadence.
  {
    const std::string row = "shed/zipf/1e4";
    const uint64_t kKeys = 10000;
    const uint64_t kItems = 160000;
    KeyedEngineOptions options;
    options.spec = ParseSinkSpec("bop-ts-single,t=10000,seed=7").ValueOrDie();
    options.memory_budget_bytes = 2 << 20;
    options.spill_dir = TempSpillDir("shed");
    options.fsync_spills = false;
    options.idle_ttl = std::min<Timestamp>(kItems, 131072);
    options.max_keys_hint = kKeys;
    options.degrade = KeyedDegradeMode::kShed;
    options.io_retry.backoff_ms = 0.0;  // permanent outage; don't sleep
    auto generator =
        WorkloadGenerator::Create("constant@zipf,rate=4,domain=10000,alpha=1.1",
                                  kWorkloadSeed)
            .ValueOrDie();
    const std::vector<Item> stream = generator->Take(kItems);
    if (!ArmFailpoints("spill.write=eio", kWorkloadSeed).ok()) {
      std::fprintf(stderr, "E18: cannot arm spill.write outage\n");
      std::exit(1);
    }
    KeyedEngineStats stats;
    double item_per_sec = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      fs::remove_all(options.spill_dir);
      auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
      const auto start = std::chrono::steady_clock::now();
      for (const Item& item : stream) engine->Observe(item);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (!engine->status().ok()) {
        // Shed mode must never latch: degradation is absorbed by
        // dropping state, not by failing the stream.
        std::fprintf(stderr, "E18 engine error (shed mode): %s\n",
                     engine->status().ToString().c_str());
        std::exit(1);
      }
      stats = engine->stats();
      item_per_sec =
          std::max(item_per_sec, seconds > 0 ? kItems / seconds : 0.0);
    }
    DisarmFailpoints();
    fs::remove_all(options.spill_dir);
    const bool exceeded =
        stats.peak_charged_bytes > options.memory_budget_bytes;
    const double shed_us =
        stats.degraded_drops > 0
            ? 1e6 * stats.shed_seconds /
                  static_cast<double>(stats.degraded_drops)
            : 0.0;
    const double bytes_per_key =
        stats.live_keys > 0 ? static_cast<double>(stats.charged_bytes) /
                                  static_cast<double>(stats.live_keys)
                            : 0.0;
    Row({row, U(kKeys), U(kItems), F(item_per_sec / 1e6, 2), "-", "-",
         F(bytes_per_key, 1), U(stats.live_keys), U(stats.degraded_drops),
         U(stats.restore_misses)});
    std::printf("  %s: spill outage, budget %.1f MiB, peak %.1f MiB%s, "
                "health=%s, %" PRIu64 " shed (%.2f us/drop), %" PRIu64
                " retries -> %" PRIu64 " giveups\n",
                row.c_str(), options.memory_budget_bytes / 1048576.0,
                stats.peak_charged_bytes / 1048576.0,
                exceeded ? " EXCEEDED" : "", KeyedHealthName(stats.health),
                stats.degraded_drops, shed_us, stats.io_retries,
                stats.io_giveups);
    BenchReporter::Global().Report(
        "e18", row,
        {{"gated", 1.0},
         {"items_per_sec_item", item_per_sec},
         {"bytes_per_key", bytes_per_key},
         {"budget_exceeded", exceeded ? 1.0 : 0.0},
         {"degraded_drops", static_cast<double>(stats.degraded_drops)},
         {"shed_bytes", static_cast<double>(stats.shed_bytes)},
         {"io_retries", static_cast<double>(stats.io_retries)},
         {"io_giveups", static_cast<double>(stats.io_giveups)},
         {"quarantined_files", static_cast<double>(stats.quarantined_files)},
         {"evict_shed_amortized_us", shed_us}});
  }

  BenchReporter::Global().WriteJsonIfRequested();
  return 0;
}
