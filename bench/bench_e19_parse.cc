// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E19: ingestion front-end micro-benchmarks. Isolates the three stages
// every byte passes through before any sampler sees an Item -- newline
// scanning (SWAR word-at-a-time vs byte-at-a-time), event-line parsing
// (ParseEventSpan with its eight-digit gulp), and the full DriveBuffer
// pipeline into a null sink -- and reports MB/s per stage. The stage
// numbers bound how fast any end-to-end ingestion can go; the drive-buffer
// row shows how close the assembled pipeline gets.
//
// All rows are absolute-throughput micro-measurements, so they are
// recorded with "gated": 0 -- informational in BENCH.json, never scored
// by the CI regression gate.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stream/driver.h"
#include "util/bits.h"
#include "util/rng.h"

using namespace swsample;
using namespace swsample::bench;

namespace {

const uint64_t kLines = Scaled(1 << 21, 64);  // ~2M event lines (full mode)

/// Event-line corpus mixing digit widths so the eight-digit gulp, the
/// short-tail loop and the blank-line skip all execute: values alternate
/// between short (1-6 digit) and long (10-13 digit) decimals, timestamps
/// advance in plateaus with occasional bursts, and every 512th line is
/// blank.
std::string MakeCorpus(uint64_t lines, bool timestamped, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(lines * 20);
  Timestamp ts = 0;
  char buf[64];
  for (uint64_t i = 0; i < lines; ++i) {
    if (i % 512 == 511) {
      out += '\n';
      continue;
    }
    const uint64_t value = (i & 1)
                               ? rng.UniformIndex(1000000)
                               : 1000000000000ull + rng.UniformIndex(1 << 30);
    if (timestamped) {
      if (i % 96 == 95) ts += 1 + rng.UniformIndex(16);
      std::snprintf(buf, sizeof(buf), "%lld %llu\n",
                    static_cast<long long>(ts),
                    static_cast<unsigned long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%llu\n",
                    static_cast<unsigned long long>(value));
    }
    out += buf;
  }
  return out;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void ReportRow(const std::string& name, double mb_per_sec,
               double lines_per_sec) {
  Row({name, F(mb_per_sec, 1), F(lines_per_sec / 1e6, 2), "MB/s|Ml/s"});
  BenchReporter::Global().Report(
      "e19", name,
      {{"gated", 0.0},
       {"mb_per_sec", mb_per_sec},
       {"lines_per_sec", lines_per_sec}});
}

/// Counts lines by scanning for '\n' with `next` (takes [p, end), returns
/// the first hit or end). Returns MB/s over `reps` passes.
template <typename NextFn>
double SplitThroughput(const std::string& corpus, int reps, uint64_t* lines,
                       NextFn&& next) {
  uint64_t count = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    const char* p = corpus.data();
    const char* end = p + corpus.size();
    while (p < end) {
      const char* hit = next(p, end);
      ++count;
      p = hit == end ? end : hit + 1;
    }
  }
  const double secs = Seconds(t0);
  *lines = count / static_cast<uint64_t>(reps);
  return corpus.size() * static_cast<double>(reps) / secs / 1e6;
}

/// Null sink: the cheapest possible consumer, so DriveBuffer's number is
/// the front-end cost (split + parse + batch assembly), not sampler work.
class NullSink final : public StreamSink {
 public:
  void Observe(const Item& item) override { checksum_ += item.value; }
  void ObserveBatch(std::span<const Item> items) override {
    for (const Item& item : items) checksum_ += item.value;
  }
  void AdvanceTime(Timestamp) override {}
  uint64_t MemoryWords() const override { return 1; }
  const char* name() const override { return "null-sink"; }
  uint64_t checksum() const { return checksum_; }

 private:
  uint64_t checksum_ = 0;
};

}  // namespace

int main() {
  Banner("E19: ingestion front-end (split / parse / drive) MB/s",
         "word-at-a-time newline scanning and eight-digit-gulp decimal "
         "parsing keep the text front-end out of the samplers' way");

  const int reps = SmokeMode() ? 2 : 8;
  Row({"stage", "MB/s", "M lines/s", "unit"});

  for (const bool timestamped : {false, true}) {
    const std::string corpus = MakeCorpus(kLines, timestamped, 19);
    const char* tag = timestamped ? "ts" : "val";

    // Stage 1: line splitting, word-at-a-time vs the byte loop memchr
    // stands in for. (DriveBuffer's scanner also stops at NULs; the
    // corpus has none, so both see identical lines.)
    uint64_t lines_swar = 0;
    const double swar = SplitThroughput(
        corpus, reps, &lines_swar, [](const char* p, const char* end) {
          return FindNewlineOrNul(p, end);
        });
    ReportRow(std::string("split-swar-") + tag, swar,
              swar * 1e6 / corpus.size() * static_cast<double>(lines_swar));
    uint64_t lines_byte = 0;
    const double byte = SplitThroughput(
        corpus, reps, &lines_byte, [](const char* p, const char* end) {
          const void* hit = std::memchr(p, '\n', end - p);
          return hit == nullptr ? end : static_cast<const char*>(hit);
        });
    ReportRow(std::string("split-memchr-") + tag, byte,
              byte * 1e6 / corpus.size() * static_cast<double>(lines_byte));

    // Stage 2: ParseEventSpan over every line (split cost included, so
    // the delta vs stage 1 is the pure parse cost).
    {
      uint64_t checksum = 0;
      uint64_t parsed = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) {
        const char* p = corpus.data();
        const char* end = p + corpus.size();
        Timestamp last_ts = 0;
        while (p < end) {
          const char* nl = FindNewlineOrNul(p, end);
          uint64_t value = 0;
          Timestamp ts = last_ts;
          const LineParse parse =
              ParseEventSpan(p, nl, timestamped, last_ts, &value, &ts);
          if (parse == LineParse::kOk) {
            checksum += value;
            last_ts = ts;
            ++parsed;
          } else if (parse != LineParse::kBlank) {
            std::fprintf(stderr, "unexpected parse failure\n");
            return 1;
          }
          p = nl == end ? end : nl + 1;
        }
      }
      const double secs = Seconds(t0);
      const double mb = corpus.size() * static_cast<double>(reps) / secs / 1e6;
      ReportRow(std::string("parse-span-") + tag, mb,
                static_cast<double>(parsed) / secs);
      if (checksum == 0) std::fprintf(stderr, "checksum zero?\n");
    }

    // Stage 3: the assembled DriveBuffer pipeline into a null sink.
    {
      NullSink sink;
      StreamDriver::Options options;
      options.batch_size = 16384;
      options.memory_probe_every = 0;
      const StreamDriver driver(options);
      uint64_t items = 0;
      const auto t0 = std::chrono::steady_clock::now();
      auto report = driver.DriveBuffer(corpus, "corpus", timestamped, sink);
      const double secs = Seconds(t0);
      if (!report.ok()) {
        std::fprintf(stderr, "DriveBuffer: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      items = report.value().items;
      ReportRow(std::string("drive-buffer-") + tag,
                corpus.size() / secs / 1e6, static_cast<double>(items) / secs);
    }
  }

  BenchReporter::Global().WriteJsonIfRequested();
  return 0;
}
