// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E1 (Theorems 2.1 + 2.2): sequence-based window memory.
//
// Paper claim: our samplers use O(k) words INDEPENDENT of the window size
// n, deterministically. Chain sampling's footprint grows (randomized chain
// tails; k' units each hold a chain), and buffering the window (Zhang et
// al.) is Theta(n). The table reports the MAX words observed over a run of
// several window lengths for each (n, k).

#include <memory>

#include "baseline/chain_sampler.h"
#include "baseline/exact_window.h"
#include "bench/bench_util.h"
#include "core/seq_swor.h"
#include "core/seq_swr.h"

namespace swsample::bench {
namespace {

void Run() {
  Banner("E1: max memory words vs window size n (sequence-based windows)",
         "bop-seq-swr / bop-seq-swor are O(k), flat in n; exact buffer is "
         "Theta(n); chain is randomized");
  Row({"n", "k", "bop-swr", "bop-swor", "bdm-chain", "exact-buf"});
  for (uint64_t log_n : {10u, 12u, 14u, 16u, 18u}) {
    const uint64_t n = uint64_t{1} << log_n;
    for (uint64_t k : {1u, 16u, 64u}) {
      const uint64_t items = 4 * n;
      auto swr = SequenceSwrSampler::Create(n, k, 1).ValueOrDie();
      auto swor = SequenceSworSampler::Create(n, k, 2).ValueOrDie();
      auto chain = ChainSampler::Create(n, k, 3).ValueOrDie();
      auto exact = ExactWindow::CreateSequence(n, k, true, 4).ValueOrDie();
      Row({U(n), U(k),
           U(MaxMemorySequenceRun(*swr, items, 1 << 20, 10)),
           U(MaxMemorySequenceRun(*swor, items, 1 << 20, 11)),
           U(MaxMemorySequenceRun(*chain, items, 1 << 20, 12)),
           U(MaxMemorySequenceRun(*exact, items, 1 << 20, 13))});
    }
  }
  std::printf(
      "\nshape check: bop columns are constant down each k-block while the\n"
      "exact buffer scales with n; chain exceeds bop and fluctuates.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
