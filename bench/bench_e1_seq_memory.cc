// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E1 (Theorems 2.1 + 2.2): sequence-based window memory.
//
// Paper claim: our samplers use O(k) words INDEPENDENT of the window size
// n, deterministically. Chain sampling's footprint grows (randomized chain
// tails; k' units each hold a chain), and buffering the window (Zhang et
// al.) is Theta(n). The table reports the MAX words observed over a run of
// several window lengths for each (n, k).

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/registry.h"

namespace swsample::bench {
namespace {

constexpr const char* kSamplers[] = {"bop-seq-swr", "bop-seq-swor",
                                     "bdm-chain", "exact-seq"};

void Run() {
  Banner("E1: max memory words vs window size n (sequence-based windows)",
         "bop-seq-swr / bop-seq-swor are O(k), flat in n; exact buffer is "
         "Theta(n); chain is randomized");
  Row({"n", "k", "bop-swr", "bop-swor", "bdm-chain", "exact-buf"});
  for (uint64_t log_n : {10u, 12u, 14u, 16u, 18u}) {
    const uint64_t n = uint64_t{1} << log_n;
    for (uint64_t k : {1u, 16u, 64u}) {
      const uint64_t items = 4 * n;
      std::vector<std::string> cells = {U(n), U(k)};
      uint64_t seed = 1;
      for (const char* name : kSamplers) {
        SamplerConfig config;
        config.window_n = n;
        config.k = k;
        config.seed = seed++;
        auto sampler = CreateSampler(name, config).ValueOrDie();
        cells.push_back(
            U(MaxMemorySequenceRun(*sampler, items, 1 << 20, 9 + seed)));
      }
      Row(cells);
    }
  }
  std::printf(
      "\nshape check: bop columns are constant down each k-block while the\n"
      "exact buffer scales with n; chain exceeds bop and fluctuates.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
