// Copyright (c) swsample authors. Licensed under the MIT license.
//
// E20: adversarial workload generator sweeps (stream/workload.h). Drives
// every generator family through the Theorem-3.9 timestamp sampler and
// reports, per workload row:
//
//  * items/s item-at-a-time vs 16k-item ObserveBatch and their ratio
//    (speedup_batch16k) — the batched fast paths must survive bursty,
//    duplicated, skewed and adversarially churning inputs, not just the
//    smooth streams E15 sweeps;
//  * structures_max — the maximum CoveringDecomposition bucket-structure
//    count the sampler ever holds during the stream. For a seeded
//    workload this is DETERMINISTIC (the decomposition is a function of
//    the arrival timestamps), so a growth is a real regression of the
//    O(log(t0) / eps) structure bound (Theorem 3.9) under the exact
//    streams built to maximize bucket churn.
//
// Every row is gated ("gated": 1): the streams are identical in smoke
// and full mode (fixed item count, fixed seeds); smoke mode only lowers
// the timing repetitions. scripts/bench_check.py scores speedup_* drops
// and structures_max increases against the committed BENCH.json.

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/ts_single.h"
#include "stream/workload.h"

using namespace swsample;
using namespace swsample::bench;

namespace {

constexpr uint64_t kItems = 1 << 16;  // identical in smoke and full
constexpr uint64_t kBatch = 16384;

struct WorkloadRow {
  const char* name;
  const char* spec;
  Timestamp t0;  // sampler window; churn's matches the generator's t
};

const WorkloadRow kRows[] = {
    {"zipf", "constant@zipf,rate=8,domain=65536,alpha=1.1", 256},
    {"poisson", "poisson@uniform,lambda=8,domain=65536", 256},
    {"bmodel",
     "bmodel@zipf,bias=0.8,levels=12,volume=16384,domain=65536,alpha=1.1",
     256},
    {"dup", "constant@zipf,rate=8,domain=65536,alpha=1.1,dup=0.3,duplag=1024",
     256},
    {"skew", "poisson@uniform,lambda=8,domain=65536,skew=64", 256},
    {"churn", "churn,t=24,domain=65536", 24},
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  Banner("E20: adversarial workload sweeps",
         "the batched fast paths and the Theorem 3.9 structure bound hold "
         "under bursty, duplicated, skewed and bucket-churning streams, "
         "not just smooth ones");

  Row({"workload", "items", "item M/s", "batch16k M/s", "speedup",
       "structs_max"});

  // Smoke mode keeps the streams identical and only trims the timing
  // repetitions (speedups are ratios; structures_max is untimed).
  const uint64_t reps = Scaled(32, 16);

  for (const WorkloadRow& row : kRows) {
    const std::vector<Item> items =
        WorkloadGenerator::Create(row.spec, /*seed=*/0x20).ValueOrDie()->Take(
            kItems);

    const auto item_start = std::chrono::steady_clock::now();
    for (uint64_t r = 0; r < reps; ++r) {
      auto sampler = TsSingleSampler::Create(row.t0, /*seed=*/7 + r)
                         .ValueOrDie();
      for (const Item& item : items) sampler.Observe(item);
    }
    const double item_seconds = SecondsSince(item_start);

    const auto batch_start = std::chrono::steady_clock::now();
    for (uint64_t r = 0; r < reps; ++r) {
      auto sampler = TsSingleSampler::Create(row.t0, /*seed=*/7 + r)
                         .ValueOrDie();
      for (uint64_t i = 0; i < items.size(); i += kBatch) {
        const uint64_t len = std::min<uint64_t>(kBatch, items.size() - i);
        sampler.ObserveBatch(
            std::span<const Item>(items.data() + i, len));
      }
    }
    const double batch_seconds = SecondsSince(batch_start);

    // Untimed pass polling the decomposition's structure count at every
    // arrival — the Theorem 3.9 bound under maximal bucket churn.
    uint64_t structures_max = 0;
    {
      auto sampler = TsSingleSampler::Create(row.t0, /*seed=*/7).ValueOrDie();
      for (const Item& item : items) {
        sampler.Observe(item);
        structures_max = std::max(structures_max, sampler.StructureCount());
      }
    }

    const double total = static_cast<double>(kItems) * reps;
    const double ips_item = item_seconds > 0 ? total / item_seconds : 0.0;
    const double ips_batch = batch_seconds > 0 ? total / batch_seconds : 0.0;
    const double speedup = ips_item > 0 ? ips_batch / ips_item : 0.0;

    Row({row.name, U(kItems), F(ips_item / 1e6, 2), F(ips_batch / 1e6, 2),
         F(speedup, 2), U(structures_max)});
    BenchReporter::Global().Report(
        "e20", row.name,
        {{"gated", 1.0},
         {"items_per_sec_item", ips_item},
         {"items_per_sec_batch16k", ips_batch},
         {"speedup_batch16k", speedup},
         {"structures_max", static_cast<double>(structures_max)}});
  }

  BenchReporter::Global().WriteJsonIfRequested();
  return 0;
}
