// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E2 (paper Section 1, disadvantage (b)): the chain sampler's
// memory is a RANDOM VARIABLE. Across independent trials we record the
// per-trial maximum chain length and memory words and report their
// distribution; the bop sampler's footprint is one constant. This is the
// paper's core qualitative claim: "memory bounds are not deterministic,
// which is atypical for streaming algorithms (where even small probability
// events may eventually happen for a stream that is long enough)".

#include <algorithm>
#include <vector>

#include "baseline/chain_sampler.h"  // typed: MaxChainLength() accessor
#include "bench/bench_util.h"
#include "core/registry.h"
#include "stats/summary.h"

namespace swsample::bench {
namespace {

void Run() {
  Banner("E2: distribution of chain-sampling memory across trials",
         "chain max memory fluctuates trial to trial (randomized bound); "
         "bop-seq-swr is one deterministic constant");
  const uint64_t n = 1 << 12;
  const uint64_t k = 8;
  const int trials = 200;
  const uint64_t items = 8 * n;

  std::vector<double> chain_words, chain_len;
  uint64_t bop_words = 0;
  for (int t = 0; t < trials; ++t) {
    auto chain = ChainSampler::Create(n, k, Rng::ForkSeed(100, t)).ValueOrDie();
    uint64_t max_words = 0, max_len = 0;
    Rng rng(900 + t);
    for (uint64_t i = 0; i < items; ++i) {
      chain->Observe(Item{rng.UniformIndex(1 << 20), i,
                          static_cast<Timestamp>(i)});
      max_words = std::max(max_words, chain->MemoryWords());
      max_len = std::max(max_len, chain->MaxChainLength());
    }
    chain_words.push_back(static_cast<double>(max_words));
    chain_len.push_back(static_cast<double>(max_len));

    SamplerConfig config;
    config.window_n = n;
    config.k = k;
    config.seed = Rng::ForkSeed(100, static_cast<uint64_t>(t));
    auto bop = CreateSampler("bop-seq-swr", config).ValueOrDie();
    bop_words =
        std::max(bop_words, MaxMemorySequenceRun(*bop, items, 1 << 20,
                                                 900 + t));
  }

  RunningSummary words_summary;
  for (double w : chain_words) words_summary.Add(w);

  Row({"metric", "min", "p50", "p90", "p99", "max"});
  Row({"chain words", F(words_summary.min(), 0),
       F(Percentile(chain_words, 0.5), 0), F(Percentile(chain_words, 0.9), 0),
       F(Percentile(chain_words, 0.99), 0), F(words_summary.max(), 0)});
  Row({"chain maxlen", F(Percentile(chain_len, 0.0), 0),
       F(Percentile(chain_len, 0.5), 0), F(Percentile(chain_len, 0.9), 0),
       F(Percentile(chain_len, 0.99), 0), F(Percentile(chain_len, 1.0), 0)});
  Row({"bop words", U(bop_words), U(bop_words), U(bop_words), U(bop_words),
       U(bop_words)});
  std::printf(
      "\nshape check: the chain rows spread between min and max (randomized\n"
      "bound; tail grows with stream length), the bop row is a single\n"
      "deterministic value across all %d trials.\n", trials);
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
