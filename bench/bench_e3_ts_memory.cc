// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E3 (Theorems 3.9 + 4.4 vs the randomized prior art): memory on
// TIMESTAMP-based windows under bursty arrivals, as a function of the
// window length t0 and k. Ours is deterministically O(k log n); BDM
// priority sampling and Gemulla-Lehner bounded priority sampling have
// expected O(k log n) but randomized worst cases; the exact buffer is
// Theta(n). n here is the (unknown to the algorithms) number of active
// elements, around lambda * t0.

#include <algorithm>
#include <memory>

#include "baseline/bounded_priority_sampler.h"
#include "baseline/exact_window.h"
#include "baseline/priority_sampler.h"
#include "bench/bench_util.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"

namespace swsample::bench {
namespace {

uint64_t MaxWordsBursty(WindowSampler& sampler, Timestamp t0, double lambda,
                        uint64_t seed) {
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 20).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(lambda)).ValueOrDie(), seed);
  uint64_t max_words = 0;
  const Timestamp horizon = 4 * t0;
  for (Timestamp t = 0; t < horizon; ++t) {
    for (const Item& item : stream.Step()) sampler.Observe(item);
    sampler.AdvanceTime(t);
    max_words = std::max(max_words, sampler.MemoryWords());
  }
  return max_words;
}

void Run() {
  Banner("E3: max memory words vs timestamp-window length t0 (bursty "
         "arrivals, lambda=4)",
         "bop-ts-* grow like k log n deterministically; priority/bounded-"
         "priority are randomized; exact buffer is Theta(n)");
  const double lambda = 4.0;
  Row({"t0", "~n", "k", "bop-swr", "bop-swor", "bdm-prio", "gl-bprio",
       "exact-buf"});
  for (uint64_t log_t0 : {8u, 10u, 12u, 14u}) {
    const Timestamp t0 = Timestamp{1} << log_t0;
    for (uint64_t k : {1u, 16u}) {
      auto swr = TsSwrSampler::Create(t0, k, 1).ValueOrDie();
      auto swor = TsSworSampler::Create(t0, k, 2).ValueOrDie();
      auto prio = PrioritySampler::Create(t0, k, 3).ValueOrDie();
      auto bprio = BoundedPrioritySampler::Create(t0, k, 4).ValueOrDie();
      auto exact = ExactWindow::CreateTimestamp(t0, k, true, 5).ValueOrDie();
      Row({U(static_cast<uint64_t>(t0)),
           U(static_cast<uint64_t>(lambda * static_cast<double>(t0))), U(k),
           U(MaxWordsBursty(*swr, t0, lambda, 10)),
           U(MaxWordsBursty(*swor, t0, lambda, 11)),
           U(MaxWordsBursty(*prio, t0, lambda, 12)),
           U(MaxWordsBursty(*bprio, t0, lambda, 13)),
           U(MaxWordsBursty(*exact, t0, lambda, 14))});
    }
  }
  std::printf(
      "\nshape check: bop columns grow by a ~constant increment when t0\n"
      "quadruples (logarithmic), the exact buffer multiplies by ~4\n"
      "(linear); priority columns sit near bop-swr but vary with the seed.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
