// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E3 (Theorems 3.9 + 4.4 vs the randomized prior art): memory on
// TIMESTAMP-based windows under bursty arrivals, as a function of the
// window length t0 and k. Ours is deterministically O(k log n); BDM
// priority sampling and Gemulla-Lehner bounded priority sampling have
// expected O(k log n) but randomized worst cases; the exact buffer is
// Theta(n). n here is the (unknown to the algorithms) number of active
// elements, around lambda * t0.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/registry.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"

namespace swsample::bench {
namespace {

uint64_t MaxWordsBursty(WindowSampler& sampler, Timestamp t0, double lambda,
                        uint64_t seed) {
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 20).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(lambda)).ValueOrDie(), seed);
  uint64_t max_words = 0;
  const Timestamp horizon = 4 * t0;
  for (Timestamp t = 0; t < horizon; ++t) {
    for (const Item& item : stream.Step()) sampler.Observe(item);
    sampler.AdvanceTime(t);
    max_words = std::max(max_words, sampler.MemoryWords());
  }
  return max_words;
}

void Run() {
  Banner("E3: max memory words vs timestamp-window length t0 (bursty "
         "arrivals, lambda=4)",
         "bop-ts-* grow like k log n deterministically; priority/bounded-"
         "priority are randomized; exact buffer is Theta(n)");
  const double lambda = 4.0;
  Row({"t0", "~n", "k", "bop-swr", "bop-swor", "bdm-prio", "gl-bprio",
       "exact-buf"});
  for (uint64_t log_t0 : {8u, 10u, 12u, 14u}) {
    const Timestamp t0 = Timestamp{1} << log_t0;
    for (uint64_t k : {1u, 16u}) {
      constexpr const char* kSamplers[] = {"bop-ts-swr", "bop-ts-swor",
                                           "bdm-priority",
                                           "gl-bounded-priority", "exact-ts"};
      std::vector<std::string> cells = {
          U(static_cast<uint64_t>(t0)),
          U(static_cast<uint64_t>(lambda * static_cast<double>(t0))), U(k)};
      uint64_t seed = 1;
      for (const char* name : kSamplers) {
        SamplerConfig config;
        config.window_t = t0;
        config.k = k;
        config.seed = seed++;
        auto sampler = CreateSampler(name, config).ValueOrDie();
        cells.push_back(U(MaxWordsBursty(*sampler, t0, lambda, 9 + seed)));
      }
      Row(cells);
    }
  }
  std::printf(
      "\nshape check: bop columns grow by a ~constant increment when t0\n"
      "quadruples (logarithmic), the exact buffer multiplies by ~4\n"
      "(linear); priority columns sit near bop-swr but vary with the seed.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
