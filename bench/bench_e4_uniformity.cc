// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E4: uniformity of every sampler's output. The paper's
// correctness theorems say each sampler produces an exactly uniform sample
// of the active window; the harness runs a chi-square goodness-of-fit over
// tens of thousands of independent trials per sampler and prints the
// statistic, p-value and verdict. (Baselines are expected to pass too --
// the paper's improvement is about memory determinism, not distribution.)
//
// The sweep covers EVERY registered sampler, so a sampler added to the
// registry is picked up by this experiment automatically. Each sampler is
// checked twice: item-by-item Observe and batched ObserveBatch ingestion
// (ragged batch size straddling bucket boundaries), which must be
// distributionally identical.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/registry.h"
#include "stats/tests.h"

namespace swsample::bench {
namespace {

// Streams `len` rate-1 items (index == timestamp) through a fresh sampler
// per trial, counting the sampled window position; returns the chi-square
// against uniform. `batch` = 0 feeds item by item.
ChiSquareResult WindowUniformity(const char* name, uint64_t window,
                                 uint64_t len, uint64_t batch, int trials,
                                 uint64_t seed_base) {
  std::vector<uint64_t> counts(window, 0);
  std::vector<Item> items;
  items.reserve(len);
  for (uint64_t i = 0; i < len; ++i) {
    items.push_back(Item{i, i, static_cast<Timestamp>(i)});
  }
  for (int t = 0; t < trials; ++t) {
    SamplerConfig config;
    config.window_n = window;
    config.window_t = static_cast<Timestamp>(window);
    config.k = 1;
    config.seed = seed_base + static_cast<uint64_t>(t);
    auto s = CreateSampler(name, config).ValueOrDie();
    if (batch == 0) {
      for (const Item& item : items) s->Observe(item);
    } else {
      for (uint64_t pos = 0; pos < len; pos += batch) {
        const uint64_t take = std::min(batch, len - pos);
        s->ObserveBatch(std::span<const Item>(items.data() + pos, take));
      }
    }
    for (const Item& item : s->Sample()) ++counts[item.index - (len - window)];
  }
  return ChiSquareUniform(counts);
}

void Run() {
  Banner("E4: chi-square uniformity of every registered sampler",
         "all samplers produce exactly uniform window samples, batched or "
         "not");
  Row({"sampler", "model", "path", "window", "trials", "chi2", "p-value",
       "verdict"});
  const uint64_t window = 16, len = 57;
  const int trials = 40000;

  uint64_t seed_base = 1000000;
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    const char* model =
        spec.model == WindowModel::kSequence ? "seq" : "ts";
    for (uint64_t batch : {uint64_t{0}, uint64_t{13}}) {
      auto r = WindowUniformity(spec.name, window, len, batch, trials,
                                seed_base);
      seed_base += 1000000;
      Row({spec.name, model, batch == 0 ? "item" : "batch", U(window),
           U(static_cast<uint64_t>(trials)), F(r.statistic, 1),
           Sci(r.p_value), r.p_value > 1e-4 ? "PASS" : "FAIL"});
    }
  }

  std::printf("\nshape check: every row PASSes (p above the 1e-4 bar).\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
