// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E4: uniformity of every sampler's output. The paper's
// correctness theorems say each sampler produces an exactly uniform sample
// of the active window; the harness runs a chi-square goodness-of-fit over
// tens of thousands of independent trials per sampler and prints the
// statistic, p-value and verdict. (Baselines are expected to pass too --
// the paper's improvement is about memory determinism, not distribution.)

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/bounded_priority_sampler.h"
#include "baseline/chain_sampler.h"
#include "baseline/exact_window.h"
#include "baseline/priority_sampler.h"
#include "bench/bench_util.h"
#include "core/seq_swor.h"
#include "core/seq_swr.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "stats/tests.h"

namespace swsample::bench {
namespace {

using Factory = std::function<std::unique_ptr<WindowSampler>(uint64_t seed)>;

// Sequence-mode uniformity: stream of `len` items, window n, count the
// sampled index over trials.
void CheckSeq(const char* sampler_name, const Factory& factory, uint64_t n,
              uint64_t len, int trials, uint64_t seed_base) {
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = factory(seed_base + t);
    for (uint64_t i = 0; i < len; ++i) {
      s->Observe(Item{i, i, static_cast<Timestamp>(i)});
    }
    for (const Item& item : s->Sample()) ++counts[item.index - (len - n)];
  }
  auto r = ChiSquareUniform(counts);
  Row({sampler_name, "seq", U(n), U(static_cast<uint64_t>(trials)),
       F(r.statistic, 1), Sci(r.p_value), r.p_value > 1e-4 ? "PASS" : "FAIL"});
}

// Timestamp-mode uniformity at arrival rate 1 (window = last t0 items).
void CheckTs(const char* sampler_name, const Factory& factory, Timestamp t0,
             Timestamp horizon, int trials, uint64_t seed_base) {
  std::vector<uint64_t> counts(t0, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = factory(seed_base + t);
    for (Timestamp i = 0; i < horizon; ++i) {
      s->Observe(Item{static_cast<uint64_t>(i), static_cast<uint64_t>(i), i});
    }
    for (const Item& item : s->Sample()) {
      ++counts[item.index - (horizon - t0)];
    }
  }
  auto r = ChiSquareUniform(counts);
  Row({sampler_name, "ts", U(static_cast<uint64_t>(t0)),
       U(static_cast<uint64_t>(trials)), F(r.statistic, 1), Sci(r.p_value),
       r.p_value > 1e-4 ? "PASS" : "FAIL"});
}

void Run() {
  Banner("E4: chi-square uniformity of every sampler over its window",
         "all samplers produce exactly uniform window samples");
  Row({"sampler", "model", "window", "trials", "chi2", "p-value", "verdict"});
  const uint64_t n = 16, len = 57;
  const Timestamp t0 = 16, horizon = 57;
  const int trials = 40000;

  CheckSeq("bop-seq-swr", [&](uint64_t s) {
    return SequenceSwrSampler::Create(n, 1, s).ValueOrDie();
  }, n, len, trials, 1000000);
  CheckSeq("bop-seq-swor", [&](uint64_t s) {
    return SequenceSworSampler::Create(n, 1, s).ValueOrDie();
  }, n, len, trials, 2000000);
  CheckSeq("bdm-chain", [&](uint64_t s) {
    return ChainSampler::Create(n, 1, s).ValueOrDie();
  }, n, len, trials, 3000000);
  CheckSeq("exact-window", [&](uint64_t s) {
    return ExactWindow::CreateSequence(n, 1, true, s).ValueOrDie();
  }, n, len, trials, 4000000);

  CheckTs("bop-ts-swr", [&](uint64_t s) {
    return TsSwrSampler::Create(t0, 1, s).ValueOrDie();
  }, t0, horizon, trials, 5000000);
  CheckTs("bop-ts-swor", [&](uint64_t s) {
    return TsSworSampler::Create(t0, 1, s).ValueOrDie();
  }, t0, horizon, trials, 6000000);
  CheckTs("bdm-priority", [&](uint64_t s) {
    return PrioritySampler::Create(t0, 1, s).ValueOrDie();
  }, t0, horizon, trials, 7000000);
  CheckTs("gl-bprio", [&](uint64_t s) {
    return BoundedPrioritySampler::Create(t0, 1, s).ValueOrDie();
  }, t0, horizon, trials, 8000000);

  std::printf("\nshape check: every row PASSes (p above the 1e-4 bar).\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
