// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E5 (Theorem 2.2 / 4.4 vs over-sampling): quality of k-samples
// WITHOUT replacement.
//
// Part A: subset-level uniformity -- every C(n,k) subset equiprobable for
// bop-seq-swor and bop-ts-swor (chi-square over all subsets).
// Part B: the over-sampling alternative -- for several over-sampling
// factors, the fraction of queries that FAIL to produce k distinct samples
// (disadvantage (b)) and the words spent (disadvantage (a)). Our samplers
// never fail and use O(k).

#include <algorithm>
#include <map>
#include <vector>

#include "baseline/oversampler.h"  // typed: failure_count() accessor
#include "bench/bench_util.h"
#include "core/registry.h"
#include "stats/tests.h"

namespace swsample::bench {
namespace {

void PartA() {
  std::printf("\n-- A: all C(12,3)=220 window subsets equiprobable --\n");
  Row({"sampler", "trials", "subsets", "chi2", "p-value", "verdict"});
  const uint64_t n = 12, k = 3, len = 31;
  const int trials = 220000;
  {
    std::map<std::vector<uint64_t>, uint64_t> counts;
    for (int t = 0; t < trials; ++t) {
      SamplerConfig config;
      config.window_n = n;
      config.k = k;
      config.seed = Rng::ForkSeed(100, static_cast<uint64_t>(t));
      auto s = CreateSampler("bop-seq-swor", config).ValueOrDie();
      for (uint64_t i = 0; i < len; ++i) {
        s->Observe(Item{i, i, static_cast<Timestamp>(i)});
      }
      std::vector<uint64_t> key;
      for (const Item& item : s->Sample()) key.push_back(item.index);
      std::sort(key.begin(), key.end());
      ++counts[key];
    }
    std::vector<uint64_t> flat;
    for (const auto& [key, c] : counts) flat.push_back(c);
    auto r = ChiSquareUniform(flat);
    Row({"bop-seq-swor", U(static_cast<uint64_t>(trials)),
         U(static_cast<uint64_t>(counts.size())), F(r.statistic, 1),
         Sci(r.p_value), r.p_value > 1e-4 ? "PASS" : "FAIL"});
  }
  {
    std::map<std::vector<uint64_t>, uint64_t> counts;
    for (int t = 0; t < trials; ++t) {
      SamplerConfig config;
      config.window_t = static_cast<Timestamp>(n);
      config.k = k;
      config.seed = Rng::ForkSeed(700000, static_cast<uint64_t>(t));
      auto s = CreateSampler("bop-ts-swor", config).ValueOrDie();
      for (Timestamp i = 0; i < static_cast<Timestamp>(len); ++i) {
        s->Observe(
            Item{static_cast<uint64_t>(i), static_cast<uint64_t>(i), i});
      }
      std::vector<uint64_t> key;
      for (const Item& item : s->Sample()) key.push_back(item.index);
      std::sort(key.begin(), key.end());
      ++counts[key];
    }
    std::vector<uint64_t> flat;
    for (const auto& [key, c] : counts) flat.push_back(c);
    auto r = ChiSquareUniform(flat);
    Row({"bop-ts-swor", U(static_cast<uint64_t>(trials)),
         U(static_cast<uint64_t>(counts.size())), F(r.statistic, 1),
         Sci(r.p_value), r.p_value > 1e-4 ? "PASS" : "FAIL"});
  }
}

void PartB() {
  std::printf(
      "\n-- B: over-sampling failure rate and cost (n=64, k=8, 2000 queries) "
      "--\n");
  Row({"sampler", "factor", "fail%", "avg-words", "k-guarantee"});
  const uint64_t n = 64, k = 8;
  for (uint64_t factor : {1u, 2u, 4u, 8u}) {
    auto s = OverSampler::Create(n, k, factor, Rng::ForkSeed(42, factor)).ValueOrDie();
    Rng rng(7);
    uint64_t word_acc = 0, steps = 0;
    for (uint64_t i = 0; i < 4 * n; ++i) {
      s->Observe(Item{rng.UniformIndex(1 << 20), i,
                      static_cast<Timestamp>(i)});
      if (i >= n) {
        s->Sample();
        word_acc += s->MemoryWords();
        ++steps;
      }
    }
    const double fail = 100.0 * static_cast<double>(s->failure_count()) /
                        static_cast<double>(s->query_count());
    Row({"oversample", U(factor), F(fail, 2),
         F(static_cast<double>(word_acc) / static_cast<double>(steps), 1),
         "randomized"});
  }
  {
    SamplerConfig config;
    config.window_n = n;
    config.k = k;
    config.seed = 50;
    auto s = CreateSampler("bop-seq-swor", config).ValueOrDie();
    Rng rng(8);
    uint64_t word_acc = 0, steps = 0, shortfalls = 0;
    for (uint64_t i = 0; i < 4 * n; ++i) {
      s->Observe(Item{rng.UniformIndex(1 << 20), i,
                      static_cast<Timestamp>(i)});
      if (i >= n) {
        if (s->Sample().size() < k) ++shortfalls;
        word_acc += s->MemoryWords();
        ++steps;
      }
    }
    Row({"bop-seq-swor", "-", F(0.0, 2),
         F(static_cast<double>(word_acc) / static_cast<double>(steps), 1),
         shortfalls == 0 ? "deterministic" : "BROKEN"});
  }
}

void Run() {
  Banner("E5: sampling-without-replacement quality",
         "bop SWOR: all subsets equiprobable, k always delivered, O(k) "
         "words; over-sampling fails with positive probability and costs "
         "factor x more");
  PartA();
  PartB();
  std::printf(
      "\nshape check: part A rows PASS; part B fail%% decreases with the\n"
      "factor but never reaches 0, while bop-seq-swor is 0 by construction\n"
      "at a fraction of the words.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
