// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E6: per-element throughput of every sampler (google-benchmark).
// The paper's abstract criticizes over-sampling for "additional costs";
// this experiment quantifies observe-path cost (ns/element) across all
// implementations, plus the Sample() query cost, at n = 2^16.

#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/bounded_priority_sampler.h"
#include "baseline/chain_sampler.h"
#include "baseline/exact_window.h"
#include "baseline/oversampler.h"
#include "baseline/priority_sampler.h"
#include "core/seq_swor.h"
#include "core/seq_swr.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "reservoir/algorithm_l.h"
#include "reservoir/reservoir.h"

namespace swsample {
namespace {

constexpr uint64_t kWindow = 1 << 16;

void DriveObserve(benchmark::State& state, WindowSampler& sampler) {
  uint64_t i = 0;
  Rng rng(1);
  for (auto _ : state) {
    sampler.Observe(Item{rng.NextU64(), i, static_cast<Timestamp>(i / 4)});
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}

void BM_SeqSwrObserve(benchmark::State& state) {
  auto s = SequenceSwrSampler::Create(kWindow,
                                      static_cast<uint64_t>(state.range(0)),
                                      7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_SeqSwrObserve)->Arg(1)->Arg(16)->Arg(64);

void BM_SeqSworObserve(benchmark::State& state) {
  auto s = SequenceSworSampler::Create(
               kWindow, static_cast<uint64_t>(state.range(0)), 7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_SeqSworObserve)->Arg(1)->Arg(16)->Arg(64);

void BM_ChainObserve(benchmark::State& state) {
  auto s = ChainSampler::Create(kWindow,
                                static_cast<uint64_t>(state.range(0)), 7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_ChainObserve)->Arg(1)->Arg(16)->Arg(64);

void BM_OversampleObserve(benchmark::State& state) {
  auto s = OverSampler::Create(kWindow, 16,
                               static_cast<uint64_t>(state.range(0)), 7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_OversampleObserve)->Arg(2)->Arg(8);

void BM_TsSwrObserve(benchmark::State& state) {
  auto s = TsSwrSampler::Create(kWindow,
                                static_cast<uint64_t>(state.range(0)), 7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_TsSwrObserve)->Arg(1)->Arg(16);

void BM_TsSworObserve(benchmark::State& state) {
  auto s = TsSworSampler::Create(kWindow,
                                 static_cast<uint64_t>(state.range(0)), 7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_TsSworObserve)->Arg(1)->Arg(16);

void BM_PriorityObserve(benchmark::State& state) {
  auto s = PrioritySampler::Create(kWindow,
                                   static_cast<uint64_t>(state.range(0)), 7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_PriorityObserve)->Arg(1)->Arg(16);

void BM_BoundedPriorityObserve(benchmark::State& state) {
  auto s = BoundedPrioritySampler::Create(
               kWindow, static_cast<uint64_t>(state.range(0)), 7)
               .ValueOrDie();
  DriveObserve(state, *s);
}
BENCHMARK(BM_BoundedPriorityObserve)->Arg(1)->Arg(16);

// Substrate comparison: Algorithm R vs Algorithm L (skip-based).
void BM_ReservoirAlgorithmR(benchmark::State& state) {
  KReservoir r(16);
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    r.Observe(Item{i, i, 0}, rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_ReservoirAlgorithmR);

void BM_ReservoirAlgorithmL(benchmark::State& state) {
  SkipReservoir r(16);
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    r.Observe(Item{i, i, 0}, rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_ReservoirAlgorithmL);

// Query-path cost.
void BM_SeqSwrSample(benchmark::State& state) {
  auto s = SequenceSwrSampler::Create(kWindow, 16, 7).ValueOrDie();
  for (uint64_t i = 0; i < 2 * kWindow; ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  for (auto _ : state) benchmark::DoNotOptimize(s->Sample());
}
BENCHMARK(BM_SeqSwrSample);

void BM_TsSworSample(benchmark::State& state) {
  auto s = TsSworSampler::Create(1 << 12, 16, 7).ValueOrDie();
  for (uint64_t i = 0; i < (1 << 13); ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  for (auto _ : state) benchmark::DoNotOptimize(s->Sample());
}
BENCHMARK(BM_TsSworSample);

}  // namespace
}  // namespace swsample

BENCHMARK_MAIN();
