// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E6: per-element throughput of every sampler (google-benchmark).
// The paper's abstract criticizes over-sampling for "additional costs";
// this experiment quantifies observe-path cost (ns/element) across all
// implementations, plus the Sample() query cost, at n = 2^16.
//
// Sampler benchmarks are registered from the registry at startup — one
// Observe and one ObserveBatch benchmark per registered name — so a new
// sampler shows up here without editing this file. E15 (bench_e15_batch)
// covers the batch-size sweep in the shared table format.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/registry.h"
#include "reservoir/algorithm_l.h"
#include "reservoir/reservoir.h"

namespace swsample {
namespace {

constexpr uint64_t kWindow = 1 << 16;
constexpr uint64_t kBatch = 1 << 10;

SamplerConfig BenchConfig(uint64_t k) {
  SamplerConfig config;
  config.window_n = kWindow;
  config.window_t = static_cast<Timestamp>(kWindow);
  config.k = k;
  config.seed = 7;
  return config;
}

void DriveObserve(benchmark::State& state, WindowSampler& sampler) {
  uint64_t i = 0;
  Rng rng(1);
  for (auto _ : state) {
    sampler.Observe(Item{rng.NextU64(), i, static_cast<Timestamp>(i / 4)});
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}

void DriveObserveBatch(benchmark::State& state, WindowSampler& sampler) {
  Rng rng(1);
  std::vector<Item> batch(kBatch);
  std::vector<uint64_t> values(kBatch);  // pre-drawn per batch (FillU64)
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rng.FillU64(values);
    for (uint64_t j = 0; j < kBatch; ++j) {
      batch[j] = Item{values[j], i, static_cast<Timestamp>(i / 4)};
      ++i;
    }
    state.ResumeTiming();
    sampler.ObserveBatch(std::span<const Item>(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}

void SamplerObserve(benchmark::State& state, std::string name) {
  auto sampler =
      CreateSampler(name, BenchConfig(static_cast<uint64_t>(state.range(0))))
          .ValueOrDie();
  DriveObserve(state, *sampler);
}

void SamplerObserveBatch(benchmark::State& state, std::string name) {
  auto sampler =
      CreateSampler(name, BenchConfig(static_cast<uint64_t>(state.range(0))))
          .ValueOrDie();
  DriveObserveBatch(state, *sampler);
}

}  // namespace

void RegisterSamplerBenchmarks() {
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    const std::string name = spec.name;
    const bool single = spec.single_sample;
    auto* observe = benchmark::RegisterBenchmark(
        ("BM_Observe/" + name).c_str(),
        [name](benchmark::State& state) { SamplerObserve(state, name); });
    auto* batch = benchmark::RegisterBenchmark(
        ("BM_ObserveBatch/" + name).c_str(),
        [name](benchmark::State& state) { SamplerObserveBatch(state, name); });
    if (single) {
      observe->Arg(1);
      batch->Arg(1);
    } else {
      observe->Arg(1)->Arg(16);
      batch->Arg(1)->Arg(16);
    }
  }
}

namespace {

// Substrate comparison: Algorithm R vs Algorithm L (skip-based).
void BM_ReservoirAlgorithmR(benchmark::State& state) {
  KReservoir r(16);
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    r.Observe(Item{i, i, 0}, rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_ReservoirAlgorithmR);

void BM_ReservoirAlgorithmL(benchmark::State& state) {
  SkipReservoir r(16);
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    r.Observe(Item{i, i, 0}, rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_ReservoirAlgorithmL);

// Query-path cost.
void BM_SeqSwrSample(benchmark::State& state) {
  auto s = CreateSampler("bop-seq-swr", BenchConfig(16)).ValueOrDie();
  for (uint64_t i = 0; i < 2 * kWindow; ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  for (auto _ : state) benchmark::DoNotOptimize(s->Sample());
}
BENCHMARK(BM_SeqSwrSample);

void BM_TsSworSample(benchmark::State& state) {
  SamplerConfig config;
  config.window_t = 1 << 12;
  config.k = 16;
  config.seed = 7;
  auto s = CreateSampler("bop-ts-swor", config).ValueOrDie();
  for (uint64_t i = 0; i < (1 << 13); ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  for (auto _ : state) benchmark::DoNotOptimize(s->Sample());
}
BENCHMARK(BM_TsSworSample);

}  // namespace
}  // namespace swsample

int main(int argc, char** argv) {
  swsample::RegisterSamplerBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
