// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E7 (Lemma 3.10): the Omega(log n) lower bound for timestamp
// windows, demonstrated on the paper's own adversarial stream -- 2^(2t0-i)
// arrivals at timestamp i. Two measurements:
//
//  1. The counting argument: a correct sampler queried at moment t0+i-1
//     picks the newest burst with probability > 1/2, so across moments
//     t0-1 .. 2t0-1 it must "remember" Theta(t0) = Theta(log n) distinct
//     timestamps. We replay the paper's exact experiment on our sampler and
//     count distinct sampled timestamps.
//
//  2. The matching upper bound: our sampler's bucket-structure count on the
//     same stream stays within O(log n) -- optimality (Theorem 3.9).

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "core/ts_single.h"
#include "stream/arrival.h"
#include "util/bits.h"

namespace swsample::bench {
namespace {

void Run() {
  Banner("E7: Lemma 3.10 adversarial doubling stream",
         "any algorithm holds Omega(log n) words; ours holds O(log n) -- "
         "optimal");
  const int64_t t0 = 12;
  const uint64_t max_burst = 1 << 14;
  auto arrivals = DoublingBurstArrivals::Create(t0, max_burst).ValueOrDie();

  // The lemma's counting argument, measured over many independent runs.
  const int runs = 100;
  double avg_distinct = 0.0;
  uint64_t max_structures = 0;
  uint64_t n_at_t0 = 0;
  for (int run = 0; run < runs; ++run) {
    auto s = TsSingleSampler::Create(t0, Rng::ForkSeed(100, run)).ValueOrDie();
    Rng rng(1);  // arrivals are deterministic for this process
    uint64_t index = 0;
    std::set<Timestamp> picked;
    uint64_t active = 0;
    std::vector<std::pair<Timestamp, uint64_t>> window;  // (ts, count)
    for (Timestamp t = 0; t <= 2 * t0; ++t) {
      const uint64_t burst = arrivals->CountAt(t, rng);
      for (uint64_t i = 0; i < burst; ++i) {
        s.Observe(Item{index, index, t});
        ++index;
      }
      window.emplace_back(t, burst);
      // Sample in the window [t0-1, 2t0-1] of moments, as in the lemma.
      if (t >= t0 - 1) {
        auto sample = s.SampleOne();
        if (sample) picked.insert(sample->timestamp);
      }
      if (t == t0) {
        active = 0;
        for (const auto& [ts, cnt] : window) {
          if (t - ts < t0) active += cnt;
        }
        n_at_t0 = active;
      }
      max_structures = std::max(max_structures, s.StructureCount());
    }
    avg_distinct += static_cast<double>(picked.size());
  }
  avg_distinct /= runs;

  Row({"quantity", "value"});
  Row({"t0", U(static_cast<uint64_t>(t0))});
  Row({"n(t0)", U(n_at_t0)});
  Row({"log2 n(t0)", F(std::log2(static_cast<double>(n_at_t0)), 2)});
  Row({"lemma bound", F(static_cast<double>(t0 + 1) / 2.0, 2)});
  Row({"avg distinct ts picked", F(avg_distinct, 2)});
  Row({"our max structures", U(max_structures)});
  std::printf(
      "\nshape check: avg distinct sampled timestamps >= (t0+1)/2 = %.1f\n"
      "(the Omega(log n) information the algorithm must retain), and our\n"
      "structure count stays O(log n) -- within a small constant of\n"
      "log2 n(t0) = %.1f.\n",
      static_cast<double>(t0 + 1) / 2.0,
      std::log2(static_cast<double>(n_at_t0)));
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
