// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E8 (Corollary 5.2): frequency-moment estimation on sliding
// windows via the AMS estimator, swept over the estimator registry's
// substrate grid. Every row constructs "ams-fk" by name over a sampling
// substrate named by its sampler-registry string and pumps one fixed
// Zipf-skewed stream through the batched StreamDriver. The expected shape
// is relative error shrinking like 1/sqrt(r) within each substrate block,
// with the exact-window oracle substrate as the memory-unbounded baseline
// and the timestamp substrates paying the extra (1 +/- eps) DGIM factor.

#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "apps/estimator_registry.h"
#include "bench/bench_util.h"
#include "stats/exact.h"
#include "stream/driver.h"
#include "stream/value_gen.h"

namespace swsample::bench {
namespace {

const std::vector<uint64_t>& UnitCounts() {
  static const std::vector<uint64_t> full = {16, 64, 256, 1024};
  static const std::vector<uint64_t> smoke = {16};
  return SmokeMode() ? smoke : full;
}

void RunCase(uint32_t moment, double alpha, uint64_t domain) {
  const uint64_t n = Scaled(1 << 14);
  const uint64_t len = 3 * n;
  // One fixed stream per case.
  auto gen = ZipfValues::Create(domain, alpha).ValueOrDie();
  Rng rng(Rng::ForkSeed(static_cast<uint64_t>(alpha * 100), moment));
  std::vector<Item> items(len);
  for (uint64_t i = 0; i < len; ++i) {
    items[i] = Item{gen->Next(rng), i, static_cast<Timestamp>(i)};
  }

  std::deque<uint64_t> window_q;
  for (const Item& item : items) {
    window_q.push_back(item.value);
    if (window_q.size() > n) window_q.pop_front();
  }
  std::vector<uint64_t> window(window_q.begin(), window_q.end());
  // Reusable flat histogram: one table's memory serves every case.
  static ValueHistogram hist;
  ExactHistogramInto(window, &hist);
  const double exact = ExactFrequencyMoment(hist, moment);

  StreamDriver driver;
  for (const char* substrate : {"bop-seq-single", "exact-seq"}) {
    for (uint64_t r : UnitCounts()) {
      EstimatorConfig config;
      config.substrate = substrate;
      config.window_n = n;
      config.r = r;
      config.moment = moment;
      config.seed = Rng::ForkSeed(900, r + moment);
      auto est = CreateEstimator("ams-fk", config).ValueOrDie();
      DriveReport drive = driver.Drive(std::span<const Item>(items), *est);
      const double estimate = est->Estimate().value;
      Row({"F" + std::to_string(moment), F(alpha, 1), substrate, U(r),
           Sci(exact), Sci(estimate),
           F(std::fabs(estimate - exact) / exact, 3),
           F(drive.items_per_sec / 1e6, 2), U(drive.memory_words)});
    }
  }
}

// Timestamp-window block: bursty arrivals, window size UNKNOWN to the
// estimator (DGIM n-hat on the paper substrate, exact on the oracle),
// forward counts on the covering decomposition.
void RunTimestampCase(double alpha) {
  const Timestamp t0 = static_cast<Timestamp>(Scaled(1 << 10, 4));
  auto gen = ZipfValues::Create(1 << 8, alpha).ValueOrDie();
  Rng rng(Rng::ForkSeed(static_cast<uint64_t>(alpha * 1000), 7));
  // Materialize one bursty stream (1..3 items per step).
  std::vector<Item> items;
  uint64_t index = 0;
  for (Timestamp t = 0; t < 3 * t0; ++t) {
    const uint64_t burst = 1 + rng.UniformIndex(3);
    for (uint64_t i = 0; i < burst; ++i) {
      items.push_back(Item{gen->Next(rng), index++, t});
    }
  }
  const Timestamp end = 3 * t0 - 1;
  std::vector<uint64_t> window;
  for (const Item& item : items) {
    if (end - item.timestamp < t0) window.push_back(item.value);
  }
  static ValueHistogram ts_hist;
  ExactHistogramInto(window, &ts_hist);
  const double exact = ExactFrequencyMoment(ts_hist, 2);

  StreamDriver driver;
  for (const char* substrate : {"bop-ts-single", "exact-ts"}) {
    for (uint64_t r : UnitCounts()) {
      if (r < 64 && !SmokeMode()) continue;  // ts variance needs r >= 64
      EstimatorConfig config;
      config.substrate = substrate;
      config.window_t = t0;
      config.r = r;
      config.moment = 2;
      config.count_eps = 0.05;
      config.seed = Rng::ForkSeed(400, r);
      auto est = CreateEstimator("ams-fk", config).ValueOrDie();
      DriveReport drive = driver.Drive(std::span<const Item>(items), *est);
      est->AdvanceTime(end);
      const double estimate = est->Estimate().value;
      Row({"F2-ts", F(alpha, 1), substrate, U(r), Sci(exact), Sci(estimate),
           F(std::fabs(estimate - exact) / exact, 3),
           F(drive.items_per_sec / 1e6, 2), U(drive.memory_words)});
    }
  }
}

void Run() {
  Banner("E8: AMS frequency moments, estimator x substrate sweep through "
         "the registry",
         "unbiased estimates; relative error shrinks ~1/sqrt(r) per "
         "substrate block");
  Row({"moment", "alpha", "substrate", "r", "exact", "estimate", "rel-err",
       "Mitems/s", "words"});
  RunCase(/*moment=*/2, /*alpha=*/0.8, /*domain=*/1 << 10);
  RunCase(/*moment=*/2, /*alpha=*/1.3, /*domain=*/1 << 10);
  RunCase(/*moment=*/3, /*alpha=*/1.3, /*domain=*/1 << 8);
  std::printf(
      "\n-- timestamp substrates (t0=2^10, bursty, n unknown: DGIM n-hat "
      "with eps=0.05 on bop-ts-single) --\n");
  RunTimestampCase(/*alpha=*/1.3);
  std::printf(
      "\nshape check: within each (moment, alpha, substrate) block the\n"
      "rel-err column trends down as r quadruples (roughly halving), the\n"
      "AMS rate; exact-seq matches bop-seq-single at a fraction of the\n"
      "throughput and O(n) words; the F2-ts rows reproduce Corollary 5.2's\n"
      "timestamp-window transfer with the extra (1 +/- eps) count factor.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
