// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E8 (Corollary 5.2): frequency-moment estimation on sliding
// windows via the AMS estimator over our samplers. For Zipf-skewed streams
// and a window of 2^14 items the table reports the exact windowed F_k, the
// estimate, and the relative error as the number of AMS units r grows --
// the expected shape is error shrinking like 1/sqrt(r).

#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "apps/freq_moments.h"
#include "apps/ts_counting.h"
#include "bench/bench_util.h"
#include "stats/exact.h"
#include "stream/value_gen.h"

namespace swsample::bench {
namespace {

void RunCase(uint32_t moment, double alpha, uint64_t domain) {
  const uint64_t n = 1 << 14;
  const uint64_t len = 3 * n;
  // One fixed stream per case.
  auto gen = ZipfValues::Create(domain, alpha).ValueOrDie();
  Rng rng(static_cast<uint64_t>(alpha * 100) + moment);
  std::vector<uint64_t> values(len);
  for (auto& v : values) v = gen->Next(rng);

  std::deque<uint64_t> window_q;
  for (uint64_t v : values) {
    window_q.push_back(v);
    if (window_q.size() > n) window_q.pop_front();
  }
  std::vector<uint64_t> window(window_q.begin(), window_q.end());
  const double exact = ExactFrequencyMoment(window, moment);

  for (uint64_t r : {16u, 64u, 256u, 1024u}) {
    auto est = SlidingFkEstimator::Create(n, moment, r, 900 + r).ValueOrDie();
    for (uint64_t i = 0; i < len; ++i) {
      est->Observe(Item{values[i], i, static_cast<Timestamp>(i)});
    }
    const double estimate = est->Estimate();
    Row({"F" + std::to_string(moment), F(alpha, 1), U(r), Sci(exact),
         Sci(estimate), F(std::fabs(estimate - exact) / exact, 3)});
  }
}

// Timestamp-window block: bursty arrivals, window size UNKNOWN to the
// estimator (DGIM n-hat), forward counts on the covering decomposition.
void RunTimestampCase(double alpha) {
  const Timestamp t0 = 1 << 10;
  auto gen = ZipfValues::Create(1 << 8, alpha).ValueOrDie();
  Rng rng(static_cast<uint64_t>(alpha * 1000) + 7);
  // Materialize one bursty stream (1..3 items per step).
  std::vector<std::pair<Timestamp, uint64_t>> events;
  for (Timestamp t = 0; t < 3 * t0; ++t) {
    const uint64_t burst = 1 + rng.UniformIndex(3);
    for (uint64_t i = 0; i < burst; ++i) events.emplace_back(t, gen->Next(rng));
  }
  const Timestamp end = 3 * t0 - 1;
  std::vector<uint64_t> window;
  for (const auto& [ts, v] : events) {
    if (end - ts < t0) window.push_back(v);
  }
  const double exact = ExactFrequencyMoment(window, 2);

  for (uint64_t r : {64u, 256u, 1024u}) {
    auto est = TsFkEstimator::Create(t0, 2, r, /*count_eps=*/0.05, 400 + r)
                   .ValueOrDie();
    uint64_t index = 0;
    for (const auto& [ts, v] : events) {
      est->Observe(Item{v, index++, ts});
    }
    est->AdvanceTime(end);
    const double estimate = est->Estimate();
    Row({"F2-ts", F(alpha, 1), U(r), Sci(exact), Sci(estimate),
         F(std::fabs(estimate - exact) / exact, 3)});
  }
}

void Run() {
  Banner("E8: AMS frequency moments over a sliding window of 2^14 items",
         "unbiased estimates; relative error shrinks ~1/sqrt(r)");
  Row({"moment", "alpha", "r", "exact", "estimate", "rel-err"});
  RunCase(/*moment=*/2, /*alpha=*/0.8, /*domain=*/1 << 10);
  RunCase(/*moment=*/2, /*alpha=*/1.3, /*domain=*/1 << 10);
  RunCase(/*moment=*/3, /*alpha=*/1.3, /*domain=*/1 << 8);
  std::printf(
      "\n-- timestamp windows (t0=2^10, bursty, n unknown: DGIM n-hat with "
      "eps=0.05) --\n");
  RunTimestampCase(/*alpha=*/1.3);
  std::printf(
      "\nshape check: within each (moment, alpha) block the rel-err column\n"
      "trends down as r quadruples (roughly halving), the AMS rate; the\n"
      "F2-ts block reproduces Corollary 5.2's timestamp-window transfer\n"
      "with the extra (1 +/- eps) count factor.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
