// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E9 (Corollary 5.4): empirical entropy over sliding windows
// via the CCM basic estimator, swept over the estimator registry's
// substrate grid ("ccm-entropy" x {paper sequence units, exact-window
// oracle}). Streams of varying skew; the table reports exact windowed
// entropy vs estimate as r grows, per substrate.

#include <cmath>
#include <deque>
#include <vector>

#include "apps/estimator_registry.h"
#include "bench/bench_util.h"
#include "stats/exact.h"
#include "stream/driver.h"
#include "stream/value_gen.h"

namespace swsample::bench {
namespace {

const std::vector<uint64_t>& UnitCounts() {
  static const std::vector<uint64_t> full = {64, 256, 1024, 4096};
  static const std::vector<uint64_t> smoke = {64};
  return SmokeMode() ? smoke : full;
}

void RunCase(double alpha, uint64_t domain) {
  const uint64_t n = Scaled(1 << 14);
  const uint64_t len = 3 * n;
  auto gen = ZipfValues::Create(domain, alpha).ValueOrDie();
  Rng rng(Rng::ForkSeed(static_cast<uint64_t>(alpha * 37), domain));
  std::vector<Item> items(len);
  for (uint64_t i = 0; i < len; ++i) {
    items[i] = Item{gen->Next(rng), i, static_cast<Timestamp>(i)};
  }

  std::deque<uint64_t> window_q;
  for (const Item& item : items) {
    window_q.push_back(item.value);
    if (window_q.size() > n) window_q.pop_front();
  }
  std::vector<uint64_t> window(window_q.begin(), window_q.end());
  // Reusable flat histogram: one table's memory serves every case.
  static ValueHistogram hist;
  ExactHistogramInto(window, &hist);
  const double exact = ExactEntropy(hist);

  StreamDriver driver;
  for (const char* substrate : {"bop-seq-single", "exact-seq"}) {
    for (uint64_t r : UnitCounts()) {
      EstimatorConfig config;
      config.substrate = substrate;
      config.window_n = n;
      config.r = r;
      config.seed = Rng::ForkSeed(1700, r + domain);
      auto est = CreateEstimator("ccm-entropy", config).ValueOrDie();
      DriveReport drive = driver.Drive(std::span<const Item>(items), *est);
      const double estimate = est->Estimate().value;
      Row({F(alpha, 1), U(domain), substrate, U(r), F(exact, 4),
           F(estimate, 4), F(std::fabs(estimate - exact), 4),
           F(drive.items_per_sec / 1e6, 2)});
    }
  }
}

void Run() {
  Banner("E9: windowed empirical entropy (bits), estimator x substrate "
         "sweep through the registry",
         "unbiased; absolute error shrinks ~1/sqrt(r) per substrate block");
  Row({"alpha", "domain", "substrate", "r", "exact-H", "estimate",
       "abs-err", "Mitems/s"});
  RunCase(/*alpha=*/0.0, /*domain=*/1 << 8);   // uniform, H ~ 8 bits
  RunCase(/*alpha=*/1.0, /*domain=*/1 << 8);   // moderately skewed
  RunCase(/*alpha=*/2.0, /*domain=*/1 << 8);   // heavily skewed, low H
  std::printf(
      "\nshape check: abs-err trends down within each (alpha, substrate)\n"
      "block; exact-H decreases as skew alpha increases; the exact-seq\n"
      "oracle rows bound what any substrate can achieve at the same r.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
