// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Experiment E9 (Corollary 5.4): empirical entropy over sliding windows via
// the CCM basic estimator on our samplers. Streams of varying skew; the
// table reports exact windowed entropy vs estimate as r grows.

#include <cmath>
#include <deque>
#include <vector>

#include "apps/entropy.h"
#include "bench/bench_util.h"
#include "stats/exact.h"
#include "stream/value_gen.h"

namespace swsample::bench {
namespace {

void RunCase(double alpha, uint64_t domain) {
  const uint64_t n = 1 << 14;
  const uint64_t len = 3 * n;
  auto gen = ZipfValues::Create(domain, alpha).ValueOrDie();
  Rng rng(static_cast<uint64_t>(alpha * 37) + domain);
  std::vector<uint64_t> values(len);
  for (auto& v : values) v = gen->Next(rng);

  std::deque<uint64_t> window_q;
  for (uint64_t v : values) {
    window_q.push_back(v);
    if (window_q.size() > n) window_q.pop_front();
  }
  std::vector<uint64_t> window(window_q.begin(), window_q.end());
  const double exact = ExactEntropy(window);

  for (uint64_t r : {64u, 256u, 1024u, 4096u}) {
    auto est = SlidingEntropyEstimator::Create(n, r, 1700 + r).ValueOrDie();
    for (uint64_t i = 0; i < len; ++i) {
      est->Observe(Item{values[i], i, static_cast<Timestamp>(i)});
    }
    const double estimate = est->Estimate();
    Row({F(alpha, 1), U(domain), U(r), F(exact, 4), F(estimate, 4),
         F(std::fabs(estimate - exact), 4)});
  }
}

void Run() {
  Banner("E9: windowed empirical entropy (bits) via CCM basic estimator",
         "unbiased; absolute error shrinks ~1/sqrt(r)");
  Row({"alpha", "domain", "r", "exact-H", "estimate", "abs-err"});
  RunCase(/*alpha=*/0.0, /*domain=*/1 << 8);   // uniform, H ~ 8 bits
  RunCase(/*alpha=*/1.0, /*domain=*/1 << 8);   // moderately skewed
  RunCase(/*alpha=*/2.0, /*domain=*/1 << 8);   // heavily skewed, low H
  std::printf(
      "\nshape check: abs-err trends down within each alpha block; exact-H\n"
      "decreases as skew alpha increases.\n");
}

}  // namespace
}  // namespace swsample::bench

int main() {
  swsample::bench::Run();
  return 0;
}
