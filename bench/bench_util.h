// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Shared helpers for the experiment harness: aligned table printing and
// stream drivers. Each bench binary regenerates one experiment from
// DESIGN.md Section 4 and prints the rows EXPERIMENTS.md records.

#ifndef SWSAMPLE_BENCH_BENCH_UTIL_H_
#define SWSAMPLE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/api.h"
#include "stream/item.h"

namespace swsample::bench {

/// True when SWSAMPLE_BENCH_SMOKE is set non-empty and not "0": benches
/// shrink their workloads to a tiny budget so CI can smoke-run every
/// binary and catch bench bit-rot without paying full experiment time.
inline bool SmokeMode() {
  const char* v = std::getenv("SWSAMPLE_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// Divides a trial/unit/length budget by `divisor` in smoke mode (>= 1).
inline uint64_t Scaled(uint64_t full, uint64_t divisor = 16) {
  if (!SmokeMode()) return full;
  const uint64_t scaled = full / divisor;
  return scaled < 1 ? 1 : scaled;
}

/// Prints a header band for an experiment.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Prints one row of '|'-separated cells (pre-formatted strings).
inline void Row(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) std::printf("%14s", cell.c_str());
  std::printf("\n");
}

inline std::string U(uint64_t v) { return std::to_string(v); }

inline std::string F(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string Sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

/// Drives a sequence-indexed stream (one item per step, timestamp = index)
/// through a sampler, tracking the max memory words.
inline uint64_t MaxMemorySequenceRun(WindowSampler& sampler, uint64_t items,
                                     uint64_t value_domain, uint64_t seed) {
  Rng rng(seed);
  uint64_t max_words = 0;
  for (uint64_t i = 0; i < items; ++i) {
    sampler.Observe(Item{rng.UniformIndex(value_domain), i,
                         static_cast<Timestamp>(i)});
    uint64_t w = sampler.MemoryWords();
    if (w > max_words) max_words = w;
  }
  return max_words;
}

}  // namespace swsample::bench

#endif  // SWSAMPLE_BENCH_BENCH_UTIL_H_
