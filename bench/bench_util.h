// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Shared helpers for the experiment harness: aligned table printing and
// stream drivers. Each bench binary regenerates one experiment from
// DESIGN.md Section 4 and prints the rows EXPERIMENTS.md records.

#ifndef SWSAMPLE_BENCH_BENCH_UTIL_H_
#define SWSAMPLE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/api.h"
#include "stream/item.h"

namespace swsample::bench {

/// True when SWSAMPLE_BENCH_SMOKE is set non-empty and not "0": benches
/// shrink their workloads to a tiny budget so CI can smoke-run every
/// binary and catch bench bit-rot without paying full experiment time.
inline bool SmokeMode() {
  const char* v = std::getenv("SWSAMPLE_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// Divides a trial/unit/length budget by `divisor` in smoke mode (>= 1).
inline uint64_t Scaled(uint64_t full, uint64_t divisor = 16) {
  if (!SmokeMode()) return full;
  const uint64_t scaled = full / divisor;
  return scaled < 1 ? 1 : scaled;
}

/// Prints a header band for an experiment.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Prints one row of '|'-separated cells (pre-formatted strings).
inline void Row(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) std::printf("%14s", cell.c_str());
  std::printf("\n");
}

inline std::string U(uint64_t v) { return std::to_string(v); }

inline std::string F(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string Sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

/// Peak resident set size of this process in bytes (0 where unsupported).
inline uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Machine-readable perf reporter: every bench funnels its headline
/// numbers through Report(), and when SWSAMPLE_BENCH_JSON names a path the
/// accumulated entries are written there as JSON at WriteJsonIfRequested()
/// (call it at the end of main). The committed BENCH.json at the repo
/// root is a snapshot of these entries; CI regenerates one per run and
/// scripts/bench_check.py gates on ratio metrics (keys starting with
/// "speedup"), which are machine-portable, treating the absolute numbers
/// as informational.
class BenchReporter {
 public:
  static BenchReporter& Global() {
    static BenchReporter reporter;
    return reporter;
  }

  /// Records one named row of metric -> value pairs for `bench`.
  void Report(const std::string& bench, const std::string& name,
              std::vector<std::pair<std::string, double>> metrics) {
    entries_.push_back(Entry{bench, name, std::move(metrics)});
  }

  /// Writes collected entries to $SWSAMPLE_BENCH_JSON (appending to the
  /// entries of an existing reporter file is NOT supported: each bench
  /// binary should use its own output path or run alone). Returns true
  /// if a file was written.
  bool WriteJsonIfRequested() const {
    const char* path = std::getenv("SWSAMPLE_BENCH_JSON");
    if (path == nullptr || *path == '\0') return false;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReporter: cannot write %s\n", path);
      return false;
    }
    std::fprintf(f, "{\n  \"schema\": 1,\n  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(PeakRssBytes()));
    std::fprintf(f, "  \"entries\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "    {\"bench\": \"%s\", \"name\": \"%s\"",
                   e.bench.c_str(), e.name.c_str());
      for (const auto& [key, value] : e.metrics) {
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string bench;
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::vector<Entry> entries_;
};

/// Drives a sequence-indexed stream (one item per step, timestamp = index)
/// through a sampler, tracking the max memory words.
inline uint64_t MaxMemorySequenceRun(WindowSampler& sampler, uint64_t items,
                                     uint64_t value_domain, uint64_t seed) {
  Rng rng(seed);
  uint64_t max_words = 0;
  for (uint64_t i = 0; i < items; ++i) {
    sampler.Observe(Item{rng.UniformIndex(value_domain), i,
                         static_cast<Timestamp>(i)});
    uint64_t w = sampler.MemoryWords();
    if (w > max_words) max_words = w;
  }
  return max_words;
}

}  // namespace swsample::bench

#endif  // SWSAMPLE_BENCH_BENCH_UTIL_H_
