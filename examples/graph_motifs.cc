// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Graph motifs: triangle counting over a sliding window of edges.
//
//   build/examples/graph_motifs
//
// An edge stream where a dense community (many triangles) appears, lives
// for a while, and dissolves. The sliding estimator (Corollary 5.3) tracks
// the rise and fall of the windowed triangle count without storing the
// window; an exact counter over a full edge buffer provides ground truth.

#include <cstdio>
#include <deque>
#include <set>
#include <vector>

#include "apps/estimator_registry.h"
#include "apps/triangles.h"
#include "util/rng.h"

using namespace swsample;

namespace {

uint64_t ExactTriangles(const std::deque<uint64_t>& window, uint32_t v) {
  std::vector<uint64_t> adj(v, 0);
  std::set<uint64_t> distinct(window.begin(), window.end());
  for (uint64_t e : distinct) {
    uint32_t a, b;
    DecodeEdge(e, &a, &b);
    adj[a] |= uint64_t{1} << b;
    adj[b] |= uint64_t{1} << a;
  }
  uint64_t triangles = 0;
  for (uint32_t a = 0; a < v; ++a) {
    for (uint32_t b = a + 1; b < v; ++b) {
      if (!(adj[a] >> b & 1)) continue;
      triangles += static_cast<uint64_t>(__builtin_popcountll(
          adj[a] & adj[b] & ~((uint64_t{2} << b) - 1)));
    }
  }
  return triangles;
}

}  // namespace

int main() {
  const uint32_t v = 40;          // vertex universe (community = 0..9)
  const uint64_t n = 4096;        // edge window
  const uint64_t total = 6 * n;
  EstimatorConfig config;
  config.substrate = "bop-seq-single";
  config.window_n = n;
  config.r = 8192;
  config.seed = 5;
  config.num_vertices = v;
  auto est = CreateEstimator("buriol-triangles", config).ValueOrDie();

  Rng rng(21);
  std::deque<uint64_t> window;
  for (uint64_t i = 0; i < total; ++i) {
    const bool community_active = i > total / 3 && i < 2 * total / 3;
    uint64_t edge;
    if (community_active && rng.Bernoulli(0.5)) {
      // Dense community on vertices 0..9: random internal edge.
      uint32_t a = static_cast<uint32_t>(rng.UniformIndex(10));
      uint32_t b;
      do {
        b = static_cast<uint32_t>(rng.UniformIndex(10));
      } while (b == a);
      edge = EncodeEdge(a, b);
    } else {
      // Sparse background on vertices 10..39.
      uint32_t a = 10 + static_cast<uint32_t>(rng.UniformIndex(v - 10));
      uint32_t b;
      do {
        b = 10 + static_cast<uint32_t>(rng.UniformIndex(v - 10));
      } while (b == a);
      edge = EncodeEdge(a, b);
    }
    est->Observe(Item{edge, i, static_cast<Timestamp>(i)});
    window.push_back(edge);
    if (window.size() > n) window.pop_front();

    if ((i + 1) % (n / 2) == 0) {
      std::printf("edge %6lu %s estimate=%8.1f exact(distinct)=%5lu\n",
                  (unsigned long)(i + 1),
                  community_active ? "[community]" : "           ",
                  est->Estimate().value,
                  (unsigned long)ExactTriangles(window, v));
    }
  }
  std::printf(
      "\nthe estimate rises while the community's triangles fill the window\n"
      "and falls back as they slide out. (Repeated window edges inflate\n"
      "the sampling estimate by a constant factor relative to the\n"
      "distinct-edge count; the tracked SHAPE is the point.)\n");
  return 0;
}
