// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Network monitor: timestamp-based windows on bursty traffic.
//
//   build/examples/network_monitor
//
// Packets arrive in Poisson bursts (many per tick during busy periods,
// none at night); the monitor keeps a k-sample WITHOUT replacement of the
// packets seen in the last 60 "seconds" and uses it to estimate the share
// of traffic per source -- the classic asynchronous-arrivals scenario the
// paper's timestamp algorithms (Theorem 4.4) exist for. A full window
// buffer would need ~lambda*60 words at peak; the sampler's footprint is
// O(k log n) and deterministic.

#include <cinttypes>
#include <cstdio>
#include <map>

#include "core/registry.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"

using namespace swsample;

int main() {
  const Timestamp window_seconds = 60;
  const uint64_t k = 64;
  SamplerConfig config;
  config.window_t = window_seconds;
  config.k = k;
  config.seed = 7;
  auto sampler = CreateSampler("bop-ts-swor", config).ValueOrDie();

  // Traffic: 256 sources with Zipf popularity, bursty arrivals whose rate
  // swings over a day-night cycle (lambda 8 by "day", 0.5 by "night").
  auto sources = ZipfValues::Create(256, 1.2).ValueOrDie();
  Rng rng(99);
  uint64_t index = 0;
  uint64_t peak_memory = 0;

  for (Timestamp t = 0; t < 600; ++t) {
    const bool day = (t / 150) % 2 == 0;
    const double lambda = day ? 8.0 : 0.5;
    auto arrivals = PoissonBurstArrivals::Create(lambda).ValueOrDie();
    const uint64_t burst = arrivals->CountAt(t, rng);
    for (uint64_t p = 0; p < burst; ++p) {
      sampler->Observe(Item{sources->Next(rng), index++, t});
    }
    sampler->AdvanceTime(t);
    if (sampler->MemoryWords() > peak_memory) {
      peak_memory = sampler->MemoryWords();
    }

    if ((t + 1) % 120 == 0) {
      auto sample = sampler->Sample();
      std::map<uint64_t, int> by_source;
      for (const Item& item : sample) ++by_source[item.value];
      uint64_t top_source = 0;
      int top_count = 0;
      for (const auto& [source, count] : by_source) {
        if (count > top_count) {
          top_source = source;
          top_count = count;
        }
      }
      std::printf(
          "t=%4" PRId64 " [%s] sample=%2zu/%" PRIu64
          " est. top source=%3" PRIu64 " (%4.1f%% of window traffic) "
          "memory=%" PRIu64 " words\n",
          t, day ? "day  " : "night", sample.size(), k, top_source,
          sample.empty() ? 0.0
                         : 100.0 * top_count / static_cast<double>(sample.size()),
          sampler->MemoryWords());
    }
  }
  std::printf(
      "\npeak sampler memory: %" PRIu64
      " words -- deterministic O(k log n), vs thousands of packets in the "
      "window at peak rate.\n",
      peak_memory);
  return 0;
}
