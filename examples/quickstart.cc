// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Quickstart: the 60-second tour of swsample.
//
//   build/examples/quickstart
//
// Creates the four samplers the paper provides (sequence/timestamp x
// with/without replacement), streams 100k synthetic readings through them,
// and prints a sample of the active window plus each sampler's memory
// footprint -- the whole point being that the footprints are tiny and
// deterministic while the window holds tens of thousands of items.

#include <cstdio>

#include "core/seq_swor.h"
#include "core/seq_swr.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "stream/value_gen.h"
#include "util/rng.h"

using namespace swsample;

int main() {
  const uint64_t n = 32768;      // sequence window: last n readings
  const Timestamp t0 = 4096;     // timestamp window: last t0 ticks
  const uint64_t k = 8;          // samples to maintain

  // Our four samplers (factories validate configuration).
  auto seq_swr = SequenceSwrSampler::Create(n, k, /*seed=*/1).ValueOrDie();
  auto seq_swor = SequenceSworSampler::Create(n, k, /*seed=*/2).ValueOrDie();
  auto ts_swr = TsSwrSampler::Create(t0, k, /*seed=*/3).ValueOrDie();
  auto ts_swor = TsSworSampler::Create(t0, k, /*seed=*/4).ValueOrDie();

  // A synthetic sensor: Zipf-skewed readings, 4 per tick.
  auto values = ZipfValues::Create(1000, 1.1).ValueOrDie();
  Rng rng(42);
  const uint64_t total = 100000;
  for (uint64_t i = 0; i < total; ++i) {
    Item item{values->Next(rng), i, static_cast<Timestamp>(i / 4)};
    seq_swr->Observe(item);
    seq_swor->Observe(item);
    ts_swr->Observe(item);
    ts_swor->Observe(item);
  }

  std::printf("streamed %lu items; window sizes: seq=%lu ts<=%lu ticks\n\n",
              (unsigned long)total, (unsigned long)n, (unsigned long)t0);
  WindowSampler* samplers[] = {seq_swr.get(), seq_swor.get(), ts_swr.get(),
                               ts_swor.get()};
  for (WindowSampler* s : samplers) {
    auto sample = s->Sample();
    std::printf("%-14s k=%lu memory=%4lu words  sample indices:",
                s->name(), (unsigned long)s->k(),
                (unsigned long)s->MemoryWords());
    for (const Item& item : sample) {
      std::printf(" %lu", (unsigned long)item.index);
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote: every sampled index is within the active window, and the\n"
      "memory columns stay this size no matter how large the window is --\n"
      "Theorems 2.1, 2.2, 3.9 and 4.4 of the paper.\n");
  return 0;
}
