// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Quickstart: the 60-second tour of swsample.
//
//   build/examples/quickstart
//
// Creates the four samplers the paper provides (sequence/timestamp x
// with/without replacement), streams 100k synthetic readings through them,
// and prints a sample of the active window plus each sampler's memory
// footprint -- the whole point being that the footprints are tiny and
// deterministic while the window holds tens of thousands of items.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/registry.h"
#include "stream/value_gen.h"
#include "util/rng.h"

using namespace swsample;

int main() {
  const uint64_t n = 32768;      // sequence window: last n readings
  const Timestamp t0 = 4096;     // timestamp window: last t0 ticks
  const uint64_t k = 8;          // samples to maintain

  // The paper's four k-samplers, constructed by name from the registry
  // (the factory validates the configuration).
  SamplerConfig config;
  config.window_n = n;
  config.window_t = t0;
  config.k = k;
  std::vector<std::unique_ptr<WindowSampler>> samplers;
  for (const char* name :
       {"bop-seq-swr", "bop-seq-swor", "bop-ts-swr", "bop-ts-swor"}) {
    ++config.seed;
    samplers.push_back(CreateSampler(name, config).ValueOrDie());
  }

  // A synthetic sensor: Zipf-skewed readings, 4 per tick, ingested in
  // batches (the fast path for the sequence samplers).
  auto values = ZipfValues::Create(1000, 1.1).ValueOrDie();
  Rng rng(42);
  const uint64_t total = 100000;
  std::vector<Item> batch;
  const uint64_t batch_size = 4096;
  batch.reserve(batch_size);
  for (uint64_t i = 0; i < total; ++i) {
    batch.push_back(Item{values->Next(rng), i, static_cast<Timestamp>(i / 4)});
    if (batch.size() == batch_size || i + 1 == total) {
      for (auto& s : samplers) s->ObserveBatch(std::span<const Item>(batch));
      batch.clear();
    }
  }

  std::printf("streamed %lu items; window sizes: seq=%lu ts<=%lu ticks\n\n",
              (unsigned long)total, (unsigned long)n, (unsigned long)t0);
  for (auto& s : samplers) {
    auto sample = s->Sample();
    std::printf("%-14s k=%lu memory=%4lu words  sample indices:",
                s->name(), (unsigned long)s->k(),
                (unsigned long)s->MemoryWords());
    for (const Item& item : sample) {
      std::printf(" %lu", (unsigned long)item.index);
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote: every sampled index is within the active window, and the\n"
      "memory columns stay this size no matter how large the window is --\n"
      "Theorems 2.1, 2.2, 3.9 and 4.4 of the paper.\n");
  return 0;
}
