// Copyright (c) swsample authors. Licensed under the MIT license.
//
// stream_sampler_cli: pump a real stream from stdin (or a file) through
// any registered sampler OR any registered estimator over any compatible
// sampling substrate (Theorem 5.1 at the command line) — optionally one
// independent window PER KEY through the multi-tenant keyed engine.
//
//   build/examples/stream_sampler_cli [options] [<window> <k>]
//
//   --sink=<spec>        the sink to run, in the unified SinkSpec grammar
//                        name[@substrate][,key=value]... — e.g.
//                        "bop-seq-swor,n=1000000,k=64" or
//                        "ams-fk@bop-ts-single,t=60,r=256". When given,
//                        the positionals are optional and override the
//                        spec's window (n or t) and k/r.
//   --algo=<name>        alias: sampler to run (default bop-seq-swor);
//                        builds the same SinkSpec as --sink=<name>,...
//   --estimator=<name>   alias: run an estimator instead of a raw sampler
//   --substrate=<name>   alias: sampling substrate for --estimator
//                        (default: the estimator's registered default)
//   --list-sinks         every registered sink — samplers and estimators —
//                        in one listing
//   --list               every registered sampler with a summary
//   --list-estimators    every registered estimator with its compatible
//                        substrates
//   --keys[=<shift>]     keyed multi-tenant mode: an independent window
//                        per key, key = value >> shift (default 0: the
//                        raw value is the tenant id)
//   --key-budget=<b>     global memory budget for keyed mode; accepts
//                        K/M/G suffixes (e.g. 64M). Requires --spill-dir;
//                        coldest keys spill to disk when the budget binds
//   --key-ttl=<t>        drop keys idle longer than t timestamp units
//   --spill-dir=<d>      directory for keyed-mode eviction spill files
//   --key-strict-budget  enforce the keyed memory budget after every item
//                        instead of after every per-key micro-batch (the
//                        batched default); per-item cost
//   --key-sync-restore   restore spilled keys synchronously instead of
//                        prefetching their file bytes on the background
//                        reader thread (results are identical either way)
//   --file=<path>        read events from a file instead of stdin
//   --workload=<spec>    synthesize the stream instead of reading one: a
//                        seeded workload generator in the grammar of
//                        stream/workload.h — e.g. "constant@zipf,rate=8",
//                        "poisson,lambda=6,skew=12", "churn,t=60".
//                        Incompatible with --file and checkpointing
//   --items=<n>          events to synthesize for --workload (default 1e6)
//   --record-trace=<p>   write the synthesized stream to a compact binary
//                        trace at p (replayable bit-identically later)
//   --replay-trace=<p>   read the stream from a trace file instead of
//                        generating (same restrictions as --workload)
//   --batch=<n>          ingestion batch size (default 1024; 0 = per item)
//   --seed=<n>           RNG seed (default 0x5eed); equal seeds reproduce
//                        runs exactly
//   --threads=<n>        worker threads for sharded ingestion (default 1 =
//                        the single-threaded driver)
//   --shards=<n>         sink replicas for sharded ingestion (default:
//                        one per thread); sequence windows must divide
//                        evenly by the shard count
//   --partition=<mode>   chunks | keyhash (default: keyhash for timestamp
//                        sinks, for estimators whose merge needs
//                        key-disjoint shards, e.g. ams-fk/ccm-entropy,
//                        and ALWAYS for keyed mode; chunks otherwise)
//   --checkpoint-dir=<d> persist periodic checkpoints (sink state + a
//                        manifest, atomic write-rename) into directory d
//   --checkpoint-every=<n>  checkpoint every n ingested events (default
//                        1000000; taken at the next batch boundary)
//   --resume             restore from --checkpoint-dir and continue: the
//                        input must REPLAY the stream from the beginning
//                        (the already-ingested prefix is skipped); the
//                        final report is bit-identical to a run that was
//                        never interrupted
//   --kill-after=<n>     testing hook: SIGKILL this process right after
//                        the first checkpoint at >= n events (the CI
//                        crash/resume smoke test drives this)
//   --moment=<k>         frequency moment for --estimator=ams-fk (default 2)
//   --vertices=<v>       vertex universe for --estimator=buriol-triangles
//   --q=<q>              quantile for --estimator=dkw-quantile (default 0.5)
//   --report=<n>         progress report every n events to stderr (default
//                        10000; 0 = none, stdin mode only)
//   <window>             n (items) for sequence samplers/substrates, t0
//                        (time units) for timestamp ones
//   <k>                  samples to maintain / estimator units r
//
// Input: one event per line. Sequence mode: "<value>"; timestamp mode:
// "<timestamp> <value>" with non-decreasing integer timestamps. Blank
// lines are skipped; malformed lines abort with the offending line number.
// The final sample (or estimate), memory footprint and ingestion
// throughput go to stdout.
//
//   --algo=bop-seq-swor 1000000 64:  a uniform 64-subset of the last
//   million events from ~400 words of state, however long the stream runs.
//
//   --estimator=ams-fk --substrate=bop-ts-single 60 256:  the self-join
//   size F2 of the last 60 seconds, window size unknowable, O(r log n).
//
//   --sink=bop-ts-single,t=60 --keys --key-ttl=3600:  one window of the
//   last 60 seconds PER VALUE, tenants dropped after an idle hour.
//
// Keyed mode is stats-only at the end of the stream (per-key queries are
// a library surface: KeyedWindowEngine::SampleKey/EstimateKey) and is
// incompatible with checkpointing — the engine's own spill files are its
// persistence story.

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/estimator_registry.h"
#include "apps/sink_spec.h"
#include "core/api.h"
#include "core/registry.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "stream/keyed_engine.h"
#include "stream/sharded_driver.h"
#include "stream/workload.h"
#include "util/failpoint.h"

using namespace swsample;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sink=<spec> | --algo=<name> | "
               "--estimator=<name> [--substrate=<name>]] "
               "[--keys[=<shift>] [--key-budget=<b> --spill-dir=<d>] "
               "[--key-ttl=<t>] [--key-strict-budget] [--key-sync-restore] "
               "[--key-degrade=block|shed] [--key-io-retries=<n>]] "
               "[--failpoints=<site>=<class>[,k=v]...[;...]] "
               "[--file=<path> | --workload=<spec> "
               "[--items=<n>] [--record-trace=<p>] | --replay-trace=<p>] "
               "[--batch=<n>] "
               "[--seed=<n>] [--moment=<k>] [--vertices=<v>] [--q=<q>] "
               "[--report=<n>] [--threads=<n>] [--shards=<n>] "
               "[--partition=chunks|keyhash] [--checkpoint-dir=<d> "
               "[--checkpoint-every=<n>] [--resume]] [<window> <k>]\n"
               "       %s --list-sinks | --list | --list-estimators\n"
               "  sequence mode reads lines \"<value>\"; timestamp mode\n"
               "  reads \"<timestamp> <value>\"\n"
               "  sinks: %s\n",
               argv0, argv0, RegisteredSinkNames().c_str());
}

void ListSamplers() {
  std::printf("registered samplers:\n");
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    std::printf("  %-20s %-9s %s\n", spec.name,
                spec.model == WindowModel::kSequence ? "sequence"
                                                     : "timestamp",
                spec.summary);
  }
}

void ListEstimators() {
  std::printf("registered estimators:\n");
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    std::printf("  %-17s %-10s %s\n", spec.name, spec.metric, spec.summary);
    std::printf("  %-17s   default substrate %s; compatible:", "",
                spec.default_substrate);
    for (const char* substrate : spec.substrates) {
      std::printf(" %s", substrate);
    }
    std::printf("\n");
  }
}

void ReportSample(WindowSampler& sampler, uint64_t events, FILE* out) {
  auto sample = sampler.Sample();
  std::fprintf(out, "events=%" PRIu64 " memory=%" PRIu64 " words sample=[",
               events, sampler.MemoryWords());
  for (size_t i = 0; i < sample.size(); ++i) {
    std::fprintf(out, "%s%" PRIu64, i ? " " : "", sample[i].value);
  }
  std::fprintf(out, "]\n");
}

void ReportEstimate(WindowEstimator& estimator, uint64_t events, FILE* out) {
  EstimateReport report = estimator.Estimate();
  std::fprintf(out,
               "events=%" PRIu64 " memory=%" PRIu64
               " words %s=%.6g window=%.6g support=%" PRIu64 "\n",
               events, estimator.MemoryWords(), report.metric.c_str(),
               report.value, report.window_size, report.support);
}

/// Checkpoint/resume flags shared by the single and sharded paths.
struct CheckpointRun {
  std::string dir;            // --checkpoint-dir; empty = disabled
  uint64_t every = 1000000;   // --checkpoint-every
  bool resume = false;        // --resume
  uint64_t kill_after = 0;    // --kill-after testing hook
};

/// Installs the --kill-after crash-injection hook on a writer.
void InstallKillHook(CheckpointWriter& writer, uint64_t kill_after) {
  if (kill_after == 0) return;
  writer.set_after_write([kill_after](uint64_t items) {
    if (items >= kill_after) {
      std::fprintf(stderr,
                   "--kill-after: SIGKILL after checkpoint at %" PRIu64
                   " events\n",
                   items);
      std::raise(SIGKILL);
    }
  });
}

/// Everything the sharded execution path needs from main's flag parse.
struct ShardedRun {
  SinkSpec spec;
  SinkKind kind = SinkKind::kSampler;
  std::string file;
  // --workload/--replay-trace: a pre-materialized stream to drive instead
  // of parsing stdin/--file (checkpointing is refused in main for these).
  const std::vector<Item>* items = nullptr;
  uint64_t threads = 1;
  uint64_t shards = 1;
  std::string partition;  // "", "chunks", or "keyhash"
  uint64_t batch = 1024;
  uint64_t seed = 0;
  CheckpointRun checkpoint;
};

/// Drives the stream through N replicas on worker threads and prints the
/// merged sample/estimate plus per-shard throughput. Returns the process
/// exit code.
int RunSharded(const ShardedRun& run, bool timestamped) {
  // Fresh shards are Sinks from the unified factory; resumed shards come
  // back from the checkpoint as owning typed vectors. Either way the
  // driver sees StreamSink* views and the merge sees typed views.
  std::vector<Sink> fresh;
  std::vector<std::unique_ptr<WindowSampler>> resumed_samplers;
  std::vector<std::unique_ptr<WindowEstimator>> resumed_estimators;
  std::vector<StreamSink*> sinks;
  std::vector<WindowSampler*> sampler_views;
  std::vector<WindowEstimator*> estimator_views;
  ResumedCheckpoint resumed;  // --resume: restored state + skip position
  const bool want_estimators = run.kind == SinkKind::kEstimator;
  if (run.checkpoint.resume) {
    auto loaded = ShardedStreamDriver::ResumeFrom(run.checkpoint.dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    resumed = std::move(loaded).ValueOrDie();
    if (want_estimators != !resumed.estimators.empty() ||
        resumed.sinks.size() != run.shards) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds %zu %s shard(s), but "
                   "the flags request %" PRIu64 " %s shard(s)\n",
                   run.checkpoint.dir.c_str(), resumed.sinks.size(),
                   resumed.estimators.empty() ? "sampler" : "estimator",
                   run.shards,
                   want_estimators ? "estimator" : "sampler");
      return 2;
    }
    if (resumed.name != run.spec.name) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds \"%s\", but the flags "
                   "request \"%s\"\n",
                   run.checkpoint.dir.c_str(), resumed.name.c_str(),
                   run.spec.name.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "resume: restored %s (%" PRIu64
                 " shard(s)) at %" PRIu64 " events; the checkpoint's "
                 "configuration is authoritative\n",
                 resumed.name.c_str(), run.shards, resumed.position.items);
    resumed_samplers = std::move(resumed.samplers);
    resumed_estimators = std::move(resumed.estimators);
    sinks = want_estimators
                ? SinkPointers(resumed_estimators)
                : SinkPointers(resumed_samplers);
    sampler_views = SamplerPointers(resumed_samplers);
    estimator_views = EstimatorPointers(resumed_estimators);
  } else {
    auto created = CreateShardedSinks(run.spec, run.shards);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    fresh = std::move(created).ValueOrDie();
    sinks = SinkPointers(fresh);
    if (want_estimators) {
      estimator_views = EstimatorPointers(fresh).ValueOrDie();
    } else {
      sampler_views = SamplerPointers(fresh).ValueOrDie();
    }
  }
  // Sharded output only exists through the merge surface, so refuse
  // non-mergeable sinks up front instead of after ingesting the stream.
  bool needs_key_disjoint = false;
  if (want_estimators) {
    if (estimator_views[0]->merge_kind() == EstimateMergeKind::kNone) {
      std::fprintf(stderr,
                   "%s is not merge-capable; run it single-threaded "
                   "(--threads=1)\n",
                   run.spec.name.c_str());
      return 2;
    }
    needs_key_disjoint =
        MergeNeedsKeyDisjointShards(estimator_views[0]->merge_kind());
  } else if (!sampler_views[0]->mergeable()) {
    std::fprintf(stderr,
                 "%s is not merge-capable; run it single-threaded "
                 "(--threads=1)\n",
                 run.spec.name.c_str());
    return 2;
  }

  ShardedStreamDriver::Options options;
  options.threads = run.threads;
  // --batch=0 selects the per-item slow path in the single-threaded
  // driver; chunks are the sharded transfer unit, so keep them batched.
  options.chunk_items = run.batch == 0 ? 1024 : run.batch;
  // Default partitioning: key-hash whenever the merge algebra needs
  // key-disjoint shards (F_k, entropy) or the window model is
  // timestamp-based; round-robin chunks otherwise. An explicit
  // --partition wins (and owns the statistical consequences).
  options.partition =
      run.partition.empty()
          ? (timestamped || needs_key_disjoint ? ShardPartition::kKeyHash
                                               : ShardPartition::kChunks)
          : (run.partition == "keyhash" ? ShardPartition::kKeyHash
                                        : ShardPartition::kChunks);
  if (options.partition == ShardPartition::kKeyHash && !timestamped) {
    std::fprintf(stderr,
                 "note: key-hash sharding of a sequence window assumes "
                 "near-uniform key load; for skewed keys prefer a "
                 "timestamp substrate (e.g. --substrate=bop-ts-single)\n");
  }
  ShardedStreamDriver driver(options);

  Result<ShardedDriveReport> result = Status::InvalidArgument("unset");
  if (!run.checkpoint.dir.empty()) {
    CheckpointPolicy policy;
    policy.dir = run.checkpoint.dir;
    policy.every_items = run.checkpoint.every;
    // On resume the checkpoint's own (name, config) pairs keep stamping
    // the envelopes, so flag drift cannot corrupt later checkpoints; the
    // resumed position also re-seeds the every-N cadence.
    std::vector<SinkSerializer> serializers;
    if (run.checkpoint.resume) {
      serializers = SerializersFor(resumed);
    } else {
      auto made = MakeSinkSerializers(run.spec, run.shards);
      if (!made.ok()) {
        std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
        return 1;
      }
      serializers = std::move(made).ValueOrDie();
    }
    CheckpointWriter writer(policy, std::move(serializers),
                            resumed.position.items);
    InstallKillHook(writer, run.checkpoint.kill_after);
    const CheckpointManifest* resume_pos =
        run.checkpoint.resume ? &resumed.position : nullptr;
    result = run.file.empty()
                 ? driver.DriveLinesCheckpointed(stdin, "stdin", timestamped,
                                                sinks, &writer, resume_pos)
                 : driver.DriveFileCheckpointed(run.file, timestamped, sinks,
                                                &writer, resume_pos);
  } else if (run.items != nullptr) {
    result = driver.Drive(*run.items, sinks);
  } else {
    result = run.file.empty()
                 ? driver.DriveLines(stdin, "stdin", timestamped, sinks)
                 : driver.DriveFile(run.file, timestamped, sinks);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const ShardedDriveReport& report = result.value();
  // Stream totals include the prefix a resumed run skipped — minus the
  // checkpoint's pending router items, which that prefix already counts
  // but which are delivered (and counted) by this run.
  uint64_t resumed_pending = 0;
  for (const auto& buffer : resumed.position.pending) {
    resumed_pending += buffer.size();
  }
  const uint64_t total_events =
      report.total.items + resumed.position.items - resumed_pending;
  std::fprintf(stderr,
               "sink=%s shards=%" PRIu64 " threads=%" PRIu64
               " partition=%s items=%" PRIu64
               " aggregate=%.2fM items/s\n",
               sinks[0]->name(), run.shards, run.threads,
               options.partition == ShardPartition::kKeyHash ? "keyhash"
                                                             : "chunks",
               total_events, report.total.items_per_sec / 1e6);
  if (report.total.io_retries > 0 || report.total.io_giveups > 0) {
    std::fprintf(stderr, "checkpoint: io_retries=%" PRIu64
                 " io_giveups=%" PRIu64 "\n",
                 report.total.io_retries, report.total.io_giveups);
  }
  for (size_t s = 0; s < report.shards.size(); ++s) {
    const ShardReport& shard = report.shards[s];
    std::fprintf(stderr,
                 "  shard %zu: items=%" PRIu64 " memory=%" PRIu64
                 " words busy=%.2fM items/s\n",
                 s, shard.items, shard.memory_words,
                 shard.items_per_sec / 1e6);
  }
  if (want_estimators) {
    auto merged = MergedEstimate(estimator_views);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    const EstimateReport& estimate = merged.value();
    std::printf("events=%" PRIu64 " memory=%" PRIu64
                " words %s=%.6g window=%.6g support=%" PRIu64 "\n",
                total_events, report.total.memory_words,
                estimate.metric.c_str(), estimate.value,
                estimate.window_size, estimate.support);
    return 0;
  }
  auto merged = MergedSnapshot(sampler_views, run.seed ^ 0x5eedful);
  if (!merged.ok()) {
    std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
    return 1;
  }
  std::printf("events=%" PRIu64 " memory=%" PRIu64 " words sample=[",
              total_events, report.total.memory_words);
  for (size_t i = 0; i < merged.value().sample.size(); ++i) {
    std::printf("%s%" PRIu64, i ? " " : "", merged.value().sample[i].value);
  }
  std::printf("]\n");
  return 0;
}

/// Keyed multi-tenant flags (--keys and friends).
struct KeyedRun {
  bool enabled = false;
  uint64_t key_shift = 0;       // --keys=<shift>
  uint64_t budget_bytes = 0;    // --key-budget
  Timestamp idle_ttl = 0;       // --key-ttl
  std::string spill_dir;        // --spill-dir
  bool strict_budget = false;   // --key-strict-budget
  bool sync_restore = false;    // --key-sync-restore
  // --key-degrade: what a spill-outage does to the engine (block = latch,
  // shed = drop coldest keys and keep serving).
  KeyedDegradeMode degrade = KeyedDegradeMode::kBlock;
  uint64_t io_retries = 0;      // --key-io-retries; 0 = policy default
};

/// Drives the stream through one keyed engine per shard (key-hash
/// partitioned) — or a single engine for --threads=1 — and prints the
/// aggregated multi-tenant stats. Returns the process exit code.
int RunKeyed(const SinkSpec& spec, const KeyedRun& keyed,
             const ShardedRun& run, bool timestamped, uint64_t report_every) {
  KeyedEngineOptions options;
  options.spec = spec;
  options.key_shift = keyed.key_shift;
  options.memory_budget_bytes = keyed.budget_bytes;
  options.idle_ttl = keyed.idle_ttl;
  options.spill_dir = keyed.spill_dir;
  options.strict_budget = keyed.strict_budget;
  options.async_restore = !keyed.sync_restore;
  options.degrade = keyed.degrade;
  if (keyed.io_retries > 0) {
    options.io_retry.max_attempts = static_cast<uint32_t>(keyed.io_retries);
  }

  const bool sharded = run.threads > 1 || run.shards > 1;
  std::vector<std::unique_ptr<KeyedWindowEngine>> engines;
  uint64_t total_events = 0;
  if (sharded) {
    auto created = CreateKeyedEngines(options, run.shards);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    engines = std::move(created).ValueOrDie();
    ShardedStreamDriver::Options driver_options;
    driver_options.threads = run.threads;
    driver_options.chunk_items = run.batch == 0 ? 1024 : run.batch;
    // Keys must be whole: every arrival of a key has to reach the engine
    // that owns it, so keyed sharding is always key-hash partitioned, and
    // the router hashes the SHIFTED tenant id so --keys=<shift> keeps
    // each folded key on one engine.
    driver_options.partition = ShardPartition::kKeyHash;
    driver_options.key_shift = keyed.key_shift;
    ShardedStreamDriver driver(driver_options);
    std::vector<StreamSink*> sinks = SinkPointers(engines);
    auto result =
        run.items != nullptr
            ? driver.Drive(*run.items, sinks)
            : run.file.empty()
                  ? driver.DriveLines(stdin, "stdin", timestamped, sinks)
                  : driver.DriveFile(run.file, timestamped, sinks);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    total_events = result.value().total.items;
    std::fprintf(stderr,
                 "sink=keyed-engine(%s) shards=%" PRIu64 " threads=%" PRIu64
                 " partition=keyhash items=%" PRIu64
                 " aggregate=%.2fM items/s\n",
                 FormatSinkSpec(spec).c_str(), run.shards, run.threads,
                 total_events, result.value().total.items_per_sec / 1e6);
  } else {
    auto created = KeyedWindowEngine::Create(options);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    engines.push_back(std::move(created).ValueOrDie());
    StreamDriver::Options driver_options;
    driver_options.batch_size = run.batch;
    StreamDriver driver(driver_options);
    KeyedWindowEngine& engine = *engines[0];
    auto progress = [&engine](uint64_t items) {
      const KeyedEngineStats& stats = engine.stats();
      std::fprintf(stderr,
                   "events=%" PRIu64 " live_keys=%" PRIu64
                   " spilled=%" PRIu64 " charged=%" PRIu64 " bytes\n",
                   items, stats.live_keys, stats.spilled_keys,
                   stats.charged_bytes);
    };
    Result<DriveReport> result =
        run.items != nullptr
            ? Result<DriveReport>(driver.Drive(*run.items, engine))
            : run.file.empty()
                  ? driver.DriveLines(stdin, "stdin", timestamped, engine,
                                      progress, report_every)
                  : driver.DriveFile(run.file, timestamped, engine);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    total_events = result.value().items;
    std::fprintf(stderr,
                 "sink=keyed-engine(%s) items=%" PRIu64
                 " throughput=%.2fM items/s\n",
                 FormatSinkSpec(spec).c_str(), total_events,
                 result.value().items_per_sec / 1e6);
  }

  // A spill/restore I/O failure in block mode latches into the engine
  // status instead of aborting ingestion; surface it as a run failure
  // here. Shed mode never latches — its outage shows up as a degraded
  // health state plus drop accounting, reported (and turned into a
  // non-zero exit) below.
  KeyedEngineStats total;
  KeyedEngineHealth worst = KeyedEngineHealth::kHealthy;
  bool latched = false;
  for (const auto& engine : engines) {
    if (!engine->status().ok()) {
      std::fprintf(stderr, "%s\n", engine->status().ToString().c_str());
      latched = true;
    }
    const KeyedEngineStats& stats = engine->stats();
    total.live_keys += stats.live_keys;
    total.spilled_keys += stats.spilled_keys;
    total.evictions += stats.evictions;
    total.restores += stats.restores;
    total.expirations += stats.expirations;
    total.promotions += stats.promotions;
    total.charged_bytes += stats.charged_bytes;
    total.retained_bytes += stats.retained_bytes;
    total.io_retries += stats.io_retries;
    total.io_giveups += stats.io_giveups;
    total.degraded_drops += stats.degraded_drops;
    total.shed_bytes += stats.shed_bytes;
    total.quarantined_files += stats.quarantined_files;
    total.restore_misses += stats.restore_misses;
    // Degraded dominates recovering dominates healthy: any shard still in
    // an outage makes the whole run degraded.
    if (stats.health == KeyedEngineHealth::kDegraded ||
        (stats.health == KeyedEngineHealth::kRecovering &&
         worst == KeyedEngineHealth::kHealthy)) {
      worst = stats.health;
    }
  }
  total.health = worst;
  std::printf("events=%" PRIu64 " live_keys=%" PRIu64 " spilled_keys=%" PRIu64
              " evictions=%" PRIu64 " restores=%" PRIu64
              " expirations=%" PRIu64 " charged=%" PRIu64
              " bytes retained=%" PRIu64 " bytes\n",
              total_events, total.live_keys, total.spilled_keys,
              total.evictions, total.restores, total.expirations,
              total.charged_bytes, total.retained_bytes);
  std::printf("io_retries=%" PRIu64 " io_giveups=%" PRIu64
              " degraded_drops=%" PRIu64 " shed_bytes=%" PRIu64
              " quarantined_files=%" PRIu64 " restore_misses=%" PRIu64
              " health=%s\n",
              total.io_retries, total.io_giveups, total.degraded_drops,
              total.shed_bytes, total.quarantined_files, total.restore_misses,
              KeyedHealthName(worst));
  // Any of these means the printed results are lossy or the engine ended
  // the run inside an outage; succeed only on a clean (possibly retried)
  // run.
  if (latched || worst != KeyedEngineHealth::kHealthy ||
      total.io_giveups > 0 || total.degraded_drops > 0 ||
      total.restore_misses > 0) {
    std::fprintf(stderr,
                 "keyed: unhealthy run: health=%s io_giveups=%" PRIu64
                 " degraded_drops=%" PRIu64 " quarantined_files=%" PRIu64
                 " restore_misses=%" PRIu64 "\n",
                 KeyedHealthName(worst), total.io_giveups,
                 total.degraded_drops, total.quarantined_files,
                 total.restore_misses);
    return 1;
  }
  return 0;
}

/// atexit hook, installed only when failpoints were armed: dumps per-site
/// hit/fire counters so a fault drill shows exactly what was injected.
void PrintFailpointReport() {
  const std::string report = FailpointReport();
  if (!report.empty()) {
    std::fprintf(stderr, "failpoints:\n%s", report.c_str());
  }
}

// Parses a non-negative integer flag value; false on garbage, sign, or
// trailing characters.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

// Parses a byte count with an optional K/M/G (binary) suffix: "64M".
bool ParseBytes(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s) return false;
  uint64_t shift = 0;
  if (*end == 'K' || *end == 'k') shift = 10;
  else if (*end == 'M' || *end == 'm') shift = 20;
  else if (*end == 'G' || *end == 'g') shift = 30;
  if (shift > 0) ++end;
  if (*end != '\0') return false;
  *out = static_cast<uint64_t>(v) << shift;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sink_text;  // --sink: the full SinkSpec grammar
  std::string algo;       // --algo alias (default applied when nothing set)
  std::string estimator_name;
  std::string substrate;
  std::string file;
  std::string workload;      // --workload generator spec
  uint64_t workload_items = 1000000;  // --items
  std::string record_trace;  // --record-trace
  std::string replay_trace;  // --replay-trace
  uint64_t batch = 1024;
  uint64_t seed = 0x5eed;
  uint64_t moment = 2;
  uint64_t vertices = 0;
  double q = 0.5;
  uint64_t report_every = 10000;
  uint64_t threads = 1;
  uint64_t shards = 0;
  std::string partition;
  CheckpointRun checkpoint;
  KeyedRun keyed;
  std::string failpoints;    // --failpoints; also SWSAMPLE_FAILPOINTS env
  bool failpoints_set = false;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t* u64_flag = nullptr;
    const char* u64_value = nullptr;
    if (std::strcmp(arg, "--list") == 0) {
      ListSamplers();
      return 0;
    } else if (std::strcmp(arg, "--list-estimators") == 0) {
      ListEstimators();
      return 0;
    } else if (std::strcmp(arg, "--list-sinks") == 0) {
      std::printf("%s", FormatSinkList().c_str());
      return 0;
    } else if (std::strncmp(arg, "--sink=", 7) == 0) {
      sink_text = arg + 7;
    } else if (std::strncmp(arg, "--algo=", 7) == 0) {
      algo = arg + 7;
    } else if (std::strncmp(arg, "--estimator=", 12) == 0) {
      estimator_name = arg + 12;
    } else if (std::strncmp(arg, "--substrate=", 12) == 0) {
      substrate = arg + 12;
    } else if (std::strcmp(arg, "--keys") == 0) {
      keyed.enabled = true;
    } else if (std::strncmp(arg, "--keys=", 7) == 0) {
      keyed.enabled = true;
      u64_flag = &keyed.key_shift;
      u64_value = arg + 7;
    } else if (std::strncmp(arg, "--key-budget=", 13) == 0) {
      if (!ParseBytes(arg + 13, &keyed.budget_bytes)) {
        std::fprintf(stderr,
                     "error: --key-budget expects bytes with an optional "
                     "K/M/G suffix, got \"%s\"\n",
                     arg + 13);
        return 2;
      }
    } else if (std::strncmp(arg, "--key-ttl=", 10) == 0) {
      uint64_t ttl = 0;
      if (!ParseU64(arg + 10, &ttl)) {
        std::fprintf(stderr,
                     "error: --key-ttl expects a non-negative integer, got "
                     "\"%s\"\n",
                     arg + 10);
        return 2;
      }
      keyed.idle_ttl = static_cast<Timestamp>(ttl);
    } else if (std::strcmp(arg, "--key-strict-budget") == 0) {
      keyed.strict_budget = true;
    } else if (std::strcmp(arg, "--key-sync-restore") == 0) {
      keyed.sync_restore = true;
    } else if (std::strncmp(arg, "--key-degrade=", 14) == 0) {
      const char* mode = arg + 14;
      if (std::strcmp(mode, "block") == 0) {
        keyed.degrade = KeyedDegradeMode::kBlock;
      } else if (std::strcmp(mode, "shed") == 0) {
        keyed.degrade = KeyedDegradeMode::kShed;
      } else {
        std::fprintf(stderr,
                     "error: --key-degrade expects block or shed, got "
                     "\"%s\"\n",
                     mode);
        return 2;
      }
    } else if (std::strncmp(arg, "--key-io-retries=", 17) == 0) {
      u64_flag = &keyed.io_retries;
      u64_value = arg + 17;
    } else if (std::strncmp(arg, "--failpoints=", 13) == 0) {
      failpoints = arg + 13;
      failpoints_set = true;
    } else if (std::strncmp(arg, "--spill-dir=", 12) == 0) {
      keyed.spill_dir = arg + 12;
    } else if (std::strncmp(arg, "--file=", 7) == 0) {
      file = arg + 7;
    } else if (std::strncmp(arg, "--workload=", 11) == 0) {
      workload = arg + 11;
    } else if (std::strncmp(arg, "--items=", 8) == 0) {
      u64_flag = &workload_items;
      u64_value = arg + 8;
    } else if (std::strncmp(arg, "--record-trace=", 15) == 0) {
      record_trace = arg + 15;
    } else if (std::strncmp(arg, "--replay-trace=", 15) == 0) {
      replay_trace = arg + 15;
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      u64_flag = &batch;
      u64_value = arg + 8;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      u64_flag = &seed;
      u64_value = arg + 7;
    } else if (std::strncmp(arg, "--moment=", 9) == 0) {
      u64_flag = &moment;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--vertices=", 11) == 0) {
      u64_flag = &vertices;
      u64_value = arg + 11;
    } else if (std::strncmp(arg, "--q=", 4) == 0) {
      if (!ParseDouble(arg + 4, &q)) {
        std::fprintf(stderr, "error: --q requires a number, got \"%s\"\n",
                     arg + 4);
        return 2;
      }
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      u64_flag = &report_every;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      u64_flag = &threads;
      u64_value = arg + 10;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      u64_flag = &shards;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--partition=", 12) == 0) {
      partition = arg + 12;
      if (partition != "chunks" && partition != "keyhash") {
        std::fprintf(stderr,
                     "error: --partition expects chunks or keyhash, got "
                     "\"%s\"\n",
                     partition.c_str());
        return 2;
      }
    } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
      checkpoint.dir = arg + 17;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      u64_flag = &checkpoint.every;
      u64_value = arg + 19;
    } else if (std::strcmp(arg, "--resume") == 0) {
      checkpoint.resume = true;
    } else if (std::strncmp(arg, "--kill-after=", 13) == 0) {
      u64_flag = &checkpoint.kill_after;
      u64_value = arg + 13;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      Usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
    if (u64_flag != nullptr && !ParseU64(u64_value, u64_flag)) {
      std::fprintf(stderr,
                   "error: %.*s expects a non-negative integer, got \"%s\"\n",
                   static_cast<int>(u64_value - arg - 1), arg, u64_value);
      return 2;
    }
  }
  // Arm fault injection before any sink or driver touches a file. The
  // failpoint seed forks off --seed so drills are reproducible; the env
  // var reaches runs the harness cannot pass flags to.
  {
    const Status armed = failpoints_set
                             ? ArmFailpoints(failpoints, seed)
                             : ArmFailpointsFromEnv(seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: %s\n", armed.ToString().c_str());
      return 2;
    }
    if (AnyFailpointArmed()) std::atexit(PrintFailpointReport);
  }
  if (!sink_text.empty() &&
      (!algo.empty() || !estimator_name.empty() || !substrate.empty())) {
    std::fprintf(stderr,
                 "error: --sink replaces --algo/--estimator/--substrate; "
                 "give one or the other\n");
    return 2;
  }
  if (!algo.empty() && !estimator_name.empty()) {
    std::fprintf(stderr, "error: --algo and --estimator are exclusive\n");
    return 2;
  }
  // --sink carries its own window/k keys, so the positionals become an
  // optional override there; every other mode still requires them.
  const bool have_positionals = positional.size() == 2;
  if (!have_positionals && (sink_text.empty() || !positional.empty())) {
    Usage(argv[0]);
    return 2;
  }
  int64_t window = 0;
  int64_t k = 0;
  if (have_positionals) {
    window = std::atoll(positional[0]);
    k = std::atoll(positional[1]);
    if (window < 1 || k < 1) {
      Usage(argv[0]);
      return 2;
    }
  }
  if ((checkpoint.resume || checkpoint.kill_after > 0) &&
      checkpoint.dir.empty()) {
    std::fprintf(stderr,
                 "error: --resume/--kill-after require --checkpoint-dir\n");
    return 2;
  }

  // --workload / --replay-trace synthesize the stream up front; the
  // checkpoint cadence is defined over a PARSED input stream, so the two
  // modes don't compose (record a trace and replay the file instead).
  const bool synthesized = !workload.empty() || !replay_trace.empty();
  if (synthesized) {
    if (!workload.empty() && !replay_trace.empty()) {
      std::fprintf(stderr,
                   "error: --workload and --replay-trace are exclusive\n");
      return 2;
    }
    if (!file.empty()) {
      std::fprintf(stderr,
                   "error: --workload/--replay-trace replace --file\n");
      return 2;
    }
    if (!checkpoint.dir.empty() || checkpoint.resume) {
      std::fprintf(stderr,
                   "error: --workload/--replay-trace are incompatible with "
                   "checkpointing\n");
      return 2;
    }
  }
  if (!record_trace.empty() && workload.empty()) {
    std::fprintf(stderr, "error: --record-trace requires --workload\n");
    return 2;
  }
  std::vector<Item> stream_items;
  if (!replay_trace.empty()) {
    auto read = ReadTrace(replay_trace);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.status().ToString().c_str());
      return 1;
    }
    stream_items = std::move(read).ValueOrDie();
    std::fprintf(stderr, "replay: %zu events from %s\n", stream_items.size(),
                 replay_trace.c_str());
  } else if (!workload.empty()) {
    auto gen = WorkloadGenerator::Create(workload, seed);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
      return 2;
    }
    stream_items = std::move(gen).ValueOrDie()->Take(workload_items);
    if (!record_trace.empty()) {
      if (Status status = WriteTrace(record_trace, stream_items);
          !status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "trace: %zu events recorded to %s\n",
                   stream_items.size(), record_trace.c_str());
    }
  }
  const std::vector<Item>* driven_items =
      synthesized ? &stream_items : nullptr;

  // Resolve the flags into ONE SinkSpec — the --sink grammar directly, or
  // the --algo/--estimator aliases lifted through the same structure.
  SinkSpec spec;
  if (!sink_text.empty()) {
    auto parsed = ParseSinkSpec(sink_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    spec = std::move(parsed).ValueOrDie();
  } else {
    spec.name = !estimator_name.empty() ? estimator_name
                : !algo.empty()         ? algo
                                        : "bop-seq-swor";
    spec.substrate = substrate;
    spec.seed = seed;
    spec.moment = static_cast<uint32_t>(moment);
    spec.num_vertices = static_cast<uint32_t>(vertices);
    spec.q = q;
  }
  if (have_positionals) {
    spec.window_n = static_cast<uint64_t>(window);
    spec.window_t = window;
    spec.k = static_cast<uint64_t>(k);
    spec.r = static_cast<uint64_t>(k);
  }
  auto kind = SinkKindOf(spec.name);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }
  auto model = SinkWindowModel(spec);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 2;
  }
  const bool timestamped = model.value() == WindowModel::kTimestamp;

  if (keyed.enabled) {
    // The keyed engine's persistence story is its own spill directory;
    // the flat single-sink checkpoint envelope does not describe it.
    if (!checkpoint.dir.empty() || checkpoint.resume) {
      std::fprintf(stderr,
                   "error: --keys is incompatible with --checkpoint-dir/"
                   "--resume (use --key-budget + --spill-dir)\n");
      return 2;
    }
    if (partition == "chunks") {
      std::fprintf(stderr,
                   "error: keyed sharding must keep each key on one "
                   "engine; --partition=chunks is incompatible with "
                   "--keys\n");
      return 2;
    }
    ShardedRun run;
    run.spec = spec;
    run.kind = kind.value();
    run.file = file;
    run.items = driven_items;
    run.threads = threads;
    run.shards = shards == 0 ? threads : shards;
    run.batch = batch;
    run.seed = seed;
    return RunKeyed(spec, keyed, run, timestamped, report_every);
  }
  if (!keyed.spill_dir.empty() || keyed.budget_bytes > 0 ||
      keyed.idle_ttl > 0 || keyed.degrade != KeyedDegradeMode::kBlock ||
      keyed.io_retries > 0) {
    std::fprintf(stderr,
                 "error: --key-budget/--key-ttl/--spill-dir/--key-degrade/"
                 "--key-io-retries require --keys\n");
    return 2;
  }

  if (threads > 1 || shards > 1) {
    ShardedRun run;
    run.spec = spec;
    run.kind = kind.value();
    run.file = file;
    run.items = driven_items;
    run.threads = threads;
    run.shards = shards == 0 ? threads : shards;
    run.partition = partition;
    run.batch = batch;
    run.seed = seed;
    run.checkpoint = checkpoint;
    return RunSharded(run, timestamped);
  }

  StreamDriver::Options options;
  options.batch_size = batch;
  StreamDriver driver(options);

  // Resolve the sink through the unified factory, then let the batched
  // driver own parsing and ingestion for both kinds; stdin mode adds
  // periodic progress reports.
  Sink created_sink;
  WindowSampler* sampler = nullptr;
  WindowEstimator* estimator = nullptr;
  StreamSink* sink = nullptr;
  std::unique_ptr<WindowSampler> resumed_sampler;
  std::unique_ptr<WindowEstimator> resumed_estimator;
  if (!checkpoint.resume) {
    auto made = CreateSink(spec);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    created_sink = std::move(made).ValueOrDie();
    sampler = created_sink.sampler;
    estimator = created_sink.estimator;
    sink = created_sink.sink.get();
  }
  ResumedCheckpoint resumed;  // --resume: restored state + skip position
  if (checkpoint.resume) {
    auto loaded = StreamDriver::ResumeFrom(checkpoint.dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    resumed = std::move(loaded).ValueOrDie();
    const bool want_estimator = kind.value() == SinkKind::kEstimator;
    if (want_estimator != !resumed.estimators.empty() ||
        resumed.sinks.size() != 1) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds %zu %s shard(s), but "
                   "the flags request one %s\n",
                   checkpoint.dir.c_str(), resumed.sinks.size(),
                   resumed.estimators.empty() ? "sampler" : "estimator",
                   want_estimator ? "estimator" : "sampler");
      return 2;
    }
    if (resumed.name != spec.name) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds \"%s\", but the flags "
                   "request \"%s\"\n",
                   checkpoint.dir.c_str(), resumed.name.c_str(),
                   spec.name.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "resume: restored %s at %" PRIu64 " events; the "
                 "checkpoint's configuration is authoritative\n",
                 resumed.name.c_str(), resumed.position.items);
    if (want_estimator) {
      resumed_estimator = std::move(resumed.estimators[0]);
      estimator = resumed_estimator.get();
      sink = estimator;
    } else {
      resumed_sampler = std::move(resumed.samplers[0]);
      sampler = resumed_sampler.get();
      sink = sampler;
    }
  }

  Result<DriveReport> result = Status::InvalidArgument("unset");
  if (!checkpoint.dir.empty()) {
    CheckpointPolicy policy;
    policy.dir = checkpoint.dir;
    policy.every_items = checkpoint.every;
    // See RunSharded: resumed runs reuse the checkpoint's own envelope
    // configs and re-seed the every-N cadence from the resumed position.
    std::vector<SinkSerializer> serializers;
    if (checkpoint.resume) {
      serializers = SerializersFor(resumed);
    } else {
      auto made = MakeSinkSerializers(spec, 1);
      if (!made.ok()) {
        std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
        return 1;
      }
      serializers = std::move(made).ValueOrDie();
    }
    CheckpointWriter writer(policy, std::move(serializers),
                            resumed.position.items);
    InstallKillHook(writer, checkpoint.kill_after);
    const CheckpointManifest* resume_pos =
        checkpoint.resume ? &resumed.position : nullptr;
    // Progress reporting is disabled here: its mid-interval flushes would
    // shift batch boundaries away from the checkpoint-aligned grid.
    if (file.empty()) {
      result = driver.DriveLinesCheckpointed(stdin, "stdin", timestamped,
                                             *sink, &writer, resume_pos);
    } else {
      result = driver.DriveFileCheckpointed(file, timestamped, *sink, &writer,
                                            resume_pos);
    }
  } else if (driven_items != nullptr) {
    result = driver.Drive(*driven_items, *sink);
  } else {
    auto progress = [&](uint64_t items) {
      if (estimator != nullptr) {
        ReportEstimate(*estimator, items, stderr);
      } else {
        ReportSample(*sampler, items, stderr);
      }
    };
    result = file.empty()
                 ? driver.DriveLines(stdin, "stdin", timestamped, *sink,
                                     progress, report_every)
                 : driver.DriveFile(file, timestamped, *sink);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const DriveReport& r = result.value();
  // Stream totals include the prefix a resumed run skipped.
  const uint64_t total_events = r.items + resumed.position.items;
  std::fprintf(stderr,
               "sink=%s items=%" PRIu64 " batches=%" PRIu64
               " throughput=%.2fM items/s\n",
               sink->name(), total_events, r.batches, r.items_per_sec / 1e6);
  if (r.io_retries > 0 || r.io_giveups > 0) {
    std::fprintf(stderr, "checkpoint: io_retries=%" PRIu64
                 " io_giveups=%" PRIu64 "\n",
                 r.io_retries, r.io_giveups);
  }
  if (estimator != nullptr) {
    ReportEstimate(*estimator, total_events, stdout);
  } else {
    ReportSample(*sampler, total_events, stdout);
  }
  return 0;
}
