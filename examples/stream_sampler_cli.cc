// Copyright (c) swsample authors. Licensed under the MIT license.
//
// stream_sampler_cli: pump a real stream from stdin (or a file) through
// any registered sampler OR any registered estimator over any compatible
// sampling substrate (Theorem 5.1 at the command line).
//
//   build/examples/stream_sampler_cli [options] <window> <k>
//
//   --algo=<name>        sampler to run (default bop-seq-swor)
//   --estimator=<name>   run an estimator instead of a raw sampler
//   --substrate=<name>   sampling substrate for --estimator (default:
//                        the estimator's registered default)
//   --list               every registered sampler with a summary
//   --list-estimators    every registered estimator with its compatible
//                        substrates
//   --file=<path>        read events from a file instead of stdin
//   --batch=<n>          ingestion batch size (default 1024; 0 = per item)
//   --seed=<n>           RNG seed (default 0x5eed); equal seeds reproduce
//                        runs exactly
//   --moment=<k>         frequency moment for --estimator=ams-fk (default 2)
//   --vertices=<v>       vertex universe for --estimator=buriol-triangles
//   --q=<q>              quantile for --estimator=dkw-quantile (default 0.5)
//   --report=<n>         progress report every n events to stderr (default
//                        10000; 0 = none, stdin mode only)
//   <window>             n (items) for sequence samplers/substrates, t0
//                        (time units) for timestamp ones
//   <k>                  samples to maintain / estimator units r
//
// Input: one event per line. Sequence mode: "<value>"; timestamp mode:
// "<timestamp> <value>" with non-decreasing integer timestamps. Blank
// lines are skipped; malformed lines abort with the offending line number.
// The final sample (or estimate), memory footprint and ingestion
// throughput go to stdout.
//
//   --algo=bop-seq-swor 1000000 64:  a uniform 64-subset of the last
//   million events from ~400 words of state, however long the stream runs.
//
//   --estimator=ams-fk --substrate=bop-ts-single 60 256:  the self-join
//   size F2 of the last 60 seconds, window size unknowable, O(r log n).

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/estimator_registry.h"
#include "core/api.h"
#include "core/registry.h"
#include "stream/driver.h"

using namespace swsample;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo=<name> | --estimator=<name> "
               "[--substrate=<name>]] [--file=<path>] [--batch=<n>] "
               "[--seed=<n>] [--moment=<k>] [--vertices=<v>] [--q=<q>] "
               "[--report=<n>] <window> <k>\n"
               "       %s --list | --list-estimators\n"
               "  sequence mode reads lines \"<value>\"; timestamp mode\n"
               "  reads \"<timestamp> <value>\"\n"
               "  samplers:   %s\n"
               "  estimators: %s\n",
               argv0, argv0, RegisteredSamplerNames().c_str(),
               RegisteredEstimatorNames().c_str());
}

void ListSamplers() {
  std::printf("registered samplers:\n");
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    std::printf("  %-20s %-9s %s\n", spec.name,
                spec.model == WindowModel::kSequence ? "sequence"
                                                     : "timestamp",
                spec.summary);
  }
}

void ListEstimators() {
  std::printf("registered estimators:\n");
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    std::printf("  %-17s %-10s %s\n", spec.name, spec.metric, spec.summary);
    std::printf("  %-17s   default substrate %s; compatible:", "",
                spec.default_substrate);
    for (const char* substrate : spec.substrates) {
      std::printf(" %s", substrate);
    }
    std::printf("\n");
  }
}

void ReportSample(WindowSampler& sampler, uint64_t events, FILE* out) {
  auto sample = sampler.Sample();
  std::fprintf(out, "events=%" PRIu64 " memory=%" PRIu64 " words sample=[",
               events, sampler.MemoryWords());
  for (size_t i = 0; i < sample.size(); ++i) {
    std::fprintf(out, "%s%" PRIu64, i ? " " : "", sample[i].value);
  }
  std::fprintf(out, "]\n");
}

void ReportEstimate(WindowEstimator& estimator, uint64_t events, FILE* out) {
  EstimateReport report = estimator.Estimate();
  std::fprintf(out,
               "events=%" PRIu64 " memory=%" PRIu64
               " words %s=%.6g window=%.6g support=%" PRIu64 "\n",
               events, estimator.MemoryWords(), report.metric.c_str(),
               report.value, report.window_size, report.support);
}

// Parses a non-negative integer flag value; false on garbage, sign, or
// trailing characters.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "bop-seq-swor";
  std::string estimator_name;
  std::string substrate;
  std::string file;
  uint64_t batch = 1024;
  uint64_t seed = 0x5eed;
  uint64_t moment = 2;
  uint64_t vertices = 0;
  double q = 0.5;
  uint64_t report_every = 10000;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t* u64_flag = nullptr;
    const char* u64_value = nullptr;
    if (std::strcmp(arg, "--list") == 0) {
      ListSamplers();
      return 0;
    } else if (std::strcmp(arg, "--list-estimators") == 0) {
      ListEstimators();
      return 0;
    } else if (std::strncmp(arg, "--algo=", 7) == 0) {
      algo = arg + 7;
    } else if (std::strncmp(arg, "--estimator=", 12) == 0) {
      estimator_name = arg + 12;
    } else if (std::strncmp(arg, "--substrate=", 12) == 0) {
      substrate = arg + 12;
    } else if (std::strncmp(arg, "--file=", 7) == 0) {
      file = arg + 7;
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      u64_flag = &batch;
      u64_value = arg + 8;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      u64_flag = &seed;
      u64_value = arg + 7;
    } else if (std::strncmp(arg, "--moment=", 9) == 0) {
      u64_flag = &moment;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--vertices=", 11) == 0) {
      u64_flag = &vertices;
      u64_value = arg + 11;
    } else if (std::strncmp(arg, "--q=", 4) == 0) {
      if (!ParseDouble(arg + 4, &q)) {
        std::fprintf(stderr, "error: --q requires a number, got \"%s\"\n",
                     arg + 4);
        return 2;
      }
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      u64_flag = &report_every;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      Usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
    if (u64_flag != nullptr && !ParseU64(u64_value, u64_flag)) {
      std::fprintf(stderr,
                   "error: %.*s expects a non-negative integer, got \"%s\"\n",
                   static_cast<int>(u64_value - arg - 1), arg, u64_value);
      return 2;
    }
  }
  if (positional.size() != 2) {
    Usage(argv[0]);
    return 2;
  }
  const int64_t window = std::atoll(positional[0]);
  const int64_t k = std::atoll(positional[1]);
  if (window < 1 || k < 1) {
    Usage(argv[0]);
    return 2;
  }

  StreamDriver::Options options;
  options.batch_size = batch;
  StreamDriver driver(options);

  // Resolve the sink — a raw sampler or an estimator over a substrate —
  // then let the batched driver own parsing and ingestion for both modes;
  // stdin mode adds periodic progress reports.
  std::unique_ptr<WindowSampler> sampler;
  std::unique_ptr<WindowEstimator> estimator;
  bool timestamped = false;
  if (!estimator_name.empty()) {
    const EstimatorSpec* spec = FindEstimatorSpec(estimator_name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown --estimator=%s\nregistered: %s\n",
                   estimator_name.c_str(),
                   RegisteredEstimatorNames().c_str());
      return 2;
    }
    EstimatorConfig config;
    config.substrate = substrate.empty() ? spec->default_substrate
                                         : substrate;
    config.window_n = static_cast<uint64_t>(window);
    config.window_t = window;
    config.r = static_cast<uint64_t>(k);
    config.seed = seed;
    config.moment = static_cast<uint32_t>(moment);
    config.num_vertices = static_cast<uint32_t>(vertices);
    config.q = q;
    const SamplerSpec* substrate_spec = FindSamplerSpec(config.substrate);
    if (substrate_spec != nullptr) {
      timestamped = substrate_spec->model == WindowModel::kTimestamp;
    }
    auto created = CreateEstimator(estimator_name, config);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    estimator = std::move(created).ValueOrDie();
  } else {
    const SamplerSpec* spec = FindSamplerSpec(algo);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown --algo=%s\nregistered: %s\n",
                   algo.c_str(), RegisteredSamplerNames().c_str());
      return 2;
    }
    timestamped = spec->model == WindowModel::kTimestamp;
    SamplerConfig config;
    config.window_n = static_cast<uint64_t>(window);
    config.window_t = window;
    config.k = static_cast<uint64_t>(k);
    config.seed = seed;
    auto created = CreateSampler(algo, config);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    sampler = std::move(created).ValueOrDie();
  }
  StreamSink& sink = estimator ? static_cast<StreamSink&>(*estimator)
                               : static_cast<StreamSink&>(*sampler);

  auto progress = [&](uint64_t items) {
    if (estimator) {
      ReportEstimate(*estimator, items, stderr);
    } else {
      ReportSample(*sampler, items, stderr);
    }
  };
  auto result = file.empty()
                    ? driver.DriveLines(stdin, "stdin", timestamped, sink,
                                        progress, report_every)
                    : driver.DriveFile(file, timestamped, sink);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const DriveReport& r = result.value();
  std::fprintf(stderr,
               "sink=%s items=%" PRIu64 " batches=%" PRIu64
               " throughput=%.2fM items/s\n",
               sink.name(), r.items, r.batches, r.items_per_sec / 1e6);
  if (estimator) {
    ReportEstimate(*estimator, r.items, stdout);
  } else {
    ReportSample(*sampler, r.items, stdout);
  }
  return 0;
}
