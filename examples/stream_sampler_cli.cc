// Copyright (c) swsample authors. Licensed under the MIT license.
//
// stream_sampler_cli: pump a real stream from stdin (or a file) through
// any registered sampler OR any registered estimator over any compatible
// sampling substrate (Theorem 5.1 at the command line).
//
//   build/examples/stream_sampler_cli [options] <window> <k>
//
//   --algo=<name>        sampler to run (default bop-seq-swor)
//   --estimator=<name>   run an estimator instead of a raw sampler
//   --substrate=<name>   sampling substrate for --estimator (default:
//                        the estimator's registered default)
//   --list               every registered sampler with a summary
//   --list-estimators    every registered estimator with its compatible
//                        substrates
//   --file=<path>        read events from a file instead of stdin
//   --batch=<n>          ingestion batch size (default 1024; 0 = per item)
//   --seed=<n>           RNG seed (default 0x5eed); equal seeds reproduce
//                        runs exactly
//   --threads=<n>        worker threads for sharded ingestion (default 1 =
//                        the single-threaded driver)
//   --shards=<n>         sink replicas for sharded ingestion (default:
//                        one per thread); sequence windows must divide
//                        evenly by the shard count
//   --partition=<mode>   chunks | keyhash (default: keyhash for timestamp
//                        sinks and for estimators whose merge needs
//                        key-disjoint shards, e.g. ams-fk/ccm-entropy;
//                        chunks otherwise)
//   --checkpoint-dir=<d> persist periodic checkpoints (sink state + a
//                        manifest, atomic write-rename) into directory d
//   --checkpoint-every=<n>  checkpoint every n ingested events (default
//                        1000000; taken at the next batch boundary)
//   --resume             restore from --checkpoint-dir and continue: the
//                        input must REPLAY the stream from the beginning
//                        (the already-ingested prefix is skipped); the
//                        final report is bit-identical to a run that was
//                        never interrupted
//   --kill-after=<n>     testing hook: SIGKILL this process right after
//                        the first checkpoint at >= n events (the CI
//                        crash/resume smoke test drives this)
//   --moment=<k>         frequency moment for --estimator=ams-fk (default 2)
//   --vertices=<v>       vertex universe for --estimator=buriol-triangles
//   --q=<q>              quantile for --estimator=dkw-quantile (default 0.5)
//   --report=<n>         progress report every n events to stderr (default
//                        10000; 0 = none, stdin mode only)
//   <window>             n (items) for sequence samplers/substrates, t0
//                        (time units) for timestamp ones
//   <k>                  samples to maintain / estimator units r
//
// Input: one event per line. Sequence mode: "<value>"; timestamp mode:
// "<timestamp> <value>" with non-decreasing integer timestamps. Blank
// lines are skipped; malformed lines abort with the offending line number.
// The final sample (or estimate), memory footprint and ingestion
// throughput go to stdout.
//
//   --algo=bop-seq-swor 1000000 64:  a uniform 64-subset of the last
//   million events from ~400 words of state, however long the stream runs.
//
//   --estimator=ams-fk --substrate=bop-ts-single 60 256:  the self-join
//   size F2 of the last 60 seconds, window size unknowable, O(r log n).

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/estimator_registry.h"
#include "core/api.h"
#include "core/registry.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "stream/sharded_driver.h"

using namespace swsample;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo=<name> | --estimator=<name> "
               "[--substrate=<name>]] [--file=<path>] [--batch=<n>] "
               "[--seed=<n>] [--moment=<k>] [--vertices=<v>] [--q=<q>] "
               "[--report=<n>] [--threads=<n>] [--shards=<n>] "
               "[--partition=chunks|keyhash] [--checkpoint-dir=<d> "
               "[--checkpoint-every=<n>] [--resume]] <window> <k>\n"
               "       %s --list | --list-estimators\n"
               "  sequence mode reads lines \"<value>\"; timestamp mode\n"
               "  reads \"<timestamp> <value>\"\n"
               "  samplers:   %s\n"
               "  estimators: %s\n",
               argv0, argv0, RegisteredSamplerNames().c_str(),
               RegisteredEstimatorNames().c_str());
}

void ListSamplers() {
  std::printf("registered samplers:\n");
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    std::printf("  %-20s %-9s %s\n", spec.name,
                spec.model == WindowModel::kSequence ? "sequence"
                                                     : "timestamp",
                spec.summary);
  }
}

void ListEstimators() {
  std::printf("registered estimators:\n");
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    std::printf("  %-17s %-10s %s\n", spec.name, spec.metric, spec.summary);
    std::printf("  %-17s   default substrate %s; compatible:", "",
                spec.default_substrate);
    for (const char* substrate : spec.substrates) {
      std::printf(" %s", substrate);
    }
    std::printf("\n");
  }
}

void ReportSample(WindowSampler& sampler, uint64_t events, FILE* out) {
  auto sample = sampler.Sample();
  std::fprintf(out, "events=%" PRIu64 " memory=%" PRIu64 " words sample=[",
               events, sampler.MemoryWords());
  for (size_t i = 0; i < sample.size(); ++i) {
    std::fprintf(out, "%s%" PRIu64, i ? " " : "", sample[i].value);
  }
  std::fprintf(out, "]\n");
}

void ReportEstimate(WindowEstimator& estimator, uint64_t events, FILE* out) {
  EstimateReport report = estimator.Estimate();
  std::fprintf(out,
               "events=%" PRIu64 " memory=%" PRIu64
               " words %s=%.6g window=%.6g support=%" PRIu64 "\n",
               events, estimator.MemoryWords(), report.metric.c_str(),
               report.value, report.window_size, report.support);
}

/// Checkpoint/resume flags shared by the single and sharded paths.
struct CheckpointRun {
  std::string dir;            // --checkpoint-dir; empty = disabled
  uint64_t every = 1000000;   // --checkpoint-every
  bool resume = false;        // --resume
  uint64_t kill_after = 0;    // --kill-after testing hook
};

/// Installs the --kill-after crash-injection hook on a writer.
void InstallKillHook(CheckpointWriter& writer, uint64_t kill_after) {
  if (kill_after == 0) return;
  writer.set_after_write([kill_after](uint64_t items) {
    if (items >= kill_after) {
      std::fprintf(stderr,
                   "--kill-after: SIGKILL after checkpoint at %" PRIu64
                   " events\n",
                   items);
      std::raise(SIGKILL);
    }
  });
}

/// Everything the sharded execution path needs from main's flag parse.
struct ShardedRun {
  std::string algo;
  std::string estimator_name;
  EstimatorConfig estimator_config;  // estimator mode
  SamplerConfig sampler_config;      // sampler mode
  std::string file;
  uint64_t threads = 1;
  uint64_t shards = 1;
  std::string partition;  // "", "chunks", or "keyhash"
  uint64_t batch = 1024;
  uint64_t seed = 0;
  CheckpointRun checkpoint;
};

/// Drives the stream through N replicas on worker threads and prints the
/// merged sample/estimate plus per-shard throughput. Returns the process
/// exit code.
int RunSharded(const ShardedRun& run, bool timestamped) {
  std::vector<std::unique_ptr<WindowSampler>> samplers;
  std::vector<std::unique_ptr<WindowEstimator>> estimators;
  std::vector<StreamSink*> sinks;
  ResumedCheckpoint resumed;  // --resume: restored state + skip position
  // Sharded output only exists through the merge surface, so refuse
  // non-mergeable sinks up front instead of after ingesting the stream.
  bool needs_key_disjoint = false;
  if (run.checkpoint.resume) {
    auto loaded = ShardedStreamDriver::ResumeFrom(run.checkpoint.dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    resumed = std::move(loaded).ValueOrDie();
    const bool want_estimators = !run.estimator_name.empty();
    const std::string& requested =
        want_estimators ? run.estimator_name : run.algo;
    if (want_estimators != !resumed.estimators.empty() ||
        resumed.sinks.size() != run.shards) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds %zu %s shard(s), but "
                   "the flags request %" PRIu64 " %s shard(s)\n",
                   run.checkpoint.dir.c_str(), resumed.sinks.size(),
                   resumed.estimators.empty() ? "sampler" : "estimator",
                   run.shards,
                   want_estimators ? "estimator" : "sampler");
      return 2;
    }
    if (resumed.name != requested) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds \"%s\", but the flags "
                   "request \"%s\"\n",
                   run.checkpoint.dir.c_str(), resumed.name.c_str(),
                   requested.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "resume: restored %s (%" PRIu64
                 " shard(s)) at %" PRIu64 " events; the checkpoint's "
                 "configuration is authoritative\n",
                 resumed.name.c_str(), run.shards, resumed.position.items);
    samplers = std::move(resumed.samplers);
    estimators = std::move(resumed.estimators);
  } else if (!run.estimator_name.empty()) {
    auto created = CreateShardedEstimators(run.estimator_name,
                                           run.estimator_config, run.shards);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    estimators = std::move(created).ValueOrDie();
  } else {
    auto created =
        CreateShardedSamplers(run.algo, run.sampler_config, run.shards);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    samplers = std::move(created).ValueOrDie();
  }
  if (!estimators.empty()) {
    if (estimators[0]->merge_kind() == EstimateMergeKind::kNone) {
      std::fprintf(stderr,
                   "%s is not merge-capable; run it single-threaded "
                   "(--threads=1)\n",
                   run.estimator_name.c_str());
      return 2;
    }
    needs_key_disjoint =
        MergeNeedsKeyDisjointShards(estimators[0]->merge_kind());
    sinks = SinkPointers(estimators);
  } else {
    if (!samplers[0]->mergeable()) {
      std::fprintf(stderr,
                   "%s is not merge-capable; run it single-threaded "
                   "(--threads=1)\n",
                   run.algo.c_str());
      return 2;
    }
    sinks = SinkPointers(samplers);
  }

  ShardedStreamDriver::Options options;
  options.threads = run.threads;
  // --batch=0 selects the per-item slow path in the single-threaded
  // driver; chunks are the sharded transfer unit, so keep them batched.
  options.chunk_items = run.batch == 0 ? 1024 : run.batch;
  // Default partitioning: key-hash whenever the merge algebra needs
  // key-disjoint shards (F_k, entropy) or the window model is
  // timestamp-based; round-robin chunks otherwise. An explicit
  // --partition wins (and owns the statistical consequences).
  options.partition =
      run.partition.empty()
          ? (timestamped || needs_key_disjoint ? ShardPartition::kKeyHash
                                               : ShardPartition::kChunks)
          : (run.partition == "keyhash" ? ShardPartition::kKeyHash
                                        : ShardPartition::kChunks);
  if (options.partition == ShardPartition::kKeyHash && !timestamped) {
    std::fprintf(stderr,
                 "note: key-hash sharding of a sequence window assumes "
                 "near-uniform key load; for skewed keys prefer a "
                 "timestamp substrate (e.g. --substrate=bop-ts-single)\n");
  }
  ShardedStreamDriver driver(options);

  Result<ShardedDriveReport> result = Status::InvalidArgument("unset");
  if (!run.checkpoint.dir.empty()) {
    CheckpointPolicy policy;
    policy.dir = run.checkpoint.dir;
    policy.every_items = run.checkpoint.every;
    // On resume the checkpoint's own (name, config) pairs keep stamping
    // the envelopes, so flag drift cannot corrupt later checkpoints; the
    // resumed position also re-seeds the every-N cadence.
    std::vector<SinkSerializer> serializers;
    if (run.checkpoint.resume) {
      serializers = SerializersFor(resumed);
    } else {
      auto made =
          estimators.empty()
              ? MakeSamplerSerializers(run.algo, run.sampler_config,
                                       run.shards)
              : MakeEstimatorSerializers(run.estimator_name,
                                         run.estimator_config, run.shards);
      if (!made.ok()) {
        std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
        return 1;
      }
      serializers = std::move(made).ValueOrDie();
    }
    CheckpointWriter writer(policy, std::move(serializers),
                            resumed.position.items);
    InstallKillHook(writer, run.checkpoint.kill_after);
    const CheckpointManifest* resume_pos =
        run.checkpoint.resume ? &resumed.position : nullptr;
    result = run.file.empty()
                 ? driver.DriveLinesCheckpointed(stdin, "stdin", timestamped,
                                                sinks, &writer, resume_pos)
                 : driver.DriveFileCheckpointed(run.file, timestamped, sinks,
                                                &writer, resume_pos);
  } else {
    result = run.file.empty()
                 ? driver.DriveLines(stdin, "stdin", timestamped, sinks)
                 : driver.DriveFile(run.file, timestamped, sinks);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const ShardedDriveReport& report = result.value();
  // Stream totals include the prefix a resumed run skipped — minus the
  // checkpoint's pending router items, which that prefix already counts
  // but which are delivered (and counted) by this run.
  uint64_t resumed_pending = 0;
  for (const auto& buffer : resumed.position.pending) {
    resumed_pending += buffer.size();
  }
  const uint64_t total_events =
      report.total.items + resumed.position.items - resumed_pending;
  std::fprintf(stderr,
               "sink=%s shards=%" PRIu64 " threads=%" PRIu64
               " partition=%s items=%" PRIu64
               " aggregate=%.2fM items/s\n",
               sinks[0]->name(), run.shards, run.threads,
               options.partition == ShardPartition::kKeyHash ? "keyhash"
                                                             : "chunks",
               total_events, report.total.items_per_sec / 1e6);
  for (size_t s = 0; s < report.shards.size(); ++s) {
    const ShardReport& shard = report.shards[s];
    std::fprintf(stderr,
                 "  shard %zu: items=%" PRIu64 " memory=%" PRIu64
                 " words busy=%.2fM items/s\n",
                 s, shard.items, shard.memory_words,
                 shard.items_per_sec / 1e6);
  }
  if (!estimators.empty()) {
    auto shard_ptrs = EstimatorPointers(estimators);
    auto merged = MergedEstimate(shard_ptrs);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    const EstimateReport& estimate = merged.value();
    std::printf("events=%" PRIu64 " memory=%" PRIu64
                " words %s=%.6g window=%.6g support=%" PRIu64 "\n",
                total_events, report.total.memory_words,
                estimate.metric.c_str(), estimate.value,
                estimate.window_size, estimate.support);
    return 0;
  }
  auto shard_ptrs = SamplerPointers(samplers);
  auto merged = MergedSnapshot(shard_ptrs, run.seed ^ 0x5eedful);
  if (!merged.ok()) {
    std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
    return 1;
  }
  std::printf("events=%" PRIu64 " memory=%" PRIu64 " words sample=[",
              total_events, report.total.memory_words);
  for (size_t i = 0; i < merged.value().sample.size(); ++i) {
    std::printf("%s%" PRIu64, i ? " " : "", merged.value().sample[i].value);
  }
  std::printf("]\n");
  return 0;
}

// Parses a non-negative integer flag value; false on garbage, sign, or
// trailing characters.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "bop-seq-swor";
  std::string estimator_name;
  std::string substrate;
  std::string file;
  uint64_t batch = 1024;
  uint64_t seed = 0x5eed;
  uint64_t moment = 2;
  uint64_t vertices = 0;
  double q = 0.5;
  uint64_t report_every = 10000;
  uint64_t threads = 1;
  uint64_t shards = 0;
  std::string partition;
  CheckpointRun checkpoint;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t* u64_flag = nullptr;
    const char* u64_value = nullptr;
    if (std::strcmp(arg, "--list") == 0) {
      ListSamplers();
      return 0;
    } else if (std::strcmp(arg, "--list-estimators") == 0) {
      ListEstimators();
      return 0;
    } else if (std::strncmp(arg, "--algo=", 7) == 0) {
      algo = arg + 7;
    } else if (std::strncmp(arg, "--estimator=", 12) == 0) {
      estimator_name = arg + 12;
    } else if (std::strncmp(arg, "--substrate=", 12) == 0) {
      substrate = arg + 12;
    } else if (std::strncmp(arg, "--file=", 7) == 0) {
      file = arg + 7;
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      u64_flag = &batch;
      u64_value = arg + 8;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      u64_flag = &seed;
      u64_value = arg + 7;
    } else if (std::strncmp(arg, "--moment=", 9) == 0) {
      u64_flag = &moment;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--vertices=", 11) == 0) {
      u64_flag = &vertices;
      u64_value = arg + 11;
    } else if (std::strncmp(arg, "--q=", 4) == 0) {
      if (!ParseDouble(arg + 4, &q)) {
        std::fprintf(stderr, "error: --q requires a number, got \"%s\"\n",
                     arg + 4);
        return 2;
      }
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      u64_flag = &report_every;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      u64_flag = &threads;
      u64_value = arg + 10;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      u64_flag = &shards;
      u64_value = arg + 9;
    } else if (std::strncmp(arg, "--partition=", 12) == 0) {
      partition = arg + 12;
      if (partition != "chunks" && partition != "keyhash") {
        std::fprintf(stderr,
                     "error: --partition expects chunks or keyhash, got "
                     "\"%s\"\n",
                     partition.c_str());
        return 2;
      }
    } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
      checkpoint.dir = arg + 17;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      u64_flag = &checkpoint.every;
      u64_value = arg + 19;
    } else if (std::strcmp(arg, "--resume") == 0) {
      checkpoint.resume = true;
    } else if (std::strncmp(arg, "--kill-after=", 13) == 0) {
      u64_flag = &checkpoint.kill_after;
      u64_value = arg + 13;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      Usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
    if (u64_flag != nullptr && !ParseU64(u64_value, u64_flag)) {
      std::fprintf(stderr,
                   "error: %.*s expects a non-negative integer, got \"%s\"\n",
                   static_cast<int>(u64_value - arg - 1), arg, u64_value);
      return 2;
    }
  }
  if (positional.size() != 2) {
    Usage(argv[0]);
    return 2;
  }
  const int64_t window = std::atoll(positional[0]);
  const int64_t k = std::atoll(positional[1]);
  if (window < 1 || k < 1) {
    Usage(argv[0]);
    return 2;
  }
  if ((checkpoint.resume || checkpoint.kill_after > 0) &&
      checkpoint.dir.empty()) {
    std::fprintf(stderr,
                 "error: --resume/--kill-after require --checkpoint-dir\n");
    return 2;
  }

  StreamDriver::Options options;
  options.batch_size = batch;
  StreamDriver driver(options);

  // Resolve the sink — a raw sampler or an estimator over a substrate —
  // then let the batched driver own parsing and ingestion for both modes;
  // stdin mode adds periodic progress reports.
  std::unique_ptr<WindowSampler> sampler;
  std::unique_ptr<WindowEstimator> estimator;
  SamplerConfig sampler_config;      // kept for checkpoint envelopes
  EstimatorConfig estimator_config;  // kept for checkpoint envelopes
  bool timestamped = false;
  if (!estimator_name.empty()) {
    const EstimatorSpec* spec = FindEstimatorSpec(estimator_name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown --estimator=%s\nregistered: %s\n",
                   estimator_name.c_str(),
                   RegisteredEstimatorNames().c_str());
      return 2;
    }
    EstimatorConfig config;
    config.substrate = substrate.empty() ? spec->default_substrate
                                         : substrate;
    config.window_n = static_cast<uint64_t>(window);
    config.window_t = window;
    config.r = static_cast<uint64_t>(k);
    config.seed = seed;
    config.moment = static_cast<uint32_t>(moment);
    config.num_vertices = static_cast<uint32_t>(vertices);
    config.q = q;
    const SamplerSpec* substrate_spec = FindSamplerSpec(config.substrate);
    if (substrate_spec != nullptr) {
      timestamped = substrate_spec->model == WindowModel::kTimestamp;
    }
    if (threads > 1 || shards > 1) {
      ShardedRun run;
      run.estimator_name = estimator_name;
      run.estimator_config = config;
      run.file = file;
      run.threads = threads;
      run.shards = shards == 0 ? threads : shards;
      run.partition = partition;
      run.batch = batch;
      run.seed = seed;
      run.checkpoint = checkpoint;
      return RunSharded(run, timestamped);
    }
    estimator_config = config;
    if (!checkpoint.resume) {
      auto created = CreateEstimator(estimator_name, config);
      if (!created.ok()) {
        std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
        return 1;
      }
      estimator = std::move(created).ValueOrDie();
    }
  } else {
    const SamplerSpec* spec = FindSamplerSpec(algo);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown --algo=%s\nregistered: %s\n",
                   algo.c_str(), RegisteredSamplerNames().c_str());
      return 2;
    }
    timestamped = spec->model == WindowModel::kTimestamp;
    SamplerConfig config;
    config.window_n = static_cast<uint64_t>(window);
    config.window_t = window;
    config.k = static_cast<uint64_t>(k);
    config.seed = seed;
    if (threads > 1 || shards > 1) {
      ShardedRun run;
      run.algo = algo;
      run.sampler_config = config;
      run.file = file;
      run.threads = threads;
      run.shards = shards == 0 ? threads : shards;
      run.partition = partition;
      run.batch = batch;
      run.seed = seed;
      run.checkpoint = checkpoint;
      return RunSharded(run, timestamped);
    }
    sampler_config = config;
    if (!checkpoint.resume) {
      auto created = CreateSampler(algo, config);
      if (!created.ok()) {
        std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
        return 1;
      }
      sampler = std::move(created).ValueOrDie();
    }
  }
  ResumedCheckpoint resumed;  // --resume: restored state + skip position
  if (checkpoint.resume) {
    auto loaded = StreamDriver::ResumeFrom(checkpoint.dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    resumed = std::move(loaded).ValueOrDie();
    const bool want_estimator = !estimator_name.empty();
    const std::string& requested = want_estimator ? estimator_name : algo;
    if (want_estimator != !resumed.estimators.empty() ||
        resumed.sinks.size() != 1) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds %zu %s shard(s), but "
                   "the flags request one %s\n",
                   checkpoint.dir.c_str(), resumed.sinks.size(),
                   resumed.estimators.empty() ? "sampler" : "estimator",
                   want_estimator ? "estimator" : "sampler");
      return 2;
    }
    if (resumed.name != requested) {
      std::fprintf(stderr,
                   "--resume: checkpoint in %s holds \"%s\", but the flags "
                   "request \"%s\"\n",
                   checkpoint.dir.c_str(), resumed.name.c_str(),
                   requested.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "resume: restored %s at %" PRIu64 " events; the "
                 "checkpoint's configuration is authoritative\n",
                 resumed.name.c_str(), resumed.position.items);
    if (want_estimator) {
      estimator = std::move(resumed.estimators[0]);
    } else {
      sampler = std::move(resumed.samplers[0]);
    }
  }
  StreamSink& sink = estimator ? static_cast<StreamSink&>(*estimator)
                               : static_cast<StreamSink&>(*sampler);

  Result<DriveReport> result = Status::InvalidArgument("unset");
  if (!checkpoint.dir.empty()) {
    CheckpointPolicy policy;
    policy.dir = checkpoint.dir;
    policy.every_items = checkpoint.every;
    // See RunSharded: resumed runs reuse the checkpoint's own envelope
    // configs and re-seed the every-N cadence from the resumed position.
    std::vector<SinkSerializer> serializers;
    if (checkpoint.resume) {
      serializers = SerializersFor(resumed);
    } else {
      auto made =
          estimator
              ? MakeEstimatorSerializers(estimator_name, estimator_config, 1)
              : MakeSamplerSerializers(algo, sampler_config, 1);
      if (!made.ok()) {
        std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
        return 1;
      }
      serializers = std::move(made).ValueOrDie();
    }
    CheckpointWriter writer(policy, std::move(serializers),
                            resumed.position.items);
    InstallKillHook(writer, checkpoint.kill_after);
    const CheckpointManifest* resume_pos =
        checkpoint.resume ? &resumed.position : nullptr;
    // Progress reporting is disabled here: its mid-interval flushes would
    // shift batch boundaries away from the checkpoint-aligned grid.
    if (file.empty()) {
      result = driver.DriveLinesCheckpointed(stdin, "stdin", timestamped,
                                             sink, &writer, resume_pos);
    } else {
      result = driver.DriveFileCheckpointed(file, timestamped, sink, &writer,
                                            resume_pos);
    }
  } else {
    auto progress = [&](uint64_t items) {
      if (estimator) {
        ReportEstimate(*estimator, items, stderr);
      } else {
        ReportSample(*sampler, items, stderr);
      }
    };
    result = file.empty()
                 ? driver.DriveLines(stdin, "stdin", timestamped, sink,
                                     progress, report_every)
                 : driver.DriveFile(file, timestamped, sink);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const DriveReport& r = result.value();
  // Stream totals include the prefix a resumed run skipped.
  const uint64_t total_events = r.items + resumed.position.items;
  std::fprintf(stderr,
               "sink=%s items=%" PRIu64 " batches=%" PRIu64
               " throughput=%.2fM items/s\n",
               sink.name(), total_events, r.batches, r.items_per_sec / 1e6);
  if (estimator) {
    ReportEstimate(*estimator, total_events, stdout);
  } else {
    ReportSample(*sampler, total_events, stdout);
  }
  return 0;
}
