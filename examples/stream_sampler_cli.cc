// Copyright (c) swsample authors. Licensed under the MIT license.
//
// stream_sampler_cli: sample a real stream from stdin.
//
//   build/examples/stream_sampler_cli <mode> <window> <k> [report_every]
//
//   mode   seq | ts        (fixed-size or timestamp-based window)
//   window n (items) for seq, t0 (time units) for ts
//   k      samples to maintain (without replacement)
//
// Input: one event per line. `seq` mode: "<value>"; `ts` mode:
// "<timestamp> <value>" with non-decreasing integer timestamps. Every
// `report_every` events (default 10000) the current k-sample and memory
// footprint are printed to stderr; the final sample goes to stdout.
//
//   seq 1000000 64:  a uniform 64-subset of the last million events from
//   ~400 words of state, no matter how long the stream runs.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/api.h"
#include "core/seq_swor.h"
#include "core/ts_swor.h"

using namespace swsample;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <seq|ts> <window> <k> [report_every]\n"
               "  seq input lines: <value>\n"
               "  ts  input lines: <timestamp> <value>\n",
               argv0);
}

void Report(WindowSampler& sampler, uint64_t events, FILE* out) {
  auto sample = sampler.Sample();
  std::fprintf(out,
               "events=%" PRIu64 " memory=%" PRIu64 " words sample=[",
               events, sampler.MemoryWords());
  for (size_t i = 0; i < sample.size(); ++i) {
    std::fprintf(out, "%s%" PRIu64, i ? " " : "", sample[i].value);
  }
  std::fprintf(out, "]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4 || argc > 5) {
    Usage(argv[0]);
    return 2;
  }
  const bool seq = std::strcmp(argv[1], "seq") == 0;
  if (!seq && std::strcmp(argv[1], "ts") != 0) {
    Usage(argv[0]);
    return 2;
  }
  const int64_t window = std::atoll(argv[2]);
  const int64_t k = std::atoll(argv[3]);
  const uint64_t report_every =
      argc == 5 ? static_cast<uint64_t>(std::atoll(argv[4])) : 10000;
  if (window < 1 || k < 1) {
    Usage(argv[0]);
    return 2;
  }

  std::unique_ptr<WindowSampler> sampler;
  if (seq) {
    auto created = SequenceSworSampler::Create(
        static_cast<uint64_t>(window), static_cast<uint64_t>(k),
        /*seed=*/0x5eed);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    sampler = std::move(created).ValueOrDie();
  } else {
    auto created = TsSworSampler::Create(window, static_cast<uint64_t>(k),
                                         /*seed=*/0x5eed);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    sampler = std::move(created).ValueOrDie();
  }

  char line[256];
  uint64_t index = 0;
  Timestamp last_ts = 0;
  while (std::fgets(line, sizeof(line), stdin)) {
    uint64_t value = 0;
    Timestamp ts = 0;
    if (seq) {
      if (std::sscanf(line, "%" SCNu64, &value) != 1) continue;
      ts = static_cast<Timestamp>(index);
    } else {
      if (std::sscanf(line, "%" SCNd64 " %" SCNu64, &ts, &value) != 2) {
        continue;
      }
      if (ts < last_ts) {
        std::fprintf(stderr,
                     "error: timestamps must be non-decreasing "
                     "(%" PRId64 " after %" PRId64 ")\n",
                     ts, last_ts);
        return 1;
      }
      last_ts = ts;
    }
    sampler->Observe(Item{value, index++, ts});
    if (report_every && index % report_every == 0) {
      Report(*sampler, index, stderr);
    }
  }
  Report(*sampler, index, stdout);
  return 0;
}
