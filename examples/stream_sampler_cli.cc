// Copyright (c) swsample authors. Licensed under the MIT license.
//
// stream_sampler_cli: sample a real stream from stdin (or a file) with any
// registered sampler.
//
//   build/examples/stream_sampler_cli [options] <window> <k>
//
//   --algo=<name>     sampler to run (default bop-seq-swor); --list shows
//                     every registered name with a one-line summary
//   --file=<path>     read events from a file instead of stdin
//   --batch=<n>       ingestion batch size (default 1024; 0 = per item)
//   --report=<n>      progress report every n events to stderr (default
//                     10000; 0 = none, stdin mode only)
//   <window>          n (items) for sequence samplers, t0 (time units)
//                     for timestamp samplers
//   <k>               samples to maintain
//
// Input: one event per line. Sequence samplers: "<value>"; timestamp
// samplers: "<timestamp> <value>" with non-decreasing integer timestamps.
// The final k-sample, memory footprint and ingestion throughput go to
// stdout.
//
//   --algo=bop-seq-swor 1000000 64:  a uniform 64-subset of the last
//   million events from ~400 words of state, however long the stream runs.

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/api.h"
#include "core/registry.h"
#include "stream/driver.h"

using namespace swsample;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo=<name>] [--file=<path>] [--batch=<n>] "
               "[--report=<n>] <window> <k>\n"
               "       %s --list\n"
               "  sequence samplers read lines \"<value>\"; timestamp\n"
               "  samplers read \"<timestamp> <value>\"\n"
               "  registered: %s\n",
               argv0, argv0, RegisteredSamplerNames().c_str());
}

void ListSamplers() {
  std::printf("registered samplers:\n");
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    std::printf("  %-20s %-9s %s\n", spec.name,
                spec.model == WindowModel::kSequence ? "sequence"
                                                     : "timestamp",
                spec.summary);
  }
}

void Report(WindowSampler& sampler, uint64_t events, FILE* out) {
  auto sample = sampler.Sample();
  std::fprintf(out, "events=%" PRIu64 " memory=%" PRIu64 " words sample=[",
               events, sampler.MemoryWords());
  for (size_t i = 0; i < sample.size(); ++i) {
    std::fprintf(out, "%s%" PRIu64, i ? " " : "", sample[i].value);
  }
  std::fprintf(out, "]\n");
}

// Parses a non-negative integer flag value; false on garbage, sign, or
// trailing characters.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "bop-seq-swor";
  std::string file;
  uint64_t batch = 1024;
  uint64_t report_every = 10000;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      ListSamplers();
      return 0;
    } else if (std::strncmp(arg, "--algo=", 7) == 0) {
      algo = arg + 7;
    } else if (std::strncmp(arg, "--file=", 7) == 0) {
      file = arg + 7;
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      if (!ParseU64(arg + 8, &batch)) {
        std::fprintf(stderr, "error: --batch requires a non-negative "
                             "integer, got \"%s\"\n", arg + 8);
        return 2;
      }
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      if (!ParseU64(arg + 9, &report_every)) {
        std::fprintf(stderr, "error: --report requires a non-negative "
                             "integer, got \"%s\"\n", arg + 9);
        return 2;
      }
    } else if (std::strncmp(arg, "--", 2) == 0) {
      Usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    Usage(argv[0]);
    return 2;
  }
  const int64_t window = std::atoll(positional[0]);
  const int64_t k = std::atoll(positional[1]);
  if (window < 1 || k < 1) {
    Usage(argv[0]);
    return 2;
  }
  const SamplerSpec* spec = FindSamplerSpec(algo);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown --algo=%s\nregistered: %s\n", algo.c_str(),
                 RegisteredSamplerNames().c_str());
    return 2;
  }
  const bool timestamped = spec->model == WindowModel::kTimestamp;

  SamplerConfig config;
  config.window_n = static_cast<uint64_t>(window);
  config.window_t = window;
  config.k = static_cast<uint64_t>(k);
  config.seed = 0x5eed;
  auto created = CreateSampler(algo, config);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  auto sampler = std::move(created).ValueOrDie();

  StreamDriver::Options options;
  options.batch_size = batch;
  StreamDriver driver(options);

  // The batched driver owns parsing and ingestion for both modes; stdin
  // mode adds periodic progress reports.
  auto result =
      file.empty()
          ? driver.DriveLines(
                stdin, "stdin", timestamped, *sampler,
                [](uint64_t items, WindowSampler& s) {
                  Report(s, items, stderr);
                },
                report_every)
          : driver.DriveFile(file, timestamped, *sampler);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const DriveReport& r = result.value();
  std::fprintf(stderr,
               "algo=%s items=%" PRIu64 " batches=%" PRIu64
               " throughput=%.2fM items/s\n",
               sampler->name(), r.items, r.batches, r.items_per_sec / 1e6);
  Report(*sampler, r.items, stdout);
  return 0;
}
