// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Ticker analytics: fixed-size windows over a fast trade feed.
//
//   build/examples/ticker_analytics
//
// Maintains, over the last 16384 trades:
//  * a windowed mean price via the Theorem 5.1 adapter on a k-sample;
//  * the "repeat rate" (self-join size F_2 of the symbol distribution,
//    Corollary 5.2) which spikes when one symbol dominates trading;
//  * the symbol entropy (Corollary 5.4) which drops at the same moment.
// A mid-stream "flash event" concentrates trading in one symbol to show
// all three estimates reacting.

#include <cstdio>

#include "apps/estimator_registry.h"
#include "core/seq_swr.h"
#include "core/sliding_adapter.h"
#include "stream/value_gen.h"
#include "util/rng.h"

using namespace swsample;

int main() {
  const uint64_t n = 16384;
  auto price_sampler = SequenceSwrSampler::Create(n, 128, 1).ValueOrDie();
  SlidingAdapter price_mean(std::move(price_sampler),
                            [](const std::vector<Item>& sample) {
                              double acc = 0;
                              for (const Item& item : sample) {
                                acc += static_cast<double>(item.value);
                              }
                              return sample.empty()
                                         ? 0.0
                                         : acc / static_cast<double>(
                                                     sample.size());
                            });
  // Both symbol estimators come from the estimator registry; swap the
  // substrate string to run them over any other compatible sampler.
  EstimatorConfig config;
  config.substrate = "bop-seq-single";
  config.window_n = n;
  config.r = 512;
  config.seed = 2;
  auto repeat_rate = CreateEstimator("ams-fk", config).ValueOrDie();
  config.seed = 3;
  auto entropy = CreateEstimator("ccm-entropy", config).ValueOrDie();

  auto symbols = ZipfValues::Create(64, 0.9).ValueOrDie();
  Rng rng(11);
  const uint64_t total = 6 * n;
  for (uint64_t i = 0; i < total; ++i) {
    // Flash event in the middle third: 90% of trades hit symbol 7 and the
    // price dives from ~500 to ~300.
    const bool flash = i > 2 * total / 5 && i < 3 * total / 5;
    uint64_t symbol =
        (flash && rng.Bernoulli(0.9)) ? 7 : symbols->Next(rng);
    uint64_t price = (flash ? 300 : 500) + rng.UniformIndex(20);

    price_mean.Observe(Item{price, i, static_cast<Timestamp>(i)});
    repeat_rate->Observe(Item{symbol, i, static_cast<Timestamp>(i)});
    entropy->Observe(Item{symbol, i, static_cast<Timestamp>(i)});

    if ((i + 1) % n == 0) {
      std::printf(
          "trade %6lu %s  mean-price=%6.1f  F2(symbols)=%10.0f  "
          "H(symbols)=%5.2f bits\n",
          (unsigned long)(i + 1), flash ? "[flash]" : "       ",
          price_mean.Estimate(), repeat_rate->Estimate().value,
          entropy->Estimate().value);
    }
  }
  std::printf(
      "\nduring the flash event the windowed mean price falls, F2 spikes\n"
      "(self-join size grows when one symbol dominates) and entropy drops;\n"
      "all three recover as the event leaves the window.\n");
  return 0;
}
