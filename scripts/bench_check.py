#!/usr/bin/env python3
"""Compare a fresh BENCH.json against the committed baseline.

Usage:
  scripts/bench_check.py BASELINE.json FRESH.json... [--threshold 0.25]
  scripts/bench_check.py --table BENCH.json

The gate scores four metric classes:
  * ratio metrics (keys starting with "speedup"): absolute items/s
    depends on the host, but the batched-vs-item speedup of a given code
    path is a property of the code, so a >threshold drop in a speedup
    ratio on the same binary is a real regression (e.g. losing an
    ObserveBatch override);
  * "bytes_per_key" (keyed-engine rows): retained bytes per live key is
    capacity-driven and deterministic for a seeded workload, so a
    >threshold INCREASE is a real memory regression;
  * "structures_max" (workload rows): the peak covering-decomposition
    structure count over a seeded stream is deterministic, so a
    >threshold INCREASE breaks the Theorem 3.9 structure bound under the
    adversarial churn workloads;
  * "budget_exceeded" (keyed-engine budget rows): 0/1 invariant flag —
    any fresh run reporting 1 fails outright, whatever the baseline;
  * "evict_batch_amortized_us" (keyed-engine budget rows): per-eviction
    wall cost of the batched spill pass. Lower is better, and it is a
    raw timing on a shared runner, so the allowance is deliberately wide
    (4x baseline) — the gate exists to catch losing SpillBatch grouping
    (which regresses the metric by an order of magnitude), not to score
    disk jitter;
  * "evict_shed_amortized_us" (keyed-engine shed row): per-drop wall
    cost of holding the memory budget through a permanent spill outage
    in shed degradation mode. Scored with the same 4x allowance: the
    drop path must stay I/O-free, and regaining a (failing, retried)
    write attempt per victim regresses it by orders of magnitude.
Keyed (e18) rows additionally WARN when speedup_batch16k sits below
2.0x: the key-run demux path is expected to at least double gated-row
throughput, and a slide below that — while not an outright failure —
deserves a look.
Entries whose baseline carries "gated": 0 are informational full-mode
rows (not reproduced by CI smoke runs) and are skipped entirely.
Other absolute metrics are printed for information.

Several FRESH files may be given (repeat runs); each metric is scored on
its best value across runs, so one noisy measurement on a shared CI
runner cannot fail the gate by itself.

--table renders the throughput table README.md embeds, straight from the
machine-readable entries, so docs and baseline can never drift apart.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unsupported BENCH.json schema {doc.get('schema')}")
    return {(e["bench"], e["name"]): e for e in doc["entries"]}


def check(baseline_path, fresh_paths, threshold):
    baseline = load(baseline_path)
    # Best-of-N across repeat runs: take the max of each metric.
    fresh = {}
    for path in fresh_paths:
        for key, entry in load(path).items():
            merged = fresh.setdefault(key, dict(entry))
            for metric, value in entry.items():
                if not isinstance(value, (int, float)):
                    continue
                # Best across runs: max for higher-is-better ratios, min
                # for lower-is-better bytes/structure counts; any run
                # tripping the budget flag keeps it tripped.
                best = (min if metric.startswith(("bytes_per_key",
                                                  "structures_max",
                                                  "evict_batch_amortized_us",
                                                  "evict_shed_amortized_us"))
                        else max)
                merged[metric] = best(merged.get(metric, value), value)
    failures = []
    warnings = []
    compared = 0
    for key, base_entry in sorted(baseline.items()):
        if base_entry.get("gated") == 0:
            print(f"skip {key[0]}/{key[1]}: full-mode-only row")
            continue
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(
                f"{key[0]}/{key[1]}: missing from {' '.join(fresh_paths)}")
            continue
        for metric, base_value in base_entry.items():
            if metric == "budget_exceeded":
                new_value = fresh_entry.get(metric)
                compared += 1
                if new_value is None:
                    failures.append(f"{key[0]}/{key[1]}.{metric}: missing")
                elif new_value > 0:
                    failures.append(
                        f"{key[0]}/{key[1]}.{metric}: engine exceeded its "
                        f"memory budget")
                else:
                    print(f"ok  {key[0]}/{key[1]}.{metric}: 0")
                continue
            if metric.startswith(("bytes_per_key", "structures_max")):
                new_value = fresh_entry.get(metric)
                compared += 1
                if new_value is None:
                    failures.append(f"{key[0]}/{key[1]}.{metric}: missing")
                elif new_value > (1.0 + threshold) * base_value:
                    failures.append(
                        f"{key[0]}/{key[1]}.{metric}: {new_value:.1f} > "
                        f"{(1.0 + threshold):.2f} x baseline "
                        f"{base_value:.1f}")
                else:
                    print(f"ok  {key[0]}/{key[1]}.{metric}: "
                          f"{new_value:.1f} (baseline {base_value:.1f})")
                continue
            if metric in ("evict_batch_amortized_us",
                          "evict_shed_amortized_us"):
                new_value = fresh_entry.get(metric)
                compared += 1
                # Raw spill-pass timing: 4x headroom absorbs shared-disk
                # jitter while still catching a lost SpillBatch grouping
                # (one file + fsync per victim is >10x the batched cost)
                # or a shed path that regained per-victim I/O attempts.
                if new_value is None:
                    failures.append(f"{key[0]}/{key[1]}.{metric}: missing")
                elif base_value > 0 and new_value > 4.0 * base_value:
                    failures.append(
                        f"{key[0]}/{key[1]}.{metric}: {new_value:.1f}us > "
                        f"4.00 x baseline {base_value:.1f}us")
                else:
                    print(f"ok  {key[0]}/{key[1]}.{metric}: "
                          f"{new_value:.1f}us (baseline {base_value:.1f}us)")
                continue
            if not metric.startswith("speedup"):
                continue
            # Batch must never be slower than item-at-a-time: a ratio
            # below 1.0 means an ObserveBatch override (or the span-sliced
            # driver path) actively hurts. Warn on every such fresh row,
            # including the parity rows the regression gate skips.
            warn_value = fresh_entry.get(metric)
            if warn_value is not None and warn_value < 1.0:
                warnings.append(
                    f"{key[0]}/{key[1]}.{metric}: {warn_value:.3f} < 1.0 "
                    f"(batch slower than per-item)")
            elif (key[0] == "e18" and metric == "speedup_batch16k"
                  and warn_value is not None and warn_value < 2.0):
                # The keyed demux should at least double gated-row
                # throughput; below 2x the fast path is eroding.
                warnings.append(
                    f"{key[0]}/{key[1]}.{metric}: {warn_value:.3f} < 2.0 "
                    f"(keyed demux below expected 2x)")
            # Parity rows (default ObserveBatch, no fast path) sit near
            # 1.0x and wobble with host noise; the gate exists to catch a
            # LOST fast path, so only rows that demonstrably have one are
            # scored. 1.25 keeps the modest ts-sampler coin-cache speedups
            # (~1.3-1.5x) under guard while skipping the ~1.0x noise band.
            if base_value < 1.25:
                print(f"skip {key[0]}/{key[1]}.{metric}: baseline "
                      f"{base_value:.3f} is a parity row")
                continue
            new_value = fresh_entry.get(metric)
            if new_value is None:
                failures.append(f"{key[0]}/{key[1]}.{metric}: missing")
                continue
            compared += 1
            if base_value > 0 and new_value < (1.0 - threshold) * base_value:
                failures.append(
                    f"{key[0]}/{key[1]}.{metric}: {new_value:.3f} < "
                    f"{(1.0 - threshold):.2f} x baseline {base_value:.3f}")
            else:
                print(f"ok  {key[0]}/{key[1]}.{metric}: "
                      f"{new_value:.3f} (baseline {base_value:.3f})")
    if compared == 0:
        failures.append("no gated metrics compared — empty baseline?")
    for w in warnings:
        print(f"WARN {w}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} bench regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  FAIL {f}", file=sys.stderr)
        return 1
    print(f"\nall {compared} ratio metrics within {threshold:.0%} of baseline")
    return 0


def table(path):
    entries = load(path)
    print("| path | per-item M items/s | batch=16k M items/s | speedup |")
    print("|---|---:|---:|---:|")
    for (bench, name), e in sorted(entries.items()):
        if "items_per_sec_item" not in e:
            continue
        print(f"| {name} | {e['items_per_sec_item'] / 1e6:.2f} "
              f"| {e.get('items_per_sec_batch16k', 0) / 1e6:.2f} "
              f"| {e.get('speedup_batch16k', 0):.2f}x |")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("files", nargs="+")
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("--table", action="store_true")
    args = parser.parse_args()
    if args.table:
        if len(args.files) != 1:
            parser.error("--table takes exactly one BENCH.json")
        sys.exit(table(args.files[0]))
    if len(args.files) < 2:
        parser.error("expected BASELINE.json FRESH.json...")
    sys.exit(check(args.files[0], args.files[1:], args.threshold))


if __name__ == "__main__":
    main()
