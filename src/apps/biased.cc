// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/biased.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/registry.h"
#include "stream/item_serial.h"

namespace swsample {

Result<std::unique_ptr<StepBiasedSampler>> StepBiasedSampler::Create(
    std::vector<BiasLevel> levels, uint64_t seed,
    const std::string& substrate, uint64_t level_k) {
  if (levels.empty()) {
    return Status::InvalidArgument("StepBiasedSampler: need >= 1 level");
  }
  double total = 0.0;
  for (size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].window < 1) {
      return Status::InvalidArgument(
          "StepBiasedSampler: window lengths must be >= 1");
    }
    if (i > 0 && levels[i].window <= levels[i - 1].window) {
      return Status::InvalidArgument(
          "StepBiasedSampler: window lengths must be strictly increasing");
    }
    if (!(levels[i].weight > 0.0) || !std::isfinite(levels[i].weight)) {
      return Status::InvalidArgument(
          "StepBiasedSampler: weights must be positive and finite");
    }
    total += levels[i].weight;
  }
  const SamplerSpec* spec = FindSamplerSpec(substrate);
  if (spec == nullptr || spec->model != WindowModel::kSequence) {
    return Status::InvalidArgument(
        "StepBiasedSampler: substrate must be a registered sequence-model "
        "sampler, got \"" + substrate + "\"");
  }
  for (auto& level : levels) level.weight /= total;
  auto sampler = std::unique_ptr<StepBiasedSampler>(
      new StepBiasedSampler(std::move(levels), seed));
  for (size_t i = 0; i < sampler->levels_.size(); ++i) {
    SamplerConfig config;
    config.window_n = sampler->levels_[i].window;
    config.k = spec->single_sample ? 1 : level_k;
    config.seed = Rng::ForkSeed(seed, i + 1);
    auto level_sampler = CreateSampler(substrate, config);
    if (!level_sampler.ok()) return level_sampler.status();
    sampler->samplers_.push_back(std::move(level_sampler).ValueOrDie());
  }
  return sampler;
}

StepBiasedSampler::StepBiasedSampler(std::vector<BiasLevel> levels,
                                     uint64_t seed)
    : levels_(std::move(levels)), rng_(Rng::ForkSeed(seed, 0)) {
  samplers_.reserve(levels_.size());
}

void StepBiasedSampler::Observe(const Item& item) {
  for (auto& sampler : samplers_) sampler->Observe(item);
}

void StepBiasedSampler::ObserveBatch(std::span<const Item> items) {
  for (auto& sampler : samplers_) sampler->ObserveBatch(items);
}

std::optional<Item> StepBiasedSampler::Sample() {
  double u = rng_.Uniform01();
  size_t pick = levels_.size() - 1;
  double acc = 0.0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    acc += levels_[i].weight;
    if (u < acc) {
      pick = i;
      break;
    }
  }
  auto sample = samplers_[pick]->Sample();
  if (sample.empty()) return std::nullopt;
  return sample.front();
}

double StepBiasedSampler::InclusionProbability(uint64_t age) const {
  double p = 0.0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (age < levels_[i].window) {
      p += levels_[i].weight / static_cast<double>(levels_[i].window);
    }
  }
  return p;
}

std::pair<double, uint64_t> StepBiasedSampler::WeightedMeanEstimate() {
  double value = 0.0;
  uint64_t support = 0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    auto sample = samplers_[i]->Sample();
    if (sample.empty()) continue;
    double acc = 0.0;
    for (const Item& item : sample) {
      acc += static_cast<double>(item.value);
    }
    value += levels_[i].weight * acc / static_cast<double>(sample.size());
    support += sample.size();
  }
  return {value, support};
}

bool StepBiasedSampler::persistable() const {
  for (const auto& sampler : samplers_) {
    if (!sampler->persistable()) return false;
  }
  return true;
}

void StepBiasedSampler::SaveState(BinaryWriter* w) const {
  SaveRngState(rng_, w);
  for (const auto& sampler : samplers_) sampler->SaveState(w);
}

bool StepBiasedSampler::LoadState(BinaryReader* r) {
  if (!LoadRngState(r, &rng_)) return false;
  for (auto& sampler : samplers_) {
    if (!sampler->LoadState(r)) return false;
  }
  return true;
}

uint64_t StepBiasedSampler::MemoryWords() const {
  uint64_t words = 0;
  for (const auto& sampler : samplers_) words += sampler->MemoryWords();
  return words;
}

Result<std::unique_ptr<BiasedMeanEstimator>> BiasedMeanEstimator::Create(
    std::unique_ptr<StepBiasedSampler> sampler) {
  if (sampler == nullptr) {
    return Status::InvalidArgument(
        "biased-mean: sampler must not be null");
  }
  return std::unique_ptr<BiasedMeanEstimator>(
      new BiasedMeanEstimator(std::move(sampler)));
}

EstimateReport BiasedMeanEstimator::Estimate() {
  EstimateReport report;
  report.metric = "biased-mean";
  auto [value, support] = sampler_->WeightedMeanEstimate();
  report.value = value;
  report.support = support;
  report.window_size =
      static_cast<double>(std::min(count_, sampler_->max_window()));
  return report;
}

}  // namespace swsample
