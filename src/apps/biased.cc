// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/biased.h"

#include <cmath>

namespace swsample {

Result<std::unique_ptr<StepBiasedSampler>> StepBiasedSampler::Create(
    std::vector<BiasLevel> levels, uint64_t seed) {
  if (levels.empty()) {
    return Status::InvalidArgument("StepBiasedSampler: need >= 1 level");
  }
  double total = 0.0;
  for (size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].window < 1) {
      return Status::InvalidArgument(
          "StepBiasedSampler: window lengths must be >= 1");
    }
    if (i > 0 && levels[i].window <= levels[i - 1].window) {
      return Status::InvalidArgument(
          "StepBiasedSampler: window lengths must be strictly increasing");
    }
    if (!(levels[i].weight > 0.0) || !std::isfinite(levels[i].weight)) {
      return Status::InvalidArgument(
          "StepBiasedSampler: weights must be positive and finite");
    }
    total += levels[i].weight;
  }
  for (auto& level : levels) level.weight /= total;
  return std::unique_ptr<StepBiasedSampler>(
      new StepBiasedSampler(std::move(levels), seed));
}

StepBiasedSampler::StepBiasedSampler(std::vector<BiasLevel> levels,
                                     uint64_t seed)
    : levels_(std::move(levels)), rng_(seed) {
  samplers_.reserve(levels_.size());
  for (const BiasLevel& level : levels_) {
    samplers_.push_back(
        SequenceSwrSampler::Create(level.window, /*k=*/1, rng_.NextU64())
            .ValueOrDie());
  }
}

void StepBiasedSampler::Observe(const Item& item) {
  for (auto& sampler : samplers_) sampler->Observe(item);
}

std::optional<Item> StepBiasedSampler::Sample() {
  double u = rng_.Uniform01();
  size_t pick = levels_.size() - 1;
  double acc = 0.0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    acc += levels_[i].weight;
    if (u < acc) {
      pick = i;
      break;
    }
  }
  auto sample = samplers_[pick]->Sample();
  if (sample.empty()) return std::nullopt;
  return sample.front();
}

double StepBiasedSampler::InclusionProbability(uint64_t age) const {
  double p = 0.0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (age < levels_[i].window) {
      p += levels_[i].weight / static_cast<double>(levels_[i].window);
    }
  }
  return p;
}

uint64_t StepBiasedSampler::MemoryWords() const {
  uint64_t words = 0;
  for (const auto& sampler : samplers_) words += sampler->MemoryWords();
  return words;
}

}  // namespace swsample
