// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Step-biased sampling — the Section 5 extension: "Our algorithms can be
// naturally extended to some biased functions ... We can apply our methods
// to implement step biased functions, maintaining samples over each window
// with different lengths and combining the samples with corresponding
// probabilities."
//
// A step-biased function partitions recency into L nested windows
// n_1 < n_2 < ... < n_L and assigns each level a weight. Sampling picks a
// level with probability proportional to its weight and returns that
// level's uniform window sample, so more recent elements (members of more
// levels) are proportionally more likely — a staircase approximation of
// any monotone bias function.
//
// The per-level samplers are any SEQUENCE-model substrate from the sampler
// registry; the estimator wrapper ("biased-mean") reports the step-bias-
// weighted window mean  sum_l w_l * mean(W_l).

#ifndef SWSAMPLE_APPS_BIASED_H_
#define SWSAMPLE_APPS_BIASED_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/estimator.h"
#include "core/api.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// One recency level of a step-biased sampler.
struct BiasLevel {
  uint64_t window;  ///< window length n_j (must be strictly increasing)
  double weight;    ///< probability mass of this level (> 0)
};

/// Step-biased sampler over nested fixed-size windows.
class StepBiasedSampler {
 public:
  /// Creates a sampler from strictly increasing window lengths with
  /// positive weights (weights are normalized internally). Each level runs
  /// one single-sample copy of the sequence-model sampler registered under
  /// `substrate` ("bop-seq-swr" by default, matching the paper scheme).
  static Result<std::unique_ptr<StepBiasedSampler>> Create(
      std::vector<BiasLevel> levels, uint64_t seed,
      const std::string& substrate = "bop-seq-swr", uint64_t level_k = 1);

  /// Feeds one arrival.
  void Observe(const Item& item);

  /// Feeds a contiguous run of arrivals through each level's fast path.
  void ObserveBatch(std::span<const Item> items);

  /// Draws one biased sample; nullopt iff nothing observed. An element in
  /// the j-th-but-not-(j-1)-th window is returned with probability
  /// sum_{l >= j} weight_l / n_l.
  std::optional<Item> Sample();

  /// Probability that a Sample() call returns the element at `age` arrivals
  /// before the newest (age 0 = newest). The staircase bias function.
  double InclusionProbability(uint64_t age) const;

  /// The step-bias-weighted window mean sum_l w_l * mean(W_l), estimated
  /// from one fresh per-level sample draw; (value, total sample size).
  /// Value 0 before the first arrival.
  std::pair<double, uint64_t> WeightedMeanEstimate();

  /// Total memory words across levels.
  uint64_t MemoryWords() const;

  /// Heap bytes retained beyond the object footprint: level/sampler
  /// vector capacities plus every per-level sampler's own retention.
  uint64_t RetainedBytes() const {
    uint64_t bytes =
        levels_.capacity() * sizeof(BiasLevel) +
        samplers_.capacity() * sizeof(std::unique_ptr<WindowSampler>);
    for (const auto& sampler : samplers_) bytes += sampler->RetainedBytes();
    return bytes;
  }

  /// Length n_L of the largest (outermost) level window.
  uint64_t max_window() const { return levels_.back().window; }

  /// Checkpointing: the level-pick RNG plus every per-level sampler
  /// (levels/weights/substrate are configuration).
  bool persistable() const;
  void SaveState(BinaryWriter* w) const;
  bool LoadState(BinaryReader* r);

 private:
  StepBiasedSampler(std::vector<BiasLevel> levels, uint64_t seed);

  std::vector<BiasLevel> levels_;
  Rng rng_;
  std::vector<std::unique_ptr<WindowSampler>> samplers_;
};

/// WindowEstimator wrapper over StepBiasedSampler ("biased-mean"): the
/// recency-weighted window mean, a staircase approximation of any monotone
/// bias function over the last n arrivals.
class BiasedMeanEstimator final : public WindowEstimator {
 public:
  /// Takes ownership of a configured step-biased sampler.
  static Result<std::unique_ptr<BiasedMeanEstimator>> Create(
      std::unique_ptr<StepBiasedSampler> sampler);

  void Observe(const Item& item) override {
    sampler_->Observe(item);
    ++count_;
  }
  void ObserveBatch(std::span<const Item> items) override {
    sampler_->ObserveBatch(items);
    count_ += items.size();
  }
  void AdvanceTime(Timestamp) override {}  // sequence windows only
  EstimateReport Estimate() override;
  uint64_t MemoryWords() const override { return sampler_->MemoryWords(); }
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + sizeof(StepBiasedSampler) +
           sampler_->RetainedBytes();
  }
  const char* name() const override { return "biased-mean"; }
  /// Shard means combine as the occupancy-weighted mean of the union.
  EstimateMergeKind merge_kind() const override {
    return EstimateMergeKind::kWeightedMean;
  }
  bool persistable() const override { return sampler_->persistable(); }
  void SaveState(BinaryWriter* w) const override {
    w->PutU64(count_);
    sampler_->SaveState(w);
  }
  bool LoadState(BinaryReader* r) override {
    return r->GetU64(&count_) && sampler_->LoadState(r);
  }

  StepBiasedSampler& sampler() { return *sampler_; }

 private:
  explicit BiasedMeanEstimator(std::unique_ptr<StepBiasedSampler> sampler)
      : sampler_(std::move(sampler)) {}

  std::unique_ptr<StepBiasedSampler> sampler_;
  uint64_t count_ = 0;  ///< arrivals, for the outer-window occupancy
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_BIASED_H_
