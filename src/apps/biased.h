// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Step-biased sampling -- the Section 5 extension: "Our algorithms can be
// naturally extended to some biased functions ... We can apply our methods
// to implement step biased functions, maintaining samples over each window
// with different lengths and combining the samples with corresponding
// probabilities."
//
// A step-biased function partitions recency into L nested windows
// n_1 < n_2 < ... < n_L and assigns each level a weight. Sampling picks a
// level with probability proportional to its weight and returns that
// level's uniform window sample, so more recent elements (members of more
// levels) are proportionally more likely -- a staircase approximation of
// any monotone bias function.

#ifndef SWSAMPLE_APPS_BIASED_H_
#define SWSAMPLE_APPS_BIASED_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/seq_swr.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// One recency level of a step-biased sampler.
struct BiasLevel {
  uint64_t window;  ///< window length n_j (must be strictly increasing)
  double weight;    ///< probability mass of this level (> 0)
};

/// Step-biased sampler over nested fixed-size windows.
class StepBiasedSampler {
 public:
  /// Creates a sampler from strictly increasing window lengths with
  /// positive weights (weights are normalized internally).
  static Result<std::unique_ptr<StepBiasedSampler>> Create(
      std::vector<BiasLevel> levels, uint64_t seed);

  /// Feeds one arrival.
  void Observe(const Item& item);

  /// Draws one biased sample; nullopt iff nothing observed. An element in
  /// the j-th-but-not-(j-1)-th window is returned with probability
  /// sum_{l >= j} weight_l / n_l.
  std::optional<Item> Sample();

  /// Probability that a Sample() call returns the element at `age` arrivals
  /// before the newest (age 0 = newest). The staircase bias function.
  double InclusionProbability(uint64_t age) const;

  /// Total memory words across levels.
  uint64_t MemoryWords() const;

 private:
  StepBiasedSampler(std::vector<BiasLevel> levels, uint64_t seed);

  std::vector<BiasLevel> levels_;
  Rng rng_;
  std::vector<std::unique_ptr<SequenceSwrSampler>> samplers_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_BIASED_H_
