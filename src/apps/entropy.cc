// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/entropy.h"

#include <cmath>

namespace swsample {

Result<std::unique_ptr<SlidingEntropyEstimator>>
SlidingEntropyEstimator::Create(uint64_t n, uint64_t r, uint64_t seed) {
  if (n < 1) {
    return Status::InvalidArgument("SlidingEntropyEstimator: n must be >= 1");
  }
  if (r < 1) {
    return Status::InvalidArgument("SlidingEntropyEstimator: r must be >= 1");
  }
  return std::unique_ptr<SlidingEntropyEstimator>(
      new SlidingEntropyEstimator(n, r, seed));
}

SlidingEntropyEstimator::SlidingEntropyEstimator(uint64_t n, uint64_t r,
                                                 uint64_t seed)
    : rng_(seed) {
  units_.reserve(r);
  for (uint64_t i = 0; i < r; ++i) {
    units_.emplace_back(n, OnSampled{}, OnArrival{});
  }
}

void SlidingEntropyEstimator::Observe(const Item& item) {
  for (Unit& unit : units_) unit.Observe(item, rng_);
}

double SlidingEntropyEstimator::Estimate() const {
  if (units_.front().count() == 0) return 0.0;
  const double n = static_cast<double>(units_.front().WindowSize());
  double acc = 0.0;
  uint64_t live = 0;
  for (const Unit& unit : units_) {
    const auto& s = unit.Current();
    if (!s) continue;
    const double c = static_cast<double>(s->payload.count);
    double est = c * std::log2(n / c);
    if (c > 1.0) est -= (c - 1.0) * std::log2(n / (c - 1.0));
    acc += est;
    ++live;
  }
  return live ? acc / static_cast<double>(live) : 0.0;
}

uint64_t SlidingEntropyEstimator::WindowSize() const {
  return units_.front().WindowSize();
}

}  // namespace swsample
