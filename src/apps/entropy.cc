// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/entropy.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace swsample {

Result<std::unique_ptr<EntropyEstimator>> EntropyEstimator::Create(
    const Substrate::Params& params) {
  auto substrate =
      Substrate::Create(params, CountOnSampled{}, CountOnArrival{});
  if (!substrate.ok()) return substrate.status();
  return std::unique_ptr<EntropyEstimator>(
      new EntropyEstimator(std::move(substrate).ValueOrDie()));
}

EstimateReport EntropyEstimator::Estimate() {
  EstimateReport report;
  report.metric = "H-bits";
  const double n = substrate_.WindowSizeEstimate();
  report.window_size = n;
  if (n <= 0.0) return report;
  double acc = 0.0;
  report.support = substrate_.ForEachSample(
      [&](const Item&, const CountPayload& payload) {
        const double c = static_cast<double>(payload.count);
        // CCM basic estimator; the timestamp n-hat may dip below c under
        // EH error, so clamp the log arguments at 1 (the estimator stays
        // consistent as eps -> 0; the clamp is a no-op when n is exact).
        double est = c * std::log2(std::max(n / c, 1.0));
        if (c > 1.0) {
          est -= (c - 1.0) * std::log2(std::max(n / (c - 1.0), 1.0));
        }
        acc += est;
      });
  if (report.support > 0) {
    report.value = acc / static_cast<double>(report.support);
  }
  return report;
}

}  // namespace swsample
