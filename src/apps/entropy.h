// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Empirical-entropy estimation over sliding windows — Corollary 5.4.
//
// The Chakrabarti-Cormode-McGregor (SODA'07) basic estimator: for a uniform
// window position p with forward occurrence count c in a window of size n,
//
//   Est = c * log2(n/c) - (c-1) * log2(n/(c-1))     (second term 0 at c=1)
//
// telescopes to E[Est] = H = -sum (x_i/n) log2(x_i/n). CCM's full algorithm
// adds a max-frequency split to control variance at tiny entropies; we
// implement the basic unbiased estimator (documented simplification in
// DESIGN.md) — the point reproduced here is Corollary 5.4's claim that the
// sampling substrate transfers to sliding windows with worst-case memory
// preserved, unlike the priority-sampling variant CCM had to use. Registry
// name "ccm-entropy", over any payload-capable substrate.

#ifndef SWSAMPLE_APPS_ENTROPY_H_
#define SWSAMPLE_APPS_ENTROPY_H_

#include <cstdint>
#include <memory>

#include "apps/estimator.h"
#include "apps/payload_substrate.h"
#include "stream/item.h"
#include "util/status.h"

namespace swsample {

/// Streaming empirical-entropy (base-2) estimator ("ccm-entropy").
class EntropyEstimator final : public WindowEstimator {
 public:
  using Substrate =
      PayloadSubstrate<CountPayload, CountOnSampled, CountOnArrival>;

  /// Creates an estimator averaging `params.r` independent units over the
  /// substrate family `params.kind`.
  static Result<std::unique_ptr<EntropyEstimator>> Create(
      const Substrate::Params& params);

  void Observe(const Item& item) override { substrate_.Observe(item); }
  void ObserveBatch(std::span<const Item> items) override {
    substrate_.ObserveBatch(items);
  }
  void AdvanceTime(Timestamp now) override { substrate_.AdvanceTime(now); }
  EstimateReport Estimate() override;
  uint64_t MemoryWords() const override { return substrate_.MemoryWords(); }
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + substrate_.RetainedBytes();
  }
  const char* name() const override { return "ccm-entropy"; }
  /// Shard entropies combine by the Shannon grouping rule when shards
  /// hold disjoint key sets (key-hash partitioning).
  EstimateMergeKind merge_kind() const override {
    return EstimateMergeKind::kEntropy;
  }
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override { substrate_.SaveState(w); }
  bool LoadState(BinaryReader* r) override {
    return substrate_.LoadState(r);
  }

 private:
  explicit EntropyEstimator(Substrate substrate)
      : substrate_(std::move(substrate)) {}

  Substrate substrate_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_ENTROPY_H_
