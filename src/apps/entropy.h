// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Empirical-entropy estimation over sliding windows -- Corollary 5.4.
//
// The Chakrabarti-Cormode-McGregor (SODA'07) basic estimator: for a uniform
// window position p with forward occurrence count c in a window of size n,
//
//   Est = c * log2(n/c) - (c-1) * log2(n/(c-1))     (second term 0 at c=1)
//
// telescopes to E[Est] = H = -sum (x_i/n) log2(x_i/n). CCM's full algorithm
// adds a max-frequency split to control variance at tiny entropies; we
// implement the basic unbiased estimator (documented simplification in
// DESIGN.md) -- the point reproduced here is Corollary 5.4's claim that the
// sampling substrate transfers to sliding windows with worst-case memory
// preserved, unlike the priority-sampling variant CCM had to use.

#ifndef SWSAMPLE_APPS_ENTROPY_H_
#define SWSAMPLE_APPS_ENTROPY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/payload_window.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Streaming empirical-entropy (base-2) estimator over a fixed-size window.
class SlidingEntropyEstimator {
 public:
  /// Creates an estimator over windows of `n` arrivals averaging `r`
  /// independent units.
  static Result<std::unique_ptr<SlidingEntropyEstimator>> Create(
      uint64_t n, uint64_t r, uint64_t seed);

  /// Feeds one arrival.
  void Observe(const Item& item);

  /// Current entropy estimate over the active window (0 if empty).
  double Estimate() const;

  /// Window fill level.
  uint64_t WindowSize() const;

 private:
  struct CountPayload {
    uint64_t value = 0;
    uint64_t count = 0;
  };
  struct OnSampled {
    CountPayload operator()(const Item& item) const {
      return CountPayload{item.value, 1};
    }
  };
  struct OnArrival {
    void operator()(CountPayload& p, const Item& item) const {
      if (item.value == p.value) ++p.count;
    }
  };
  using Unit = PayloadWindowUnit<CountPayload, OnSampled, OnArrival>;

  SlidingEntropyEstimator(uint64_t n, uint64_t r, uint64_t seed);

  Rng rng_;
  std::vector<Unit> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_ENTROPY_H_
