// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Cross-shard estimate combination (apps/estimator.h). kSum and kEntropy
// are exact identities over disjoint shard windows: F_k and counts are
// additive across disjoint key sets, and the entropy of a mixture obeys
// the Shannon grouping rule H = sum_s p_s H_s + H(p_1..p_S) with
// p_s = n_s / n.

#include <cmath>

#include "apps/estimator.h"
#include "util/macros.h"

namespace swsample {

Result<EstimateReport> MergeEstimates(
    EstimateMergeKind kind, std::span<const EstimateReport> shards) {
  if (kind == EstimateMergeKind::kNone) {
    return Status::InvalidArgument(
        "MergeEstimates: estimator is not merge-capable");
  }
  if (shards.empty()) {
    return Status::InvalidArgument("MergeEstimates: no shard reports");
  }
  EstimateReport merged;
  merged.metric = shards.front().metric;
  for (const EstimateReport& shard : shards) {
    merged.window_size += shard.window_size;
    merged.support += shard.support;
  }
  switch (kind) {
    case EstimateMergeKind::kSum:
    case EstimateMergeKind::kCount:
      for (const EstimateReport& shard : shards) merged.value += shard.value;
      break;
    case EstimateMergeKind::kWeightedMean: {
      double weight_total = 0.0;
      for (const EstimateReport& shard : shards) {
        merged.value += shard.window_size * shard.value;
        weight_total += shard.window_size;
      }
      merged.value = weight_total > 0 ? merged.value / weight_total : 0.0;
      break;
    }
    case EstimateMergeKind::kEntropy: {
      const double n = merged.window_size;
      if (n <= 0) break;  // every shard empty: entropy 0
      for (const EstimateReport& shard : shards) {
        const double ns = shard.window_size;
        if (ns <= 0) continue;
        merged.value += (ns / n) * (shard.value + std::log2(n / ns));
      }
      break;
    }
    case EstimateMergeKind::kNone:
      SWS_CHECK(false);  // rejected above
  }
  return merged;
}

Result<EstimateReport> MergedEstimate(
    std::span<WindowEstimator* const> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("MergedEstimate: no shards");
  }
  const EstimateMergeKind kind = shards.front()->merge_kind();
  std::vector<EstimateReport> reports;
  reports.reserve(shards.size());
  for (WindowEstimator* shard : shards) {
    SWS_CHECK(shard != nullptr);
    if (shard->merge_kind() != kind) {
      return Status::InvalidArgument(
          "MergedEstimate: shards disagree on merge kind — replicas must be "
          "constructed from one estimator configuration");
    }
    reports.push_back(shard->Estimate());
  }
  return MergeEstimates(kind, reports);
}

}  // namespace swsample
