// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Common interface of all sliding-window estimators — the Theorem 5.1
/// products. The theorem is a black-box translation: a sampling-based
/// streaming estimator becomes a sliding-window estimator by swapping its
/// sampling substrate for a window sampler. A WindowEstimator is one such
/// translated algorithm: it ingests the stream like a sampler (it IS a
/// StreamSink, so the batched StreamDriver pumps it unchanged) and answers
/// queries with a typed EstimateReport instead of a raw sample set.
///
/// Estimators are constructed by name through the estimator registry
/// (apps/estimator_registry.h), which pairs each estimator with a sampling
/// substrate named by its sampler-registry string.
///
/// Ownership: estimators come out of `CreateEstimator` as
/// `Result<std::unique_ptr<WindowEstimator>>` and are owned by the caller;
/// an estimator owns its substrate outright.
///
/// Thread-safety: an estimator is NOT thread-safe — one thread per
/// instance, like every StreamSink. The sharded driver runs one replica
/// per shard and combines the per-shard reports through merge_kind()
/// below.
///
/// Status conventions: construction and merge errors are `Status` values
/// (InvalidArgument for bad configs or incompatible merges), never
/// exceptions; Observe/Estimate never allocate a Status.

#ifndef SWSAMPLE_APPS_ESTIMATOR_H_
#define SWSAMPLE_APPS_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/api.h"
#include "stream/item.h"
#include "util/status.h"

namespace swsample {

/// One point estimate with its provenance.
struct EstimateReport {
  /// The point estimate of the windowed quantity (0 on an empty window).
  double value = 0.0;
  /// What `value` estimates, e.g. "F2", "H-bits", "T3", "q0.50", "count".
  std::string metric;
  /// The window size the estimate was scaled by: exact for sequence and
  /// oracle substrates, the (1 +/- eps) n-hat for timestamp substrates,
  /// 0 when the estimator does not track it.
  double window_size = 0.0;
  /// Live sampling units / sample points behind the estimate.
  uint64_t support = 0;
};

/// How per-shard estimates of one quantity combine into a global estimate
/// when the stream is partitioned across shard replicas. kSum and kEntropy
/// are per-KEY identities: they require shards with DISJOINT key sets
/// (key-hash partitioning) — under round-robin chunking a key's
/// occurrences split across shards and sum-of-shard-F_k underestimates
/// the global moment. kCount and kWeightedMean only need the shards to
/// partition the window's ELEMENTS, which every partition mode provides.
enum class EstimateMergeKind {
  kNone,          ///< not merge-capable (quantiles, triangles)
  kSum,           ///< value adds across key-disjoint shards (F_k)
  kCount,         ///< value adds across any element partition (counts)
  kWeightedMean,  ///< window_size-weighted mean of shard values (means)
  kEntropy,       ///< Shannon grouping rule over key-disjoint shards
};

/// True when `kind` is only exact over key-disjoint shards — harnesses
/// use this to default to key-hash partitioning.
inline bool MergeNeedsKeyDisjointShards(EstimateMergeKind kind) {
  return kind == EstimateMergeKind::kSum ||
         kind == EstimateMergeKind::kEntropy;
}

/// Abstract sliding-window estimator.
///
/// Inherits the full ingestion contract of StreamSink: consecutive indices,
/// non-decreasing timestamps, ObserveBatch distributionally identical to
/// item-wise Observe, AdvanceTime moving the clock across empty steps.
class WindowEstimator : public StreamSink {
 public:
  /// Computes the current estimate over the active window. May consume
  /// fresh randomness (substrates redraw samples per query); the guarantee
  /// is on the per-call estimate distribution.
  virtual EstimateReport Estimate() = 0;

  /// How shard-level Estimate() reports combine (see EstimateMergeKind);
  /// kNone means this estimator cannot be sharded meaningfully.
  virtual EstimateMergeKind merge_kind() const {
    return EstimateMergeKind::kNone;
  }
};

/// Combines per-shard reports per `kind`. The merged window_size and
/// support are the shard sums; the merged value is the sum (kSum), the
/// window_size-weighted mean (kWeightedMean), or the Shannon grouping
/// combination H = sum_s (n_s/n) * (H_s + log2(n/n_s)) over non-empty
/// shards (kEntropy). InvalidArgument on kNone or an empty span.
Result<EstimateReport> MergeEstimates(EstimateMergeKind kind,
                                      std::span<const EstimateReport> shards);

/// Queries every shard replica and merges the reports under the shards'
/// common merge_kind(). Fails when shards is empty, the kinds disagree, or
/// the kind is kNone.
Result<EstimateReport> MergedEstimate(std::span<WindowEstimator* const> shards);

}  // namespace swsample

#endif  // SWSAMPLE_APPS_ESTIMATOR_H_
