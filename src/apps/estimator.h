// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Common interface of all sliding-window estimators — the Theorem 5.1
// products. The theorem is a black-box translation: a sampling-based
// streaming estimator becomes a sliding-window estimator by swapping its
// sampling substrate for a window sampler. A WindowEstimator is one such
// translated algorithm: it ingests the stream like a sampler (it IS a
// StreamSink, so the batched StreamDriver pumps it unchanged) and answers
// queries with a typed EstimateReport instead of a raw sample set.
//
// Estimators are constructed by name through the estimator registry
// (apps/estimator_registry.h), which pairs each estimator with a sampling
// substrate named by its sampler-registry string.

#ifndef SWSAMPLE_APPS_ESTIMATOR_H_
#define SWSAMPLE_APPS_ESTIMATOR_H_

#include <cstdint>
#include <string>

#include "core/api.h"
#include "stream/item.h"

namespace swsample {

/// One point estimate with its provenance.
struct EstimateReport {
  /// The point estimate of the windowed quantity (0 on an empty window).
  double value = 0.0;
  /// What `value` estimates, e.g. "F2", "H-bits", "T3", "q0.50", "count".
  std::string metric;
  /// The window size the estimate was scaled by: exact for sequence and
  /// oracle substrates, the (1 +/- eps) n-hat for timestamp substrates,
  /// 0 when the estimator does not track it.
  double window_size = 0.0;
  /// Live sampling units / sample points behind the estimate.
  uint64_t support = 0;
};

/// Abstract sliding-window estimator.
///
/// Inherits the full ingestion contract of StreamSink: consecutive indices,
/// non-decreasing timestamps, ObserveBatch distributionally identical to
/// item-wise Observe, AdvanceTime moving the clock across empty steps.
class WindowEstimator : public StreamSink {
 public:
  /// Computes the current estimate over the active window. May consume
  /// fresh randomness (substrates redraw samples per query); the guarantee
  /// is on the per-call estimate distribution.
  virtual EstimateReport Estimate() = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_ESTIMATOR_H_
