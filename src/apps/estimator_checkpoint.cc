// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/estimator_checkpoint.h"

#include <cmath>
#include <utility>

#include "core/checkpoint.h"

namespace swsample {
namespace {

/// Caps a corrupt bias-level count before allocation (levels are nested
/// windows — a handful in any real configuration).
constexpr uint64_t kMaxBiasLevels = 1024;

}  // namespace

void SaveEstimatorConfig(const EstimatorConfig& config, BinaryWriter* w) {
  w->PutString(config.substrate);
  w->PutU64(config.window_n);
  w->PutI64(config.window_t);
  w->PutU64(config.r);
  w->PutU64(config.seed);
  w->PutU64(config.moment);
  w->PutU64(config.num_vertices);
  w->PutDouble(config.count_eps);
  w->PutDouble(config.q);
  w->PutU64(config.oversample_factor);
  w->PutU64(config.bias_levels.size());
  for (const BiasLevel& level : config.bias_levels) {
    w->PutU64(level.window);
    w->PutDouble(level.weight);
  }
}

bool LoadEstimatorConfig(BinaryReader* r, EstimatorConfig* config) {
  uint64_t moment = 0, vertices = 0, levels = 0;
  if (!r->GetString(&config->substrate) || !r->GetU64(&config->window_n) ||
      !r->GetI64(&config->window_t) || !r->GetU64(&config->r) ||
      !r->GetU64(&config->seed) || !r->GetU64(&moment) ||
      !r->GetU64(&vertices) || !r->GetDouble(&config->count_eps) ||
      !r->GetDouble(&config->q) || !r->GetU64(&config->oversample_factor) ||
      !r->GetU64(&levels)) {
    return false;
  }
  if (config->r > kMaxCheckpointUnits ||
      config->oversample_factor > kMaxCheckpointUnits ||
      moment > 0xffffffffu || vertices > 0xffffffffu ||
      levels > kMaxBiasLevels || !std::isfinite(config->count_eps) ||
      !std::isfinite(config->q)) {
    return false;
  }
  config->moment = static_cast<uint32_t>(moment);
  config->num_vertices = static_cast<uint32_t>(vertices);
  config->bias_levels.clear();
  for (uint64_t i = 0; i < levels; ++i) {
    BiasLevel level;
    if (!r->GetU64(&level.window) || !r->GetDouble(&level.weight)) {
      return false;
    }
    config->bias_levels.push_back(level);
  }
  return true;
}

Result<std::string> SaveEstimator(const WindowEstimator& estimator,
                                  const EstimatorConfig& config) {
  if (!estimator.persistable()) {
    return Status::FailedPrecondition(std::string(estimator.name()) +
                                      ": estimator is not persistable");
  }
  if (!IsRegisteredEstimator(estimator.name())) {
    return Status::InvalidArgument(
        std::string(estimator.name()) +
        ": SaveEstimator requires a registry-constructed estimator");
  }
  BinaryWriter w;
  WriteCheckpointHeader(CheckpointKind::kEstimator, &w);
  w.PutString(estimator.name());
  SaveEstimatorConfig(config, &w);
  estimator.SaveState(&w);
  return w.Release();
}

Result<std::unique_ptr<WindowEstimator>> RestoreEstimator(
    std::string_view blob) {
  BinaryReader r(blob);
  CheckpointKind kind;
  if (!ReadCheckpointHeader(&r, &kind)) {
    return Status::InvalidArgument(
        "RestoreEstimator: bad magic, unsupported version, or unknown kind");
  }
  if (kind != CheckpointKind::kEstimator) {
    return Status::InvalidArgument(
        "RestoreEstimator: blob does not contain an estimator checkpoint");
  }
  std::string name;
  EstimatorConfig config;
  if (!r.GetString(&name) || !LoadEstimatorConfig(&r, &config)) {
    return Status::InvalidArgument(
        "RestoreEstimator: truncated or invalid envelope");
  }
  auto estimator = CreateEstimator(name, config);
  if (!estimator.ok()) return estimator.status();
  std::unique_ptr<WindowEstimator> restored =
      std::move(estimator).ValueOrDie();
  if (!restored->LoadState(&r) || !r.AtEnd()) {
    return Status::InvalidArgument(
        name + ": truncated, corrupt, or trailing checkpoint state");
  }
  return restored;
}

}  // namespace swsample
