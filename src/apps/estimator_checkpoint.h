// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Estimator half of the checkpoint envelope (core/checkpoint.h):
/// registry-level persistence for every WindowEstimator. A blob carries
/// the estimator's registry name plus the full EstimatorConfig (substrate
/// name included — the Theorem 5.1 swap survives the round trip), then
/// the SaveState payload; RestoreEstimator reconstructs the exact object
/// in any process by re-running CreateEstimator on the embedded config
/// and refilling it with StreamSink::LoadState.
///
/// Status conventions match core/checkpoint.h: truncation, unknown
/// names/substrates, invalid configs and trailing bytes are
/// InvalidArgument, never a crash.

#ifndef SWSAMPLE_APPS_ESTIMATOR_CHECKPOINT_H_
#define SWSAMPLE_APPS_ESTIMATOR_CHECKPOINT_H_

#include <memory>
#include <string>
#include <string_view>

#include "apps/estimator.h"
#include "apps/estimator_registry.h"
#include "util/serial.h"
#include "util/status.h"

namespace swsample {

/// EstimatorConfig wire codec (every field, fixed order).
void SaveEstimatorConfig(const EstimatorConfig& config, BinaryWriter* w);
bool LoadEstimatorConfig(BinaryReader* r, EstimatorConfig* config);

/// Serializes a registry-constructed estimator into a self-describing
/// blob. `config` must be the configuration the estimator was constructed
/// from. Fails when the estimator (or its substrate) is not persistable
/// or its name() is not a registry key.
Result<std::string> SaveEstimator(const WindowEstimator& estimator,
                                  const EstimatorConfig& config);

/// Reconstructs the exact estimator a SaveEstimator blob describes; the
/// result resumes the saved estimator's behaviour bit for bit.
Result<std::unique_ptr<WindowEstimator>> RestoreEstimator(
    std::string_view blob);

}  // namespace swsample

#endif  // SWSAMPLE_APPS_ESTIMATOR_CHECKPOINT_H_
