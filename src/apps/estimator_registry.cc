// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/estimator_registry.h"

#include <utility>

#include "apps/entropy.h"
#include "apps/freq_moments.h"
#include "apps/payload_substrate.h"
#include "apps/quantiles.h"
#include "apps/triangles.h"
#include "apps/window_count.h"
#include "core/registry.h"

namespace swsample {
namespace {

using EstimatorResult = Result<std::unique_ptr<WindowEstimator>>;

/// The payload-capable substrate families (header table): the k-sample
/// with-replacement names alias the single-sample schemes because Theorems
/// 2.1/3.9 build them as k independent copies.
const std::vector<const char*> kPayloadSubstrates = {
    "bop-seq-single", "bop-seq-swr", "bop-ts-single",
    "bop-ts-swr",     "exact-seq",   "exact-ts",
};

std::vector<const char*> AllSamplerNames() {
  std::vector<const char*> names;
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    names.push_back(spec.name);
  }
  return names;
}

std::vector<const char*> SequenceSamplerNames() {
  std::vector<const char*> names;
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    if (spec.model == WindowModel::kSequence) names.push_back(spec.name);
  }
  return names;
}

/// Maps a payload-compatible substrate name to its substrate family.
SubstrateKind PayloadKindOf(std::string_view substrate) {
  if (substrate == "bop-seq-single" || substrate == "bop-seq-swr") {
    return SubstrateKind::kSeqUnits;
  }
  if (substrate == "bop-ts-single" || substrate == "bop-ts-swr") {
    return SubstrateKind::kTsUnits;
  }
  return substrate == "exact-seq" ? SubstrateKind::kExactSeq
                                  : SubstrateKind::kExactTs;
}

/// Everything CreateEstimator resolves before dispatching to a factory.
struct ResolvedConfig {
  const SamplerSpec* substrate;  ///< the named substrate's sampler spec
};

template <typename T>
EstimatorResult Widen(Result<std::unique_ptr<T>> r) {
  if (!r.ok()) return r.status();
  return std::unique_ptr<WindowEstimator>(std::move(r).ValueOrDie());
}

PayloadSubstrateParams PayloadParams(const EstimatorConfig& config,
                                     const SamplerSpec& substrate) {
  PayloadSubstrateParams params;
  params.kind = PayloadKindOf(substrate.name);
  params.window_n = config.window_n;
  params.window_t = config.window_t;
  params.r = config.r;
  params.count_eps = config.count_eps;
  params.seed = config.seed;
  return params;
}

EstimatorResult MakeQuantile(const EstimatorConfig& config,
                             const ResolvedConfig& resolved) {
  // A single-sample substrate cannot honor a DKW sample size r > 1, and
  // silently degrading the rank guarantee would betray the estimator's
  // name — require the caller to opt into r = 1 explicitly.
  if (resolved.substrate->single_sample && config.r != 1) {
    return Status::InvalidArgument(
        std::string("dkw-quantile: substrate ") + resolved.substrate->name +
        " maintains a single sample; set config.r = 1 (the rank guarantee"
        " then degenerates to a uniform window position)");
  }
  SamplerConfig sampler_config;
  sampler_config.window_n = config.window_n;
  sampler_config.window_t = config.window_t;
  sampler_config.k = config.r;
  sampler_config.seed = config.seed;
  sampler_config.oversample_factor = config.oversample_factor;
  // Quantiles want distinct ranks where the substrate offers the choice.
  sampler_config.with_replacement = false;
  auto sampler = CreateSampler(resolved.substrate->name, sampler_config);
  if (!sampler.ok()) return sampler.status();
  return Widen(
      QuantileEstimator::Create(std::move(sampler).ValueOrDie(), config.q));
}

EstimatorResult MakeBiasedMean(const EstimatorConfig& config,
                               const ResolvedConfig& resolved) {
  std::vector<BiasLevel> levels = config.bias_levels;
  if (levels.empty()) {
    // Default staircase: recent quarter window at equal weight with the
    // full window (degenerates to one level for tiny windows).
    const uint64_t quarter = config.window_n / 4;
    if (quarter >= 1 && quarter < config.window_n) {
      levels.push_back(BiasLevel{quarter, 1.0});
    }
    levels.push_back(BiasLevel{config.window_n, 1.0});
  }
  auto sampler = StepBiasedSampler::Create(
      std::move(levels), config.seed, resolved.substrate->name, config.r);
  if (!sampler.ok()) return sampler.status();
  return Widen(BiasedMeanEstimator::Create(std::move(sampler).ValueOrDie()));
}

EstimatorResult MakeWindowCount(const EstimatorConfig& config,
                                const ResolvedConfig& resolved) {
  WindowCountEstimator::Mode mode;
  if (resolved.substrate->model == WindowModel::kSequence) {
    mode = WindowCountEstimator::Mode::kSequence;
  } else if (std::string_view(resolved.substrate->name) == "exact-ts") {
    mode = WindowCountEstimator::Mode::kTsExact;
  } else {
    mode = WindowCountEstimator::Mode::kTsHistogram;
  }
  return Widen(WindowCountEstimator::Create(mode, config.window_n,
                                            config.window_t,
                                            config.count_eps));
}

struct Entry {
  EstimatorSpec spec;
  EstimatorResult (*make)(const EstimatorConfig&, const ResolvedConfig&);
};

const std::vector<Entry>& Entries() {
  static const std::vector<Entry>* entries = new std::vector<Entry>{
      {{"ams-fk", "F_k", "bop-seq-single", kPayloadSubstrates,
        "AMS frequency moment F_k over a sliding window (Cor 5.2)"},
       +[](const EstimatorConfig& c, const ResolvedConfig& r) {
         return Widen(
             FkEstimator::Create(PayloadParams(c, *r.substrate), c.moment));
       }},
      {{"ccm-entropy", "H-bits", "bop-seq-single", kPayloadSubstrates,
        "CCM empirical entropy (bits) over a sliding window (Cor 5.4)"},
       +[](const EstimatorConfig& c, const ResolvedConfig& r) {
         return Widen(EntropyEstimator::Create(PayloadParams(c, *r.substrate)));
       }},
      {{"buriol-triangles", "T3", "bop-seq-single", kPayloadSubstrates,
        "Buriol et al. triangle count over a sliding edge window (Cor 5.3)"},
       +[](const EstimatorConfig& c, const ResolvedConfig& r) {
         return Widen(TriangleEstimator::Create(PayloadParams(c, *r.substrate),
                                                c.num_vertices));
       }},
      {{"dkw-quantile", "q-quantile", "bop-seq-swor", AllSamplerNames(),
        "windowed quantile from a k-sample, DKW rank error (Thm 5.1)"},
       MakeQuantile},
      {{"biased-mean", "biased-mean", "bop-seq-swr", SequenceSamplerNames(),
        "step-bias-weighted recency mean over nested windows (Sec 5)"},
       MakeBiasedMean},
      {{"window-count", "count", "bop-ts-single", AllSamplerNames(),
        "active-element count: exact (sequence) or DGIM n-hat (timestamp)"},
       MakeWindowCount},
  };
  return *entries;
}

const Entry* FindEntry(std::string_view name) {
  for (const Entry& entry : Entries()) {
    if (name == entry.spec.name) return &entry;
  }
  return nullptr;
}

bool SpecSupports(const EstimatorSpec& spec, std::string_view substrate) {
  for (const char* name : spec.substrates) {
    if (substrate == name) return true;
  }
  return false;
}

std::string SubstrateList(const EstimatorSpec& spec) {
  std::string out;
  for (const char* name : spec.substrates) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

const std::vector<EstimatorSpec>& RegisteredEstimators() {
  static const std::vector<EstimatorSpec>* specs = [] {
    auto* v = new std::vector<EstimatorSpec>();
    for (const Entry& entry : Entries()) v->push_back(entry.spec);
    return v;
  }();
  return *specs;
}

const EstimatorSpec* FindEstimatorSpec(std::string_view name) {
  const Entry* entry = FindEntry(name);
  return entry == nullptr ? nullptr : &entry->spec;
}

bool IsRegisteredEstimator(std::string_view name) {
  return FindEstimatorSpec(name) != nullptr;
}

bool EstimatorSupportsSubstrate(std::string_view name,
                                std::string_view substrate) {
  const EstimatorSpec* spec = FindEstimatorSpec(name);
  return spec != nullptr && IsRegisteredSampler(substrate) &&
         SpecSupports(*spec, substrate);
}

Result<std::unique_ptr<WindowEstimator>> CreateEstimator(
    std::string_view name, const EstimatorConfig& config) {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::InvalidArgument("unknown estimator \"" +
                                   std::string(name) + "\"; registered: " +
                                   RegisteredEstimatorNames());
  }
  const std::string substrate_name = config.substrate.empty()
                                         ? entry->spec.default_substrate
                                         : config.substrate;
  const SamplerSpec* substrate = FindSamplerSpec(substrate_name);
  if (substrate == nullptr) {
    return Status::InvalidArgument(
        std::string(entry->spec.name) + ": unknown substrate \"" +
        substrate_name + "\"; registered samplers: " +
        RegisteredSamplerNames());
  }
  if (!SpecSupports(entry->spec, substrate_name)) {
    return Status::InvalidArgument(
        std::string(entry->spec.name) + ": substrate \"" + substrate_name +
        "\" is not compatible; compatible substrates: " +
        SubstrateList(entry->spec));
  }
  // Validate the window parameter of the substrate's model up front so
  // every estimator rejects a missing/invalid window uniformly.
  if (substrate->model == WindowModel::kSequence && config.window_n < 1) {
    return Status::InvalidArgument(std::string(entry->spec.name) +
                                   ": config.window_n must be >= 1 for "
                                   "sequence substrate " + substrate_name);
  }
  if (substrate->model == WindowModel::kTimestamp && config.window_t < 1) {
    return Status::InvalidArgument(std::string(entry->spec.name) +
                                   ": config.window_t must be >= 1 for "
                                   "timestamp substrate " + substrate_name);
  }
  if (config.r < 1) {
    return Status::InvalidArgument(std::string(entry->spec.name) +
                                   ": config.r must be >= 1");
  }
  return entry->make(config, ResolvedConfig{substrate});
}

std::string RegisteredEstimatorNames() {
  std::string out;
  for (const Entry& entry : Entries()) {
    if (!out.empty()) out += ", ";
    out += entry.spec.name;
  }
  return out;
}

}  // namespace swsample
