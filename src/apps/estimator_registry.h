// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Estimator registry: every sliding-window estimator in the library is
/// constructible from a string name, a sampling substrate named by its
/// SAMPLER-registry string, and one common configuration struct. This is
/// Theorem 5.1 realized as code: the theorem turns any sampling-based
/// streaming estimator into a sliding-window estimator by swapping its
/// sampling substrate, and here the swap is a config field. Harnesses,
/// examples, benchmarks, the CLI and the sharded driver's replica factory
/// drive estimators through this single entry point; benches E8-E12
/// sweep the estimator x substrate grid.
///
/// Ownership: CreateEstimator returns a caller-owned unique_ptr that owns
/// its substrate outright; the registry holds only static specs.
///
/// Thread-safety: lookups are safe from any thread (immutable tables);
/// constructed estimators follow core/api.h's one-thread-per-instance
/// rule.
///
/// Status conventions: unknown names, unknown/incompatible substrates and
/// invalid configurations return InvalidArgument with the compatible set
/// spelled out in the message, never exceptions.
//
// Registered names:
//
//   name              metric   paper section / source
//   ----------------  -------  ---------------------------------------
//   ams-fk            F_k      Cor 5.2, Alon-Matias-Szegedy STOC'96
//   ccm-entropy       H        Cor 5.4, Chakrabarti-Cormode-McGregor
//   buriol-triangles  T3       Cor 5.3, Buriol et al. PODS'06
//   dkw-quantile      q-quant  Thm 5.1 + Dvoretzky-Kiefer-Wolfowitz
//   biased-mean       mean     Sec 5 step-biased extension
//   window-count      n(t)     Sec 1.3.2 boundary via DGIM [31]
//
// Substrate compatibility is part of each spec: the payload estimators
// (ams-fk, ccm-entropy, buriol-triangles) accept the payload-capable
// families (bop-seq-single/swr, bop-ts-single/swr, exact-seq/exact-ts) —
// the with-replacement k-samples are k independent single-sample copies
// (Thms 2.1/3.9), so both names build the same payload structure;
// dkw-quantile and window-count accept every registered sampler;
// biased-mean accepts every sequence-model sampler. Incompatible pairs
// are rejected with the compatible list in the error.

#ifndef SWSAMPLE_APPS_ESTIMATOR_REGISTRY_H_
#define SWSAMPLE_APPS_ESTIMATOR_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/biased.h"
#include "apps/estimator.h"
#include "util/status.h"

namespace swsample {

/// One configuration for every registered estimator. Only the fields the
/// named estimator (and substrate model) uses are validated; the rest are
/// ignored.
struct EstimatorConfig {
  /// Sampler-registry name of the sampling substrate; "" selects the
  /// estimator's default substrate.
  std::string substrate;
  /// Sequence window size n (sequence-model substrates; >= 1 there).
  uint64_t window_n = 0;
  /// Timestamp window length t0 (timestamp-model substrates; >= 1 there).
  Timestamp window_t = 0;
  /// Independent sampling units to average / sample size to draw (>= 1).
  uint64_t r = 64;
  /// RNG seed; equal configs construct identically-behaving estimators.
  uint64_t seed = 0;
  /// Frequency moment k (ams-fk only; >= 1).
  uint32_t moment = 2;
  /// Vertex universe size (buriol-triangles only; >= 3).
  uint32_t num_vertices = 0;
  /// Relative error of the DGIM window-size estimate used by timestamp
  /// substrates (in (0, 1]).
  double count_eps = 0.05;
  /// Quantile reported by dkw-quantile's Estimate() (in [0, 1]).
  double q = 0.5;
  /// Recency levels (biased-mean only); empty derives a two-level
  /// staircase {window_n / 4, window_n} with equal weights.
  std::vector<BiasLevel> bias_levels;
  /// Over-sampling factor passed through to an oversample-swor substrate.
  uint64_t oversample_factor = 3;
};

/// Static description of one registered estimator.
struct EstimatorSpec {
  const char* name;               ///< registry key; equals name()
  const char* metric;             ///< what Estimate().value approximates
  const char* default_substrate;  ///< used when config.substrate is ""
  std::vector<const char*> substrates;  ///< compatible sampler names
  const char* summary;            ///< one-line description for --help
};

/// All registered estimators, in the order of the table above.
const std::vector<EstimatorSpec>& RegisteredEstimators();

/// The spec registered under `name`, or nullptr if unknown.
const EstimatorSpec* FindEstimatorSpec(std::string_view name);

/// True iff `name` is a registered estimator name.
bool IsRegisteredEstimator(std::string_view name);

/// True iff the estimator registered under `name` runs over the sampler
/// registered under `substrate`. False for unknown names.
bool EstimatorSupportsSubstrate(std::string_view name,
                                std::string_view substrate);

/// Constructs the estimator registered under `name` over the configured
/// substrate. Unknown names, unknown or incompatible substrates, and
/// invalid configurations come back as InvalidArgument.
///
/// Registry-level persistence lives in apps/estimator_checkpoint.h:
/// SaveEstimator wraps a constructed estimator's state in a
/// self-describing envelope (name + config + payload) and
/// RestoreEstimator reconstructs the exact object from one, in any
/// process.
Result<std::unique_ptr<WindowEstimator>> CreateEstimator(
    std::string_view name, const EstimatorConfig& config);

/// "name1, name2, ..." — for CLI usage/error text.
std::string RegisteredEstimatorNames();

}  // namespace swsample

#endif  // SWSAMPLE_APPS_ESTIMATOR_REGISTRY_H_
