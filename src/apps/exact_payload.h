// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Exact-window oracle substrate for payload estimators. Buffers the whole
// active window (O(n) words — this is the ground-truth comparator, the
// estimator-layer analogue of the exact-seq / exact-ts samplers) and at
// query time draws uniform positions, replaying the arrivals after each
// sampled position to build its payload. Estimates produced over this
// substrate have exact sampling marginals and exact window sizes, which is
// what the benches sweep against the O(1)/O(log n) paper substrates.

#ifndef SWSAMPLE_APPS_EXACT_PAYLOAD_H_
#define SWSAMPLE_APPS_EXACT_PAYLOAD_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>

#include "stream/item.h"
#include "stream/item_serial.h"
#include "util/arena.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {

/// Full-window payload oracle over either window model.
template <typename Payload, typename OnSampledFn, typename OnArrivalFn>
class ExactPayloadOracle {
 public:
  /// Sequence model when `window_n` > 0 (last window_n arrivals active),
  /// else timestamp model with window length `window_t`.
  ExactPayloadOracle(uint64_t window_n, Timestamp window_t, uint64_t seed,
                     OnSampledFn on_sampled, OnArrivalFn on_arrival)
      : window_n_(window_n),
        window_t_(window_t),
        rng_(seed),
        on_sampled_(std::move(on_sampled)),
        on_arrival_(std::move(on_arrival)) {
    SWS_CHECK(window_n_ >= 1 || window_t_ >= 1);
  }

  void Observe(const Item& item) {
    if (window_n_ > 0) {
      buffer_.push_back(item);
      if (buffer_.size() > window_n_) buffer_.pop_front();
      return;
    }
    // Out-of-order contract (see StreamSink): regressed timestamps are
    // stored clamped to the clock, so the buffer stays non-decreasing and
    // front-only expiry stays exact.
    if (item.timestamp > now_) now_ = item.timestamp;
    buffer_.push_back(Item{item.value, item.index, now_});
    Expire(now_);
  }

  void ObserveBatch(std::span<const Item> items) {
    if (items.empty()) return;
    if (window_n_ > 0) {
      // Only the last window_n_ arrivals can survive the trim; skip the
      // doomed prefix so the ring never grows past the window (a 16k
      // batch into an 8-item window would otherwise pin ~pow2(16k) slots
      // forever and churn push/pop for nothing).
      if (items.size() >= window_n_) {
        buffer_.clear();
        items = items.subspan(items.size() - window_n_);
      }
      buffer_.reserve(
          std::min<size_t>(window_n_, buffer_.size() + items.size()));
      for (const Item& item : items) buffer_.push_back(item);
      while (buffer_.size() > window_n_) buffer_.pop_front();
    } else {
      buffer_.reserve(buffer_.size() + items.size());
      for (const Item& item : items) {
        // Same running-max clamp as Observe (out-of-order contract).
        if (item.timestamp > now_) now_ = item.timestamp;
        buffer_.push_back(Item{item.value, item.index, now_});
      }
      Expire(now_);
    }
  }

  void AdvanceTime(Timestamp now) {
    if (window_n_ == 0 && now > now_) {
      now_ = now;
      Expire(now_);
    }
  }

  /// Active window size (exact).
  uint64_t WindowSize() const { return buffer_.size(); }

  /// Draws one uniform window position with its exact forward payload.
  /// O(window) per draw — the oracle's price. Requires a non-empty window.
  std::pair<Item, Payload> Draw() {
    SWS_DCHECK(!buffer_.empty());
    const uint64_t pos = rng_.UniformIndex(buffer_.size());
    Payload payload = on_sampled_(buffer_[pos]);
    for (uint64_t j = pos + 1; j < buffer_.size(); ++j) {
      on_arrival_(payload, buffer_[j]);
    }
    return {buffer_[pos], std::move(payload)};
  }

  /// Live memory words: the buffered window.
  uint64_t MemoryWords() const { return buffer_.size() * kWordsPerItem + 2; }

  /// Heap bytes retained beyond the object footprint (the window ring's
  /// arena reservation).
  uint64_t RetainedBytes() const { return buffer_.ReservedBytes(); }

  /// Checkpointing: RNG + the buffered window (payloads are derived at
  /// query time, so none are persisted).
  void Save(BinaryWriter* w) const {
    SaveRngState(rng_, w);
    w->PutU64(buffer_.size());
    for (uint64_t i = 0; i < buffer_.size(); ++i) SaveItem(buffer_[i], w);
  }

  bool Load(BinaryReader* r) {
    uint64_t size = 0;
    if (!LoadRngState(r, &rng_) || !r->GetU64(&size) ||
        size > r->remaining() / 24 + 1 ||
        (window_n_ > 0 && size > window_n_)) {
      return false;
    }
    buffer_.clear();
    for (uint64_t i = 0; i < size; ++i) {
      Item item;
      // Arrival-ordered with consecutive indices and non-negative
      // timestamps (Expire()'s subtraction must not overflow).
      if (!LoadItem(r, &item) || item.timestamp < 0 ||
          (!buffer_.empty() &&
           (item.index != buffer_.back().index + 1 ||
            item.timestamp < buffer_.back().timestamp))) {
        return false;
      }
      buffer_.push_back(item);
    }
    // The clock is not persisted (it was implicit in the old format);
    // restore it from the newest buffered timestamp, which is what every
    // monotone pre-restore history would have left it at.
    now_ = buffer_.empty() ? 0 : buffer_.back().timestamp;
    return true;
  }

 private:
  void Expire(Timestamp now) {
    while (!buffer_.empty() && now - buffer_.front().timestamp >= window_t_) {
      buffer_.pop_front();
    }
  }

  uint64_t window_n_;
  Timestamp window_t_;
  Timestamp now_ = 0;  ///< clock high-water mark (timestamp model only)
  Rng rng_;
  OnSampledFn on_sampled_;
  OnArrivalFn on_arrival_;
  RingDeque<Item> buffer_;  // arena-backed O(n) window, zero churn
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_EXACT_PAYLOAD_H_
