// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/freq_moments.h"

#include <cmath>
#include <utility>

namespace swsample {

Result<std::unique_ptr<FkEstimator>> FkEstimator::Create(
    const Substrate::Params& params, uint32_t moment) {
  if (moment < 1) {
    return Status::InvalidArgument("ams-fk: moment must be >= 1");
  }
  auto substrate =
      Substrate::Create(params, CountOnSampled{}, CountOnArrival{});
  if (!substrate.ok()) return substrate.status();
  return std::unique_ptr<FkEstimator>(
      new FkEstimator(std::move(substrate).ValueOrDie(), moment));
}

EstimateReport FkEstimator::Estimate() {
  EstimateReport report;
  report.metric = "F" + std::to_string(moment_);
  const double n = substrate_.WindowSizeEstimate();
  report.window_size = n;
  if (n <= 0.0) return report;
  double acc = 0.0;
  report.support = substrate_.ForEachSample(
      [&](const Item&, const CountPayload& payload) {
        const double c = static_cast<double>(payload.count);
        acc += n * (std::pow(c, moment_) - std::pow(c - 1.0, moment_));
      });
  if (report.support > 0) {
    report.value = acc / static_cast<double>(report.support);
  }
  return report;
}

}  // namespace swsample
