// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/freq_moments.h"

#include <cmath>

namespace swsample {

Result<std::unique_ptr<SlidingFkEstimator>> SlidingFkEstimator::Create(
    uint64_t n, uint32_t moment, uint64_t r, uint64_t seed) {
  if (n < 1) {
    return Status::InvalidArgument("SlidingFkEstimator: n must be >= 1");
  }
  if (moment < 1) {
    return Status::InvalidArgument(
        "SlidingFkEstimator: moment must be >= 1");
  }
  if (r < 1) {
    return Status::InvalidArgument("SlidingFkEstimator: r must be >= 1");
  }
  return std::unique_ptr<SlidingFkEstimator>(
      new SlidingFkEstimator(n, moment, r, seed));
}

SlidingFkEstimator::SlidingFkEstimator(uint64_t n, uint32_t moment,
                                       uint64_t r, uint64_t seed)
    : moment_(moment), rng_(seed) {
  units_.reserve(r);
  for (uint64_t i = 0; i < r; ++i) {
    units_.emplace_back(n, OnSampled{}, OnArrival{});
  }
}

void SlidingFkEstimator::Observe(const Item& item) {
  for (Unit& unit : units_) unit.Observe(item, rng_);
}

double SlidingFkEstimator::Estimate() const {
  if (units_.front().count() == 0) return 0.0;
  const double n = static_cast<double>(units_.front().WindowSize());
  double acc = 0.0;
  uint64_t live = 0;
  for (const Unit& unit : units_) {
    const auto& s = unit.Current();
    if (!s) continue;
    const double c = static_cast<double>(s->payload.count);
    const double x =
        n * (std::pow(c, moment_) - std::pow(c - 1.0, moment_));
    acc += x;
    ++live;
  }
  return live ? acc / static_cast<double>(live) : 0.0;
}

uint64_t SlidingFkEstimator::WindowSize() const {
  return units_.front().WindowSize();
}

}  // namespace swsample
