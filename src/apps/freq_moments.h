// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Frequency-moment estimation over sliding windows -- Corollary 5.2.
//
// The Alon-Matias-Szegedy (STOC'96) estimator: sample a uniform position p
// of the window, let c be the number of occurrences of value(p) at or
// after p within the window; then  X = n * (c^k - (c-1)^k)  is an unbiased
// estimate of F_k = sum_i x_i^k. The paper's point (Theorem 5.1) is that
// replacing AMS's reservoir with a sliding-window sampler transfers the
// algorithm to windows with no loss in the memory guarantee; this class is
// that transfer, using PayloadWindowUnit to maintain the forward counts.

#ifndef SWSAMPLE_APPS_FREQ_MOMENTS_H_
#define SWSAMPLE_APPS_FREQ_MOMENTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/payload_window.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Streaming F_k estimator over a fixed-size sliding window.
class SlidingFkEstimator {
 public:
  /// Creates an estimator of the `moment`-th frequency moment (moment >= 1)
  /// over windows of `n` arrivals, averaging `r` independent AMS units.
  static Result<std::unique_ptr<SlidingFkEstimator>> Create(uint64_t n,
                                                            uint32_t moment,
                                                            uint64_t r,
                                                            uint64_t seed);

  /// Feeds one arrival.
  void Observe(const Item& item);

  /// Current estimate of F_moment over the active window (0 if empty).
  double Estimate() const;

  /// Window fill level.
  uint64_t WindowSize() const;

 private:
  struct CountPayload {
    uint64_t value = 0;
    uint64_t count = 0;  // occurrences at/after the sampled position
  };
  struct OnSampled {
    CountPayload operator()(const Item& item) const {
      return CountPayload{item.value, 1};
    }
  };
  struct OnArrival {
    void operator()(CountPayload& p, const Item& item) const {
      if (item.value == p.value) ++p.count;
    }
  };
  using Unit = PayloadWindowUnit<CountPayload, OnSampled, OnArrival>;

  SlidingFkEstimator(uint64_t n, uint32_t moment, uint64_t r, uint64_t seed);

  uint32_t moment_;
  Rng rng_;
  std::vector<Unit> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_FREQ_MOMENTS_H_
