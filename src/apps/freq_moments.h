// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Frequency-moment estimation over sliding windows — Corollary 5.2.
//
// The Alon-Matias-Szegedy (STOC'96) estimator: sample a uniform position p
// of the window, let c be the number of occurrences of value(p) at or
// after p within the window; then  X = n * (c^k - (c-1)^k)  is an unbiased
// estimate of F_k = sum_i x_i^k. The paper's point (Theorem 5.1) is that
// replacing AMS's reservoir with a sliding-window sampler transfers the
// algorithm to windows with no loss in the memory guarantee; this class is
// that transfer over any payload-capable substrate (registry name
// "ams-fk"): sequence units, timestamp units with the DGIM n-hat, or the
// exact-window oracle.

#ifndef SWSAMPLE_APPS_FREQ_MOMENTS_H_
#define SWSAMPLE_APPS_FREQ_MOMENTS_H_

#include <cstdint>
#include <memory>

#include "apps/estimator.h"
#include "apps/payload_substrate.h"
#include "stream/item.h"
#include "util/status.h"

namespace swsample {

/// Streaming F_k estimator over a sliding window ("ams-fk").
class FkEstimator final : public WindowEstimator {
 public:
  using Substrate =
      PayloadSubstrate<CountPayload, CountOnSampled, CountOnArrival>;

  /// Creates an estimator of the `moment`-th frequency moment (moment >= 1)
  /// averaging `params.r` independent AMS units over the substrate family
  /// `params.kind`.
  static Result<std::unique_ptr<FkEstimator>> Create(
      const Substrate::Params& params, uint32_t moment);

  void Observe(const Item& item) override { substrate_.Observe(item); }
  void ObserveBatch(std::span<const Item> items) override {
    substrate_.ObserveBatch(items);
  }
  void AdvanceTime(Timestamp now) override { substrate_.AdvanceTime(now); }
  EstimateReport Estimate() override;
  uint64_t MemoryWords() const override { return substrate_.MemoryWords(); }
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + substrate_.RetainedBytes();
  }
  const char* name() const override { return "ams-fk"; }
  /// F_k is additive across disjoint shards: every occurrence of a value
  /// lands in one shard under key-hash partitioning, so shard moments sum.
  EstimateMergeKind merge_kind() const override {
    return EstimateMergeKind::kSum;
  }
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override { substrate_.SaveState(w); }
  bool LoadState(BinaryReader* r) override {
    return substrate_.LoadState(r);
  }

 private:
  FkEstimator(Substrate substrate, uint32_t moment)
      : substrate_(std::move(substrate)), moment_(moment) {}

  Substrate substrate_;
  uint32_t moment_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_FREQ_MOMENTS_H_
