// Copyright (c) swsample authors. Licensed under the MIT license.
//
// The pluggable sampling substrate behind the payload estimators (AMS
// frequency moments, CCM entropy, Buriol triangles) — Theorem 5.1 as code.
//
// A payload estimator needs r independent draws of (uniform window
// position, forward-accumulated payload) plus a window-size estimate. The
// paper provides that pair for three substrate families, each selected by
// a sampler-registry name:
//
//  * kSeqUnits ("bop-seq-single"/"bop-seq-swr"): r PayloadWindowUnits —
//    the Section 2.1 bucket-pair single-sample scheme; Theorem 2.1's
//    k-sample with replacement IS k independent copies of it, so both
//    registry names construct the same structure. O(r) words; exact n.
//  * kTsUnits ("bop-ts-single"/"bop-ts-swr"): r TsPayloadUnits — the
//    Section 3 structure with payloads on its O(log n) candidates — plus a
//    DGIM exponential histogram for the window size, which is unknowable
//    exactly in the timestamp model (Section 1.3.2); estimates inherit the
//    (1 +/- eps) factor, exactly the composition Theorem 5.1 describes.
//  * kExactSeq / kExactTs ("exact-seq"/"exact-ts"): the full-window
//    oracle, O(n) words — ground truth for the benches' substrate sweeps.

#ifndef SWSAMPLE_APPS_PAYLOAD_SUBSTRATE_H_
#define SWSAMPLE_APPS_PAYLOAD_SUBSTRATE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "apps/exact_payload.h"
#include "apps/payload_window.h"
#include "apps/ts_payload.h"
#include "stream/exp_histogram.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Which Theorem 5.1 substrate family backs a payload estimator.
enum class SubstrateKind {
  kSeqUnits,  ///< r Section 2.1 units, sequence window, exact n
  kTsUnits,   ///< r Section 3 units + DGIM n-hat, timestamp window
  kExactSeq,  ///< full-window oracle, sequence window
  kExactTs,   ///< full-window oracle, timestamp window
};

/// The forward occurrence-count payload shared by the frequency-moment and
/// entropy estimators: occurrences of the sampled value at/after the
/// sampled position.
struct CountPayload {
  uint64_t value = 0;
  uint64_t count = 0;
};
struct CountOnSampled {
  CountPayload operator()(const Item& item) const {
    return CountPayload{item.value, 1};
  }
};
struct CountOnArrival {
  void operator()(CountPayload& p, const Item& item) const {
    if (item.value == p.value) ++p.count;
  }
};

/// Wire codec for CountPayload (the payload units serialize payloads
/// through these unqualified overloads; estimators with custom payloads
/// provide their own, e.g. apps/triangles.h).
inline void SavePayload(const CountPayload& p, BinaryWriter* w) {
  w->PutU64(p.value);
  w->PutU64(p.count);
}
inline bool LoadPayload(BinaryReader* r, CountPayload* p) {
  return r->GetU64(&p->value) && r->GetU64(&p->count) && p->count >= 1;
}

/// The timestamp-window forward-count tracker (white-box tested).
using TsForwardCountUnit =
    TsPayloadUnit<CountPayload, CountOnSampled, CountOnArrival>;

/// Construction parameters shared by every PayloadSubstrate instantiation.
struct PayloadSubstrateParams {
  SubstrateKind kind = SubstrateKind::kSeqUnits;
  uint64_t window_n = 0;    ///< sequence kinds
  Timestamp window_t = 0;   ///< timestamp kinds
  uint64_t r = 1;           ///< units (draws per Estimate for oracles)
  double count_eps = 0.05;  ///< kTsUnits n-hat relative error
  uint64_t seed = 0;
};

/// r independent payload-carrying sampling units over one window, behind
/// one ingestion surface. Estimators own one of these plus a formula.
template <typename Payload, typename OnSampledFn, typename OnArrivalFn>
class PayloadSubstrate {
 public:
  using Params = PayloadSubstrateParams;

  static Result<PayloadSubstrate> Create(const Params& params,
                                         OnSampledFn on_sampled,
                                         OnArrivalFn on_arrival) {
    if (params.r < 1) {
      return Status::InvalidArgument("PayloadSubstrate: r must be >= 1");
    }
    const bool sequence = params.kind == SubstrateKind::kSeqUnits ||
                          params.kind == SubstrateKind::kExactSeq;
    if (sequence && params.window_n < 1) {
      return Status::InvalidArgument(
          "PayloadSubstrate: window_n must be >= 1");
    }
    if (!sequence && params.window_t < 1) {
      return Status::InvalidArgument(
          "PayloadSubstrate: window_t must be >= 1");
    }
    PayloadSubstrate substrate(params, std::move(on_sampled),
                               std::move(on_arrival));
    switch (params.kind) {
      case SubstrateKind::kSeqUnits:
        substrate.seq_units_.reserve(params.r);
        for (uint64_t i = 0; i < params.r; ++i) {
          substrate.seq_units_.emplace_back(params.window_n,
                                            substrate.on_sampled_,
                                            substrate.on_arrival_);
        }
        break;
      case SubstrateKind::kTsUnits: {
        auto histogram =
            ExpHistogram::Create(params.window_t, params.count_eps);
        if (!histogram.ok()) return histogram.status();
        substrate.histogram_.emplace(std::move(histogram).ValueOrDie());
        substrate.ts_units_.reserve(params.r);
        for (uint64_t i = 0; i < params.r; ++i) {
          substrate.ts_units_.emplace_back(
              params.window_t, Rng::ForkSeed(params.seed, 2 + i),
              substrate.on_sampled_, substrate.on_arrival_);
        }
        break;
      }
      case SubstrateKind::kExactSeq:
      case SubstrateKind::kExactTs:
        substrate.oracle_.emplace(
            params.kind == SubstrateKind::kExactSeq ? params.window_n : 0,
            params.window_t, Rng::ForkSeed(params.seed, 1),
            substrate.on_sampled_, substrate.on_arrival_);
        break;
    }
    return substrate;
  }

  void Observe(const Item& item) {
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        for (auto& unit : seq_units_) unit.Observe(item, rng_);
        break;
      case SubstrateKind::kTsUnits:
        histogram_->Add(item.timestamp);
        for (auto& unit : ts_units_) unit.Observe(item);
        break;
      default:
        oracle_->Observe(item);
    }
  }

  void ObserveBatch(std::span<const Item> items) {
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        for (auto& unit : seq_units_) unit.ObserveBatch(items, rng_);
        break;
      case SubstrateKind::kTsUnits:
        for (const Item& item : items) histogram_->Add(item.timestamp);
        for (auto& unit : ts_units_) unit.ObserveBatch(items);
        break;
      default:
        oracle_->ObserveBatch(items);
    }
  }

  void AdvanceTime(Timestamp now) {
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        break;  // sequence windows ignore the clock
      case SubstrateKind::kTsUnits:
        histogram_->AdvanceTime(now);
        for (auto& unit : ts_units_) unit.AdvanceTime(now);
        break;
      default:
        oracle_->AdvanceTime(now);
    }
  }

  /// The window size estimates are scaled by: exact except for kTsUnits,
  /// where it is the (1 +/- eps) DGIM estimate.
  double WindowSizeEstimate() {
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        return static_cast<double>(seq_units_.front().WindowSize());
      case SubstrateKind::kTsUnits:
        return static_cast<double>(histogram_->Estimate());
      default:
        return static_cast<double>(oracle_->WindowSize());
    }
  }

  /// Visits up to r live (item, payload) samples; returns the number
  /// visited. Timestamp units and oracles consume fresh randomness.
  template <typename Fn>
  uint64_t ForEachSample(Fn&& fn) {
    uint64_t live = 0;
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        for (auto& unit : seq_units_) {
          const auto& sampled = unit.Current();
          if (!sampled) continue;
          fn(sampled->item, sampled->payload);
          ++live;
        }
        break;
      case SubstrateKind::kTsUnits:
        for (auto& unit : ts_units_) {
          auto sampled = unit.Sample();
          if (!sampled) continue;
          fn(sampled->item, sampled->payload);
          ++live;
        }
        break;
      default:
        if (oracle_->WindowSize() == 0) break;
        for (uint64_t i = 0; i < r_; ++i) {
          auto [item, payload] = oracle_->Draw();
          fn(item, payload);
          ++live;
        }
    }
    return live;
  }

  uint64_t MemoryWords() const {
    uint64_t words = 0;
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        for (const auto& unit : seq_units_) words += unit.MemoryWords();
        break;
      case SubstrateKind::kTsUnits:
        words = histogram_->MemoryWords();
        for (const auto& unit : ts_units_) words += unit.MemoryWords();
        break;
      default:
        words = oracle_->MemoryWords();
    }
    return words;
  }

  /// Heap bytes retained beyond the object footprint: unit-vector
  /// capacities plus each unit's arena/table reservations (the sequence
  /// units hold their slots inline, so their capacity bytes cover them).
  uint64_t RetainedBytes() const {
    uint64_t bytes = seq_units_.capacity() * sizeof(SeqUnit) +
                     ts_units_.capacity() * sizeof(TsUnit);
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        break;
      case SubstrateKind::kTsUnits:
        bytes += histogram_->RetainedBytes();
        for (const auto& unit : ts_units_) bytes += unit.RetainedBytes();
        break;
      default:
        bytes += oracle_->RetainedBytes();
    }
    return bytes;
  }

  /// Checkpointing: the substrate RNG plus every unit / the histogram /
  /// the oracle, in construction order. Configuration (kind, windows, r)
  /// lives in the owning estimator's envelope.
  void SaveState(BinaryWriter* w) const {
    SaveRngState(rng_, w);
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        for (const auto& unit : seq_units_) unit.Save(w);
        break;
      case SubstrateKind::kTsUnits:
        histogram_->Save(w);
        for (const auto& unit : ts_units_) unit.Save(w);
        break;
      default:
        oracle_->Save(w);
    }
  }

  bool LoadState(BinaryReader* r) {
    if (!LoadRngState(r, &rng_)) return false;
    switch (kind_) {
      case SubstrateKind::kSeqUnits:
        for (auto& unit : seq_units_) {
          if (!unit.Load(r)) return false;
        }
        return true;
      case SubstrateKind::kTsUnits:
        if (!histogram_->Load(r)) return false;
        for (auto& unit : ts_units_) {
          if (!unit.Load(r)) return false;
        }
        return true;
      default:
        return oracle_->Load(r);
    }
  }

 private:
  using SeqUnit = PayloadWindowUnit<Payload, OnSampledFn, OnArrivalFn>;
  using TsUnit = TsPayloadUnit<Payload, OnSampledFn, OnArrivalFn>;
  using Oracle = ExactPayloadOracle<Payload, OnSampledFn, OnArrivalFn>;

  PayloadSubstrate(const Params& params, OnSampledFn on_sampled,
                   OnArrivalFn on_arrival)
      : kind_(params.kind),
        r_(params.r),
        rng_(Rng::ForkSeed(params.seed, 0)),
        on_sampled_(std::move(on_sampled)),
        on_arrival_(std::move(on_arrival)) {}

  SubstrateKind kind_;
  uint64_t r_;
  Rng rng_;  // drives the sequence units' reservoirs
  OnSampledFn on_sampled_;
  OnArrivalFn on_arrival_;
  std::vector<SeqUnit> seq_units_;
  std::vector<TsUnit> ts_units_;
  std::optional<ExpHistogram> histogram_;
  std::optional<Oracle> oracle_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_PAYLOAD_SUBSTRATE_H_
