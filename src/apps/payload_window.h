// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Payload-carrying sliding-window sampling unit -- the Theorem 5.1 bridge
// used by the application estimators (Corollaries 5.2-5.4).
//
// AMS-style estimators need more than the sampled element: they need state
// accumulated over the arrivals AFTER the sampled position (a forward
// occurrence count for frequency moments/entropy, incidence flags for
// triangle counting). This class runs the Section 2.1 equivalent-width
// bucket-pair scheme with one payload-carrying reservoir slot per bucket:
//
//  * when a slot (re)selects an arrival, `OnSampled(item)` builds a fresh
//    payload;
//  * every subsequent arrival is reported to the payloads of both live
//    slots via `OnArrival(payload, item)`.
//
// The forward state stays valid across the window because in the
// sequence-based model every element arriving after an active position is
// itself active; and it survives bucket boundaries because the previous
// bucket's final slot keeps receiving arrivals until it expires.

#ifndef SWSAMPLE_APPS_PAYLOAD_WINDOW_H_
#define SWSAMPLE_APPS_PAYLOAD_WINDOW_H_

#include <cstdint>
#include <optional>

#include "stream/item.h"
#include "util/macros.h"
#include "util/rng.h"

namespace swsample {

/// One independent single-sample unit with payload tracking over a
/// fixed-size window of n arrivals.
template <typename Payload, typename OnSampledFn, typename OnArrivalFn>
class PayloadWindowUnit {
 public:
  /// A sampled position with its forward-accumulated payload.
  struct Sampled {
    Item item;
    Payload payload;
  };

  PayloadWindowUnit(uint64_t n, OnSampledFn on_sampled,
                    OnArrivalFn on_arrival)
      : n_(n),
        on_sampled_(std::move(on_sampled)),
        on_arrival_(std::move(on_arrival)) {
    SWS_CHECK(n >= 1);
  }

  /// Feeds one arrival (consecutive indices from 0).
  void Observe(const Item& item, Rng& rng) {
    SWS_DCHECK(item.index == count_);
    ++count_;
    if (cur_count_ == n_) {
      // Bucket completed on the previous arrival: its slot becomes the
      // "active bucket" sample, payload intact and still accumulating.
      prev_ = cur_;
      cur_.reset();
      cur_count_ = 0;
    }
    ++cur_count_;
    if (rng.BernoulliRational(1, cur_count_)) {
      cur_ = Sampled{item, on_sampled_(item)};
    } else if (cur_) {
      on_arrival_(cur_->payload, item);
    }
    if (prev_) {
      on_arrival_(prev_->payload, item);
    }
  }

  /// The unit's current window sample (Section 2.1 combination rule);
  /// nullopt iff nothing observed.
  const std::optional<Sampled>& Current() const {
    if (count_ == 0) return cur_;  // empty optional
    if (cur_count_ == n_ || count_ < n_) return cur_;
    SWS_DCHECK(prev_.has_value());
    const uint64_t window_start = count_ - n_;
    return prev_->item.index >= window_start ? prev_ : cur_;
  }

  /// Number of active elements (window fill level).
  uint64_t WindowSize() const { return count_ < n_ ? count_ : n_; }

  /// Total arrivals observed.
  uint64_t count() const { return count_; }

 private:
  uint64_t n_;
  OnSampledFn on_sampled_;
  OnArrivalFn on_arrival_;
  uint64_t count_ = 0;
  uint64_t cur_count_ = 0;  // arrivals in the newest bucket
  std::optional<Sampled> cur_;
  std::optional<Sampled> prev_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_PAYLOAD_WINDOW_H_
