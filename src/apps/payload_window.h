// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Payload-carrying sliding-window sampling unit -- the Theorem 5.1 bridge
// used by the application estimators (Corollaries 5.2-5.4).
//
// AMS-style estimators need more than the sampled element: they need state
// accumulated over the arrivals AFTER the sampled position (a forward
// occurrence count for frequency moments/entropy, incidence flags for
// triangle counting). This class runs the Section 2.1 equivalent-width
// bucket-pair scheme with one payload-carrying reservoir slot per bucket:
//
//  * when a slot (re)selects an arrival, `OnSampled(item)` builds a fresh
//    payload;
//  * every subsequent arrival is reported to the payloads of both live
//    slots via `OnArrival(payload, item)`.
//
// The forward state stays valid across the window because in the
// sequence-based model every element arriving after an active position is
// itself active; and it survives bucket boundaries because the previous
// bucket's final slot keeps receiving arrivals until it expires.

#ifndef SWSAMPLE_APPS_PAYLOAD_WINDOW_H_
#define SWSAMPLE_APPS_PAYLOAD_WINDOW_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>

#include "stream/item.h"
#include "stream/item_serial.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {

/// One independent single-sample unit with payload tracking over a
/// fixed-size window of n arrivals.
template <typename Payload, typename OnSampledFn, typename OnArrivalFn>
class PayloadWindowUnit {
 public:
  /// A sampled position with its forward-accumulated payload.
  struct Sampled {
    Item item;
    Payload payload;
  };

  PayloadWindowUnit(uint64_t n, OnSampledFn on_sampled,
                    OnArrivalFn on_arrival)
      : n_(n),
        on_sampled_(std::move(on_sampled)),
        on_arrival_(std::move(on_arrival)) {
    SWS_CHECK(n >= 1);
  }

  /// Feeds one arrival (consecutive indices from 0).
  void Observe(const Item& item, Rng& rng) {
    SWS_DCHECK(item.index == count_);
    ++count_;
    if (cur_count_ == n_) {
      // Bucket completed on the previous arrival: its slot becomes the
      // "active bucket" sample, payload intact and still accumulating.
      prev_ = cur_;
      cur_.reset();
      cur_count_ = 0;
    }
    ++cur_count_;
    if (rng.BernoulliRational(1, cur_count_)) {
      cur_ = Sampled{item, on_sampled_(item)};
    } else if (cur_) {
      on_arrival_(cur_->payload, item);
    }
    if (prev_) {
      on_arrival_(prev_->payload, item);
    }
  }

  /// Feeds a contiguous run of arrivals; distributionally identical to
  /// item-by-item Observe. Payload updates are inherently per item (every
  /// arrival must reach the live payloads), but the per-item Bernoulli is
  /// replaced by a skip-ahead draw of the next replacement position: from
  /// bucket fill m the next selection lands j >= 1 arrivals ahead with
  /// P(j > s) = m / (m + s), so one Uniform01 per replacement (plus one
  /// per bucket/batch boundary) replaces one draw per item.
  void ObserveBatch(std::span<const Item> items, Rng& rng) {
    size_t i = 0;
    while (i < items.size()) {
      if (cur_count_ == n_) {
        prev_ = cur_;
        cur_.reset();
        cur_count_ = 0;
      }
      if (cur_count_ == 0) {
        // The first arrival of a bucket is selected with probability 1.
        Select(items[i]);
        ++i;
        continue;
      }
      const uint64_t m = cur_count_;
      const uint64_t jump = SkipToNextSelection(m, rng);
      // Arrivals before the selection point update payloads only; the run
      // is capped by the bucket boundary and the end of the batch.
      const uint64_t run = std::min(
          {jump - 1, n_ - m, static_cast<uint64_t>(items.size() - i)});
      for (uint64_t s = 0; s < run; ++s) {
        const Item& item = items[i + s];
        SWS_DCHECK(item.index == count_);
        ++count_;
        if (cur_) on_arrival_(cur_->payload, item);
        if (prev_) on_arrival_(prev_->payload, item);
      }
      cur_count_ += run;
      i += run;
      if (run == jump - 1 && jump <= n_ - m && i < items.size()) {
        Select(items[i]);
        ++i;
      }
      // Otherwise the skip was cut short by the bucket boundary or the end
      // of the batch. Discarding the remainder and redrawing is exact: the
      // consumed arrivals were decided non-selections, and the trials past
      // a boundary are independent of the discarded draw.
    }
  }

  /// The unit's current window sample (Section 2.1 combination rule);
  /// nullopt iff nothing observed.
  const std::optional<Sampled>& Current() const {
    if (count_ == 0) return cur_;  // empty optional
    if (cur_count_ == n_ || count_ < n_) return cur_;
    SWS_DCHECK(prev_.has_value());
    const uint64_t window_start = count_ - n_;
    return prev_->item.index >= window_start ? prev_ : cur_;
  }

  /// Number of active elements (window fill level).
  uint64_t WindowSize() const { return count_ < n_ ? count_ : n_; }

  /// Total arrivals observed.
  uint64_t count() const { return count_; }

  /// Live memory words: up to two payload-carrying slots plus counters.
  uint64_t MemoryWords() const {
    constexpr uint64_t kPayloadWords = (sizeof(Payload) + 7) / 8;
    const uint64_t slots = (cur_ ? 1 : 0) + (prev_ ? 1 : 0);
    return slots * (kWordsPerItem + kPayloadWords) + 3;
  }

  /// Checkpointing: counters plus both payload-carrying slots. Payloads
  /// serialize through the SavePayload/LoadPayload overloads of the
  /// instantiating estimator (apps/payload_substrate.h, apps/triangles.h).
  void Save(BinaryWriter* w) const {
    w->PutU64(count_);
    w->PutU64(cur_count_);
    SaveSlot(cur_, w);
    SaveSlot(prev_, w);
  }

  bool Load(BinaryReader* r) {
    if (!r->GetU64(&count_) || !r->GetU64(&cur_count_) ||
        cur_count_ > count_ || cur_count_ > n_ ||
        cur_count_ != (count_ == 0 ? 0 : (count_ - 1) % n_ + 1)) {
      return false;
    }
    // A current slot exists iff the bucket is non-empty (its first arrival
    // selects with probability 1); a previous one iff a bucket rolled.
    return LoadSlot(r, &cur_, /*required=*/cur_count_ > 0) &&
           LoadSlot(r, &prev_, /*required=*/count_ > n_);
  }

 private:
  static void SaveSlot(const std::optional<Sampled>& slot, BinaryWriter* w) {
    w->PutBool(slot.has_value());
    if (slot) {
      SaveItem(slot->item, w);
      SavePayload(slot->payload, w);
    }
  }

  static bool LoadSlot(BinaryReader* r, std::optional<Sampled>* slot,
                       bool required) {
    bool present = false;
    if (!r->GetBool(&present) || present != required) return false;
    slot->reset();
    if (!present) return true;
    Sampled s;
    if (!LoadItem(r, &s.item) || !LoadPayload(r, &s.payload)) return false;
    *slot = std::move(s);
    return true;
  }

  /// Makes `item` the newest bucket's sample with a fresh payload; the
  /// previous bucket's payload still sees the arrival.
  void Select(const Item& item) {
    SWS_DCHECK(item.index == count_);
    ++count_;
    ++cur_count_;
    cur_ = Sampled{item, on_sampled_(item)};
    if (prev_) on_arrival_(prev_->payload, item);
  }

  /// Draws the 1-based offset of the next reservoir replacement after
  /// bucket fill m, distributed as the first success of independent
  /// Bernoulli(1/(m+1)), 1/(m+2), ... trials: P(j <= s) = s / (m + s).
  static uint64_t SkipToNextSelection(uint64_t m, Rng& rng) {
    const double u = rng.Uniform01();
    if (u <= 0.0) return 1;
    const double x =
        u * static_cast<double>(m) / (1.0 - u);  // inverse CDF
    if (x >= 1e18) return uint64_t{1} << 62;
    const uint64_t j = static_cast<uint64_t>(std::ceil(x));
    return j < 1 ? 1 : j;
  }

  uint64_t n_;
  OnSampledFn on_sampled_;
  OnArrivalFn on_arrival_;
  uint64_t count_ = 0;
  uint64_t cur_count_ = 0;  // arrivals in the newest bucket
  std::optional<Sampled> cur_;
  std::optional<Sampled> prev_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_PAYLOAD_WINDOW_H_
