// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/quantiles.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace swsample {

Result<std::unique_ptr<SlidingQuantileEstimator>>
SlidingQuantileEstimator::Create(std::unique_ptr<WindowSampler> sampler) {
  if (sampler == nullptr) {
    return Status::InvalidArgument(
        "SlidingQuantileEstimator: sampler must not be null");
  }
  return std::unique_ptr<SlidingQuantileEstimator>(
      new SlidingQuantileEstimator(std::move(sampler)));
}

Result<uint64_t> SlidingQuantileEstimator::RequiredSampleSize(double eps,
                                                              double delta) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("RequiredSampleSize: eps in (0,1)");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("RequiredSampleSize: delta in (0,1)");
  }
  return static_cast<uint64_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

uint64_t SlidingQuantileEstimator::Quantile(double q) {
  return Quantiles({q}).front();
}

std::vector<uint64_t> SlidingQuantileEstimator::Quantiles(
    const std::vector<double>& qs) {
  SWS_CHECK(!qs.empty());
  auto sample = sampler_->Sample();
  std::vector<uint64_t> values;
  values.reserve(sample.size());
  for (const Item& item : sample) values.push_back(item.value);
  std::sort(values.begin(), values.end());
  std::vector<uint64_t> out;
  out.reserve(qs.size());
  for (double q : qs) {
    SWS_CHECK(q >= 0.0 && q <= 1.0);
    if (values.empty()) {
      out.push_back(0);
      continue;
    }
    const size_t rank = static_cast<size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    out.push_back(values[std::min(rank, values.size() - 1)]);
  }
  return out;
}

}  // namespace swsample
