// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/quantiles.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace swsample {

Result<std::unique_ptr<QuantileEstimator>> QuantileEstimator::Create(
    std::unique_ptr<WindowSampler> sampler, double q) {
  if (sampler == nullptr) {
    return Status::InvalidArgument(
        "dkw-quantile: sampler must not be null");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("dkw-quantile: q must be in [0, 1]");
  }
  return std::unique_ptr<QuantileEstimator>(
      new QuantileEstimator(std::move(sampler), q));
}

Result<uint64_t> QuantileEstimator::RequiredSampleSize(double eps,
                                                       double delta) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("RequiredSampleSize: eps in (0,1)");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("RequiredSampleSize: delta in (0,1)");
  }
  return static_cast<uint64_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

namespace {

// One fresh sample draw, as sorted values.
std::vector<uint64_t> SortedSampleValues(WindowSampler& sampler) {
  auto sample = sampler.Sample();
  std::vector<uint64_t> values;
  values.reserve(sample.size());
  for (const Item& item : sample) values.push_back(item.value);
  std::sort(values.begin(), values.end());
  return values;
}

// The sampled q-quantile: nearest-rank order statistic (0 if empty).
uint64_t RankValue(const std::vector<uint64_t>& values, double q) {
  SWS_CHECK(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

EstimateReport QuantileEstimator::Estimate() {
  EstimateReport report;
  char metric[16];
  std::snprintf(metric, sizeof(metric), "q%.2f", q_);
  report.metric = metric;
  const auto values = SortedSampleValues(*sampler_);
  report.support = values.size();
  if (!values.empty()) {
    report.value = static_cast<double>(RankValue(values, q_));
  }
  return report;
}

uint64_t QuantileEstimator::Quantile(double q) {
  return Quantiles({q}).front();
}

std::vector<uint64_t> QuantileEstimator::Quantiles(
    const std::vector<double>& qs) {
  SWS_CHECK(!qs.empty());
  const auto values = SortedSampleValues(*sampler_);
  std::vector<uint64_t> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(RankValue(values, q));
  return out;
}

}  // namespace swsample
