// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Windowed quantile estimation -- a direct Theorem 5.1 client.
//
// Quantile estimation from a uniform sample is the textbook sampling-based
// algorithm: the q-quantile of a k-sample WITHOUT replacement of the window
// approximates the window's q-quantile with rank error at most eps*n with
// probability 1-delta once k >= ln(2/delta)/(2 eps^2) (Dvoretzky-Kiefer-
// Wolfowitz). Theorem 5.1 says exactly this transfers to sliding windows by
// swapping in our window samplers -- with deterministic O(k) words on
// sequence windows (Theorem 2.2) or O(k log n) on timestamp windows
// (Theorem 4.4), where previous methods paid randomized bounds.
//
// The class is sampler-agnostic: construct it with ANY WindowSampler that
// produces (preferably without-replacement) samples.

#ifndef SWSAMPLE_APPS_QUANTILES_H_
#define SWSAMPLE_APPS_QUANTILES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/api.h"
#include "stream/item.h"
#include "util/status.h"

namespace swsample {

/// Streaming quantile estimator over a sliding window.
class SlidingQuantileEstimator {
 public:
  /// Wraps an existing window sampler (takes ownership). The sampler's k
  /// determines the rank-error guarantee; see RequiredSampleSize().
  static Result<std::unique_ptr<SlidingQuantileEstimator>> Create(
      std::unique_ptr<WindowSampler> sampler);

  /// DKW bound: the k for which the sampled q-quantile has rank error at
  /// most eps*n with probability 1-delta. Requires 0 < eps < 1,
  /// 0 < delta < 1.
  static Result<uint64_t> RequiredSampleSize(double eps, double delta);

  /// Feeds one arrival.
  void Observe(const Item& item) { sampler_->Observe(item); }

  /// Advances the clock (timestamp windows).
  void AdvanceTime(Timestamp now) { sampler_->AdvanceTime(now); }

  /// Estimates the q-quantile (by value) of the active window, q in [0, 1].
  /// Returns the sampled order statistic; 0 if the window is empty.
  uint64_t Quantile(double q);

  /// Estimates several quantiles from ONE sample draw (consistent ranks).
  /// `qs` must be non-empty with entries in [0, 1].
  std::vector<uint64_t> Quantiles(const std::vector<double>& qs);

  /// Underlying sampler (memory accounting etc.).
  WindowSampler& sampler() { return *sampler_; }

 private:
  explicit SlidingQuantileEstimator(std::unique_ptr<WindowSampler> sampler)
      : sampler_(std::move(sampler)) {}

  std::unique_ptr<WindowSampler> sampler_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_QUANTILES_H_
