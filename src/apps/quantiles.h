// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Windowed quantile estimation — a direct Theorem 5.1 client.
//
// Quantile estimation from a uniform sample is the textbook sampling-based
// algorithm: the q-quantile of a k-sample WITHOUT replacement of the window
// approximates the window's q-quantile with rank error at most eps*n with
// probability 1-delta once k >= ln(2/delta)/(2 eps^2) (Dvoretzky-Kiefer-
// Wolfowitz). Theorem 5.1 says exactly this transfers to sliding windows by
// swapping in our window samplers — with deterministic O(k) words on
// sequence windows (Theorem 2.2) or O(k log n) on timestamp windows
// (Theorem 4.4), where previous methods paid randomized bounds.
//
// The class is sampler-agnostic: registry name "dkw-quantile" pairs it
// with EVERY registered sampler substrate; construct it directly with ANY
// WindowSampler (preferably without-replacement).

#ifndef SWSAMPLE_APPS_QUANTILES_H_
#define SWSAMPLE_APPS_QUANTILES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/estimator.h"
#include "core/api.h"
#include "stream/item.h"
#include "util/status.h"

namespace swsample {

/// Streaming quantile estimator over a sliding window ("dkw-quantile").
class QuantileEstimator final : public WindowEstimator {
 public:
  /// Wraps an existing window sampler (takes ownership). The sampler's k
  /// determines the rank-error guarantee (see RequiredSampleSize); `q` in
  /// [0, 1] is the quantile Estimate() reports.
  static Result<std::unique_ptr<QuantileEstimator>> Create(
      std::unique_ptr<WindowSampler> sampler, double q = 0.5);

  /// DKW bound: the k for which the sampled q-quantile has rank error at
  /// most eps*n with probability 1-delta. Requires 0 < eps < 1,
  /// 0 < delta < 1.
  static Result<uint64_t> RequiredSampleSize(double eps, double delta);

  void Observe(const Item& item) override { sampler_->Observe(item); }
  void ObserveBatch(std::span<const Item> items) override {
    sampler_->ObserveBatch(items);  // inherits the sampler's fast path
  }
  void AdvanceTime(Timestamp now) override { sampler_->AdvanceTime(now); }

  /// The configured q-quantile of the active window from one fresh sample
  /// draw; value 0 on an empty window, support = sample size.
  EstimateReport Estimate() override;

  uint64_t MemoryWords() const override { return sampler_->MemoryWords(); }
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + sampler_->RetainedBytes();
  }
  const char* name() const override { return "dkw-quantile"; }
  /// Persists through the wrapped sampler (q is configuration).
  bool persistable() const override { return sampler_->persistable(); }
  void SaveState(BinaryWriter* w) const override { sampler_->SaveState(w); }
  bool LoadState(BinaryReader* r) override { return sampler_->LoadState(r); }

  /// Estimates the q-quantile (by value) of the active window, q in [0, 1].
  /// Returns the sampled order statistic; 0 if the window is empty.
  uint64_t Quantile(double q);

  /// Estimates several quantiles from ONE sample draw (consistent ranks).
  /// `qs` must be non-empty with entries in [0, 1].
  std::vector<uint64_t> Quantiles(const std::vector<double>& qs);

  /// Underlying sampler (memory accounting etc.).
  WindowSampler& sampler() { return *sampler_; }

 private:
  QuantileEstimator(std::unique_ptr<WindowSampler> sampler, double q)
      : sampler_(std::move(sampler)), q_(q) {}

  std::unique_ptr<WindowSampler> sampler_;
  double q_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_QUANTILES_H_
