// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/sink_spec.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/estimator_checkpoint.h"
#include "core/checkpoint.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {

namespace {

/// Parses a full unsigned decimal token; false on garbage or overflow.
bool ParseU64Token(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

/// Parses a full floating-point token; false on garbage.
bool ParseDoubleToken(std::string_view token, double* out) {
  if (token.empty()) return false;
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

Status BadSpec(std::string_view text, const std::string& why) {
  return Status::InvalidArgument("sink spec \"" + std::string(text) +
                                 "\": " + why);
}

/// Renders a double with enough digits to round-trip, trimming the
/// trailing zeros "%.17g" would keep for simple values like 0.5.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  if (ParseDoubleToken(buf, &back) && back == v) {
    // Try shorter renderings first for readable canonical strings.
    for (int prec = 1; prec <= 16; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      if (ParseDoubleToken(shorter, &back) && back == v) {
        return shorter;
      }
    }
  }
  return buf;
}

/// Parses `window:weight[+window:weight]...` into bias levels.
bool ParseBiasLevels(std::string_view value, std::vector<BiasLevel>* out) {
  out->clear();
  while (!value.empty()) {
    const size_t plus = value.find('+');
    std::string_view level_text =
        plus == std::string_view::npos ? value : value.substr(0, plus);
    value = plus == std::string_view::npos ? std::string_view()
                                           : value.substr(plus + 1);
    const size_t colon = level_text.find(':');
    if (colon == std::string_view::npos) return false;
    BiasLevel level{};
    if (!ParseU64Token(level_text.substr(0, colon), &level.window) ||
        !ParseDoubleToken(level_text.substr(colon + 1), &level.weight)) {
      return false;
    }
    out->push_back(level);
  }
  return !out->empty();
}

}  // namespace

Result<SinkKind> SinkKindOf(std::string_view name) {
  if (FindSamplerSpec(name) != nullptr) return SinkKind::kSampler;
  if (FindEstimatorSpec(name) != nullptr) return SinkKind::kEstimator;
  return Status::InvalidArgument("unknown sink \"" + std::string(name) +
                                 "\"; registered: " + RegisteredSinkNames());
}

Result<WindowModel> SinkWindowModel(const SinkSpec& spec) {
  auto kind = SinkKindOf(spec.name);
  if (!kind.ok()) return kind.status();
  if (kind.value() == SinkKind::kSampler) {
    return FindSamplerSpec(spec.name)->model;
  }
  const EstimatorSpec* estimator = FindEstimatorSpec(spec.name);
  const std::string substrate_name =
      spec.substrate.empty() ? estimator->default_substrate : spec.substrate;
  const SamplerSpec* substrate = FindSamplerSpec(substrate_name);
  if (substrate == nullptr) {
    return Status::InvalidArgument(
        spec.name + ": unknown substrate \"" + substrate_name +
        "\"; registered samplers: " + RegisteredSamplerNames());
  }
  return substrate->model;
}

Result<SinkSpec> ParseSinkSpec(std::string_view text) {
  SinkSpec spec;
  std::string_view rest = text;
  const size_t comma = rest.find(',');
  std::string_view head =
      comma == std::string_view::npos ? rest : rest.substr(0, comma);
  rest = comma == std::string_view::npos ? std::string_view()
                                         : rest.substr(comma + 1);
  const size_t at = head.find('@');
  if (at == std::string_view::npos) {
    spec.name = std::string(head);
  } else {
    spec.name = std::string(head.substr(0, at));
    spec.substrate = std::string(head.substr(at + 1));
    if (spec.substrate.empty()) {
      return BadSpec(text, "empty substrate after '@'");
    }
  }
  auto kind = SinkKindOf(spec.name);
  if (!kind.ok()) return kind.status();
  if (kind.value() == SinkKind::kSampler && !spec.substrate.empty()) {
    return BadSpec(text, "samplers take no '@substrate'");
  }

  while (!rest.empty()) {
    const size_t next = rest.find(',');
    std::string_view pair =
        next == std::string_view::npos ? rest : rest.substr(0, next);
    rest = next == std::string_view::npos ? std::string_view()
                                          : rest.substr(next + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return BadSpec(text, "expected key=value, got \"" + std::string(pair) +
                               "\"");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    uint64_t u64 = 0;
    double f64 = 0.0;
    bool ok = true;
    if (key == "n") {
      ok = ParseU64Token(value, &spec.window_n);
    } else if (key == "t") {
      ok = ParseU64Token(value, &u64);
      spec.window_t = static_cast<Timestamp>(u64);
    } else if (key == "k") {
      ok = ParseU64Token(value, &spec.k);
    } else if (key == "r") {
      ok = ParseU64Token(value, &spec.r);
    } else if (key == "seed") {
      ok = ParseU64Token(value, &spec.seed);
    } else if (key == "moment") {
      ok = ParseU64Token(value, &u64) && u64 <= UINT32_MAX;
      spec.moment = static_cast<uint32_t>(u64);
    } else if (key == "vertices") {
      ok = ParseU64Token(value, &u64) && u64 <= UINT32_MAX;
      spec.num_vertices = static_cast<uint32_t>(u64);
    } else if (key == "eps") {
      ok = ParseDoubleToken(value, &f64);
      spec.count_eps = f64;
    } else if (key == "q") {
      ok = ParseDoubleToken(value, &f64);
      spec.q = f64;
    } else if (key == "oversample") {
      ok = ParseU64Token(value, &spec.oversample_factor);
    } else if (key == "wr") {
      ok = ParseU64Token(value, &u64) && u64 <= 1;
      spec.with_replacement = u64 != 0;
    } else if (key == "bias") {
      ok = ParseBiasLevels(value, &spec.bias_levels);
    } else {
      return BadSpec(text, "unknown key \"" + std::string(key) +
                               "\"; recognized: n, t, k, r, seed, moment, "
                               "vertices, eps, q, oversample, wr, bias");
    }
    if (!ok) {
      return BadSpec(text, "invalid value \"" + std::string(value) +
                               "\" for key \"" + std::string(key) + "\"");
    }
  }
  return spec;
}

std::string FormatSinkSpec(const SinkSpec& spec) {
  const SinkSpec defaults;
  std::string out = spec.name;
  if (!spec.substrate.empty()) {
    out += "@";
    out += spec.substrate;
  }
  char buf[64];
  auto put_u64 = [&](const char* key, uint64_t v) {
    std::snprintf(buf, sizeof buf, ",%s=%" PRIu64, key, v);
    out += buf;
  };
  if (spec.window_n != defaults.window_n) put_u64("n", spec.window_n);
  if (spec.window_t != defaults.window_t) {
    put_u64("t", static_cast<uint64_t>(spec.window_t));
  }
  if (spec.k != defaults.k) put_u64("k", spec.k);
  if (spec.r != defaults.r) put_u64("r", spec.r);
  if (spec.seed != defaults.seed) put_u64("seed", spec.seed);
  if (spec.moment != defaults.moment) put_u64("moment", spec.moment);
  if (spec.num_vertices != defaults.num_vertices) {
    put_u64("vertices", spec.num_vertices);
  }
  if (spec.count_eps != defaults.count_eps) {
    out += ",eps=" + FormatDouble(spec.count_eps);
  }
  if (spec.q != defaults.q) out += ",q=" + FormatDouble(spec.q);
  if (spec.oversample_factor != defaults.oversample_factor) {
    put_u64("oversample", spec.oversample_factor);
  }
  if (spec.with_replacement != defaults.with_replacement) {
    put_u64("wr", spec.with_replacement ? 1 : 0);
  }
  if (!spec.bias_levels.empty()) {
    out += ",bias=";
    for (size_t i = 0; i < spec.bias_levels.size(); ++i) {
      if (i > 0) out += "+";
      std::snprintf(buf, sizeof buf, "%" PRIu64 ":",
                    spec.bias_levels[i].window);
      out += buf;
      out += FormatDouble(spec.bias_levels[i].weight);
    }
  }
  return out;
}

SamplerConfig ToSamplerConfig(const SinkSpec& spec) {
  SamplerConfig config;
  config.window_n = spec.window_n;
  config.window_t = spec.window_t;
  config.k = spec.k;
  config.seed = spec.seed;
  config.oversample_factor = spec.oversample_factor;
  config.with_replacement = spec.with_replacement;
  return config;
}

EstimatorConfig ToEstimatorConfig(const SinkSpec& spec) {
  EstimatorConfig config;
  config.substrate = spec.substrate;
  config.window_n = spec.window_n;
  config.window_t = spec.window_t;
  config.r = spec.r;
  config.seed = spec.seed;
  config.moment = spec.moment;
  config.num_vertices = spec.num_vertices;
  config.count_eps = spec.count_eps;
  config.q = spec.q;
  config.bias_levels = spec.bias_levels;
  config.oversample_factor = spec.oversample_factor;
  return config;
}

SinkSpec SamplerSinkSpec(std::string_view name, const SamplerConfig& config) {
  SinkSpec spec;
  spec.name = std::string(name);
  spec.window_n = config.window_n;
  spec.window_t = config.window_t;
  spec.k = config.k;
  spec.seed = config.seed;
  spec.oversample_factor = config.oversample_factor;
  spec.with_replacement = config.with_replacement;
  return spec;
}

SinkSpec EstimatorSinkSpec(std::string_view name,
                           const EstimatorConfig& config) {
  SinkSpec spec;
  spec.name = std::string(name);
  spec.substrate = config.substrate;
  spec.window_n = config.window_n;
  spec.window_t = config.window_t;
  spec.r = config.r;
  spec.seed = config.seed;
  spec.moment = config.moment;
  spec.num_vertices = config.num_vertices;
  spec.count_eps = config.count_eps;
  spec.q = config.q;
  spec.bias_levels = config.bias_levels;
  spec.oversample_factor = config.oversample_factor;
  return spec;
}

Result<Sink> CreateSink(const SinkSpec& spec) {
  auto kind = SinkKindOf(spec.name);
  if (!kind.ok()) return kind.status();
  Sink out;
  if (kind.value() == SinkKind::kSampler) {
    auto sampler = CreateSampler(spec.name, ToSamplerConfig(spec));
    if (!sampler.ok()) return sampler.status();
    out.sampler = sampler.value().get();
    out.sink = std::move(sampler).ValueOrDie();
  } else {
    auto estimator = CreateEstimator(spec.name, ToEstimatorConfig(spec));
    if (!estimator.ok()) return estimator.status();
    out.estimator = estimator.value().get();
    out.sink = std::move(estimator).ValueOrDie();
  }
  return out;
}

Result<SinkFactory> SinkFactory::Bind(const SinkSpec& spec) {
  auto kind = SinkKindOf(spec.name);
  if (!kind.ok()) return kind.status();
  SinkFactory factory;
  factory.spec_ = spec;
  factory.kind_ = kind.value();
  factory.sampler_config_ = ToSamplerConfig(spec);
  factory.estimator_config_ = ToEstimatorConfig(spec);
  // Probe construction front-loads every configuration error (it goes
  // through CreateSampler/CreateEstimator, so window validation runs
  // here once); afterwards Create can use the resolved maker directly.
  auto probe = factory.Create(spec.seed);
  if (!probe.ok()) return probe.status();
  if (factory.kind_ == SinkKind::kSampler) {
    factory.sampler_maker_ = FindSamplerMaker(spec.name);
  }
  return factory;
}

Result<Sink> SinkFactory::Create(uint64_t seed) const {
  Sink out;
  if (kind_ == SinkKind::kSampler) {
    SamplerConfig config = sampler_config_;
    config.seed = seed;
    auto sampler = sampler_maker_ != nullptr
                       ? sampler_maker_(config)
                       : CreateSampler(spec_.name, config);
    if (!sampler.ok()) return sampler.status();
    out.sampler = sampler.value().get();
    out.sink = std::move(sampler).ValueOrDie();
  } else {
    EstimatorConfig config = estimator_config_;
    config.seed = seed;
    auto estimator = CreateEstimator(spec_.name, config);
    if (!estimator.ok()) return estimator.status();
    out.estimator = estimator.value().get();
    out.sink = std::move(estimator).ValueOrDie();
  }
  return out;
}

namespace {

/// Splits a sequence window across shards; identity for shards == 1.
Result<uint64_t> SplitSequenceWindow(std::string_view name, uint64_t window_n,
                                     uint64_t shards) {
  if (shards == 1) return window_n;
  if (window_n < shards || window_n % shards != 0) {
    return Status::InvalidArgument(
        std::string(name) + ": window_n (" + std::to_string(window_n) +
        ") must be a positive multiple of the shard count (" +
        std::to_string(shards) +
        ") so the shard windows union to the global window");
  }
  return window_n / shards;
}

}  // namespace

Result<SinkSpec> ShardSinkSpec(const SinkSpec& spec, uint64_t shard,
                               uint64_t shards) {
  if (shards < 1 || shard >= shards) {
    return Status::InvalidArgument(
        "ShardSinkSpec: requires 0 <= shard < shards");
  }
  auto model = SinkWindowModel(spec);
  if (!model.ok()) return model.status();
  SinkSpec shard_spec = spec;
  if (model.value() == WindowModel::kSequence) {
    auto window = SplitSequenceWindow(spec.name, spec.window_n, shards);
    if (!window.ok()) return window.status();
    shard_spec.window_n = window.value();
    for (BiasLevel& level : shard_spec.bias_levels) {
      auto level_window =
          SplitSequenceWindow("biased-mean level", level.window, shards);
      if (!level_window.ok()) return level_window.status();
      level.window = level_window.value();
    }
  }
  shard_spec.seed = Rng::ForkSeed(spec.seed, shard);
  return shard_spec;
}

Result<std::vector<Sink>> CreateShardedSinks(const SinkSpec& spec,
                                             uint64_t shards) {
  if (shards < 1) {
    return Status::InvalidArgument("CreateShardedSinks: shards must be >= 1");
  }
  std::vector<Sink> replicas;
  replicas.reserve(shards);
  for (uint64_t shard = 0; shard < shards; ++shard) {
    auto shard_spec = ShardSinkSpec(spec, shard, shards);
    if (!shard_spec.ok()) return shard_spec.status();
    auto replica = CreateSink(shard_spec.value());
    if (!replica.ok()) return replica.status();
    replicas.push_back(std::move(replica).ValueOrDie());
  }
  return replicas;
}

Result<std::string> SaveSink(const StreamSink& sink, const SinkSpec& spec) {
  auto kind = SinkKindOf(spec.name);
  if (!kind.ok()) return kind.status();
  if (kind.value() == SinkKind::kSampler) {
    const auto* sampler = dynamic_cast<const WindowSampler*>(&sink);
    if (sampler == nullptr) {
      return Status::InvalidArgument(
          "SaveSink: spec names sampler \"" + spec.name +
          "\" but the sink is not a WindowSampler");
    }
    return SaveSampler(*sampler, ToSamplerConfig(spec));
  }
  const auto* estimator = dynamic_cast<const WindowEstimator*>(&sink);
  if (estimator == nullptr) {
    return Status::InvalidArgument(
        "SaveSink: spec names estimator \"" + spec.name +
        "\" but the sink is not a WindowEstimator");
  }
  return SaveEstimator(*estimator, ToEstimatorConfig(spec));
}

Result<RestoredSink> RestoreSink(std::string_view blob) {
  // Parse the envelope header once to recover the (name, config) pair the
  // spec is lifted from, then let the kind's own restore function rebuild
  // the object from the full blob.
  BinaryReader header(blob);
  CheckpointKind kind;
  if (!ReadCheckpointHeader(&header, &kind)) {
    return Status::InvalidArgument(
        "RestoreSink: bad magic, unsupported version, or unknown kind");
  }
  std::string name;
  if (!header.GetString(&name)) {
    return Status::InvalidArgument("RestoreSink: truncated envelope");
  }
  RestoredSink out;
  if (kind == CheckpointKind::kSampler) {
    SamplerConfig config;
    if (!LoadSamplerConfig(&header, &config)) {
      return Status::InvalidArgument("RestoreSink: truncated envelope");
    }
    auto sampler = RestoreSampler(blob);
    if (!sampler.ok()) return sampler.status();
    out.spec = SamplerSinkSpec(name, config);
    out.sink.sampler = sampler.value().get();
    out.sink.sink = std::move(sampler).ValueOrDie();
  } else if (kind == CheckpointKind::kEstimator) {
    EstimatorConfig config;
    if (!LoadEstimatorConfig(&header, &config)) {
      return Status::InvalidArgument("RestoreSink: truncated envelope");
    }
    auto estimator = RestoreEstimator(blob);
    if (!estimator.ok()) return estimator.status();
    out.spec = EstimatorSinkSpec(name, config);
    out.sink.estimator = estimator.value().get();
    out.sink.sink = std::move(estimator).ValueOrDie();
  } else {
    return Status::InvalidArgument(
        "RestoreSink: blob is not a sampler or estimator checkpoint");
  }
  return out;
}

std::vector<StreamSink*> SinkPointers(const std::vector<Sink>& shards) {
  std::vector<StreamSink*> out;
  out.reserve(shards.size());
  for (const Sink& shard : shards) out.push_back(shard.sink.get());
  return out;
}

Result<std::vector<WindowSampler*>> SamplerPointers(
    const std::vector<Sink>& shards) {
  std::vector<WindowSampler*> out;
  out.reserve(shards.size());
  for (const Sink& shard : shards) {
    if (shard.sampler == nullptr) {
      return Status::InvalidArgument(
          "SamplerPointers: shard set holds a non-sampler sink");
    }
    out.push_back(shard.sampler);
  }
  return out;
}

Result<std::vector<WindowEstimator*>> EstimatorPointers(
    const std::vector<Sink>& shards) {
  std::vector<WindowEstimator*> out;
  out.reserve(shards.size());
  for (const Sink& shard : shards) {
    if (shard.estimator == nullptr) {
      return Status::InvalidArgument(
          "EstimatorPointers: shard set holds a non-estimator sink");
    }
    out.push_back(shard.estimator);
  }
  return out;
}

std::string RegisteredSinkNames() {
  std::string out = RegisteredSamplerNames();
  const std::string estimators = RegisteredEstimatorNames();
  if (!out.empty() && !estimators.empty()) out += ", ";
  out += estimators;
  return out;
}

std::string FormatSinkList() {
  std::string out = "samplers (sink spec: name[,key=value]...):\n";
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    out += "  ";
    out += spec.name;
    out += spec.model == WindowModel::kSequence ? "  [sequence]  "
                                                : "  [timestamp]  ";
    out += spec.summary;
    out += "\n";
  }
  out += "estimators (sink spec: name[@substrate][,key=value]...):\n";
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    out += "  ";
    out += spec.name;
    out += "  [";
    out += spec.metric;
    out += ", default @";
    out += spec.default_substrate;
    out += "]  ";
    out += spec.summary;
    out += "\n";
  }
  return out;
}

}  // namespace swsample
