// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// The unified sink construction API: ONE description (`SinkSpec`) and ONE
/// factory (`CreateSink`) for every stream sink in the library — the twelve
/// registered samplers and the six registered estimators. Everything that
/// constructs sinks (the CLI, the sharded driver's replica fan-out, the
/// keyed multi-tenant engine, checkpoint restore, benches and tests) goes
/// through this layer, so the three historical construction paths (sampler
/// registry, estimator registry + substrate string, and the deleted
/// `CreateShardedSamplers`/`CreateShardedEstimators` twins with their
/// parallel `ShardSamplerConfig`/`ShardEstimatorConfig` derivations)
/// collapse into one.
///
/// A spec is parseable from a single string:
///
///   name[@substrate][,key=value]...
///
///   bop-seq-swor,n=65536,k=64,seed=7
///   ams-fk@bop-ts-swr,t=1000,r=256,moment=2
///   biased-mean,n=4096,bias=1024:0.5+4096:0.5
///
/// Recognized keys: n (sequence window), t (timestamp window), k (sampler
/// sample count), r (estimator unit count), seed, oversample, wr (0/1,
/// exact-oracle replacement mode), moment, vertices, eps, q, and
/// bias=window:weight[+window:weight]... . Unknown names and keys are
/// InvalidArgument with the registered/recognized set in the message.
/// FormatSinkSpec renders the canonical string (defaults omitted) and
/// round-trips through ParseSinkSpec.
///
/// Sharding: `ShardSinkSpec` is the single derivation of a shard replica's
/// configuration — sequence windows split as window_n / shards (must divide
/// evenly, bias levels included), seeds forked with Rng::ForkSeed — and
/// `CreateShardedSinks` materializes the replicas. The checkpoint
/// serializers (stream/checkpoint.h) stamp each shard's envelope with the
/// exact spec that constructed it via the same derivation.
///
/// Ownership: CreateSink returns a caller-owned Sink whose unique_ptr owns
/// the object; the typed views (`sampler`/`estimator`) alias it and share
/// its lifetime.
///
/// Thread-safety: free functions over immutable registries; constructed
/// sinks follow core/api.h's one-thread-per-instance rule.

#ifndef SWSAMPLE_APPS_SINK_SPEC_H_
#define SWSAMPLE_APPS_SINK_SPEC_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/estimator.h"
#include "apps/estimator_registry.h"
#include "core/api.h"
#include "core/registry.h"
#include "util/status.h"

namespace swsample {

/// Which half of the registry a spec's name lives in. Sampler and
/// estimator names are disjoint by construction.
enum class SinkKind {
  kSampler,    ///< name is a sampler-registry key
  kEstimator,  ///< name is an estimator-registry key
};

/// One description of any constructible sink: the union of SamplerConfig
/// and EstimatorConfig keyed by a single registry name. Only the fields
/// the named sink (and its window model) uses are validated; the rest are
/// ignored, exactly like the per-registry configs.
struct SinkSpec {
  /// Sampler- or estimator-registry name. Decides the kind.
  std::string name;
  /// Sampling substrate (estimators only); "" selects the estimator's
  /// default substrate.
  std::string substrate;
  /// Sequence window size n (sequence-model sinks; >= 1 there).
  uint64_t window_n = 0;
  /// Timestamp window length t0 (timestamp-model sinks; >= 1 there).
  Timestamp window_t = 0;
  /// Samples to maintain (samplers; single-sample names require 1).
  uint64_t k = 1;
  /// Independent sampling units / sample size (estimators).
  uint64_t r = 64;
  /// RNG seed; equal specs construct identically-behaving sinks.
  uint64_t seed = 0;
  /// Frequency moment (ams-fk only).
  uint32_t moment = 2;
  /// Vertex universe size (buriol-triangles only).
  uint32_t num_vertices = 0;
  /// Relative error of the DGIM window-size estimate (timestamp
  /// substrates).
  double count_eps = 0.05;
  /// Quantile reported by dkw-quantile.
  double q = 0.5;
  /// Recency levels (biased-mean only); empty derives the default
  /// staircase.
  std::vector<BiasLevel> bias_levels;
  /// Over-sampling factor (oversample-swor substrate/sampler).
  uint64_t oversample_factor = 3;
  /// Sampling mode of the exact-window oracles.
  bool with_replacement = true;
};

/// A constructed sink with its typed views: `sink` owns the object;
/// exactly one of `sampler`/`estimator` is non-null and aliases it.
struct Sink {
  std::unique_ptr<StreamSink> sink;
  WindowSampler* sampler = nullptr;
  WindowEstimator* estimator = nullptr;

  SinkKind kind() const {
    return sampler != nullptr ? SinkKind::kSampler : SinkKind::kEstimator;
  }
};

/// The kind of the sink registered under `name`; InvalidArgument (listing
/// every registered name) when `name` is in neither registry.
Result<SinkKind> SinkKindOf(std::string_view name);

/// The window model `spec` operates under: the named sampler's model, or
/// the estimator's (possibly defaulted) substrate's model.
Result<WindowModel> SinkWindowModel(const SinkSpec& spec);

/// Parses the `name[@substrate][,key=value]...` grammar above.
Result<SinkSpec> ParseSinkSpec(std::string_view text);

/// Canonical string form (defaults omitted); ParseSinkSpec round-trips it.
std::string FormatSinkSpec(const SinkSpec& spec);

/// The per-registry configs a spec projects onto. Conversions are total:
/// field validation happens in the registry factories, not here.
SamplerConfig ToSamplerConfig(const SinkSpec& spec);
EstimatorConfig ToEstimatorConfig(const SinkSpec& spec);

/// Lifts a registry config back into a spec (checkpoint restore, alias
/// flags). The inverse of the To* projections.
SinkSpec SamplerSinkSpec(std::string_view name, const SamplerConfig& config);
SinkSpec EstimatorSinkSpec(std::string_view name,
                           const EstimatorConfig& config);

/// THE factory: constructs the sink `spec` describes through the proper
/// registry. Unknown names, unknown/incompatible substrates and invalid
/// configurations come back as InvalidArgument.
Result<Sink> CreateSink(const SinkSpec& spec);

/// Pre-resolved construction state for one spec: the registry kind and
/// the projected per-registry config are computed ONCE at bind time, so
/// call sites that construct the same shape over and over with varying
/// seeds — the keyed engine makes one sink per tenant, millions of them
/// at 1e7 keys — skip the name lookup, spec copy, and config projection
/// CreateSink pays per call. Create(seed) behaves exactly like
/// CreateSink on a copy of the bound spec with `seed` substituted.
class SinkFactory {
 public:
  /// Unbound factory (Create on it fails); assign a Bind() result
  /// before use. Exists so factories can live by value in engines.
  SinkFactory() = default;

  /// Resolves `spec`'s registry kind and validates it by constructing
  /// (and discarding) one sink, so a factory that binds successfully
  /// cannot fail later for configuration reasons.
  static Result<SinkFactory> Bind(const SinkSpec& spec);

  /// Constructs a sink with the bound configuration and `seed`.
  Result<Sink> Create(uint64_t seed) const;

  SinkKind kind() const { return kind_; }
  /// The bound spec; `spec().seed` is the pre-fork root seed.
  const SinkSpec& spec() const { return spec_; }

 private:
  SinkSpec spec_;
  SinkKind kind_ = SinkKind::kSampler;
  SamplerConfig sampler_config_;
  EstimatorConfig estimator_config_;
  /// Resolved sampler construction function (nullptr for estimators);
  /// Bind's probe construction already validated the configuration, so
  /// Create can call this directly instead of re-running CreateSampler's
  /// name scan per sink.
  SamplerMaker sampler_maker_ = nullptr;
};

/// The configuration shard `shard` of `shards` replicas runs under: the
/// seed forked with Rng::ForkSeed(spec.seed, shard) and, for
/// sequence-model sinks, window_n (and any bias-level windows) split as
/// window_n / shards — which must divide evenly so the shard windows
/// union to the global window. Timestamp windows pass through unchanged
/// (activity is per-item). This single derivation replaces the deleted
/// ShardSamplerConfig/ShardEstimatorConfig pair.
Result<SinkSpec> ShardSinkSpec(const SinkSpec& spec, uint64_t shard,
                               uint64_t shards);

/// Builds `shards` replicas for sharded ingestion, one CreateSink per
/// ShardSinkSpec derivation.
Result<std::vector<Sink>> CreateShardedSinks(const SinkSpec& spec,
                                             uint64_t shards);

/// Serializes a spec-constructed sink into the self-describing checkpoint
/// envelope (core/checkpoint.h / apps/estimator_checkpoint.h — the blob
/// format is unchanged, so old checkpoints restore through this layer).
/// `spec` must be the spec the sink was constructed from.
Result<std::string> SaveSink(const StreamSink& sink, const SinkSpec& spec);

/// Restores any sink envelope (sampler or estimator kind, dispatched on
/// the embedded header) into a constructed Sink plus the spec that
/// reconstructs it.
struct RestoredSink {
  Sink sink;
  SinkSpec spec;
};
Result<RestoredSink> RestoreSink(std::string_view blob);

/// View adaptors over homogeneous CreateShardedSinks results. The typed
/// adaptors require every element to be of that kind (checked; a mixed or
/// mismatched vector is a caller bug surfaced as InvalidArgument).
std::vector<StreamSink*> SinkPointers(const std::vector<Sink>& shards);
Result<std::vector<WindowSampler*>> SamplerPointers(
    const std::vector<Sink>& shards);
Result<std::vector<WindowEstimator*>> EstimatorPointers(
    const std::vector<Sink>& shards);

/// "name1, name2, ..." over both registries — for CLI usage/error text.
std::string RegisteredSinkNames();

/// Unified --list-sinks rendering: one line per registered sampler and
/// estimator (kind, name, model/substrates, summary).
std::string FormatSinkList();

}  // namespace swsample

#endif  // SWSAMPLE_APPS_SINK_SPEC_H_
