// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/triangles.h"

#include "util/macros.h"

namespace swsample {

uint64_t EncodeEdge(uint32_t a, uint32_t b) {
  SWS_DCHECK(a != b);
  const uint32_t lo = a < b ? a : b;
  const uint32_t hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void DecodeEdge(uint64_t value, uint32_t* a, uint32_t* b) {
  *a = static_cast<uint32_t>(value >> 32);
  *b = static_cast<uint32_t>(value & 0xffffffffu);
}

SlidingTriangleEstimator::WatchPayload
SlidingTriangleEstimator::OnSampled::operator()(const Item& item) const {
  WatchPayload p;
  DecodeEdge(item.value, &p.a, &p.b);
  // Uniform third vertex from V \ {a, b} by rejection (universe >= 3).
  do {
    p.v = static_cast<uint32_t>(rng->UniformIndex(num_vertices));
  } while (p.v == p.a || p.v == p.b);
  return p;
}

void SlidingTriangleEstimator::OnArrival::operator()(WatchPayload& p,
                                                     const Item& item) const {
  uint32_t x, y;
  DecodeEdge(item.value, &x, &y);
  if (EncodeEdge(p.a, p.v) == EncodeEdge(x, y)) p.found_av = true;
  if (EncodeEdge(p.b, p.v) == EncodeEdge(x, y)) p.found_bv = true;
}

Result<std::unique_ptr<SlidingTriangleEstimator>>
SlidingTriangleEstimator::Create(uint64_t n, uint32_t num_vertices,
                                 uint64_t r, uint64_t seed) {
  if (n < 1) {
    return Status::InvalidArgument(
        "SlidingTriangleEstimator: n must be >= 1");
  }
  if (num_vertices < 3) {
    return Status::InvalidArgument(
        "SlidingTriangleEstimator: num_vertices must be >= 3");
  }
  if (r < 1) {
    return Status::InvalidArgument(
        "SlidingTriangleEstimator: r must be >= 1");
  }
  return std::unique_ptr<SlidingTriangleEstimator>(
      new SlidingTriangleEstimator(n, num_vertices, r, seed));
}

SlidingTriangleEstimator::SlidingTriangleEstimator(uint64_t n,
                                                   uint32_t num_vertices,
                                                   uint64_t r, uint64_t seed)
    : num_vertices_(num_vertices), rng_(seed), vertex_rng_(seed ^ 0x5bd1e995) {
  units_.reserve(r);
  for (uint64_t i = 0; i < r; ++i) {
    units_.emplace_back(n, OnSampled{&vertex_rng_, num_vertices_},
                        OnArrival{});
  }
}

void SlidingTriangleEstimator::Observe(const Item& item) {
  for (Unit& unit : units_) unit.Observe(item, rng_);
}

double SlidingTriangleEstimator::Estimate() const {
  if (units_.front().count() == 0) return 0.0;
  uint64_t success = 0, live = 0;
  for (const Unit& unit : units_) {
    const auto& s = unit.Current();
    if (!s) continue;
    ++live;
    if (s->payload.found_av && s->payload.found_bv) ++success;
  }
  if (live == 0) return 0.0;
  const double beta =
      static_cast<double>(success) / static_cast<double>(live);
  const double edges = static_cast<double>(units_.front().WindowSize());
  // One-pass watching detects a triangle only via its FIRST-arriving edge
  // (the closing pair must appear after the sampled position), so each
  // window triangle contributes exactly one good (position, apex) pair and
  // E[beta] = T3 / (|E_W| (V-2)) on distinct-edge windows. Repeated window
  // edges add one detection opportunity per extra copy whose closers
  // reappear later, inflating the estimate by the mean triangle-edge
  // multiplicity (documented in bench_e10).
  return beta * edges * static_cast<double>(num_vertices_ - 2);
}

uint64_t SlidingTriangleEstimator::WindowSize() const {
  return units_.front().WindowSize();
}

}  // namespace swsample
