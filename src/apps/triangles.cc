// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/triangles.h"

#include <utility>

#include "util/macros.h"

namespace swsample {

uint64_t EncodeEdge(uint32_t a, uint32_t b) {
  SWS_DCHECK(a != b);
  const uint32_t lo = a < b ? a : b;
  const uint32_t hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void DecodeEdge(uint64_t value, uint32_t* a, uint32_t* b) {
  *a = static_cast<uint32_t>(value >> 32);
  *b = static_cast<uint32_t>(value & 0xffffffffu);
}

TriangleEstimator::WatchPayload TriangleEstimator::OnSampled::operator()(
    const Item& item) const {
  WatchPayload p;
  DecodeEdge(item.value, &p.a, &p.b);
  // Uniform third vertex from V \ {a, b} by rejection (universe >= 3).
  do {
    p.v = static_cast<uint32_t>(rng->UniformIndex(num_vertices));
  } while (p.v == p.a || p.v == p.b);
  return p;
}

void TriangleEstimator::OnArrival::operator()(WatchPayload& p,
                                              const Item& item) const {
  // Compare unordered endpoint pairs directly — no re-encoding, so a
  // degenerate arrival (x == y, possible only in corrupt input) simply
  // matches nothing instead of tripping EncodeEdge's precondition.
  uint32_t x, y;
  DecodeEdge(item.value, &x, &y);
  const auto matches = [&](uint32_t u, uint32_t w) {
    return (x == u && y == w) || (x == w && y == u);
  };
  if (matches(p.a, p.v)) p.found_av = true;
  if (matches(p.b, p.v)) p.found_bv = true;
}

Result<std::unique_ptr<TriangleEstimator>> TriangleEstimator::Create(
    const Substrate::Params& params, uint32_t num_vertices) {
  if (num_vertices < 3) {
    return Status::InvalidArgument(
        "buriol-triangles: num_vertices must be >= 3");
  }
  auto est = std::unique_ptr<TriangleEstimator>(
      new TriangleEstimator(num_vertices, params.seed));
  auto substrate = Substrate::Create(
      params, OnSampled{&est->vertex_rng_, num_vertices}, OnArrival{});
  if (!substrate.ok()) return substrate.status();
  est->substrate_ = std::make_unique<Substrate>(
      std::move(substrate).ValueOrDie());
  return est;
}

void TriangleEstimator::SaveState(BinaryWriter* w) const {
  SaveRngState(vertex_rng_, w);
  substrate_->SaveState(w);
}

bool TriangleEstimator::LoadState(BinaryReader* r) {
  return LoadRngState(r, &vertex_rng_) && substrate_->LoadState(r);
}

EstimateReport TriangleEstimator::Estimate() {
  EstimateReport report;
  report.metric = "T3";
  const double edges = substrate_->WindowSizeEstimate();
  report.window_size = edges;
  if (edges <= 0.0) return report;
  uint64_t success = 0;
  report.support = substrate_->ForEachSample(
      [&](const Item&, const WatchPayload& payload) {
        if (payload.found_av && payload.found_bv) ++success;
      });
  if (report.support == 0) return report;
  const double beta =
      static_cast<double>(success) / static_cast<double>(report.support);
  // One-pass watching detects a triangle only via its FIRST-arriving edge
  // (the closing pair must appear after the sampled position), so each
  // window triangle contributes exactly one good (position, apex) pair and
  // E[beta] = T3 / (|E_W| (V-2)) on distinct-edge windows. Repeated window
  // edges add one detection opportunity per extra copy whose closers
  // reappear later, inflating the estimate by the mean triangle-edge
  // multiplicity (documented in bench_e10).
  report.value = beta * edges * static_cast<double>(num_vertices_ - 2);
  return report;
}

}  // namespace swsample
