// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Triangle counting over sliding edge windows — Corollary 5.3.
//
// Buriol-Frahling-Leonardi-Marchetti-Spaccamela-Sohler (PODS'06) style
// one-pass estimator: sample a uniform edge (a, b) of the window, a
// uniform third vertex v from V \ {a, b}, and watch whether BOTH closing
// edges (a, v) and (b, v) appear afterwards. A triangle is detectable only
// via its first-arriving edge (the closers must come later), so on
// distinct-edge windows the success probability is exactly
// T3 / (|E_W| * (|V| - 2)) and
//
//   T3_hat = beta * |E_W| * (|V| - 2),   beta = success frequency.
//
// Corollary 5.3 transfers this to sliding windows by swapping the reservoir
// for a window sampler; the "watch afterwards" state is again a forward
// payload, valid on windows because arrivals after an active edge are
// active. Registry name "buriol-triangles", over any payload-capable
// substrate — including, via the generalized timestamp payload unit, edge
// windows defined by TIME rather than edge count.
//
// Edges are encoded into Item::value as (min(a,b) << 32) | max(a,b).

#ifndef SWSAMPLE_APPS_TRIANGLES_H_
#define SWSAMPLE_APPS_TRIANGLES_H_

#include <cstdint>
#include <memory>

#include "apps/estimator.h"
#include "apps/payload_substrate.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Encodes an undirected edge into an Item value.
uint64_t EncodeEdge(uint32_t a, uint32_t b);

/// Decodes an Item value into its two endpoints (lo, hi).
void DecodeEdge(uint64_t value, uint32_t* a, uint32_t* b);

/// Streaming triangle-count estimator over a window of edges
/// ("buriol-triangles").
class TriangleEstimator final : public WindowEstimator {
 public:
  /// The watch state of one sampled edge: a chosen apex vertex and which
  /// of the two closing edges have been seen since.
  struct WatchPayload {
    uint32_t a = 0, b = 0, v = 0;
    bool found_av = false, found_bv = false;
  };
  struct OnSampled {
    Rng* rng;
    uint32_t num_vertices;
    WatchPayload operator()(const Item& item) const;
  };
  struct OnArrival {
    void operator()(WatchPayload& p, const Item& item) const;
  };
  using Substrate = PayloadSubstrate<WatchPayload, OnSampled, OnArrival>;

  /// Creates an estimator over a vertex universe of size `num_vertices`
  /// (>= 3), averaging `params.r` independent units. Edge values must be
  /// EncodeEdge() encodings of two distinct vertices below num_vertices.
  static Result<std::unique_ptr<TriangleEstimator>> Create(
      const Substrate::Params& params, uint32_t num_vertices);

  void Observe(const Item& item) override { substrate_->Observe(item); }
  void ObserveBatch(std::span<const Item> items) override {
    substrate_->ObserveBatch(items);
  }
  void AdvanceTime(Timestamp now) override { substrate_->AdvanceTime(now); }
  EstimateReport Estimate() override;
  uint64_t MemoryWords() const override { return substrate_->MemoryWords(); }
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + sizeof(Substrate) + substrate_->RetainedBytes();
  }
  const char* name() const override { return "buriol-triangles"; }
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  TriangleEstimator(uint32_t num_vertices, uint64_t seed)
      : num_vertices_(num_vertices),
        // Top-bit stream id: disjoint from the substrate's unit streams
        // (ForkSeed(seed, 2 + i)) for any realistic unit count r.
        vertex_rng_(Rng::ForkSeed(seed, uint64_t{1} << 63)) {}

  uint32_t num_vertices_;
  Rng vertex_rng_;  // drives the apex choices (independent of reservoirs)
  // Built after vertex_rng_ so the functors can point at it; the estimator
  // lives behind a unique_ptr, so the pointer stays valid.
  std::unique_ptr<Substrate> substrate_;
};

/// Wire codec for the triangle watch payload (see
/// apps/payload_substrate.h for the CountPayload counterpart).
inline void SavePayload(const TriangleEstimator::WatchPayload& p,
                        BinaryWriter* w) {
  w->PutU64(p.a);
  w->PutU64(p.b);
  w->PutU64(p.v);
  w->PutBool(p.found_av);
  w->PutBool(p.found_bv);
}
inline bool LoadPayload(BinaryReader* r, TriangleEstimator::WatchPayload* p) {
  uint64_t a = 0, b = 0, v = 0;
  if (!r->GetU64(&a) || !r->GetU64(&b) || !r->GetU64(&v) ||
      !r->GetBool(&p->found_av) || !r->GetBool(&p->found_bv)) {
    return false;
  }
  p->a = static_cast<uint32_t>(a);
  p->b = static_cast<uint32_t>(b);
  p->v = static_cast<uint32_t>(v);
  // The apex is a third vertex distinct from both endpoints.
  return a <= 0xffffffffu && b <= 0xffffffffu && v <= 0xffffffffu &&
         p->a != p->b && p->v != p->a && p->v != p->b;
}

}  // namespace swsample

#endif  // SWSAMPLE_APPS_TRIANGLES_H_
