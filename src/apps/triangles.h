// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Triangle counting over sliding edge windows -- Corollary 5.3.
//
// Buriol-Frahling-Leonardi-Marchetti-Spaccamela-Sohler (PODS'06) style
// one-pass estimator: sample a uniform edge (a, b) of the window, a
// uniform third vertex v from V \ {a, b}, and watch whether BOTH closing
// edges (a, v) and (b, v) appear afterwards. A triangle is detectable only
// via its first-arriving edge (the closers must come later), so on
// distinct-edge windows the success probability is exactly
// T3 / (|E_W| * (|V| - 2)) and
//
//   T3_hat = beta * |E_W| * (|V| - 2),   beta = success frequency.
//
// Corollary 5.3 transfers this to sliding windows by swapping the reservoir
// for a window sampler; the "watch afterwards" state is again a forward
// payload, valid on windows because arrivals after an active edge are
// active.
//
// Edges are encoded into Item::value as (min(a,b) << 32) | max(a,b).

#ifndef SWSAMPLE_APPS_TRIANGLES_H_
#define SWSAMPLE_APPS_TRIANGLES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/payload_window.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Encodes an undirected edge into an Item value.
uint64_t EncodeEdge(uint32_t a, uint32_t b);

/// Decodes an Item value into its two endpoints (lo, hi).
void DecodeEdge(uint64_t value, uint32_t* a, uint32_t* b);

/// Streaming triangle-count estimator over a fixed-size window of edges.
class SlidingTriangleEstimator {
 public:
  /// Creates an estimator over windows of `n` edges on a vertex universe of
  /// size `num_vertices` (>= 3), averaging `r` independent units.
  static Result<std::unique_ptr<SlidingTriangleEstimator>> Create(
      uint64_t n, uint32_t num_vertices, uint64_t r, uint64_t seed);

  /// Feeds one edge arrival (value must be an EncodeEdge() encoding of two
  /// distinct vertices below num_vertices).
  void Observe(const Item& item);

  /// Current estimate of the number of triangles among the window's edges.
  double Estimate() const;

  /// Window fill level (edges).
  uint64_t WindowSize() const;

 private:
  struct WatchPayload {
    uint32_t a = 0, b = 0, v = 0;
    bool found_av = false, found_bv = false;
  };
  struct OnSampled {
    Rng* rng;
    uint32_t num_vertices;
    WatchPayload operator()(const Item& item) const;
  };
  struct OnArrival {
    void operator()(WatchPayload& p, const Item& item) const;
  };
  using Unit = PayloadWindowUnit<WatchPayload, OnSampled, OnArrival>;

  SlidingTriangleEstimator(uint64_t n, uint32_t num_vertices, uint64_t r,
                           uint64_t seed);

  uint32_t num_vertices_;
  Rng rng_;        // drives the reservoirs
  Rng vertex_rng_; // drives the third-vertex choices (kept independent)
  std::vector<Unit> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_TRIANGLES_H_
