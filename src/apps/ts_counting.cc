// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/ts_counting.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace swsample {

TsForwardCountUnit::TsForwardCountUnit(Timestamp t0, uint64_t seed)
    : sampler_(std::move(TsSingleSampler::Create(t0, seed)).ValueOrDie()) {}

void TsForwardCountUnit::SyncCandidates(
    [[maybe_unused]] const Item* arrived) {
  // Candidate set after the update: R samples of all bucket structures plus
  // the straddler's. Each is either a pre-existing candidate (merges and
  // re-straddling choose among existing samples) or the arriving item.
  std::unordered_map<StreamIndex, Payload> next;
  next.reserve(sampler_.zeta().size() + 1);
  auto adopt = [&](const Item& candidate) {
    auto it = counts_.find(candidate.index);
    if (it != counts_.end()) {
      next.emplace(candidate.index, it->second);
    } else {
      SWS_DCHECK(arrived != nullptr && candidate.index == arrived->index);
      next.emplace(candidate.index, Payload{candidate.value, 1});
    }
  };
  for (uint64_t i = 0; i < sampler_.zeta().size(); ++i) {
    adopt(sampler_.zeta().bucket(i).r);
  }
  if (sampler_.straddler()) adopt(sampler_.straddler()->r);
  counts_ = std::move(next);
}

void TsForwardCountUnit::Observe(const Item& item) {
  // Forward counts first: the arrival is "after" every existing candidate.
  for (auto& [index, payload] : counts_) {
    if (payload.value == item.value) ++payload.count;
  }
  sampler_.Observe(item);
  SyncCandidates(&item);
}

void TsForwardCountUnit::AdvanceTime(Timestamp now) {
  sampler_.AdvanceTime(now);
  SyncCandidates(nullptr);
}

std::optional<TsForwardCountUnit::Sampled> TsForwardCountUnit::Sample() {
  auto item = sampler_.Sample();
  if (!item) return std::nullopt;
  auto it = counts_.find(item->index);
  SWS_CHECK(it != counts_.end());
  return Sampled{*item, it->second.count};
}

Result<std::unique_ptr<TsFkEstimator>> TsFkEstimator::Create(
    Timestamp t0, uint32_t moment, uint64_t r, double count_eps,
    uint64_t seed) {
  if (moment < 1) {
    return Status::InvalidArgument("TsFkEstimator: moment must be >= 1");
  }
  if (r < 1) {
    return Status::InvalidArgument("TsFkEstimator: r must be >= 1");
  }
  auto histogram = ExpHistogram::Create(t0, count_eps);
  if (!histogram.ok()) return histogram.status();
  auto est = std::unique_ptr<TsFkEstimator>(
      new TsFkEstimator(moment, std::move(histogram).ValueOrDie()));
  Rng seeder(seed);
  est->units_.reserve(r);
  for (uint64_t i = 0; i < r; ++i) {
    est->units_.emplace_back(t0, seeder.NextU64());
  }
  return est;
}

void TsFkEstimator::Observe(const Item& item) {
  histogram_.Add(item.timestamp);
  for (auto& unit : units_) unit.Observe(item);
}

void TsFkEstimator::AdvanceTime(Timestamp now) {
  histogram_.AdvanceTime(now);
  for (auto& unit : units_) unit.AdvanceTime(now);
}

double TsFkEstimator::Estimate() {
  const double n = static_cast<double>(histogram_.Estimate());
  if (n <= 0.0) return 0.0;
  double acc = 0.0;
  uint64_t live = 0;
  for (auto& unit : units_) {
    auto s = unit.Sample();
    if (!s) continue;
    const double c = static_cast<double>(s->count);
    acc += n * (std::pow(c, moment_) - std::pow(c - 1.0, moment_));
    ++live;
  }
  return live ? acc / static_cast<double>(live) : 0.0;
}

uint64_t TsFkEstimator::MemoryWords() const {
  uint64_t words = histogram_.MemoryWords();
  for (const auto& unit : units_) words += unit.MemoryWords();
  return words;
}

Result<std::unique_ptr<TsEntropyEstimator>> TsEntropyEstimator::Create(
    Timestamp t0, uint64_t r, double count_eps, uint64_t seed) {
  if (r < 1) {
    return Status::InvalidArgument("TsEntropyEstimator: r must be >= 1");
  }
  auto histogram = ExpHistogram::Create(t0, count_eps);
  if (!histogram.ok()) return histogram.status();
  auto est = std::unique_ptr<TsEntropyEstimator>(
      new TsEntropyEstimator(std::move(histogram).ValueOrDie()));
  Rng seeder(seed);
  est->units_.reserve(r);
  for (uint64_t i = 0; i < r; ++i) {
    est->units_.emplace_back(t0, seeder.NextU64());
  }
  return est;
}

void TsEntropyEstimator::Observe(const Item& item) {
  histogram_.Add(item.timestamp);
  for (auto& unit : units_) unit.Observe(item);
}

void TsEntropyEstimator::AdvanceTime(Timestamp now) {
  histogram_.AdvanceTime(now);
  for (auto& unit : units_) unit.AdvanceTime(now);
}

double TsEntropyEstimator::Estimate() {
  const double n = static_cast<double>(histogram_.Estimate());
  if (n <= 0.0) return 0.0;
  double acc = 0.0;
  uint64_t live = 0;
  for (auto& unit : units_) {
    auto s = unit.Sample();
    if (!s) continue;
    const double c = static_cast<double>(s->count);
    // CCM basic estimator; n-hat may dip below c under EH error, so clamp
    // the log arguments at 1 (the estimator stays consistent as eps -> 0).
    double est = c * std::log2(std::max(n / c, 1.0));
    if (c > 1.0) est -= (c - 1.0) * std::log2(std::max(n / (c - 1.0), 1.0));
    acc += est;
    ++live;
  }
  return live ? acc / static_cast<double>(live) : 0.0;
}

}  // namespace swsample
