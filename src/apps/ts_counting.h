// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Forward-count tracking over TIMESTAMP windows -- the missing half of
// Corollaries 5.2/5.4 for the timestamp model.
//
// The sequence-based estimators (apps/freq_moments.h, apps/entropy.h) rely
// on two facts: (a) a payload can follow each candidate sample, and (b) the
// window size n is known. On timestamp windows (a) still works -- the
// candidate set of a TsSingleSampler is the O(log n) bucket R-samples plus
// the straddler's, and a new candidate can only be the arriving element
// (fresh single-element bucket); merges and re-straddling select among
// EXISTING candidates, so payloads survive by carrying a map keyed by
// candidate index across arrivals. For (b), the window size is unknowable
// exactly (the paper's Section 1.3.2 negative result), so we substitute the
// (1 +/- eps) DGIM exponential-histogram estimate (reference [31]) -- the
// estimator inherits an extra (1 +/- eps) factor, exactly the composition
// Theorem 5.1 describes.

#ifndef SWSAMPLE_APPS_TS_COUNTING_H_
#define SWSAMPLE_APPS_TS_COUNTING_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ts_single.h"
#include "stream/exp_histogram.h"
#include "stream/item.h"
#include "util/status.h"

namespace swsample {

/// One timestamp-window sampling unit whose current sample carries the
/// count of occurrences of its value at/after the sampled position.
class TsForwardCountUnit {
 public:
  /// Builds a unit over window length t0 (>= 1).
  TsForwardCountUnit(Timestamp t0, uint64_t seed);

  /// Feeds one arrival.
  void Observe(const Item& item);

  /// Advances the clock.
  void AdvanceTime(Timestamp now);

  /// A sampled (item, forward count) of the active window; nullopt if
  /// empty. Fresh sampling randomness per call; the count is exact.
  struct Sampled {
    Item item;
    uint64_t count;
  };
  std::optional<Sampled> Sample();

  /// Live memory words incl. the payload map (O(log n) entries).
  uint64_t MemoryWords() const {
    return sampler_.MemoryWords() + counts_.size() * 3;
  }

 private:
  struct Payload {
    uint64_t value = 0;
    uint64_t count = 0;
  };

  /// Reconciles the payload map with the sampler's candidate set after an
  /// arrival (every candidate is an old candidate or the new item).
  void SyncCandidates(const Item* arrived);

  TsSingleSampler sampler_;
  std::unordered_map<StreamIndex, Payload> counts_;
};

/// F_k estimator over a timestamp window: AMS forward counts from r
/// independent TsForwardCountUnits, window size from an exponential
/// histogram.
class TsFkEstimator {
 public:
  /// Creates an estimator of the `moment`-th frequency moment (>= 1) over
  /// timestamp windows of length t0, averaging `r` units, with the window
  /// size approximated to relative error `count_eps`.
  static Result<std::unique_ptr<TsFkEstimator>> Create(Timestamp t0,
                                                       uint32_t moment,
                                                       uint64_t r,
                                                       double count_eps,
                                                       uint64_t seed);

  /// Feeds one arrival.
  void Observe(const Item& item);

  /// Advances the clock.
  void AdvanceTime(Timestamp now);

  /// Current F_moment estimate (0 when the window is empty).
  double Estimate();

  /// (1 +/- eps) estimate of the window size.
  uint64_t WindowSizeEstimate() { return histogram_.Estimate(); }

  /// Live memory words across all units plus the histogram.
  uint64_t MemoryWords() const;

 private:
  TsFkEstimator(uint32_t moment, ExpHistogram histogram)
      : moment_(moment), histogram_(std::move(histogram)) {}

  uint32_t moment_;
  ExpHistogram histogram_;
  std::vector<TsForwardCountUnit> units_;
};

/// Empirical-entropy estimator over a timestamp window (Corollary 5.4's
/// timestamp half): the CCM basic estimator on forward counts from
/// TsForwardCountUnits, with the window size from an exponential histogram.
class TsEntropyEstimator {
 public:
  /// Creates an estimator over timestamp windows of length t0 averaging
  /// `r` units, window size approximated to relative error `count_eps`.
  static Result<std::unique_ptr<TsEntropyEstimator>> Create(Timestamp t0,
                                                            uint64_t r,
                                                            double count_eps,
                                                            uint64_t seed);

  /// Feeds one arrival.
  void Observe(const Item& item);

  /// Advances the clock.
  void AdvanceTime(Timestamp now);

  /// Current entropy estimate in bits (0 when the window is empty).
  double Estimate();

 private:
  explicit TsEntropyEstimator(ExpHistogram histogram)
      : histogram_(std::move(histogram)) {}

  ExpHistogram histogram_;
  std::vector<TsForwardCountUnit> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_TS_COUNTING_H_
