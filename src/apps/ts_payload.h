// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Payload-carrying single-sample unit for TIMESTAMP windows — the
// timestamp half of the Theorem 5.1 bridge (generalizing the forward-count
// tracker Corollaries 5.2/5.4 need to arbitrary payloads, which is what
// lets triangle watching run on timestamp windows too).
//
// The candidate set of a TsSingleSampler is the O(log n) bucket R-samples
// plus the straddler's, and a new candidate can only be the arriving
// element (fresh single-element bucket); merges and re-straddling select
// among EXISTING candidates. Payloads therefore survive restructuring by
// carrying a map keyed by candidate index:
//
//  * when a candidate enters (it is the arriving element),
//    `OnSampled(item)` builds a fresh payload;
//  * every subsequent arrival is reported to every candidate's payload via
//    `OnArrival(payload, item)` — whichever candidate Sample() returns,
//    its payload has seen exactly the arrivals after its position.
//
// ObserveBatch amortizes the per-item candidate-map rebuild: payloads are
// updated in place per arrival, and the map is reconciled once per batch;
// candidates adopted mid-batch replay the arrivals after their position
// from the batch span, which reproduces the item-wise state exactly.
//
// The map is a util/flat_map.h open-addressing table, and reconciliation
// ping-pongs between two tables whose memory persists across syncs — the
// steady state performs zero allocation per item (the std::unordered_map
// predecessor rebuilt a node-based map per sync).

#ifndef SWSAMPLE_APPS_TS_PAYLOAD_H_
#define SWSAMPLE_APPS_TS_PAYLOAD_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/ts_single.h"
#include "stream/item.h"
#include "util/flat_map.h"
#include "util/macros.h"
#include "util/serial.h"

namespace swsample {

/// One independent single-sample unit with payload tracking over a
/// timestamp window of length t0.
template <typename Payload, typename OnSampledFn, typename OnArrivalFn>
class TsPayloadUnit {
 public:
  /// A sampled position with its forward-accumulated payload.
  struct Sampled {
    Item item;
    Payload payload;
  };

  /// Builds a unit over window length t0 (>= 1; validated upstream).
  TsPayloadUnit(Timestamp t0, uint64_t seed, OnSampledFn on_sampled,
                OnArrivalFn on_arrival)
      : sampler_(std::move(TsSingleSampler::Create(t0, seed)).ValueOrDie()),
        on_sampled_(std::move(on_sampled)),
        on_arrival_(std::move(on_arrival)) {}

  /// Feeds one arrival.
  void Observe(const Item& item) {
    // Forward payloads first: the arrival is "after" every candidate.
    payloads_.ForEach(
        [&](StreamIndex, Payload& payload) { on_arrival_(payload, item); });
    sampler_.Observe(item);
    SyncCandidates(std::span<const Item>(&item, 1));
  }

  /// Feeds a contiguous run of arrivals; state identical to item-wise.
  void ObserveBatch(std::span<const Item> items) {
    if (items.empty()) return;
    CoinSource coins(sampler_.rng());  // batch-scoped merge-coin cache
    for (const Item& item : items) {
      payloads_.ForEach(
          [&](StreamIndex, Payload& payload) { on_arrival_(payload, item); });
      sampler_.ObserveWithCoins(item, coins);
    }
    SyncCandidates(items);
  }

  /// Advances the clock.
  void AdvanceTime(Timestamp now) {
    sampler_.AdvanceTime(now);
    SyncCandidates(std::span<const Item>());
  }

  /// A sampled (item, payload) of the active window; nullopt if empty.
  /// Fresh sampling randomness per call; the payload is exact.
  std::optional<Sampled> Sample() {
    auto item = sampler_.SampleOne();
    if (!item) return std::nullopt;
    Payload* payload = payloads_.Find(item->index);
    SWS_CHECK(payload != nullptr);
    return Sampled{*item, *payload};
  }

  /// Live memory words incl. the payload map (O(log n) entries).
  uint64_t MemoryWords() const {
    constexpr uint64_t kPayloadWords = (sizeof(Payload) + 7) / 8;
    return sampler_.MemoryWords() + payloads_.Size() * (1 + kPayloadWords);
  }

  /// Heap bytes retained beyond the object footprint: the embedded
  /// sampler's arena plus the payload map's table reservation.
  uint64_t RetainedBytes() const {
    return sampler_.zeta().RetainedBytes() + payloads_.ReservedBytes();
  }

  /// Checkpointing: the embedded Section 3 sampler plus the candidate
  /// payload map (serialized sorted by index so equal states produce
  /// equal bytes). Load requires the map keys to be exactly the sampler's
  /// candidate set — the invariant Sample() checks.
  void Save(BinaryWriter* w) const {
    sampler_.SaveState(w);
    std::vector<StreamIndex> keys;
    keys.reserve(payloads_.Size());
    payloads_.ForEach(
        [&](StreamIndex index, const Payload&) { keys.push_back(index); });
    std::sort(keys.begin(), keys.end());
    w->PutU64(keys.size());
    for (StreamIndex key : keys) {
      w->PutU64(key);
      SavePayload(*payloads_.Find(key), w);
    }
  }

  bool Load(BinaryReader* r) {
    uint64_t size = 0;
    if (!sampler_.LoadState(r) || !r->GetU64(&size) ||
        size != sampler_.StructureCount()) {
      return false;
    }
    payloads_.Clear();
    for (uint64_t i = 0; i < size; ++i) {
      StreamIndex index = 0;
      Payload payload;
      if (!r->GetU64(&index) || !LoadPayload(r, &payload) ||
          !payloads_.TryEmplace(index, payload).second) {
        return false;
      }
    }
    // Every candidate the sampler can return must carry a payload.
    for (uint64_t i = 0; i < sampler_.zeta().size(); ++i) {
      if (!payloads_.Contains(sampler_.zeta().bucket(i).r.index)) {
        return false;
      }
    }
    if (sampler_.straddler() &&
        !payloads_.Contains(sampler_.straddler()->r.index)) {
      return false;
    }
    return true;
  }

 private:
  /// Reconciles the payload map with the sampler's candidate set. Every
  /// candidate is an old candidate or an element of `batch` (the arrivals
  /// since the last sync); new candidates replay the batch suffix after
  /// their position to catch up on OnArrival updates. The rebuilt map is
  /// written into `scratch_` and swapped in, so both tables' memory is
  /// reused forever.
  void SyncCandidates(std::span<const Item> batch) {
    scratch_.Clear();
    auto adopt = [&](const Item& candidate) {
      Payload* old_payload = payloads_.Find(candidate.index);
      if (old_payload != nullptr) {
        scratch_.TryEmplace(candidate.index, *old_payload);
        return;
      }
      SWS_DCHECK(!batch.empty() && candidate.index >= batch.front().index);
      const uint64_t offset = candidate.index - batch.front().index;
      SWS_DCHECK(offset < batch.size());
      Payload payload = on_sampled_(batch[offset]);
      for (uint64_t j = offset + 1; j < batch.size(); ++j) {
        on_arrival_(payload, batch[j]);
      }
      scratch_.TryEmplace(candidate.index, payload);
    };
    for (uint64_t i = 0; i < sampler_.zeta().size(); ++i) {
      adopt(sampler_.zeta().bucket(i).r);
    }
    if (sampler_.straddler()) adopt(sampler_.straddler()->r);
    std::swap(payloads_, scratch_);
  }

  TsSingleSampler sampler_;
  OnSampledFn on_sampled_;
  OnArrivalFn on_arrival_;
  FlatMap<StreamIndex, Payload> payloads_;
  FlatMap<StreamIndex, Payload> scratch_;  // SyncCandidates ping-pong twin
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_TS_PAYLOAD_H_
