// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/window_count.h"

#include <algorithm>
#include <utility>

namespace swsample {

Result<std::unique_ptr<WindowCountEstimator>> WindowCountEstimator::Create(
    Mode mode, uint64_t window_n, Timestamp window_t, double count_eps) {
  if (mode == Mode::kSequence && window_n < 1) {
    return Status::InvalidArgument("window-count: window_n must be >= 1");
  }
  if (mode != Mode::kSequence && window_t < 1) {
    return Status::InvalidArgument("window-count: window_t must be >= 1");
  }
  auto est = std::unique_ptr<WindowCountEstimator>(
      new WindowCountEstimator(mode, window_n, window_t));
  if (mode == Mode::kTsHistogram) {
    auto histogram = ExpHistogram::Create(window_t, count_eps);
    if (!histogram.ok()) return histogram.status();
    est->histogram_.emplace(std::move(histogram).ValueOrDie());
  }
  return est;
}

void WindowCountEstimator::Observe(const Item& item) {
  switch (mode_) {
    case Mode::kSequence:
      ++count_;
      break;
    case Mode::kTsHistogram:
      histogram_->Add(item.timestamp);
      break;
    case Mode::kTsExact:
      timestamps_.push_back(item.timestamp);
      AdvanceTime(item.timestamp);
      break;
  }
}

void WindowCountEstimator::ObserveBatch(std::span<const Item> items) {
  switch (mode_) {
    case Mode::kSequence:
      count_ += items.size();
      break;
    case Mode::kTsHistogram:
      for (const Item& item : items) histogram_->Add(item.timestamp);
      break;
    case Mode::kTsExact:
      for (const Item& item : items) timestamps_.push_back(item.timestamp);
      if (!items.empty()) AdvanceTime(items.back().timestamp);
      break;
  }
}

void WindowCountEstimator::AdvanceTime(Timestamp now) {
  switch (mode_) {
    case Mode::kSequence:
      break;
    case Mode::kTsHistogram:
      histogram_->AdvanceTime(now);
      break;
    case Mode::kTsExact:
      while (!timestamps_.empty() && now - timestamps_.front() >= window_t_) {
        timestamps_.pop_front();
      }
      break;
  }
}

EstimateReport WindowCountEstimator::Estimate() {
  EstimateReport report;
  report.metric = "count";
  switch (mode_) {
    case Mode::kSequence:
      report.value = static_cast<double>(std::min(count_, window_n_));
      break;
    case Mode::kTsHistogram:
      report.value = static_cast<double>(histogram_->Estimate());
      break;
    case Mode::kTsExact:
      report.value = static_cast<double>(timestamps_.size());
      break;
  }
  report.window_size = report.value;
  return report;
}

void WindowCountEstimator::SaveState(BinaryWriter* w) const {
  switch (mode_) {
    case Mode::kSequence:
      w->PutU64(count_);
      break;
    case Mode::kTsHistogram:
      histogram_->Save(w);
      break;
    case Mode::kTsExact:
      w->PutU64(timestamps_.size());
      for (Timestamp ts : timestamps_) w->PutI64(ts);
      break;
  }
}

bool WindowCountEstimator::LoadState(BinaryReader* r) {
  switch (mode_) {
    case Mode::kSequence:
      return r->GetU64(&count_);
    case Mode::kTsHistogram:
      return histogram_->Load(r);
    case Mode::kTsExact: {
      uint64_t size = 0;
      if (!r->GetU64(&size) || size > r->remaining() / 8) return false;
      timestamps_.clear();
      for (uint64_t i = 0; i < size; ++i) {
        Timestamp ts = 0;
        // Non-negative (AdvanceTime's expiry subtraction must not
        // overflow on a corrupt blob) and non-decreasing.
        if (!r->GetI64(&ts) || ts < 0 ||
            (!timestamps_.empty() && ts < timestamps_.back())) {
          return false;
        }
        timestamps_.push_back(ts);
      }
      return true;
    }
  }
  return false;
}

uint64_t WindowCountEstimator::MemoryWords() const {
  switch (mode_) {
    case Mode::kSequence:
      return 2;
    case Mode::kTsHistogram:
      return histogram_->MemoryWords();
    case Mode::kTsExact:
      return timestamps_.size() + 2;
  }
  return 0;
}

}  // namespace swsample
