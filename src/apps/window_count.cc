// Copyright (c) swsample authors. Licensed under the MIT license.

#include "apps/window_count.h"

#include <algorithm>
#include <utility>

namespace swsample {

Result<std::unique_ptr<WindowCountEstimator>> WindowCountEstimator::Create(
    Mode mode, uint64_t window_n, Timestamp window_t, double count_eps) {
  if (mode == Mode::kSequence && window_n < 1) {
    return Status::InvalidArgument("window-count: window_n must be >= 1");
  }
  if (mode != Mode::kSequence && window_t < 1) {
    return Status::InvalidArgument("window-count: window_t must be >= 1");
  }
  auto est = std::unique_ptr<WindowCountEstimator>(
      new WindowCountEstimator(mode, window_n, window_t));
  if (mode == Mode::kTsHistogram) {
    auto histogram = ExpHistogram::Create(window_t, count_eps);
    if (!histogram.ok()) return histogram.status();
    est->histogram_.emplace(std::move(histogram).ValueOrDie());
  }
  return est;
}

void WindowCountEstimator::Observe(const Item& item) {
  switch (mode_) {
    case Mode::kSequence:
      ++count_;
      break;
    case Mode::kTsHistogram:
      histogram_->Add(item.timestamp);
      break;
    case Mode::kTsExact:
      timestamps_.push_back(item.timestamp);
      AdvanceTime(item.timestamp);
      break;
  }
}

void WindowCountEstimator::ObserveBatch(std::span<const Item> items) {
  switch (mode_) {
    case Mode::kSequence:
      count_ += items.size();
      break;
    case Mode::kTsHistogram:
      for (const Item& item : items) histogram_->Add(item.timestamp);
      break;
    case Mode::kTsExact:
      for (const Item& item : items) timestamps_.push_back(item.timestamp);
      if (!items.empty()) AdvanceTime(items.back().timestamp);
      break;
  }
}

void WindowCountEstimator::AdvanceTime(Timestamp now) {
  switch (mode_) {
    case Mode::kSequence:
      break;
    case Mode::kTsHistogram:
      histogram_->AdvanceTime(now);
      break;
    case Mode::kTsExact:
      while (!timestamps_.empty() && now - timestamps_.front() >= window_t_) {
        timestamps_.pop_front();
      }
      break;
  }
}

EstimateReport WindowCountEstimator::Estimate() {
  EstimateReport report;
  report.metric = "count";
  switch (mode_) {
    case Mode::kSequence:
      report.value = static_cast<double>(std::min(count_, window_n_));
      break;
    case Mode::kTsHistogram:
      report.value = static_cast<double>(histogram_->Estimate());
      break;
    case Mode::kTsExact:
      report.value = static_cast<double>(timestamps_.size());
      break;
  }
  report.window_size = report.value;
  return report;
}

uint64_t WindowCountEstimator::MemoryWords() const {
  switch (mode_) {
    case Mode::kSequence:
      return 2;
    case Mode::kTsHistogram:
      return histogram_->MemoryWords();
    case Mode::kTsExact:
      return timestamps_.size() + 2;
  }
  return 0;
}

}  // namespace swsample
