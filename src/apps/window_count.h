// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Active-element counting — the Section 1.3.2 boundary made queryable.
//
// In the sequence model the window size is trivially known (min(count, n)).
// In the timestamp model it is unknowable exactly in o(n) memory (the
// paper's negative result), so the estimator substitutes the (1 +/- eps)
// DGIM exponential-histogram estimate (reference [31]) — the same n-hat
// every timestamp-substrate payload estimator is scaled by, exposed here
// as an estimator in its own right ("window-count"). Over the exact-ts
// oracle substrate it instead buffers timestamps and reports the exact
// count, serving as the sweep baseline.

#ifndef SWSAMPLE_APPS_WINDOW_COUNT_H_
#define SWSAMPLE_APPS_WINDOW_COUNT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "apps/estimator.h"
#include "stream/exp_histogram.h"
#include "stream/item.h"
#include "util/status.h"

namespace swsample {

/// Streaming window-size estimator ("window-count").
class WindowCountEstimator final : public WindowEstimator {
 public:
  enum class Mode {
    kSequence,     ///< exact: min(arrivals, window_n), O(1) words
    kTsHistogram,  ///< DGIM (1 +/- eps) n-hat, O(log^2 n / eps) words
    kTsExact,      ///< buffered timestamps, O(n) words (oracle)
  };

  /// Sequence mode needs window_n >= 1; timestamp modes need window_t >= 1
  /// (and, for kTsHistogram, a valid count_eps).
  static Result<std::unique_ptr<WindowCountEstimator>> Create(
      Mode mode, uint64_t window_n, Timestamp window_t, double count_eps);

  void Observe(const Item& item) override;
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp now) override;
  EstimateReport Estimate() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    return sizeof(*this) +
           (histogram_ ? histogram_->RetainedBytes() : 0) +
           timestamps_.size() * sizeof(Timestamp);
  }
  const char* name() const override { return "window-count"; }
  /// Active counts add up under any element partition of the window.
  EstimateMergeKind merge_kind() const override {
    return EstimateMergeKind::kCount;
  }
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  WindowCountEstimator(Mode mode, uint64_t window_n, Timestamp window_t)
      : mode_(mode), window_n_(window_n), window_t_(window_t) {}

  Mode mode_;
  uint64_t window_n_;
  Timestamp window_t_;
  uint64_t count_ = 0;                     // kSequence
  std::optional<ExpHistogram> histogram_;  // kTsHistogram
  std::deque<Timestamp> timestamps_;       // kTsExact
};

}  // namespace swsample

#endif  // SWSAMPLE_APPS_WINDOW_COUNT_H_
