// Copyright (c) swsample authors. Licensed under the MIT license.

#include "baseline/bounded_priority_sampler.h"

#include <algorithm>

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

Result<std::unique_ptr<BoundedPrioritySampler>> BoundedPrioritySampler::Create(
    Timestamp t0, uint64_t k, uint64_t seed) {
  if (t0 < 1) {
    return Status::InvalidArgument(
        "BoundedPrioritySampler: t0 must be >= 1");
  }
  if (k < 1) {
    return Status::InvalidArgument("BoundedPrioritySampler: k must be >= 1");
  }
  return std::unique_ptr<BoundedPrioritySampler>(
      new BoundedPrioritySampler(t0, k, seed));
}

BoundedPrioritySampler::BoundedPrioritySampler(Timestamp t0, uint64_t k,
                                               uint64_t seed)
    : t0_(t0), k_(k), rng_(seed) {}

void BoundedPrioritySampler::EvictExpired() {
  while (!entries_.empty() && now_ - entries_.front().item.timestamp >= t0_) {
    entries_.pop_front();
  }
}

void BoundedPrioritySampler::AdvanceTime(Timestamp now) {
  if (now < now_) return;  // clock regressions are no-ops (see StreamSink)
  now_ = now;
  EvictExpired();
}

void BoundedPrioritySampler::Observe(const Item& item) {
  // Out-of-order contract: store the clamped copy so stored timestamps
  // stay non-decreasing (LoadState and front-only expiry both rely on it).
  const Item stored = item.timestamp < now_
                          ? Item{item.value, item.index, now_}
                          : item;
  AdvanceTime(stored.timestamp);
  const uint64_t priority = rng_.NextU64();
  // The new arrival dominates every stored element of lower priority; an
  // element dominated k times can never again be among the k highest
  // priorities of the active suffix, so it is discarded.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->priority < priority && ++(it->dominated) >= k_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  entries_.push_back(Entry{stored, priority, 0});
}

std::vector<Item> BoundedPrioritySampler::Sample() {
  EvictExpired();
  // All retained entries are active; the k highest priorities among the
  // window's elements are guaranteed to be retained, and they form a
  // uniform k-sample without replacement.
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) {
              return a->priority > b->priority;
            });
  std::vector<Item> out;
  const uint64_t take = std::min<uint64_t>(k_, sorted.size());
  out.reserve(take);
  for (uint64_t i = 0; i < take; ++i) out.push_back(sorted[i]->item);
  return out;
}

void BoundedPrioritySampler::SaveState(BinaryWriter* w) const {
  w->PutI64(now_);
  SaveRngState(rng_, w);
  w->PutU64(entries_.size());
  for (const Entry& entry : entries_) {
    SaveItem(entry.item, w);
    w->PutU64(entry.priority);
    w->PutU64(entry.dominated);
  }
}

bool BoundedPrioritySampler::LoadState(BinaryReader* r) {
  uint64_t size = 0;
  if (!r->GetI64(&now_) || now_ < 0 || !LoadRngState(r, &rng_) ||
      !r->GetU64(&size) || size > r->remaining() / 40 + 1) {
    return false;
  }
  entries_.clear();
  for (uint64_t i = 0; i < size; ++i) {
    Entry entry;
    // Arrival-ordered, active, and never dominated k times (a k-dominated
    // entry would have been discarded by Observe). 0 <= ts <= now_ first,
    // so the expiry subtraction cannot overflow on a corrupt timestamp.
    if (!LoadItem(r, &entry.item) || !r->GetU64(&entry.priority) ||
        !r->GetU64(&entry.dominated) || entry.dominated >= k_ ||
        entry.item.timestamp < 0 || entry.item.timestamp > now_ ||
        now_ - entry.item.timestamp >= t0_ ||
        (!entries_.empty() &&
         entry.item.index <= entries_.back().item.index)) {
      return false;
    }
    entries_.push_back(entry);
  }
  return true;
}

uint64_t BoundedPrioritySampler::MemoryWords() const {
  // Item + priority + dominated counter per entry, plus clock, t0, k.
  return 3 + entries_.size() * (kWordsPerItem + 2);
}

}  // namespace swsample
