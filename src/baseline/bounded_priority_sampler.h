// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Bounded priority sampling -- Gemulla & Lehner (SIGMOD'08), the prior art
// for sampling WITHOUT replacement from timestamp-based windows: the
// natural extension of BDM priority sampling that keeps every element whose
// priority is among the k highest of all elements arriving at or after it.
// The retained-set size is E[O(k log(n/k))] but randomized; the paper's
// Theorem 4.4 achieves the same task with deterministic O(k log n) words.

#ifndef SWSAMPLE_BASELINE_BOUNDED_PRIORITY_SAMPLER_H_
#define SWSAMPLE_BASELINE_BOUNDED_PRIORITY_SAMPLER_H_

#include <deque>
#include <memory>
#include <vector>

#include "core/api.h"
#include "util/status.h"

namespace swsample {

/// k-sample without replacement over a timestamp window via the k-highest-
/// priorities scheme.
class BoundedPrioritySampler final : public WindowSampler {
 public:
  /// Creates a sampler; requires t0 >= 1 and k >= 1.
  static Result<std::unique_ptr<BoundedPrioritySampler>> Create(Timestamp t0,
                                                                uint64_t k,
                                                                uint64_t seed);

  void Observe(const Item& item) override;
  /// Devirtualized per-item loop (the class is final, so these are direct
  /// calls); the dominated-counter scan itself is inherently per item.
  void ObserveBatch(std::span<const Item> items) override {
    for (const Item& item : items) Observe(item);
  }
  void AdvanceTime(Timestamp now) override;
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + entries_.size() * sizeof(Entry);
  }
  uint64_t k() const override { return k_; }
  const char* name() const override { return "gl-bounded-priority"; }

  /// Window parameter.
  Timestamp t0() const { return t0_; }

  /// Current retained-set size (the randomized memory metric).
  uint64_t ListLength() const { return entries_.size(); }

  /// Interface-level persistence (clock, RNG, retained entries); restore
  /// through the checkpoint envelope.
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  struct Entry {
    Item item;
    uint64_t priority;
    uint64_t dominated;  ///< # later arrivals with higher priority
  };

  BoundedPrioritySampler(Timestamp t0, uint64_t k, uint64_t seed);

  void EvictExpired();

  Timestamp t0_;
  uint64_t k_;
  Timestamp now_ = 0;
  Rng rng_;
  /// Arrival-ordered; every entry has dominated < k.
  std::deque<Entry> entries_;
};

}  // namespace swsample

#endif  // SWSAMPLE_BASELINE_BOUNDED_PRIORITY_SAMPLER_H_
