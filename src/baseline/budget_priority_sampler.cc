// Copyright (c) swsample authors. Licensed under the MIT license.

#include "baseline/budget_priority_sampler.h"

#include "util/macros.h"

namespace swsample {

Result<BudgetPrioritySampler> BudgetPrioritySampler::Create(
    Timestamp t0, uint64_t capacity, uint64_t seed) {
  if (t0 < 1) {
    return Status::InvalidArgument(
        "BudgetPrioritySampler: t0 must be >= 1");
  }
  if (capacity < 1) {
    return Status::InvalidArgument(
        "BudgetPrioritySampler: capacity must be >= 1");
  }
  return BudgetPrioritySampler(t0, capacity, seed);
}

void BudgetPrioritySampler::EvictExpired() {
  while (!stairs_.empty() && now_ - stairs_.front().item.timestamp >= t0_) {
    stairs_.pop_front();
  }
}

void BudgetPrioritySampler::AdvanceTime(Timestamp now) {
  if (now < now_) return;  // clock regressions are no-ops (see StreamSink)
  now_ = now;
  EvictExpired();
}

void BudgetPrioritySampler::Observe(const Item& item) {
  // Out-of-order contract: store the clamped copy so staircase timestamps
  // stay non-decreasing and front-only expiry stays exact.
  const Item stored = item.timestamp < now_
                          ? Item{item.value, item.index, now_}
                          : item;
  AdvanceTime(stored.timestamp);
  const uint64_t priority = rng_.NextU64();
  // Standard right-maxima staircase maintenance ...
  while (!stairs_.empty() && stairs_.back().priority <= priority) {
    stairs_.pop_back();
  }
  stairs_.push_back(Entry{stored, priority});
  // ... then the BUDGET bites: drop the lowest-priority (newest staircase)
  // entries beyond capacity. Those were the backups that would have taken
  // over when older entries expire; without them the sampler can go dark.
  while (stairs_.size() > capacity_) stairs_.pop_back();
}

std::optional<Item> BudgetPrioritySampler::Sample() {
  ++queries_;
  EvictExpired();
  if (stairs_.empty()) {
    ++failures_;
    return std::nullopt;
  }
  return stairs_.front().item;
}

}  // namespace swsample
