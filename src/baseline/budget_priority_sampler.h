// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Bounded-SPACE priority sampling -- the Gemulla / Gemulla-Lehner regime
// the paper's Section 1.1 discusses: give the sampler a hard memory budget
// of C entries and accept that a sample may be UNAVAILABLE. The thesis
// quote the paper reproduces is the point: "We cannot guarantee a global
// lower bound other than 0 that holds at any arbitrary time without a
// priori knowledge of the data stream."
//
// Model: the usual priority staircase (descending right-maxima), but when
// it would exceed C entries the lowest-priority (newest staircase tail)
// entries are dropped. When a burst pushes more than C high-priority
// recent elements through, the retained set can expire entirely while the
// window is non-empty -- a query failure. Experiment E13 measures the
// failure rate as a function of C on bursty streams, the behaviour the
// paper's deterministic O(log n) structures avoid while *guaranteeing* a
// sample at every instant.

#ifndef SWSAMPLE_BASELINE_BUDGET_PRIORITY_SAMPLER_H_
#define SWSAMPLE_BASELINE_BUDGET_PRIORITY_SAMPLER_H_

#include <deque>
#include <memory>
#include <optional>

#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Priority sampler with a hard entry budget; sampling may fail.
class BudgetPrioritySampler {
 public:
  /// Creates a sampler with window parameter `t0` >= 1 and a budget of
  /// `capacity` >= 1 staircase entries.
  static Result<BudgetPrioritySampler> Create(Timestamp t0, uint64_t capacity,
                                              uint64_t seed);

  /// Feeds one arrival (advances the clock to its timestamp).
  void Observe(const Item& item);

  /// Advances the clock without arrivals.
  void AdvanceTime(Timestamp now);

  /// The max-priority retained active element, or nullopt when no active
  /// entry is retained. The internal failure counter counts nullopt
  /// returns; callers distinguishing genuinely-empty windows from budget
  /// failures should compare against an oracle (experiment E13 does).
  std::optional<Item> Sample();

  /// Hard memory bound (words): capacity entries of (item, priority).
  uint64_t MemoryWordsBound() const {
    return 3 + capacity_ * (kWordsPerItem + 1);
  }

  uint64_t query_count() const { return queries_; }
  uint64_t failure_count() const { return failures_; }

 private:
  BudgetPrioritySampler(Timestamp t0, uint64_t capacity, uint64_t seed)
      : t0_(t0), capacity_(capacity), rng_(seed) {}

  struct Entry {
    Item item;
    uint64_t priority;
  };

  void EvictExpired();

  Timestamp t0_;
  uint64_t capacity_;
  Rng rng_;
  Timestamp now_ = 0;
  uint64_t queries_ = 0;
  uint64_t failures_ = 0;
  std::deque<Entry> stairs_;  // arrival-ordered, priorities descending
};

}  // namespace swsample

#endif  // SWSAMPLE_BASELINE_BUDGET_PRIORITY_SAMPLER_H_
