// Copyright (c) swsample authors. Licensed under the MIT license.

#include "baseline/chain_sampler.h"

#include <algorithm>

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

Result<std::unique_ptr<ChainSampler>> ChainSampler::Create(uint64_t n,
                                                           uint64_t k,
                                                           uint64_t seed) {
  if (n < 1) return Status::InvalidArgument("ChainSampler: n must be >= 1");
  if (k < 1) return Status::InvalidArgument("ChainSampler: k must be >= 1");
  return std::unique_ptr<ChainSampler>(new ChainSampler(n, k, seed));
}

ChainSampler::ChainSampler(uint64_t n, uint64_t k, uint64_t seed)
    : n_(n), rng_(seed), units_(k) {}

void ChainSampler::Observe(const Item& item) {
  SWS_DCHECK(item.index == count_);
  const uint64_t idx = item.index;
  ++count_;
  // Replacement coin: 1/m reservoir behaviour while the first window fills,
  // then 1/(n+1) in steady state. The often-quoted 1/n steady-state coin
  // double-counts the newest element (it can enter both by replacement and
  // as the expiring sample's successor), biasing the distribution by
  // Theta(1/n^2) per element -- enough for our chi-square uniformity tests
  // to reject it. With 1/(n+1) the handover arithmetic telescopes to an
  // exactly uniform sample; see chain_sampler.h.
  const uint64_t coin_den = idx < n_ ? idx + 1 : n_ + 1;
  for (Unit& unit : units_) {
    if (rng_.BernoulliRational(1, coin_den)) {
      unit.chain.clear();
      unit.chain.push_back(item);
      unit.next_successor = rng_.UniformRange(idx + 1, idx + n_);
    } else if (!unit.chain.empty() && idx == unit.next_successor) {
      // The awaited successor of the chain tail materialized.
      unit.chain.push_back(item);
      unit.next_successor = rng_.UniformRange(idx + 1, idx + n_);
    }
    // Window is now [idx+1-n, idx]; an expired head hands over to its
    // successor, which has always arrived by then (successor of j lies in
    // [j+1, j+n] and j expires at arrival j+n).
    if (!unit.chain.empty() && idx + 1 >= n_ &&
        unit.chain.front().index < idx + 1 - n_) {
      unit.chain.pop_front();
      SWS_DCHECK(!unit.chain.empty());
    }
  }
}

void ChainSampler::ObserveBatch(std::span<const Item> items) {
  // The per-step coin denominator depends on the running index and the
  // coin order is item-major, so the batch win is devirtualization: the
  // class is final, making these direct (inlinable) calls instead of the
  // base class's per-item virtual dispatch.
  for (const Item& item : items) Observe(item);
}

std::vector<Item> ChainSampler::Sample() {
  std::vector<Item> out;
  out.reserve(units_.size());
  for (const Unit& unit : units_) {
    if (!unit.chain.empty()) out.push_back(unit.chain.front());
  }
  return out;
}

uint64_t ChainSampler::MemoryWords() const {
  // Chain items + one awaited-successor index per unit + counters. The
  // chain length is the randomized part the paper criticizes.
  uint64_t words = 2;
  for (const Unit& unit : units_) {
    words += unit.chain.size() * kWordsPerItem + 1;
  }
  return words;
}

void ChainSampler::SaveState(BinaryWriter* w) const {
  w->PutU64(count_);
  SaveRngState(rng_, w);
  for (const Unit& unit : units_) {
    w->PutU64(unit.chain.size());
    for (const Item& item : unit.chain) SaveItem(item, w);
    w->PutU64(unit.next_successor);
  }
}

bool ChainSampler::LoadState(BinaryReader* r) {
  if (!r->GetU64(&count_) || !LoadRngState(r, &rng_)) return false;
  for (Unit& unit : units_) {
    uint64_t len = 0;
    // A chain holds at most one element per window position.
    if (!r->GetU64(&len) || len > n_ || len > count_) return false;
    unit.chain.clear();
    for (uint64_t i = 0; i < len; ++i) {
      Item item;
      // Chains are ordered by arrival and only hold observed indices.
      if (!LoadItem(r, &item) || item.index >= count_ ||
          (!unit.chain.empty() && item.index <= unit.chain.back().index)) {
        return false;
      }
      unit.chain.push_back(item);
    }
    if (!r->GetU64(&unit.next_successor)) return false;
  }
  return true;
}

uint64_t ChainSampler::MaxChainLength() const {
  uint64_t m = 0;
  for (const Unit& unit : units_) {
    m = std::max<uint64_t>(m, unit.chain.size());
  }
  return m;
}

}  // namespace swsample
