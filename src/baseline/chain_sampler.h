// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Chain sampling -- Babcock, Datar, Motwani (SODA'02), the prior art for
// sampling WITH replacement from sequence-based windows that the paper
// improves on (its Section 1.1 "related work" discussion).
//
// Each unit maintains one sample backed by a "successors list": when an
// element at index j becomes the sample, a successor index is drawn
// uniformly from [j+1, j+n]; when that element arrives it is stored and its
// own successor drawn, forming a chain. When the sample expires the next
// chain element takes over. The chain length is a RANDOM VARIABLE --
// expected O(1), O(log n) with high probability -- which is precisely the
// disadvantage (b) the paper eliminates: experiment E2 measures this tail.
//
// Replacement-coin note. With the frequently quoted steady-state coin 1/n,
// the newest element can become the sample two ways in one step (fresh
// replacement, or as the expiring head's successor), so
// P(sample = newest) = 1/n + (n-1)/n^3 > 1/n: measurably non-uniform. The
// exactly uniform steady-state coin is 1/(n+1): writing c for the coin and
// q = 1/n for the successor's conditional distribution, uniformity needs
// (1-c)(1/n)(1+q) = 1/n, i.e. c = 1/(n+1); the newest cell then receives
// c + (1-c)/n^2 = 1/n as required. We implement that corrected coin (and
// our uniformity tests reject the 1/n variant at 30k trials).

#ifndef SWSAMPLE_BASELINE_CHAIN_SAMPLER_H_
#define SWSAMPLE_BASELINE_CHAIN_SAMPLER_H_

#include <deque>
#include <memory>
#include <vector>

#include "core/api.h"
#include "util/status.h"

namespace swsample {

/// k-sample with replacement over a fixed-size window via chain sampling.
class ChainSampler final : public WindowSampler {
 public:
  /// Creates a sampler for window size `n` >= 1, `k` >= 1 samples.
  static Result<std::unique_ptr<ChainSampler>> Create(uint64_t n, uint64_t k,
                                                      uint64_t seed);

  void Observe(const Item& item) override;
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp) override {}
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    uint64_t bytes = sizeof(*this) + units_.capacity() * sizeof(Unit);
    for (const Unit& unit : units_) {
      bytes += unit.chain.size() * sizeof(Item);
    }
    return bytes;
  }
  uint64_t k() const override { return units_.size(); }
  const char* name() const override { return "bdm-chain"; }

  /// Window size n.
  uint64_t n() const { return n_; }

  /// Longest successor chain across units (E2's randomized-memory metric).
  uint64_t MaxChainLength() const;

  /// Interface-level persistence (counter, RNG, chains + awaited
  /// successors); restore through the checkpoint envelope.
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  struct Unit {
    /// Front = current sample; the rest are materialized successors.
    std::deque<Item> chain;
    /// Awaited successor index of chain.back(); meaningless if chain empty.
    StreamIndex next_successor = 0;
  };

  ChainSampler(uint64_t n, uint64_t k, uint64_t seed);

  uint64_t n_;
  uint64_t count_ = 0;
  Rng rng_;
  std::vector<Unit> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_BASELINE_CHAIN_SAMPLER_H_
