// Copyright (c) swsample authors. Licensed under the MIT license.

#include "baseline/exact_window.h"

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

Result<std::unique_ptr<ExactWindow>> ExactWindow::CreateSequence(
    uint64_t n, uint64_t k, bool with_replacement, uint64_t seed) {
  if (n < 1) return Status::InvalidArgument("ExactWindow: n must be >= 1");
  if (k < 1) return Status::InvalidArgument("ExactWindow: k must be >= 1");
  if (!with_replacement && k > n) {
    return Status::InvalidArgument(
        "ExactWindow: without replacement requires k <= n");
  }
  return std::unique_ptr<ExactWindow>(new ExactWindow(
      WindowKind::kSequence, n, /*t0=*/0, k, with_replacement, seed));
}

Result<std::unique_ptr<ExactWindow>> ExactWindow::CreateTimestamp(
    Timestamp t0, uint64_t k, bool with_replacement, uint64_t seed) {
  if (t0 < 1) return Status::InvalidArgument("ExactWindow: t0 must be >= 1");
  if (k < 1) return Status::InvalidArgument("ExactWindow: k must be >= 1");
  return std::unique_ptr<ExactWindow>(new ExactWindow(
      WindowKind::kTimestamp, /*n=*/0, t0, k, with_replacement, seed));
}

void ExactWindow::Evict() {
  if (kind_ == WindowKind::kSequence) {
    while (window_.size() > n_) window_.pop_front();
  } else {
    while (!window_.empty() && now_ - window_.front().timestamp >= t0_) {
      window_.pop_front();
    }
  }
}

void ExactWindow::Observe(const Item& item) {
  if (kind_ == WindowKind::kTimestamp) {
    // Out-of-order contract (see StreamSink): clamp regressed timestamps
    // to the clock. Storing the clamped copy keeps the buffer's timestamps
    // non-decreasing, so front-only eviction stays exact and the oracle
    // matches the samplers' clamping bit for bit.
    if (item.timestamp < now_) {
      window_.push_back(Item{item.value, item.index, now_});
      Evict();
      return;
    }
    AdvanceTime(item.timestamp);
  }
  window_.push_back(item);
  Evict();
}

void ExactWindow::ObserveBatch(std::span<const Item> items) {
  // The final buffer depends only on the final clock/index (eviction is
  // front-only and draws no randomness), so append the whole span and
  // evict once -- bit-identical to the item-at-a-time path.
  if (items.empty()) return;
  if (kind_ == WindowKind::kSequence && items.size() >= n_) {
    // Everything previously buffered expires; keep only the last n.
    window_.clear();
    window_.insert(window_.end(), items.end() - n_, items.end());
    return;
  }
  if (kind_ == WindowKind::kTimestamp) {
    if (!IsTimestampOrdered(items, now_)) {
      // Out-of-order contract: store the running-maximum clamp, exactly as
      // the per-item path would.
      std::vector<Item> clamped;
      ClampTimestamps(items, now_, &clamped);
      window_.insert(window_.end(), clamped.begin(), clamped.end());
      now_ = clamped.back().timestamp;
      Evict();
      return;
    }
    now_ = items.back().timestamp;
  }
  window_.insert(window_.end(), items.begin(), items.end());
  Evict();
}

void ExactWindow::AdvanceTime(Timestamp now) {
  if (kind_ == WindowKind::kSequence) return;
  if (now < now_) return;  // clock regressions are no-ops (see StreamSink)
  now_ = now;
  Evict();
}

std::vector<Item> ExactWindow::Sample() {
  std::vector<Item> out;
  if (window_.empty()) return out;
  if (with_replacement_) {
    out.reserve(k_);
    for (uint64_t i = 0; i < k_; ++i) {
      out.push_back(window_[rng_.UniformIndex(window_.size())]);
    }
    return out;
  }
  // Without replacement: Floyd's algorithm over the buffer.
  const uint64_t m = window_.size();
  const uint64_t take = k_ < m ? k_ : m;
  std::vector<uint64_t> chosen;
  chosen.reserve(take);
  for (uint64_t j = m - take; j < m; ++j) {
    uint64_t t = rng_.UniformIndex(j + 1);
    bool seen = false;
    for (uint64_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  out.reserve(take);
  for (uint64_t c : chosen) out.push_back(window_[c]);
  return out;
}

Result<SamplerSnapshot> ExactWindow::Snapshot() {
  SamplerSnapshot snapshot;
  snapshot.active = window_.size();
  snapshot.k = k_;
  snapshot.without_replacement = !with_replacement_;
  snapshot.sample = Sample();
  return snapshot;
}

void ExactWindow::SaveState(BinaryWriter* w) const {
  w->PutI64(now_);
  SaveRngState(rng_, w);
  w->PutU64(window_.size());
  for (const Item& item : window_) SaveItem(item, w);
}

bool ExactWindow::LoadState(BinaryReader* r) {
  uint64_t size = 0;
  if (!r->GetI64(&now_) || now_ < 0 || !LoadRngState(r, &rng_) ||
      !r->GetU64(&size)) {
    return false;
  }
  if (kind_ == WindowKind::kSequence && size > n_) return false;
  window_.clear();
  for (uint64_t i = 0; i < size; ++i) {
    Item item;
    // The buffer is arrival-ordered with consecutive indices; timestamp
    // windows additionally only hold non-expired elements (0 <= ts <=
    // now_ first, so the expiry subtraction cannot overflow).
    if (!LoadItem(r, &item) || item.timestamp < 0 ||
        (!window_.empty() && item.index != window_.back().index + 1) ||
        (!window_.empty() && item.timestamp < window_.back().timestamp) ||
        (kind_ == WindowKind::kTimestamp &&
         (item.timestamp > now_ || now_ - item.timestamp >= t0_))) {
      return false;
    }
    window_.push_back(item);
  }
  return true;
}

uint64_t ExactWindow::MemoryWords() const {
  return 3 + window_.size() * kWordsPerItem;
}

}  // namespace swsample
