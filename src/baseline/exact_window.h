// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Exact window buffer -- the correctness oracle (and the Zhang et al. '05
// comparator, which adapted reservoir sampling by keeping the window in
// memory). Stores every active element; O(n) words, which is exactly what
// streaming algorithms must avoid, but it yields ground-truth window
// contents for uniformity tests and exact aggregates for the application
// experiments.

#ifndef SWSAMPLE_BASELINE_EXACT_WINDOW_H_
#define SWSAMPLE_BASELINE_EXACT_WINDOW_H_

#include <deque>
#include <memory>
#include <vector>

#include "core/api.h"
#include "util/status.h"

namespace swsample {

/// Which window model the buffer enforces.
enum class WindowKind {
  kSequence,   ///< last n arrivals are active
  kTimestamp,  ///< active <=> now - T(p) < t0
};

/// Full window buffer with exact uniform sampling (with or without
/// replacement) over the buffered contents.
class ExactWindow final : public WindowSampler {
 public:
  /// Sequence-based buffer over the last `n` arrivals.
  static Result<std::unique_ptr<ExactWindow>> CreateSequence(
      uint64_t n, uint64_t k, bool with_replacement, uint64_t seed);

  /// Timestamp-based buffer with window parameter `t0`.
  static Result<std::unique_ptr<ExactWindow>> CreateTimestamp(
      Timestamp t0, uint64_t k, bool with_replacement, uint64_t seed);

  void Observe(const Item& item) override;
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp now) override;
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + window_.size() * sizeof(Item);
  }
  uint64_t k() const override { return k_; }
  const char* name() const override {
    return kind_ == WindowKind::kSequence ? "exact-seq" : "exact-ts";
  }
  bool mergeable() const override { return true; }
  /// Exact occupancy plus one Sample() draw — the merge-correctness
  /// oracle for both window kinds.
  Result<SamplerSnapshot> Snapshot() override;

  /// The exact window contents, oldest first (test oracle).
  const std::deque<Item>& contents() const { return window_; }

  /// Number of currently active elements.
  uint64_t size() const { return window_.size(); }

  /// Interface-level persistence (clock, RNG, buffered window); restore
  /// through the checkpoint envelope.
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  ExactWindow(WindowKind kind, uint64_t n, Timestamp t0, uint64_t k,
              bool with_replacement, uint64_t seed)
      : kind_(kind),
        n_(n),
        t0_(t0),
        k_(k),
        with_replacement_(with_replacement),
        rng_(seed) {}

  void Evict();

  WindowKind kind_;
  uint64_t n_;     // sequence windows
  Timestamp t0_;   // timestamp windows
  uint64_t k_;
  bool with_replacement_;
  Timestamp now_ = 0;
  Rng rng_;
  std::deque<Item> window_;
};

}  // namespace swsample

#endif  // SWSAMPLE_BASELINE_EXACT_WINDOW_H_
