// Copyright (c) swsample authors. Licensed under the MIT license.

#include "baseline/oversampler.h"

namespace swsample {

Result<std::unique_ptr<OverSampler>> OverSampler::Create(uint64_t n,
                                                         uint64_t k,
                                                         uint64_t factor,
                                                         uint64_t seed) {
  if (k < 1 || k > n) {
    return Status::InvalidArgument("OverSampler: requires 1 <= k <= n");
  }
  if (factor < 1) {
    return Status::InvalidArgument("OverSampler: factor must be >= 1");
  }
  auto inner = ChainSampler::Create(n, factor * k, seed);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<OverSampler>(
      new OverSampler(k, std::move(inner).ValueOrDie()));
}

void OverSampler::Observe(const Item& item) { inner_->Observe(item); }

std::vector<Item> OverSampler::Sample() {
  ++queries_;
  // First k distinct indices among the iid with-replacement draws; the set
  // of distinct values of iid uniforms is a uniform subset, so on success
  // this is a valid k-sample without replacement.
  std::vector<Item> out;
  out.reserve(k_);
  for (const Item& item : inner_->Sample()) {
    bool dup = false;
    for (const Item& kept : out) {
      if (kept.index == item.index) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.push_back(item);
      if (out.size() == k_) return out;
    }
  }
  ++failures_;  // fewer than k distinct samples were available
  return out;
}

}  // namespace swsample
