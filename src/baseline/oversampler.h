// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Over-sampling -- the folklore recipe (and BDM's own suggestion) for
// sampling WITHOUT replacement from a sequence-based window: run
// k' = factor * k independent with-replacement samplers and keep the first
// k DISTINCT samples. Its two disadvantages are the ones the paper's
// abstract enumerates: (a) extra work proportional to the over-sampling
// factor, and (b) a non-deterministic guarantee -- with some probability
// fewer than k distinct samples are available. Experiment E5 measures the
// failure rate and cost against Theorem 2.2's exact O(k) scheme.

#ifndef SWSAMPLE_BASELINE_OVERSAMPLER_H_
#define SWSAMPLE_BASELINE_OVERSAMPLER_H_

#include <memory>
#include <vector>

#include "baseline/chain_sampler.h"
#include "core/api.h"
#include "util/status.h"

namespace swsample {

/// k-sample without replacement (best effort!) over a fixed-size window by
/// over-sampling with replacement and de-duplicating.
class OverSampler final : public WindowSampler {
 public:
  /// Creates a sampler running `factor * k` chain samplers; requires
  /// n >= k >= 1 and factor >= 1.
  static Result<std::unique_ptr<OverSampler>> Create(uint64_t n, uint64_t k,
                                                     uint64_t factor,
                                                     uint64_t seed);

  void Observe(const Item& item) override;
  /// Forwards the whole span: one virtual hop per batch instead of two per
  /// item (this dispatch plus the inner sampler's).
  void ObserveBatch(std::span<const Item> items) override {
    inner_->ObserveBatch(items);
  }
  void AdvanceTime(Timestamp) override {}
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override { return inner_->MemoryWords(); }
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + inner_->RetainedBytes();
  }
  uint64_t k() const override { return k_; }
  const char* name() const override { return "oversample-swor"; }

  /// Queries that could not produce k distinct samples (disadvantage (b)).
  uint64_t failure_count() const { return failures_; }
  /// Total queries issued.
  uint64_t query_count() const { return queries_; }

  /// Interface-level persistence: the inner chain sampler plus the
  /// failure accounting; restore through the checkpoint envelope.
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override {
    inner_->SaveState(w);
    w->PutU64(failures_);
    w->PutU64(queries_);
  }
  bool LoadState(BinaryReader* r) override {
    return inner_->LoadState(r) && r->GetU64(&failures_) &&
           r->GetU64(&queries_) && failures_ <= queries_;
  }

 private:
  OverSampler(uint64_t k, std::unique_ptr<ChainSampler> inner)
      : k_(k), inner_(std::move(inner)) {}

  uint64_t k_;
  uint64_t failures_ = 0;
  uint64_t queries_ = 0;
  std::unique_ptr<ChainSampler> inner_;
};

}  // namespace swsample

#endif  // SWSAMPLE_BASELINE_OVERSAMPLER_H_
