// Copyright (c) swsample authors. Licensed under the MIT license.

#include "baseline/priority_sampler.h"

#include <algorithm>

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

Result<std::unique_ptr<PrioritySampler>> PrioritySampler::Create(
    Timestamp t0, uint64_t k, uint64_t seed) {
  if (t0 < 1) {
    return Status::InvalidArgument("PrioritySampler: t0 must be >= 1");
  }
  if (k < 1) {
    return Status::InvalidArgument("PrioritySampler: k must be >= 1");
  }
  return std::unique_ptr<PrioritySampler>(new PrioritySampler(t0, k, seed));
}

PrioritySampler::PrioritySampler(Timestamp t0, uint64_t k, uint64_t seed)
    : t0_(t0), rng_(seed), units_(k) {}

void PrioritySampler::EvictExpired(Unit& unit) {
  while (!unit.stairs.empty() &&
         now_ - unit.stairs.front().item.timestamp >= t0_) {
    unit.stairs.pop_front();
  }
}

void PrioritySampler::AdvanceTime(Timestamp now) {
  if (now < now_) return;  // clock regressions are no-ops (see StreamSink)
  now_ = now;
  for (Unit& unit : units_) EvictExpired(unit);
}

void PrioritySampler::Observe(const Item& item) {
  // Out-of-order contract: store the clamped copy so staircase timestamps
  // stay non-decreasing and front-only expiry stays exact.
  const Item stored = item.timestamp < now_
                          ? Item{item.value, item.index, now_}
                          : item;
  AdvanceTime(stored.timestamp);
  for (Unit& unit : units_) {
    // 64 random bits as the priority; ties have probability ~2^-64 per
    // pair and are broken towards the newer element, which is the
    // convention that keeps the staircase strictly descending.
    const uint64_t priority = rng_.NextU64();
    while (!unit.stairs.empty() && unit.stairs.back().priority <= priority) {
      unit.stairs.pop_back();
    }
    unit.stairs.push_back(Entry{stored, priority});
  }
}

void PrioritySampler::ObserveBatch(std::span<const Item> items) {
  if (items.empty()) return;
  // Out-of-order contract: normalize a disordered batch to its running-
  // maximum clamp (identical to clamped per-item Observe) before the
  // deferred-eviction fast path below, which needs monotone timestamps.
  std::vector<Item> normalized;
  if (!IsTimestampOrdered(items, now_)) {
    ClampTimestamps(items, now_, &normalized);
    items = normalized;
  }
  // Front eviction commutes with the inserts: an insert only pops the
  // back of a staircase until it hits a higher priority, and expired
  // entries sit at the front with the HIGHEST priorities -- a new arrival
  // either never reaches them or pops them exactly when the item path
  // would have evicted them anyway. So the per-item AdvanceTime sweep
  // over all k staircases can be deferred to one pass at the end of the
  // batch; coin order is unchanged, the final state is bit-identical.
  const size_t n = items.size();
  for (size_t m = 0; m < n; ++m) {
    const Item& item = items[m];
    SWS_DCHECK(item.timestamp >= (m == 0 ? now_ : items[m - 1].timestamp));
    for (Unit& unit : units_) {
      const uint64_t priority = rng_.NextU64();
      while (!unit.stairs.empty() && unit.stairs.back().priority <= priority) {
        unit.stairs.pop_back();
      }
      unit.stairs.push_back(Entry{item, priority});
    }
  }
  AdvanceTime(items.back().timestamp);
}

std::vector<Item> PrioritySampler::Sample() {
  std::vector<Item> out;
  out.reserve(units_.size());
  for (Unit& unit : units_) {
    EvictExpired(unit);
    if (!unit.stairs.empty()) out.push_back(unit.stairs.front().item);
  }
  return out;
}

uint64_t PrioritySampler::MemoryWords() const {
  // Item + priority word per staircase entry, plus the clock and t0.
  uint64_t words = 2;
  for (const Unit& unit : units_) {
    words += unit.stairs.size() * (kWordsPerItem + 1);
  }
  return words;
}

void PrioritySampler::SaveState(BinaryWriter* w) const {
  w->PutI64(now_);
  SaveRngState(rng_, w);
  for (const Unit& unit : units_) {
    w->PutU64(unit.stairs.size());
    for (const Entry& entry : unit.stairs) {
      SaveItem(entry.item, w);
      w->PutU64(entry.priority);
    }
  }
}

bool PrioritySampler::LoadState(BinaryReader* r) {
  if (!r->GetI64(&now_) || now_ < 0 || !LoadRngState(r, &rng_)) return false;
  for (Unit& unit : units_) {
    uint64_t len = 0;
    // Each staircase entry costs >= 32 bytes on the wire, so `remaining`
    // bounds a corrupt length before any allocation.
    if (!r->GetU64(&len) || len > r->remaining() / 32 + 1) return false;
    unit.stairs.clear();
    for (uint64_t i = 0; i < len; ++i) {
      Entry entry;
      // Arrival-ordered, strictly descending priorities, active only
      // (0 <= ts <= now_ first, so the expiry subtraction cannot
      // overflow on a corrupt timestamp).
      if (!LoadItem(r, &entry.item) || !r->GetU64(&entry.priority) ||
          entry.item.timestamp < 0 || entry.item.timestamp > now_ ||
          now_ - entry.item.timestamp >= t0_ ||
          (!unit.stairs.empty() &&
           (entry.priority >= unit.stairs.back().priority ||
            entry.item.index <= unit.stairs.back().item.index))) {
        return false;
      }
      unit.stairs.push_back(entry);
    }
  }
  return true;
}

uint64_t PrioritySampler::MaxListLength() const {
  uint64_t m = 0;
  for (const Unit& unit : units_) {
    m = std::max<uint64_t>(m, unit.stairs.size());
  }
  return m;
}

}  // namespace swsample
