// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Priority sampling -- Babcock, Datar, Motwani (SODA'02), the prior art for
// sampling WITH replacement from timestamp-based windows.
//
// Every arrival draws a random priority; the sample is the active element
// of maximum priority. It suffices to store the elements that are maximal
// among everything that arrived after them (a descending-priority
// staircase): a new arrival evicts all stored elements with lower priority,
// expiry trims the front. The staircase length is E[O(log n)] but
// RANDOMIZED -- the bound the paper replaces with a deterministic one;
// experiment E3 measures the distribution.

#ifndef SWSAMPLE_BASELINE_PRIORITY_SAMPLER_H_
#define SWSAMPLE_BASELINE_PRIORITY_SAMPLER_H_

#include <deque>
#include <memory>
#include <vector>

#include "core/api.h"
#include "util/status.h"

namespace swsample {

/// k-sample with replacement over a timestamp window via k independent
/// priority samplers.
class PrioritySampler final : public WindowSampler {
 public:
  /// Creates a sampler; requires t0 >= 1 and k >= 1.
  static Result<std::unique_ptr<PrioritySampler>> Create(Timestamp t0,
                                                         uint64_t k,
                                                         uint64_t seed);

  void Observe(const Item& item) override;
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp now) override;
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    uint64_t bytes = sizeof(*this) + units_.capacity() * sizeof(Unit);
    for (const Unit& unit : units_) {
      bytes += unit.stairs.size() * sizeof(Entry);
    }
    return bytes;
  }
  uint64_t k() const override { return units_.size(); }
  const char* name() const override { return "bdm-priority"; }

  /// Window parameter.
  Timestamp t0() const { return t0_; }

  /// Longest staircase across units (E3's randomized-memory metric).
  uint64_t MaxListLength() const;

  /// Interface-level persistence (clock, RNG, per-unit staircases);
  /// restore through the checkpoint envelope.
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  struct Entry {
    Item item;
    uint64_t priority;
  };
  struct Unit {
    /// Arrival-ordered; priorities strictly decrease front to back.
    std::deque<Entry> stairs;
  };

  PrioritySampler(Timestamp t0, uint64_t k, uint64_t seed);

  void EvictExpired(Unit& unit);

  Timestamp t0_;
  Timestamp now_ = 0;
  Rng rng_;
  std::vector<Unit> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_BASELINE_PRIORITY_SAMPLER_H_
