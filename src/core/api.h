// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Common interface of all sliding-window samplers (ours and the baselines)
/// and of anything else a stream can be pumped into.
///
/// The contract mirrors the paper's model:
///  * Items arrive with consecutive indices 0,1,2,... and non-decreasing
///    timestamps (bursts share a timestamp).
///  * `AdvanceTime` moves the clock without arrivals: in the timestamp model
///    elements expire by clock alone, so a sampler must stay correct across
///    empty steps. Sequence-based samplers ignore it.
///  * Out-of-order contract: real clocks regress (NTP steps, cross-shard
///    skew), so timestamp-based sinks must tolerate regressions instead of
///    aborting. The library-wide rule is CLAMPING: the sink's clock never
///    moves backwards — `AdvanceTime` to an earlier time is a no-op, and an
///    `Observe`/`ObserveBatch` arrival whose timestamp is older than the
///    clock is treated (and stored) as arriving at the current clock. A
///    disordered batch is therefore equivalent to its running-maximum
///    normalization (see `ClampTimestamps` in stream/item.h); batches that
///    already satisfy the monotone contract are processed bit-identically
///    to before and pay only a pre-scan. Exact oracles (`ExactWindow`)
///    clamp the same way, so sampler-vs-oracle comparisons stay valid under
///    skewed workloads.
///  * `Sample()` may be called at ANY moment and must return a uniform
///    random sample of the currently active elements (k items; fewer iff
///    fewer than k elements are active for without-replacement samplers, or
///    during startup). Each call may consume fresh randomness; the
///    guarantee is on the per-call marginal distribution.
///  * `MemoryWords()` reports live state under the paper's Section 1.4 word
///    model (one word per stored value, index, or timestamp). This is the
///    quantity the memory experiments (E1-E3) track; the paper's entire
///    point is that for our algorithms it is deterministically bounded.
///
/// Ownership: sinks are constructed through factory functions returning
/// `Result<std::unique_ptr<...>>` and owned by the caller; the library
/// never retains references to a sink behind the caller's back.
///
/// Thread-safety: a sink is NOT thread-safe. One thread must own each
/// instance for the whole ingest/query sequence; the sharded driver
/// (stream/sharded_driver.h) gets parallelism from one replica per worker
/// plus the Snapshot()/MergeFrom() combination surface below, never from
/// sharing an instance.
///
/// Status conventions: configuration and API-misuse errors surface as
/// `Status`/`Result<T>` from factories and from the optional surfaces
/// (e.g. `Snapshot()`), never as exceptions. Hot-path methods
/// (Observe/ObserveBatch/Sample) do not allocate Status values; internal
/// invariant violations are SWS_DCHECK failures.

#ifndef SWSAMPLE_CORE_API_H_
#define SWSAMPLE_CORE_API_H_

#include <cstdint>
#include <span>
#include <vector>

#include "stream/item.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/status.h"

namespace swsample {

/// Anything a stream can be pumped into: the common surface of samplers
/// (core/baseline) and estimators (apps). The StreamDriver, benches and the
/// CLI feed items through this interface only, so the same batched pump
/// serves both layers.
class StreamSink {
 public:
  virtual ~StreamSink() = default;

  /// Feeds one arrival. Indices must be consecutive from 0; timestamps
  /// non-decreasing. Implicitly advances the clock to item.timestamp.
  /// Timestamp-based sinks clamp a regressed timestamp to the current
  /// clock (out-of-order contract above).
  virtual void Observe(const Item& item) = 0;

  /// Feeds a contiguous run of arrivals (same ordering contract as
  /// Observe). The result is distributionally identical to observing the
  /// items one by one — implementations override this only to amortize RNG
  /// draws and expiry checks across the batch, never to change the sampling
  /// distribution. The default forwards item by item.
  virtual void ObserveBatch(std::span<const Item> items) {
    for (const Item& item : items) Observe(item);
  }

  /// Advances the clock to `now` without arrivals. No-op for sequence-based
  /// sinks, and a no-op when `now` is earlier than the current clock (the
  /// clock never moves backwards; out-of-order contract above).
  virtual void AdvanceTime(Timestamp now) = 0;

  /// Live memory in paper words (values + indices + timestamps stored).
  virtual uint64_t MemoryWords() const = 0;

  /// Approximate bytes of memory this sink actually RETAINS: object
  /// footprint plus heap/arena capacity (arena chunk bytes, hash-table
  /// slots, vector capacity), as opposed to MemoryWords()'s logical
  /// word-model count. MemoryWords() stays the paper-model quantity the
  /// memory experiments track; RetainedBytes() is what a budget enforcer
  /// (the keyed multi-tenant engine) charges against. The default scales
  /// the word count; sinks with growable storage override it to report
  /// real capacity.
  virtual uint64_t RetainedBytes() const { return MemoryWords() * 8; }

  /// Human-readable algorithm name for harness output; for registered
  /// sinks this equals the registry key.
  virtual const char* name() const = 0;

  /// True when this sink implements the SaveState/LoadState pair below.
  /// Every registry-constructible sampler and estimator is persistable;
  /// the default is false so ad-hoc user sinks need not opt in.
  virtual bool persistable() const { return false; }

  /// Appends the sink's full MUTABLE state — counters, clocks, RNG
  /// streams, held samples — to `w`. Configuration (window sizes, k,
  /// substrate choice) is NOT written here: the checkpoint envelope
  /// (core/checkpoint.h) carries the registry name plus config that
  /// reconstruct the object shell, and LoadState then refills it. The
  /// paper's O(k log n)-word state bound is what makes this cheap.
  virtual void SaveState(BinaryWriter* w) const { (void)w; }

  /// Restores state written by SaveState into a freshly constructed sink
  /// of the IDENTICAL configuration. Returns false on truncated or
  /// invalid data (the sink may then be partially overwritten and must be
  /// discarded). After a successful load the sink resumes the exact
  /// behaviour of the saved one, bit for bit.
  virtual bool LoadState(BinaryReader* r) {
    (void)r;
    return false;
  }
};

/// One shard's contribution to a cross-shard merged sample: the shard's
/// active-window occupancy plus one drawn sample set. The paper's bucket
/// constructions (Sections 1.3.1, 2, 3) keep per-shard state independent,
/// which is what makes this cheap to capture and exact to combine.
struct SamplerSnapshot {
  /// Number of active elements behind `sample` (exact for sequence windows
  /// and the oracles). Weights the cross-shard selection.
  uint64_t active = 0;
  /// Samples the source maintains (slots for with-replacement snapshots).
  uint64_t k = 0;
  /// True when `sample` is a uniform k-subset (without replacement) of the
  /// active elements; false when its slots are k independent uniform draws.
  bool without_replacement = false;
  /// One drawn sample set: exactly k items for with-replacement snapshots
  /// of a non-empty window, min(k, active) items without replacement.
  std::vector<Item> sample;

  /// Merges `other` into this snapshot: afterwards `sample` is distributed
  /// as one uniform draw (per the without_replacement flag) over the UNION
  /// of the two shards' active elements, and `active` is the union size.
  /// With replacement the merge selects per slot between the shards with
  /// probability proportional to their occupancies (slot independence is
  /// preserved because Theorems 2.1/3.9 build the k-sample as k independent
  /// copies); without replacement it allocates slots by a multivariate
  /// hypergeometric draw and takes uniform sub-subsets — both exact, using
  /// integer-rational coins only. Requires matching k and flags; shards
  /// with active == 0 merge as no-ops. The merge is associative in
  /// distribution, so folding N shards in any order is valid.
  Status MergeFrom(const SamplerSnapshot& other, Rng& rng);

  /// Rvalue overload: adopting a snapshot into an empty one moves the
  /// sample vector instead of copying it (the sharded merge loop's common
  /// first step). Identical semantics and RNG consumption otherwise.
  Status MergeFrom(SamplerSnapshot&& other, Rng& rng);
};

/// Abstract sliding-window sampler maintaining k samples.
class WindowSampler : public StreamSink {
 public:
  /// Draws the current sample set of the active window. May be called at
  /// ANY moment and must return a uniform random sample of the currently
  /// active elements; each call may consume fresh randomness.
  virtual std::vector<Item> Sample() = 0;

  /// Number of samples maintained.
  virtual uint64_t k() const = 0;

  /// True when this sampler knows its active-window occupancy and can
  /// capture Snapshot()s for cross-shard merging. Sequence-model paper
  /// samplers and the exact oracles are merge-capable; timestamp-model
  /// streaming samplers are not (the paper's Section 1.3.2 negative result:
  /// the occupancy n(t) is not exactly knowable in o(n) memory).
  virtual bool mergeable() const { return false; }

  /// Captures one drawn sample set plus the occupancy that weights it in
  /// a cross-shard merge. FailedPrecondition when !mergeable(). Consumes
  /// the same per-call randomness as Sample().
  virtual Result<SamplerSnapshot> Snapshot() {
    return Status::FailedPrecondition(std::string(name()) +
                                      ": sampler is not merge-capable");
  }
};

/// Snapshots every shard and folds them left to right with
/// SamplerSnapshot::MergeFrom, seeding the merge coins from `seed`: the
/// result is one uniform sample of the union of the shards' active
/// elements. Fails if `shards` is empty or any shard is not merge-capable.
Result<SamplerSnapshot> MergedSnapshot(std::span<WindowSampler* const> shards,
                                       uint64_t seed);

}  // namespace swsample

#endif  // SWSAMPLE_CORE_API_H_
