// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Common interface of all sliding-window samplers (ours and the baselines).
//
// The contract mirrors the paper's model:
//  * Items arrive with consecutive indices 0,1,2,... and non-decreasing
//    timestamps (bursts share a timestamp).
//  * `AdvanceTime` moves the clock without arrivals: in the timestamp model
//    elements expire by clock alone, so a sampler must stay correct across
//    empty steps. Sequence-based samplers ignore it.
//  * `Sample()` may be called at ANY moment and must return a uniform
//    random sample of the currently active elements (k items; fewer iff
//    fewer than k elements are active for without-replacement samplers, or
//    during startup). Each call may consume fresh randomness; the
//    guarantee is on the per-call marginal distribution.
//  * `MemoryWords()` reports live state under the paper's Section 1.4 word
//    model (one word per stored value, index, or timestamp). This is the
//    quantity the memory experiments (E1-E3) track; the paper's entire
//    point is that for our algorithms it is deterministically bounded.

#ifndef SWSAMPLE_CORE_API_H_
#define SWSAMPLE_CORE_API_H_

#include <cstdint>
#include <span>
#include <vector>

#include "stream/item.h"
#include "util/rng.h"

namespace swsample {

/// Anything a stream can be pumped into: the common surface of samplers
/// (core/baseline) and estimators (apps). The StreamDriver, benches and the
/// CLI feed items through this interface only, so the same batched pump
/// serves both layers.
class StreamSink {
 public:
  virtual ~StreamSink() = default;

  /// Feeds one arrival. Indices must be consecutive from 0; timestamps
  /// non-decreasing. Implicitly advances the clock to item.timestamp.
  virtual void Observe(const Item& item) = 0;

  /// Feeds a contiguous run of arrivals (same ordering contract as
  /// Observe). The result is distributionally identical to observing the
  /// items one by one — implementations override this only to amortize RNG
  /// draws and expiry checks across the batch, never to change the sampling
  /// distribution. The default forwards item by item.
  virtual void ObserveBatch(std::span<const Item> items) {
    for (const Item& item : items) Observe(item);
  }

  /// Advances the clock to `now` (>= current time) without arrivals.
  /// No-op for sequence-based sinks.
  virtual void AdvanceTime(Timestamp now) = 0;

  /// Live memory in paper words (values + indices + timestamps stored).
  virtual uint64_t MemoryWords() const = 0;

  /// Human-readable algorithm name for harness output; for registered
  /// sinks this equals the registry key.
  virtual const char* name() const = 0;
};

/// Abstract sliding-window sampler maintaining k samples.
class WindowSampler : public StreamSink {
 public:
  /// Draws the current sample set of the active window. May be called at
  /// ANY moment and must return a uniform random sample of the currently
  /// active elements; each call may consume fresh randomness.
  virtual std::vector<Item> Sample() = 0;

  /// Number of samples maintained.
  virtual uint64_t k() const = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_API_H_
