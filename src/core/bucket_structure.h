// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Bucket structures -- paper Section 3.1.
//
// A bucket structure BS(x, y) summarizes the bucket B(x, y) = {p_x ...
// p_{y-1}}: boundary indices, the timestamp of its first element (the only
// thing needed to decide whether p_x expired), and two INDEPENDENT uniform
// random samples R and Q of the bucket. R feeds the output sample; Q feeds
// the implicit-event generator of Section 3.3, and keeping them independent
// is what lets Lemma 3.8 multiply probabilities.

#ifndef SWSAMPLE_CORE_BUCKET_STRUCTURE_H_
#define SWSAMPLE_CORE_BUCKET_STRUCTURE_H_

#include <cstdint>

#include "stream/item.h"
#include "stream/item_serial.h"
#include "util/macros.h"
#include "util/serial.h"

namespace swsample {

/// Summary of bucket B(x, y); covers stream indices [x, y-1].
struct BucketStructure {
  StreamIndex x = 0;  ///< first covered index
  StreamIndex y = 0;  ///< one past the last covered index
  Timestamp first_ts = 0;  ///< T(p_x), decides expiry of the bucket's head
  Item r;  ///< uniform sample of the bucket (drives the output sample)
  Item q;  ///< second, independent uniform sample (drives implicit events)

  /// Number of covered elements (paper: y - x >= 1).
  uint64_t width() const {
    SWS_DCHECK(y > x);
    return y - x;
  }

  /// Single-element structure BS(b, b+1) for a freshly arrived item: both
  /// samples are the item itself.
  static BucketStructure ForItem(const Item& item) {
    BucketStructure bs;
    bs.x = item.index;
    bs.y = item.index + 1;
    bs.first_ts = item.timestamp;
    bs.r = item;
    bs.q = item;
    return bs;
  }

  /// Memory words held: two boundary indices, one timestamp, two sampled
  /// items (paper Section 1.4 accounting).
  static constexpr uint64_t kWords = 3 + 2 * kWordsPerItem;

  /// Checkpointing (see util/serial.h).
  void Save(BinaryWriter* w) const {
    w->PutU64(x);
    w->PutU64(y);
    w->PutI64(first_ts);
    SaveItem(r, w);
    SaveItem(q, w);
  }

  bool Load(BinaryReader* rd) {
    // Beyond truncation, reject any state the construction cannot reach:
    // both samples must lie inside [x, y) with timestamps at or after the
    // head's (the implicit-event generator derives i = y - q.index and
    // requires 1 <= i <= width), and timestamps are non-negative (stream
    // clocks start at 0 — this also keeps `now - ts` overflow-free).
    return rd->GetU64(&x) && rd->GetU64(&y) && rd->GetI64(&first_ts) &&
           LoadItem(rd, &r) && LoadItem(rd, &q) && y > x && r.index >= x &&
           r.index < y && q.index >= x && q.index < y && first_ts >= 0 &&
           r.timestamp >= first_ts && q.timestamp >= first_ts;
  }
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_BUCKET_STRUCTURE_H_
