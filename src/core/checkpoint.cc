// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/checkpoint.h"

#include <algorithm>
#include <utility>

#include "stream/item_serial.h"

namespace swsample {

void WriteCheckpointHeader(CheckpointKind kind, BinaryWriter* w) {
  w->PutU64(kCheckpointMagic);
  w->PutU64(kCheckpointVersion);
  w->PutU64(static_cast<uint64_t>(kind));
}

bool ReadCheckpointHeader(BinaryReader* r, CheckpointKind* kind) {
  uint64_t magic = 0, version = 0, raw_kind = 0;
  if (!r->GetU64(&magic) || magic != kCheckpointMagic) return false;
  if (!r->GetU64(&version) || version != kCheckpointVersion) return false;
  if (!r->GetU64(&raw_kind) ||
      raw_kind < static_cast<uint64_t>(CheckpointKind::kSampler) ||
      raw_kind > static_cast<uint64_t>(CheckpointKind::kManifest)) {
    return false;
  }
  *kind = static_cast<CheckpointKind>(raw_kind);
  return true;
}

Result<CheckpointKind> PeekCheckpointKind(std::string_view blob) {
  BinaryReader r(blob);
  CheckpointKind kind;
  if (!ReadCheckpointHeader(&r, &kind)) {
    return Status::InvalidArgument(
        "checkpoint: bad magic, unsupported version, or unknown kind");
  }
  return kind;
}

void SaveSamplerConfig(const SamplerConfig& config, BinaryWriter* w) {
  w->PutU64(config.window_n);
  w->PutI64(config.window_t);
  w->PutU64(config.k);
  w->PutU64(config.seed);
  w->PutU64(config.oversample_factor);
  w->PutBool(config.with_replacement);
}

bool LoadSamplerConfig(BinaryReader* r, SamplerConfig* config) {
  // The PRODUCT is capped too: oversample-swor allocates factor * k
  // units, so two individually-valid fields must not combine into an
  // allocation bomb (both are <= kMaxCheckpointUnits here, so the
  // product cannot overflow 64 bits).
  return r->GetU64(&config->window_n) && r->GetI64(&config->window_t) &&
         r->GetU64(&config->k) && r->GetU64(&config->seed) &&
         r->GetU64(&config->oversample_factor) &&
         r->GetBool(&config->with_replacement) &&
         config->k <= kMaxCheckpointUnits &&
         config->oversample_factor <= kMaxCheckpointUnits &&
         config->k * config->oversample_factor <= kMaxCheckpointUnits;
}

Result<std::string> SaveSampler(const WindowSampler& sampler,
                                const SamplerConfig& config) {
  if (!sampler.persistable()) {
    return Status::FailedPrecondition(std::string(sampler.name()) +
                                      ": sampler is not persistable");
  }
  if (!IsRegisteredSampler(sampler.name())) {
    return Status::InvalidArgument(
        std::string(sampler.name()) +
        ": SaveSampler requires a registry-constructed sampler");
  }
  BinaryWriter w;
  WriteCheckpointHeader(CheckpointKind::kSampler, &w);
  w.PutString(sampler.name());
  SaveSamplerConfig(config, &w);
  sampler.SaveState(&w);
  return w.Release();
}

Result<std::unique_ptr<WindowSampler>> RestoreSampler(std::string_view blob) {
  BinaryReader r(blob);
  CheckpointKind kind;
  if (!ReadCheckpointHeader(&r, &kind)) {
    return Status::InvalidArgument(
        "RestoreSampler: bad magic, unsupported version, or unknown kind");
  }
  if (kind != CheckpointKind::kSampler) {
    return Status::InvalidArgument(
        "RestoreSampler: blob does not contain a sampler checkpoint");
  }
  std::string name;
  SamplerConfig config;
  if (!r.GetString(&name) || !LoadSamplerConfig(&r, &config)) {
    return Status::InvalidArgument(
        "RestoreSampler: truncated or invalid envelope");
  }
  auto sampler = CreateSampler(name, config);
  if (!sampler.ok()) return sampler.status();
  std::unique_ptr<WindowSampler> restored = std::move(sampler).ValueOrDie();
  if (!restored->LoadState(&r) || !r.AtEnd()) {
    return Status::InvalidArgument(
        name + ": truncated, corrupt, or trailing checkpoint state");
  }
  return restored;
}

std::string SaveSnapshot(const SamplerSnapshot& snapshot) {
  BinaryWriter w;
  WriteCheckpointHeader(CheckpointKind::kSnapshot, &w);
  w.PutU64(snapshot.active);
  w.PutU64(snapshot.k);
  w.PutBool(snapshot.without_replacement);
  w.PutU64(snapshot.sample.size());
  for (const Item& item : snapshot.sample) SaveItem(item, &w);
  return w.Release();
}

Result<SamplerSnapshot> RestoreSnapshot(std::string_view blob) {
  BinaryReader r(blob);
  CheckpointKind kind;
  if (!ReadCheckpointHeader(&r, &kind) || kind != CheckpointKind::kSnapshot) {
    return Status::InvalidArgument(
        "RestoreSnapshot: blob does not contain a snapshot checkpoint");
  }
  SamplerSnapshot snapshot;
  uint64_t size = 0;
  if (!r.GetU64(&snapshot.active) || !r.GetU64(&snapshot.k) ||
      !r.GetBool(&snapshot.without_replacement) || !r.GetU64(&size)) {
    return Status::InvalidArgument("RestoreSnapshot: truncated envelope");
  }
  // The MergeFrom algebra relies on the size invariants of Snapshot():
  // with replacement, k slots whenever the window is non-empty; without
  // replacement, a uniform min(k, active)-subset.
  const uint64_t expected =
      snapshot.without_replacement
          ? std::min(snapshot.k, snapshot.active)
          : (snapshot.active > 0 ? snapshot.k : 0);
  if (size != expected || size > r.remaining() / 8) {
    return Status::InvalidArgument(
        "RestoreSnapshot: sample size inconsistent with occupancy");
  }
  snapshot.sample.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    Item item;
    if (!LoadItem(&r, &item)) {
      return Status::InvalidArgument("RestoreSnapshot: truncated sample");
    }
    snapshot.sample.push_back(item);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("RestoreSnapshot: trailing bytes");
  }
  return snapshot;
}

}  // namespace swsample
