// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// The checkpoint envelope: every persisted object — sampler, estimator,
/// shard snapshot, or driver manifest — is wrapped in one self-describing
/// versioned header so a blob can be restored in a DIFFERENT process with
/// no out-of-band knowledge:
///
///   u64  magic            "SWSCKPT\0" (little-endian)
///   u64  format version   currently 1
///   u64  kind             CheckpointKind below
///   ...  kind-specific body (registry name + config + state payload for
///        sinks; fields for snapshots and manifests)
///
/// Sampler blobs carry the registry name and the full SamplerConfig; the
/// registry-level RestoreSampler() reconstructs the exact object by
/// constructing the named sampler from that config and refilling it with
/// StreamSink::LoadState. Estimator blobs mirror this through
/// apps/estimator_checkpoint.h. The paper's O(k log n)-word state bound
/// (Theorems 2.1–4.4) is what keeps sink payloads small.
///
/// Versioning policy: the format version is bumped on any incompatible
/// layout change; readers reject unknown versions rather than guessing.
/// Unknown registry names, invalid configs, truncation, and trailing
/// bytes all surface as InvalidArgument — never a crash, which the fuzz
/// tests enforce on every envelope.
///
/// Ownership: restore functions return caller-owned objects; blobs are
/// plain std::string values.
///
/// Thread-safety: free functions; sinks being saved follow the usual
/// one-thread-per-instance rule.

#ifndef SWSAMPLE_CORE_CHECKPOINT_H_
#define SWSAMPLE_CORE_CHECKPOINT_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/api.h"
#include "core/registry.h"
#include "util/serial.h"
#include "util/status.h"

namespace swsample {

/// Envelope magic ("SWSCKPT\0") and the current format version.
inline constexpr uint64_t kCheckpointMagic = 0x0054504B43535753ULL;
inline constexpr uint64_t kCheckpointVersion = 1;

/// What a checkpoint blob contains.
enum class CheckpointKind : uint64_t {
  kSampler = 1,    ///< registry name + SamplerConfig + SaveState payload
  kEstimator = 2,  ///< registry name + EstimatorConfig + SaveState payload
  kSnapshot = 3,   ///< one SamplerSnapshot (cross-process shard merging)
  kManifest = 4,   ///< driver ingestion position (stream/checkpoint.h)
};

/// Caps on configuration counts restored from untrusted blobs: a corrupt
/// k/r would otherwise allocate that many sampler units before any
/// payload validation runs. Generous for any real deployment.
inline constexpr uint64_t kMaxCheckpointUnits = uint64_t{1} << 20;

/// Writes the three-field envelope header.
void WriteCheckpointHeader(CheckpointKind kind, BinaryWriter* w);

/// Reads and validates magic + version, returning the kind; false on
/// truncation, wrong magic, unsupported version, or unknown kind.
bool ReadCheckpointHeader(BinaryReader* r, CheckpointKind* kind);

/// The kind of a checkpoint blob without consuming it.
Result<CheckpointKind> PeekCheckpointKind(std::string_view blob);

/// SamplerConfig wire codec (every field, fixed order).
void SaveSamplerConfig(const SamplerConfig& config, BinaryWriter* w);
bool LoadSamplerConfig(BinaryReader* r, SamplerConfig* config);

/// Serializes a registry-constructed sampler into a self-describing blob.
/// `config` must be the configuration the sampler was constructed from
/// (harnesses that build samplers from the registry have it by
/// construction). Fails when the sampler is not persistable or its name()
/// is not a registry key.
Result<std::string> SaveSampler(const WindowSampler& sampler,
                                const SamplerConfig& config);

/// Reconstructs the exact sampler a SaveSampler blob describes:
/// constructs the named sampler from the embedded config, then restores
/// its mutable state. The result resumes the saved sampler's behaviour
/// bit for bit.
Result<std::unique_ptr<WindowSampler>> RestoreSampler(std::string_view blob);

/// Serializes one SamplerSnapshot so shard snapshots can be shipped
/// across processes and merged remotely (SamplerSnapshot::MergeFrom).
std::string SaveSnapshot(const SamplerSnapshot& snapshot);

/// Restores a SaveSnapshot blob, validating the sample-size/occupancy
/// invariants MergeFrom relies on.
Result<SamplerSnapshot> RestoreSnapshot(std::string_view blob);

}  // namespace swsample

#endif  // SWSAMPLE_CORE_CHECKPOINT_H_
