// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/covering_decomposition.h"

#include "util/bits.h"
#include "util/macros.h"

namespace swsample {

StreamIndex CoveringDecomposition::a() const {
  SWS_DCHECK(!buckets_.empty());
  return buckets_.front().x;
}

StreamIndex CoveringDecomposition::b() const {
  SWS_DCHECK(!buckets_.empty());
  return buckets_.back().y - 1;
}

void CoveringDecomposition::InitFromItem(const Item& item) {
  SWS_DCHECK(buckets_.empty());
  buckets_.push_back(BucketStructure::ForItem(item));
  first_ts_.push_back(item.timestamp);
}

namespace {

/// The two Incr overloads share one body; `coin()` abstracts where the
/// fair merge coins come from (direct BernoulliRational draws vs a
/// CoinSource bit cache).
///
/// Closed form of the paper's level-by-level walk (see the header): with
/// covered width cw = b_old + 1 - a, the walk merges at level i iff the
/// width W_i covered from level i is all-ones, merges cascade once they
/// start, and the first all-ones value reached from cw is
/// 2^(countr_one(cw)+1) - 1. So the number of pairwise merges is
/// j = countr_one(cw), minus one when cw itself is all-ones (the cascade
/// then starts at cw and ends one level earlier, at W = 1, the final
/// single-element bucket that is never merged). Even cw: j = 0. The
/// merged pairs are the 2j buckets immediately before the last bucket,
/// processed in increasing index order — the same order (and hence the
/// same coin sequence) as the walk.
template <typename CoinFn>
void IncrImpl(RingDeque<BucketStructure>& buckets,
              RingDeque<Timestamp>& first_ts, const Item& item,
              CoinFn&& coin) {
  SWS_DCHECK(!buckets.empty());
  const StreamIndex b_old = buckets.back().y - 1;
  SWS_DCHECK(item.index == b_old + 1);
  const uint64_t cw = b_old + 1 - buckets.front().x;
  const unsigned t = static_cast<unsigned>(std::countr_one(cw));
  const uint64_t j = t - ((cw >> t) == 0 ? 1 : 0);
  if (j > 0) {
    const size_t size = buckets.size();
    SWS_DCHECK(2 * j < size);
    size_t src = size - 1 - 2 * j;
    size_t dst = src;
    for (uint64_t p = 0; p < j; ++p, src += 2, ++dst) {
      // Unify BS(a_i, c) and BS(c, d): equal widths by the Section 3.2
      // arithmetic, so a fair coin keeps the merged samples uniform; R and
      // Q use independent coins to preserve their mutual independence.
      BucketStructure& first = buckets[src];
      const BucketStructure& second = buckets[src + 1];
      SWS_DCHECK(first.y == second.x);
      SWS_DCHECK(first.width() == second.width());
      if (coin()) first.r = second.r;
      if (coin()) first.q = second.q;
      first.y = second.y;
      if (dst != src) {
        buckets[dst] = first;
        first_ts[dst] = first_ts[src];
      }
    }
    // The last (single-element) bucket survives every merge; compact it
    // down next to the merged pairs and drop the j vacated slots.
    buckets[dst] = buckets[size - 1];
    first_ts[dst] = first_ts[size - 1];
    buckets.pop_back_n(j);
    first_ts.pop_back_n(j);
  }
  SWS_DCHECK(buckets.back().x == b_old);  // tail is zeta(b, b)
  buckets.push_back(BucketStructure::ForItem(item));
  first_ts.push_back(item.timestamp);
}

}  // namespace

void CoveringDecomposition::Incr(const Item& item, Rng& rng) {
  IncrImpl(buckets_, first_ts_, item,
           [&rng] { return !rng.BernoulliRational(1, 2); });
}

void CoveringDecomposition::Incr(const Item& item, CoinSource& coins) {
  IncrImpl(buckets_, first_ts_, item, [&coins] { return coins.Coin(); });
}

namespace {

/// Uniform sample of final bucket [x, y): draw an index, then resolve it
/// against the old buckets [obs, obe) (returning the matching atom via
/// `pick`) or the new run. Old content, if any, starts exactly at x and
/// ends at new_start (bucket boundaries only coarsen, so old buckets nest
/// inside final ones).
template <typename PickFn>
Item ComposeSample(const RingDeque<BucketStructure>& buckets, StreamIndex x,
                   StreamIndex y, size_t obs, size_t obe,
                   StreamIndex new_start, std::span<const Item> run, Rng& rng,
                   PickFn&& pick) {
  const uint64_t idx = x + rng.UniformIndex(y - x);
  if (idx >= new_start) return run[idx - new_start];
  for (size_t i = obs; i < obe; ++i) {
    if (idx < buckets[i].y) return pick(buckets[i]);
  }
  SWS_CHECK(false);  // unreachable: old buckets tile [x, new_start)
  return run.front();
}

}  // namespace

void CoveringDecomposition::ExtendRun(std::span<const Item> run, Rng& rng) {
  if (run.empty()) return;
  SWS_DCHECK(!buckets_.empty());
  SWS_DCHECK(run.front().index == b() + 1);
  const StreamIndex new_start = run.front().index;
  const StreamIndex b_new = run.back().index;
  const size_t old_count = buckets_.size();
  scratch_.clear();
  size_t ob = 0;  // next unconsumed old bucket
  StreamIndex x = a();
  uint64_t rem = b_new + 1 - x;
  while (rem > 0) {
    // Definition 3.1 boundary: first width 2^(floor(log2(rem)) - 1).
    const uint64_t bw = rem == 1 ? 1 : Pow2(FloorLog2(rem) - 1);
    const StreamIndex y = x + bw;
    const size_t obs = ob;
    while (ob < old_count && buckets_[ob].x < y) ++ob;
    SWS_DCHECK(obs == ob || buckets_[obs].x == x);
    SWS_DCHECK(ob == old_count || buckets_[ob].x >= y);
    if (y <= new_start && ob == obs + 1 && buckets_[obs].y == y) {
      // An old bucket that survives unchanged: keep its samples (the item
      // path would not have merged it either).
      scratch_.push_back(buckets_[obs]);
    } else {
      BucketStructure bs;
      bs.x = x;
      bs.y = y;
      bs.first_ts = obs < ob ? buckets_[obs].first_ts
                             : run[x - new_start].timestamp;
      bs.r = ComposeSample(buckets_, x, y, obs, ob, new_start, run, rng,
                           [](const BucketStructure& o) { return o.r; });
      bs.q = ComposeSample(buckets_, x, y, obs, ob, new_start, run, rng,
                           [](const BucketStructure& o) { return o.q; });
      scratch_.push_back(bs);
    }
    x = y;
    rem -= bw;
  }
  SWS_DCHECK(ob == old_count);
  buckets_.clear();
  first_ts_.clear();
  for (const BucketStructure& bs : scratch_) {
    buckets_.push_back(bs);
    first_ts_.push_back(bs.first_ts);
  }
}

void CoveringDecomposition::DropFront(uint64_t count) {
  SWS_DCHECK(count <= buckets_.size());
  buckets_.pop_front_n(count);
  first_ts_.pop_front_n(count);
}

BucketStructure CoveringDecomposition::PopFront() {
  SWS_DCHECK(!buckets_.empty());
  BucketStructure bs = buckets_.front();
  buckets_.pop_front();
  first_ts_.pop_front();
  return bs;
}

void CoveringDecomposition::Clear() {
  buckets_.clear();
  first_ts_.clear();
}

Item CoveringDecomposition::SampleCovered(Rng& rng) const {
  SWS_DCHECK(!buckets_.empty());
  uint64_t u = rng.UniformIndex(covered_width());
  for (uint64_t i = 0; i < buckets_.size(); ++i) {
    const BucketStructure& bs = buckets_[i];
    if (u < bs.width()) return bs.r;
    u -= bs.width();
  }
  SWS_CHECK(false);  // unreachable: widths sum to covered_width()
  return buckets_.back().r;
}

void CoveringDecomposition::Save(BinaryWriter* w) const {
  w->PutU64(buckets_.size());
  for (uint64_t i = 0; i < buckets_.size(); ++i) buckets_[i].Save(w);
}

bool CoveringDecomposition::Load(BinaryReader* r) {
  buckets_.clear();
  first_ts_.clear();
  uint64_t size = 0;
  if (!r->GetU64(&size)) return false;
  if (size > (uint64_t{1} << 40)) return false;  // sanity: corrupt blob
  for (uint64_t i = 0; i < size; ++i) {
    BucketStructure bs;
    if (!bs.Load(r)) return false;
    buckets_.push_back(bs);
    first_ts_.push_back(bs.first_ts);
  }
  return CheckInvariants();
}

bool CoveringDecomposition::CheckInvariants() const {
  if (first_ts_.size() != buckets_.size()) return false;
  if (buckets_.empty()) return true;
  const StreamIndex b_idx = b();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const BucketStructure& bs = buckets_[i];
    // The SoA mirror must track the bucket heads exactly, and head
    // timestamps are non-decreasing (streams arrive in time order).
    if (first_ts_[i] != bs.first_ts) return false;
    if (i > 0 && first_ts_[i] < first_ts_[i - 1]) return false;
    if (bs.y <= bs.x) return false;
    if (i + 1 < buckets_.size() && bs.y != buckets_[i + 1].x) return false;
    if (i + 1 == buckets_.size()) {
      // Last structure is always the single-element zeta(b, b).
      if (bs.x != b_idx || bs.width() != 1) return false;
    } else {
      // Definition 3.1: width = 2^(floor(log2(b+1-a_i)) - 1).
      const uint64_t range = b_idx + 1 - bs.x;
      if (range < 2) return false;
      if (bs.width() != Pow2(FloorLog2(range) - 1)) return false;
    }
    // Samples must lie inside the bucket.
    if (bs.r.index < bs.x || bs.r.index >= bs.y) return false;
    if (bs.q.index < bs.x || bs.q.index >= bs.y) return false;
  }
  return true;
}

}  // namespace swsample
