// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/covering_decomposition.h"

#include "util/bits.h"
#include "util/macros.h"

namespace swsample {

StreamIndex CoveringDecomposition::a() const {
  SWS_DCHECK(!buckets_.empty());
  return buckets_.front().x;
}

StreamIndex CoveringDecomposition::b() const {
  SWS_DCHECK(!buckets_.empty());
  return buckets_.back().y - 1;
}

void CoveringDecomposition::InitFromItem(const Item& item) {
  SWS_DCHECK(buckets_.empty());
  buckets_.push_back(BucketStructure::ForItem(item));
}

namespace {

/// The two Incr overloads share one walk; `coin()` abstracts where the
/// fair merge coins come from (direct BernoulliRational draws vs a
/// CoinSource bit cache).
template <typename CoinFn>
void IncrImpl(RingDeque<BucketStructure>& buckets, const Item& item,
              CoinFn&& coin) {
  SWS_DCHECK(!buckets.empty());
  const StreamIndex b_old = buckets.back().y - 1;
  SWS_DCHECK(item.index == b_old + 1);
  // Walk the nested suffixes zeta(a_i, b). The log test and the merge are
  // evaluated against the PRE-increment decomposition at every level, per
  // the recursive definition Incr(zeta(a,b)) = <BS(a,v), Incr(zeta(v,b))>.
  size_t i = 0;
  while (true) {
    if (i + 1 == buckets.size()) {
      // Reached zeta(b, b) = <BS(b, b+1)>: its Incr appends BS(b+1, b+2).
      SWS_DCHECK(buckets[i].x == b_old);
      buckets.push_back(BucketStructure::ForItem(item));
      return;
    }
    const StreamIndex a_i = buckets[i].x;
    if (FloorLog2(b_old + 2 - a_i) == FloorLog2(b_old + 1 - a_i)) {
      ++i;  // v = c: first bucket unchanged, recurse into zeta(c, b)
      continue;
    }
    // v = d: unify BS(a, c) and BS(c, d). The arithmetic of Section 3.2
    // guarantees the two are equal-width here, so a fair coin keeps the
    // merged samples uniform; R and Q use independent coins to preserve
    // their mutual independence.
    BucketStructure& first = buckets[i];
    const BucketStructure& second = buckets[i + 1];
    SWS_DCHECK(first.y == second.x);
    SWS_DCHECK(first.width() == second.width());
    if (coin()) first.r = second.r;
    if (coin()) first.q = second.q;
    first.y = second.y;
    buckets.EraseAt(i + 1);
    ++i;  // recurse into zeta(d, b)
  }
}

}  // namespace

void CoveringDecomposition::Incr(const Item& item, Rng& rng) {
  IncrImpl(buckets_, item,
           [&rng] { return !rng.BernoulliRational(1, 2); });
}

void CoveringDecomposition::Incr(const Item& item, CoinSource& coins) {
  IncrImpl(buckets_, item, [&coins] { return coins.Coin(); });
}

void CoveringDecomposition::DropFront(uint64_t count) {
  SWS_DCHECK(count <= buckets_.size());
  buckets_.pop_front_n(count);
}

BucketStructure CoveringDecomposition::PopFront() {
  SWS_DCHECK(!buckets_.empty());
  BucketStructure bs = buckets_.front();
  buckets_.pop_front();
  return bs;
}

void CoveringDecomposition::Clear() { buckets_.clear(); }

Item CoveringDecomposition::SampleCovered(Rng& rng) const {
  SWS_DCHECK(!buckets_.empty());
  uint64_t u = rng.UniformIndex(covered_width());
  for (uint64_t i = 0; i < buckets_.size(); ++i) {
    const BucketStructure& bs = buckets_[i];
    if (u < bs.width()) return bs.r;
    u -= bs.width();
  }
  SWS_CHECK(false);  // unreachable: widths sum to covered_width()
  return buckets_.back().r;
}

void CoveringDecomposition::Save(BinaryWriter* w) const {
  w->PutU64(buckets_.size());
  for (uint64_t i = 0; i < buckets_.size(); ++i) buckets_[i].Save(w);
}

bool CoveringDecomposition::Load(BinaryReader* r) {
  buckets_.clear();
  uint64_t size = 0;
  if (!r->GetU64(&size)) return false;
  if (size > (uint64_t{1} << 40)) return false;  // sanity: corrupt blob
  for (uint64_t i = 0; i < size; ++i) {
    BucketStructure bs;
    if (!bs.Load(r)) return false;
    buckets_.push_back(bs);
  }
  return CheckInvariants();
}

bool CoveringDecomposition::CheckInvariants() const {
  if (buckets_.empty()) return true;
  const StreamIndex b_idx = b();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const BucketStructure& bs = buckets_[i];
    if (bs.y <= bs.x) return false;
    if (i + 1 < buckets_.size() && bs.y != buckets_[i + 1].x) return false;
    if (i + 1 == buckets_.size()) {
      // Last structure is always the single-element zeta(b, b).
      if (bs.x != b_idx || bs.width() != 1) return false;
    } else {
      // Definition 3.1: width = 2^(floor(log2(b+1-a_i)) - 1).
      const uint64_t range = b_idx + 1 - bs.x;
      if (range < 2) return false;
      if (bs.width() != Pow2(FloorLog2(range) - 1)) return false;
    }
    // Samples must lie inside the bucket.
    if (bs.r.index < bs.x || bs.r.index >= bs.y) return false;
    if (bs.q.index < bs.x || bs.q.index >= bs.y) return false;
  }
  return true;
}

}  // namespace swsample
