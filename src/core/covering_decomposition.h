// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Covering decomposition -- paper Definition 3.1 and the Incr operator.
//
// zeta(a, b) is an ordered list of bucket structures covering indices
// [a, b], defined inductively: zeta(b, b) = <BS(b, b+1)> and
// zeta(a, b) = <BS(a, c), zeta(c, b)> with c = a + 2^(floor(log2(b+1-a))-1).
// Its size is O(log(b - a)), and widths shrink (roughly geometrically) from
// the front: the oldest bucket spans about half the covered range.
//
// Incr appends element p_{b+1}, merging adjacent buckets (which the
// arithmetic of Lemma 3.4 guarantees have EQUAL widths at the merge point)
// with a fair coin per sample so the merged samples remain uniform.
// Lemma 3.4 -- Incr(zeta(a,b)) structurally equals zeta(a, b+1) -- is
// verified by a property test against a from-definition reference
// construction.
//
// Because the list is ALWAYS exactly zeta(a, b), which levels merge is an
// arithmetic function of the covered width cw = b + 1 - a alone, and the
// level-by-level walk the paper describes collapses to a closed form:
// writing W_i for the width of the range covered from level i, a merge
// fires at level i iff W_i is all-ones (W_i = 2^m - 1), merges cascade
// (2^m - 1 -> 2^(m-1) - 1 -> ... -> 3), and the first all-ones level
// reached from cw has m = countr_one(cw) + 1. Hence the number of merges is
//
//   j = countr_one(cw) - (cw itself all-ones ? 1 : 0)    (0 if cw even)
//
// and the 2j consumed buckets are exactly the suffix just before the last
// (single-element) bucket, merged pairwise in increasing index order. Incr
// is therefore amortized O(1): j averages ~1/2 coin-pair per append, and
// only the contiguous tail of the ring is touched.
//
// Expiry needs only each bucket's head timestamp, so first_ts is mirrored
// into a parallel RingDeque<Timestamp> (SoA): the Lemma 3.5 boundary scan
// walks a dense timestamp array instead of striding over whole structs.
// The mirror is maintained by every mutator and checked by
// CheckInvariants().

#ifndef SWSAMPLE_CORE_COVERING_DECOMPOSITION_H_
#define SWSAMPLE_CORE_COVERING_DECOMPOSITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/bucket_structure.h"
#include "stream/item.h"
#include "util/arena.h"
#include "util/rng.h"

namespace swsample {

/// The ordered bucket-structure list zeta(a, b) with its Incr operator.
///
/// Also supports dropping leading buckets (used by the Lemma 3.5 expiry
/// maintenance, which discards structures that fell wholly behind the
/// window). Buckets are stored front = oldest.
class CoveringDecomposition {
 public:
  CoveringDecomposition() = default;

  /// True iff no bucket is held.
  bool empty() const { return buckets_.empty(); }

  /// Number of bucket structures (O(log covered-width)).
  uint64_t size() const { return buckets_.size(); }

  /// First covered index a. Requires !empty().
  StreamIndex a() const;

  /// Last covered index b (the list covers [a, b]). Requires !empty().
  StreamIndex b() const;

  /// Total covered width b + 1 - a. Requires !empty().
  uint64_t covered_width() const { return b() + 1 - a(); }

  /// Bucket access, 0 = oldest.
  const BucketStructure& bucket(uint64_t i) const { return buckets_[i]; }

  /// Head timestamp of bucket i from the dense SoA mirror (equal to
  /// bucket(i).first_ts; non-decreasing in i). The expiry hot paths read
  /// this instead of striding over BucketStructure records.
  Timestamp first_ts(uint64_t i) const { return first_ts_[i]; }

  /// Number of leading buckets whose head timestamp is <= cutoff (i.e.
  /// expired at clock `now` for cutoff = now - t0). Contiguous sweep over
  /// the SoA timestamp ring; the caller guarantees at least one bucket
  /// head survives (timestamps are non-decreasing).
  uint64_t CountExpiredPrefix(Timestamp cutoff) const {
    uint64_t i = 0;
    while (i < first_ts_.size() && first_ts_[i] <= cutoff) ++i;
    return i;
  }

  /// Starts a fresh zeta(b, b) from the first item of a new range.
  void InitFromItem(const Item& item);

  /// The paper's Incr: extends zeta(a, b) to zeta(a, b+1) with the newly
  /// arrived item p_{b+1} (item.index must equal b()+1). Amortized O(1)
  /// via the closed-form merge count (see file header); coin consumption
  /// order matches the level-by-level walk exactly, so results are
  /// bit-identical to the paper's recursion given the same coin stream.
  /// The overload taking a CoinSource draws its merge coins from the
  /// source's bit cache (one raw draw refills 64 coins), which is how the
  /// batched ObserveBatch paths amortize RNG cost; both overloads produce
  /// identically distributed (though not bit-identical) results.
  void Incr(const Item& item, Rng& rng);
  void Incr(const Item& item, CoinSource& coins);

  /// Closed-form batch append: extends zeta(a, b) to zeta(a, b + run.size())
  /// in O(log) time TOTAL (not per item), for a run of consecutively
  /// indexed items (run.front().index == b() + 1) known to experience no
  /// expiry. The final boundary list is arithmetic (zeta depends only on
  /// its endpoints), and because Incr's merges only ever union adjacent
  /// buckets, every final bucket is a union of current buckets plus a
  /// range of new items; its R/Q samples are therefore drawn by index:
  /// uniform over the final bucket, resolving to an old bucket's sample
  /// (chosen with width-proportional probability — exactly the atom
  /// probabilities the fair-coin merge cascade yields) or to a new item
  /// read straight from `run`. Identically distributed to run.size()
  /// Incr calls, including jointly with the surviving old samples; not
  /// bit-identical (different randomness consumption).
  void ExtendRun(std::span<const Item> run, Rng& rng);

  /// Drops the `count` oldest bucket structures (they covered only expired
  /// elements, or were absorbed into a straddling bucket).
  void DropFront(uint64_t count);

  /// Pops and returns the oldest bucket structure. Requires !empty().
  BucketStructure PopFront();

  /// Discards everything.
  void Clear();

  /// Draws a uniform sample of the covered range [a, b] by picking a bucket
  /// with probability proportional to its width and returning its R sample
  /// (Theorem 3.9, case 1 combination). Requires !empty().
  Item SampleCovered(Rng& rng) const;

  /// Live memory words (paper model).
  uint64_t MemoryWords() const {
    return buckets_.size() * BucketStructure::kWords;
  }

  /// Heap bytes retained beyond the object footprint (both rings' arena
  /// reservations).
  uint64_t RetainedBytes() const {
    return buckets_.ReservedBytes() + first_ts_.ReservedBytes();
  }

  /// Internal structural invariants (boundaries contiguous, widths match
  /// Definition 3.1). Exposed for tests; O(size()).
  bool CheckInvariants() const;

  /// Checkpointing (see util/serial.h). Load validates CheckInvariants().
  void Save(BinaryWriter* w) const;
  bool Load(BinaryReader* r);

 private:
  // Arena-backed ring (util/arena.h): contiguous power-of-two storage,
  // O(1) pop_front for expiry, no per-item allocator traffic. The O(log n)
  // structures fit one or two cache lines' worth of slots.
  RingDeque<BucketStructure> buckets_;
  // SoA mirror of buckets_[i].first_ts (one cache line covers 8 buckets):
  // the expiry boundary scan and the batched no-expiry checks read only
  // timestamps, so they stay off the 72-byte BucketStructure stride.
  RingDeque<Timestamp> first_ts_;
  // ExtendRun staging area for the rebuilt O(log) bucket list; member so
  // its allocation is reused across batches. Dead between calls.
  std::vector<BucketStructure> scratch_;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_COVERING_DECOMPOSITION_H_
