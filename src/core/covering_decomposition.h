// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Covering decomposition -- paper Definition 3.1 and the Incr operator.
//
// zeta(a, b) is an ordered list of bucket structures covering indices
// [a, b], defined inductively: zeta(b, b) = <BS(b, b+1)> and
// zeta(a, b) = <BS(a, c), zeta(c, b)> with c = a + 2^(floor(log2(b+1-a))-1).
// Its size is O(log(b - a)), and widths shrink (roughly geometrically) from
// the front: the oldest bucket spans about half the covered range.
//
// Incr appends element p_{b+1} in O(log(b-a)) time, merging the first two
// buckets (which the arithmetic of Lemma 3.4 guarantees have EQUAL widths
// at the merge point) with a fair coin per sample so the merged samples
// remain uniform. Lemma 3.4 -- Incr(zeta(a,b)) structurally equals
// zeta(a, b+1) -- is verified by a property test against a from-definition
// reference construction.

#ifndef SWSAMPLE_CORE_COVERING_DECOMPOSITION_H_
#define SWSAMPLE_CORE_COVERING_DECOMPOSITION_H_

#include <cstdint>

#include "core/bucket_structure.h"
#include "stream/item.h"
#include "util/arena.h"
#include "util/rng.h"

namespace swsample {

/// The ordered bucket-structure list zeta(a, b) with its Incr operator.
///
/// Also supports dropping leading buckets (used by the Lemma 3.5 expiry
/// maintenance, which discards structures that fell wholly behind the
/// window). Buckets are stored front = oldest.
class CoveringDecomposition {
 public:
  CoveringDecomposition() = default;

  /// True iff no bucket is held.
  bool empty() const { return buckets_.empty(); }

  /// Number of bucket structures (O(log covered-width)).
  uint64_t size() const { return buckets_.size(); }

  /// First covered index a. Requires !empty().
  StreamIndex a() const;

  /// Last covered index b (the list covers [a, b]). Requires !empty().
  StreamIndex b() const;

  /// Total covered width b + 1 - a. Requires !empty().
  uint64_t covered_width() const { return b() + 1 - a(); }

  /// Bucket access, 0 = oldest.
  const BucketStructure& bucket(uint64_t i) const { return buckets_[i]; }

  /// Starts a fresh zeta(b, b) from the first item of a new range.
  void InitFromItem(const Item& item);

  /// The paper's Incr: extends zeta(a, b) to zeta(a, b+1) with the newly
  /// arrived item p_{b+1} (item.index must equal b()+1). O(size()) time.
  /// The overload taking a CoinSource draws its merge coins from the
  /// source's bit cache (one raw draw refills 64 coins), which is how the
  /// batched ObserveBatch paths amortize RNG cost; both overloads produce
  /// identically distributed (though not bit-identical) results.
  void Incr(const Item& item, Rng& rng);
  void Incr(const Item& item, CoinSource& coins);

  /// Drops the `count` oldest bucket structures (they covered only expired
  /// elements, or were absorbed into a straddling bucket).
  void DropFront(uint64_t count);

  /// Pops and returns the oldest bucket structure. Requires !empty().
  BucketStructure PopFront();

  /// Discards everything.
  void Clear();

  /// Draws a uniform sample of the covered range [a, b] by picking a bucket
  /// with probability proportional to its width and returning its R sample
  /// (Theorem 3.9, case 1 combination). Requires !empty().
  Item SampleCovered(Rng& rng) const;

  /// Live memory words (paper model).
  uint64_t MemoryWords() const {
    return buckets_.size() * BucketStructure::kWords;
  }

  /// Heap bytes retained beyond the object footprint (the ring's arena
  /// reservation).
  uint64_t RetainedBytes() const { return buckets_.ReservedBytes(); }

  /// Internal structural invariants (boundaries contiguous, widths match
  /// Definition 3.1). Exposed for tests; O(size()).
  bool CheckInvariants() const;

  /// Checkpointing (see util/serial.h). Load validates CheckInvariants().
  void Save(BinaryWriter* w) const;
  bool Load(BinaryReader* r);

 private:
  // Arena-backed ring (util/arena.h): contiguous power-of-two storage,
  // O(1) pop_front for expiry, no per-item allocator traffic. The O(log n)
  // structures fit one or two cache lines' worth of slots.
  RingDeque<BucketStructure> buckets_;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_COVERING_DECOMPOSITION_H_
