// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/implicit_events.h"

#include "util/macros.h"

namespace swsample {

ImplicitEventDraw DrawImplicitEvent(const BucketStructure& straddler,
                                    uint64_t beta, Timestamp now,
                                    Timestamp t0, Rng& rng) {
  const uint64_t alpha = straddler.width();
  SWS_DCHECK(alpha >= 1);
  SWS_DCHECK(alpha <= beta);
  // The head of the straddling bucket must be expired (that is what makes
  // it a straddler) -- Y falling on p_a is then expired by construction.
  SWS_DCHECK(now - straddler.first_ts >= t0);
  // Guard the exact rational coins below against 64-bit overflow; streams
  // of fewer than 2^31 elements per window keep (beta+i)^2 < 2^63.
  SWS_DCHECK(beta < (uint64_t{1} << 31));

  ImplicitEventDraw draw;

  // Lemma 3.6: synthesize Y from the independent sample Q1. Writing
  // Q1 = p_{b-i} (i in [1, alpha]; i == alpha <=> Q1 == p_a):
  //   i < alpha: flip H_i ~ Bernoulli(alpha*beta/((beta+i)(beta+i-1)));
  //              Y = Q1 if H_i else Y = p_a.
  //   i == alpha: Y = p_a.
  // This realizes P(Y = p_{b-i}) = beta/((beta+i)(beta+i-1)) and
  // P(Y = p_a) = beta/(beta+alpha-1), and Lemma 3.7's telescoping sum gives
  // P(Y expired) = beta/(beta+gamma) with gamma unknown.
  const uint64_t i = straddler.y - straddler.q.index;
  SWS_DCHECK(i >= 1 && i <= alpha);
  if (i < alpha) {
    const uint64_t den = (beta + i) * (beta + i - 1);
    const bool h = rng.BernoulliRational(alpha * beta, den);
    if (h) {
      // Y = Q1: expired iff its timestamp fell out of the window.
      draw.y_expired = (now - straddler.q.timestamp >= t0);
    } else {
      draw.y_expired = true;  // Y = p_a, expired by construction
    }
  } else {
    draw.y_expired = true;  // Q1 == p_a
  }

  // Lemma 3.7: X = [Y expired] AND S with S ~ Bernoulli(alpha/beta),
  // giving P(X=1) = (beta/(beta+gamma)) * (alpha/beta) = alpha/(beta+gamma).
  draw.s = rng.BernoulliRational(alpha, beta);
  draw.x = draw.y_expired && draw.s;
  return draw;
}

}  // namespace swsample
