// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Generating implicit events -- paper Section 3.3 (Lemmas 3.6-3.8).
//
// In the timestamp model the window size n = beta + gamma is unknown
// because gamma -- the number of still-active elements inside the straddling
// bucket B1 = B(a, b) -- cannot be tracked in sublinear space. The paper's
// trick: using B1's SECOND independent sample Q1, synthesize a random
// variable Y over B1 whose probability of being EXPIRED is exactly
// beta/(beta+gamma) (Lemma 3.6/3.7); AND it with an explicit
// Bernoulli(alpha/beta) coin S to obtain X ~ Bernoulli(alpha/(beta+gamma))
// -- a coin with the unknown window size in its denominator, generated
// without ever learning gamma.

#ifndef SWSAMPLE_CORE_IMPLICIT_EVENTS_H_
#define SWSAMPLE_CORE_IMPLICIT_EVENTS_H_

#include <cstdint>

#include "core/bucket_structure.h"
#include "stream/item.h"
#include "util/rng.h"

namespace swsample {

/// Outcome of one implicit-event draw; exposed (rather than just the final
/// bit) so unit tests can validate the Lemma 3.6 distribution of Y.
struct ImplicitEventDraw {
  bool y_expired = false;  ///< whether the synthetic Y landed on an expired element
  bool s = false;          ///< the explicit Bernoulli(alpha/beta) coin
  bool x = false;          ///< final X = y_expired && s  ~ Bernoulli(alpha/(beta+gamma))
};

/// Draws X ~ Bernoulli(alpha/(beta+gamma)) per Lemmas 3.6-3.7.
///
/// `straddler` is the bucket structure of B1 = B(a, b) whose first element
/// is expired; `beta` = |B2| is the known number of elements after B1 (all
/// active); `now`/`t0` define expiry (expired <=> now - ts >= t0). Requires
/// alpha <= beta (the Lemma 3.5 case-2 invariant). Consumes O(1) randomness.
ImplicitEventDraw DrawImplicitEvent(const BucketStructure& straddler,
                                    uint64_t beta, Timestamp now,
                                    Timestamp t0, Rng& rng);

}  // namespace swsample

#endif  // SWSAMPLE_CORE_IMPLICIT_EVENTS_H_
