// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Cross-shard sample merging (core/api.h SamplerSnapshot). The weighted
// selection below is exact, not approximate: a uniform sample of a shard's
// window, reweighted by occupancy against another shard's, is a uniform
// sample of the union — the same Section 1.3.1 composition the paper uses
// to combine bucket reservoirs, applied across shards instead of buckets.

#include <algorithm>
#include <string>

#include "core/api.h"
#include "util/macros.h"

namespace swsample {

namespace {

/// Appends a uniformly random `take`-subset of `from` to `out` via a
/// partial Fisher-Yates shuffle over an index array. A uniform sub-subset
/// of a uniform subset is uniform (paper Section 2.2, the X_V^i
/// argument), so this composes with the hypergeometric allocation below.
/// Shuffling indices instead of a scratch copy of the items keeps the
/// temporary to one word per sample and leaves the RNG consumption (and
/// therefore the output sequence) identical to shuffling items directly.
void AppendUniformSubset(const std::vector<Item>& from, uint64_t take,
                         Rng& rng, std::vector<Item>* out) {
  SWS_DCHECK(take <= from.size());
  if (take == from.size()) {
    out->insert(out->end(), from.begin(), from.end());
    return;
  }
  std::vector<uint64_t> order(from.size());
  for (uint64_t i = 0; i < order.size(); ++i) order[i] = i;
  for (uint64_t i = 0; i < take; ++i) {
    const uint64_t j = rng.UniformRange(i, order.size() - 1);
    std::swap(order[i], order[j]);
    out->push_back(from[order[i]]);
  }
}

}  // namespace

Status SamplerSnapshot::MergeFrom(SamplerSnapshot&& other, Rng& rng) {
  if (active == 0 && other.active != 0 && k == other.k &&
      without_replacement == other.without_replacement) {
    *this = std::move(other);  // adopt wholesale, no sample-vector copy
    return Status::Ok();
  }
  return MergeFrom(other, rng);
}

Status SamplerSnapshot::MergeFrom(const SamplerSnapshot& other, Rng& rng) {
  if (k != other.k) {
    return Status::InvalidArgument(
        "SamplerSnapshot::MergeFrom: mismatched k (" + std::to_string(k) +
        " vs " + std::to_string(other.k) + ")");
  }
  if (without_replacement != other.without_replacement) {
    return Status::InvalidArgument(
        "SamplerSnapshot::MergeFrom: cannot merge a with-replacement "
        "snapshot with a without-replacement one");
  }
  if (other.active == 0) return Status::Ok();
  if (active == 0) {
    *this = other;
    return Status::Ok();
  }
  if (!without_replacement) {
    // With replacement: each slot is an independent uniform draw from its
    // shard's window, so slot i of the union is slot i of either side,
    // chosen with probability proportional to the occupancies.
    if (sample.size() != k || other.sample.size() != k) {
      return Status::InvalidArgument(
          "SamplerSnapshot::MergeFrom: a with-replacement snapshot of a "
          "non-empty window must hold exactly k samples");
    }
    for (uint64_t i = 0; i < k; ++i) {
      if (rng.BernoulliRational(other.active, active + other.active)) {
        sample[i] = other.sample[i];
      }
    }
    active += other.active;
    return Status::Ok();
  }
  // Without replacement: a uniform min(k, |A|+|B|)-subset of A union B
  // contains j elements of A with multivariate hypergeometric probability;
  // realize the allocation by |draws| sequential occupancy-weighted coins,
  // then take uniform sub-subsets of each side's sample.
  if (sample.size() != std::min(k, active) ||
      other.sample.size() != std::min(k, other.active)) {
    return Status::InvalidArgument(
        "SamplerSnapshot::MergeFrom: a without-replacement snapshot must "
        "hold min(k, active) samples");
  }
  const uint64_t draws = std::min(k, active + other.active);
  uint64_t remaining_a = active;
  uint64_t remaining_b = other.active;
  uint64_t take_a = 0;
  uint64_t take_b = 0;
  for (uint64_t j = 0; j < draws; ++j) {
    if (rng.BernoulliRational(remaining_a, remaining_a + remaining_b)) {
      ++take_a;
      --remaining_a;
    } else {
      ++take_b;
      --remaining_b;
    }
  }
  std::vector<Item> merged;
  merged.reserve(draws);
  AppendUniformSubset(sample, take_a, rng, &merged);
  AppendUniformSubset(other.sample, take_b, rng, &merged);
  sample = std::move(merged);
  active += other.active;
  return Status::Ok();
}

Result<SamplerSnapshot> MergedSnapshot(std::span<WindowSampler* const> shards,
                                       uint64_t seed) {
  if (shards.empty()) {
    return Status::InvalidArgument("MergedSnapshot: no shards");
  }
  Rng rng(seed);
  SamplerSnapshot merged;
  bool first = true;
  for (WindowSampler* shard : shards) {
    SWS_CHECK(shard != nullptr);
    auto snapshot = shard->Snapshot();
    if (!snapshot.ok()) return snapshot.status();
    if (first) {
      merged = std::move(snapshot.value());
      first = false;
      continue;
    }
    if (Status s = merged.MergeFrom(std::move(snapshot.value()), rng);
        !s.ok()) {
      return s;
    }
  }
  return merged;
}

}  // namespace swsample
