// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/registry.h"

#include <utility>

#include "baseline/bounded_priority_sampler.h"
#include "baseline/chain_sampler.h"
#include "baseline/exact_window.h"
#include "baseline/oversampler.h"
#include "baseline/priority_sampler.h"
#include "core/seq_swor.h"
#include "core/seq_swr.h"
#include "core/ts_single.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"

namespace swsample {
namespace {

using SamplerResult = Result<std::unique_ptr<WindowSampler>>;

/// The Section 2.1 single-sample procedure: a k=1 with-replacement unit
/// exposed under its own registry name. Forwards the batched fast path.
class SeqSingleSampler final : public WindowSampler {
 public:
  explicit SeqSingleSampler(std::unique_ptr<SequenceSwrSampler> inner)
      : inner_(std::move(inner)) {}

  void Observe(const Item& item) override { inner_->Observe(item); }
  void ObserveBatch(std::span<const Item> items) override {
    inner_->ObserveBatch(items);
  }
  void AdvanceTime(Timestamp now) override { inner_->AdvanceTime(now); }
  std::vector<Item> Sample() override { return inner_->Sample(); }
  uint64_t MemoryWords() const override { return inner_->MemoryWords(); }
  uint64_t RetainedBytes() const override { return inner_->RetainedBytes(); }
  uint64_t k() const override { return 1; }
  const char* name() const override { return "bop-seq-single"; }
  bool mergeable() const override { return true; }
  Result<SamplerSnapshot> Snapshot() override { return inner_->Snapshot(); }
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override { inner_->SaveState(w); }
  bool LoadState(BinaryReader* r) override { return inner_->LoadState(r); }

 private:
  std::unique_ptr<SequenceSwrSampler> inner_;
};

Status RequireSingle(const SamplerConfig& config, const char* name) {
  if (config.k != 1) {
    return Status::InvalidArgument(std::string(name) +
                                   ": single-sample variant requires k == 1");
  }
  return Status::Ok();
}

template <typename T>
SamplerResult Widen(Result<std::unique_ptr<T>> r) {
  if (!r.ok()) return r.status();
  return std::unique_ptr<WindowSampler>(std::move(r).ValueOrDie());
}

struct Entry {
  SamplerSpec spec;
  SamplerResult (*make)(const SamplerConfig&);
};

const Entry kEntries[] = {
    {{"bop-seq-single", WindowModel::kSequence, /*single_sample=*/true,
      "paper Sec 2.1 single sample, O(1) words"},
     [](const SamplerConfig& c) -> SamplerResult {
       if (Status s = RequireSingle(c, "bop-seq-single"); !s.ok()) return s;
       auto inner = SequenceSwrSampler::Create(c.window_n, 1, c.seed);
       if (!inner.ok()) return inner.status();
       return std::unique_ptr<WindowSampler>(
           new SeqSingleSampler(std::move(inner).ValueOrDie()));
     }},
    {{"bop-seq-swr", WindowModel::kSequence, /*single_sample=*/false,
      "paper Thm 2.1 k-sample with replacement, O(k) words"},
     [](const SamplerConfig& c) {
       return Widen(SequenceSwrSampler::Create(c.window_n, c.k, c.seed));
     }},
    {{"bop-seq-swor", WindowModel::kSequence, /*single_sample=*/false,
      "paper Thm 2.2 k-sample without replacement, O(k) words"},
     [](const SamplerConfig& c) {
       return Widen(SequenceSworSampler::Create(c.window_n, c.k, c.seed));
     }},
    {{"bop-ts-single", WindowModel::kTimestamp, /*single_sample=*/true,
      "paper Sec 3 single sample, O(log n) words"},
     [](const SamplerConfig& c) -> SamplerResult {
       if (Status s = RequireSingle(c, "bop-ts-single"); !s.ok()) return s;
       // TsSingleSampler implements WindowSampler directly; no wrapper.
       auto inner = TsSingleSampler::Create(c.window_t, c.seed);
       if (!inner.ok()) return inner.status();
       return std::unique_ptr<WindowSampler>(
           new TsSingleSampler(std::move(inner).ValueOrDie()));
     }},
    {{"bop-ts-swr", WindowModel::kTimestamp, /*single_sample=*/false,
      "paper Thm 3.9 k-sample with replacement, O(k log n) words"},
     [](const SamplerConfig& c) {
       return Widen(TsSwrSampler::Create(c.window_t, c.k, c.seed));
     }},
    {{"bop-ts-swor", WindowModel::kTimestamp, /*single_sample=*/false,
      "paper Thm 4.4 k-sample without replacement, O(k log n) words"},
     [](const SamplerConfig& c) {
       return Widen(TsSworSampler::Create(c.window_t, c.k, c.seed));
     }},
    {{"bdm-chain", WindowModel::kSequence, /*single_sample=*/false,
      "Babcock-Datar-Motwani chain sampling (randomized memory)"},
     [](const SamplerConfig& c) {
       return Widen(ChainSampler::Create(c.window_n, c.k, c.seed));
     }},
    {{"oversample-swor", WindowModel::kSequence, /*single_sample=*/false,
      "over-sampling SWOR baseline (may fail to return k distinct)"},
     [](const SamplerConfig& c) {
       return Widen(OverSampler::Create(c.window_n, c.k,
                                        c.oversample_factor, c.seed));
     }},
    {{"exact-seq", WindowModel::kSequence, /*single_sample=*/false,
      "exact full-window oracle, O(n) words"},
     [](const SamplerConfig& c) {
       return Widen(ExactWindow::CreateSequence(c.window_n, c.k,
                                                c.with_replacement, c.seed));
     }},
    {{"bdm-priority", WindowModel::kTimestamp, /*single_sample=*/false,
      "Babcock-Datar-Motwani priority sampling (randomized memory)"},
     [](const SamplerConfig& c) {
       return Widen(PrioritySampler::Create(c.window_t, c.k, c.seed));
     }},
    {{"gl-bounded-priority", WindowModel::kTimestamp, /*single_sample=*/false,
      "Gemulla-Lehner bounded priority SWOR (randomized memory)"},
     [](const SamplerConfig& c) {
       return Widen(BoundedPrioritySampler::Create(c.window_t, c.k, c.seed));
     }},
    {{"exact-ts", WindowModel::kTimestamp, /*single_sample=*/false,
      "exact full-window oracle, O(window) words"},
     [](const SamplerConfig& c) {
       return Widen(ExactWindow::CreateTimestamp(c.window_t, c.k,
                                                 c.with_replacement, c.seed));
     }},
};

const Entry* FindEntry(std::string_view name) {
  for (const Entry& entry : kEntries) {
    if (name == entry.spec.name) return &entry;
  }
  return nullptr;
}

}  // namespace

const std::vector<SamplerSpec>& RegisteredSamplers() {
  static const std::vector<SamplerSpec>* specs = [] {
    auto* v = new std::vector<SamplerSpec>();
    for (const Entry& entry : kEntries) v->push_back(entry.spec);
    return v;
  }();
  return *specs;
}

const SamplerSpec* FindSamplerSpec(std::string_view name) {
  const Entry* entry = FindEntry(name);
  return entry == nullptr ? nullptr : &entry->spec;
}

SamplerMaker FindSamplerMaker(std::string_view name) {
  const Entry* entry = FindEntry(name);
  return entry == nullptr ? nullptr : entry->make;
}

bool IsRegisteredSampler(std::string_view name) {
  return FindSamplerSpec(name) != nullptr;
}

Result<std::unique_ptr<WindowSampler>> CreateSampler(
    std::string_view name, const SamplerConfig& config) {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::InvalidArgument("unknown sampler \"" + std::string(name) +
                                   "\"; registered: " +
                                   RegisteredSamplerNames());
  }
  // Validate the window parameter of the relevant model up front so every
  // sampler rejects a missing/invalid window uniformly.
  if (entry->spec.model == WindowModel::kSequence && config.window_n < 1) {
    return Status::InvalidArgument(std::string(entry->spec.name) +
                                   ": config.window_n must be >= 1");
  }
  if (entry->spec.model == WindowModel::kTimestamp && config.window_t < 1) {
    return Status::InvalidArgument(std::string(entry->spec.name) +
                                   ": config.window_t must be >= 1");
  }
  return entry->make(config);
}

std::string RegisteredSamplerNames() {
  std::string out;
  for (const Entry& entry : kEntries) {
    if (!out.empty()) out += ", ";
    out += entry.spec.name;
  }
  return out;
}

}  // namespace swsample
