// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Sampler registry: every sliding-window sampler in the library — the six
/// paper algorithms of BravermanOZ09 and the six prior-art baselines — is
/// constructible from a string name and one common configuration struct.
/// Harnesses, examples, benchmarks, the CLI and the sharded driver's
/// replica factory drive samplers through this single entry point, so
/// adding a sampler never touches call sites.
///
/// Ownership: CreateSampler returns a caller-owned unique_ptr; the
/// registry holds only static specs (no constructed instances).
///
/// Thread-safety: the lookup tables are immutable after first use and
/// safe to read from any thread; constructed samplers inherit the
/// one-thread-per-instance rule of core/api.h.
///
/// Status conventions: unknown names and invalid configurations return
/// InvalidArgument (with the registered-name list in the message), never
/// exceptions; a returned sampler is always fully valid.
//
// Registered names:
//
//   name                  model      paper section / source
//   --------------------  ---------  -------------------------------------
//   bop-seq-single        sequence   Sec 2.1 single-sample procedure (k=1)
//   bop-seq-swr           sequence   Thm 2.1, k-sample with replacement
//   bop-seq-swor          sequence   Thm 2.2, k-sample w/o replacement
//   bop-ts-single         timestamp  Sec 3 structure (Thm 3.9, k=1)
//   bop-ts-swr            timestamp  Thm 3.9, k independent copies
//   bop-ts-swor           timestamp  Thm 4.4 black-box reduction
//   bdm-chain             sequence   Babcock-Datar-Motwani chain sampling
//   oversample-swor       sequence   folklore over-sampling SWOR
//   exact-seq             sequence   full-window oracle (Zhang et al.)
//   bdm-priority          timestamp  Babcock-Datar-Motwani priority
//   gl-bounded-priority   timestamp  Gemulla-Lehner bounded priority
//   exact-ts              timestamp  full-window oracle

#ifndef SWSAMPLE_CORE_REGISTRY_H_
#define SWSAMPLE_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/api.h"
#include "util/status.h"

namespace swsample {

/// Which window model a registered sampler implements; decides whether
/// SamplerConfig::window_n or ::window_t is the relevant parameter.
enum class WindowModel {
  kSequence,   ///< last window_n arrivals are active
  kTimestamp,  ///< active <=> now - T(p) < window_t
};

/// One configuration for every registered sampler. Only the fields the
/// named sampler uses are validated; the rest are ignored.
struct SamplerConfig {
  /// Sequence window size n (sequence-model samplers; must be >= 1 there).
  uint64_t window_n = 0;
  /// Timestamp window length t0 (timestamp-model samplers; >= 1 there).
  Timestamp window_t = 0;
  /// Samples to maintain; single-sample variants require k == 1.
  uint64_t k = 1;
  /// RNG seed; equal configs construct identically-behaving samplers.
  uint64_t seed = 0;
  /// Over-sampling factor (oversample-swor only).
  uint64_t oversample_factor = 3;
  /// Sampling mode of the exact-window oracles (exact-seq / exact-ts).
  bool with_replacement = true;
};

/// Static description of one registered sampler.
struct SamplerSpec {
  const char* name;      ///< registry key; equals the instance's name()
  WindowModel model;     ///< which window parameter applies
  bool single_sample;    ///< true => the sampler requires config.k == 1
  const char* summary;   ///< one-line description for --help output
};

/// All registered samplers, in the order of the table above.
const std::vector<SamplerSpec>& RegisteredSamplers();

/// The spec registered under `name`, or nullptr if unknown.
const SamplerSpec* FindSamplerSpec(std::string_view name);

/// True iff `name` is a registered sampler name.
bool IsRegisteredSampler(std::string_view name);

/// Construction function for one registered sampler. A maker skips
/// CreateSampler's name lookup and window validation, so callers must
/// have validated the configuration once (e.g. via a probe CreateSampler
/// call) before using it on a hot path.
using SamplerMaker =
    Result<std::unique_ptr<WindowSampler>> (*)(const SamplerConfig&);

/// Resolves `name` to its construction function, or nullptr if unknown —
/// the registry's linear name scan hoisted out of per-construction cost
/// for callers that build many identically-named samplers (the keyed
/// engine creates one sink per tenant appearance, which under TTL churn
/// means hundreds of thousands of constructions per run).
SamplerMaker FindSamplerMaker(std::string_view name);

/// Constructs the sampler registered under `name`. Unknown names and
/// configurations rejected by the sampler's own factory come back as
/// InvalidArgument through the library's usual status mechanism.
///
/// Registry-level persistence lives in core/checkpoint.h: SaveSampler
/// wraps a constructed sampler's state in a self-describing envelope
/// (name + config + payload) and RestoreSampler reconstructs the exact
/// object from one, in any process.
Result<std::unique_ptr<WindowSampler>> CreateSampler(
    std::string_view name, const SamplerConfig& config);

/// "name1, name2, ..." — for CLI usage/error text.
std::string RegisteredSamplerNames();

}  // namespace swsample

#endif  // SWSAMPLE_CORE_REGISTRY_H_
