// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/seq_swor.h"

#include <algorithm>

#include "stream/item_serial.h"
#include "util/macros.h"
#include "util/serial.h"

namespace swsample {

Result<std::unique_ptr<SequenceSworSampler>> SequenceSworSampler::Create(
    uint64_t n, uint64_t k, uint64_t seed) {
  if (n < 1) {
    return Status::InvalidArgument("SequenceSworSampler: n must be >= 1");
  }
  if (k < 1 || k > n) {
    return Status::InvalidArgument(
        "SequenceSworSampler: k must satisfy 1 <= k <= n");
  }
  return std::unique_ptr<SequenceSworSampler>(
      new SequenceSworSampler(n, k, seed));
}

SequenceSworSampler::SequenceSworSampler(uint64_t n, uint64_t k, uint64_t seed)
    : n_(n), k_(k), rng_(seed), current_(k) {}

void SequenceSworSampler::Observe(const Item& item) {
  SWS_DCHECK(item.index == count_);
  ++count_;
  if (current_.count() == n_) {
    prev_sample_ = current_.items();
    current_.Reset();
  }
  current_.Observe(item, rng_);
}

void SequenceSworSampler::ObserveBatch(std::span<const Item> items) {
  if (items.empty()) return;
  SWS_DCHECK(items.front().index == count_);
  size_t pos = 0;
  while (pos < items.size()) {
    uint64_t in_bucket = count_ == 0 ? 0 : (count_ - 1) % n_ + 1;
    if (in_bucket == n_) {
      prev_sample_ = current_.items();
      current_.Reset();
      in_bucket = 0;
    }
    const size_t take =
        std::min<size_t>(items.size() - pos, n_ - in_bucket);
    current_.ObserveRange(items.data() + pos, take, rng_);
    count_ += take;
    pos += take;
  }
}

std::vector<Item> SequenceSworSampler::Sample() {
  if (count_ == 0) return {};
  // Window is exactly the newest bucket, or the stream is shorter than one
  // window: the bucket's k-reservoir (or its full prefix) is the sample.
  if (current_.count() == n_ || count_ < n_) return current_.items();

  SWS_DCHECK(prev_sample_.size() == k_);
  const uint64_t window_start = count_ - n_;
  // Active part of X_U, i.e. X_U intersect U_a.
  std::vector<Item> out;
  out.reserve(k_);
  for (const Item& item : prev_sample_) {
    if (item.index >= window_start) out.push_back(item);
  }
  const uint64_t expired = k_ - out.size();
  // The i expired members are replaced by a uniform i-subset of the partial
  // bucket's reservoir X_V. i <= |U_e| = s arrived items, and the reservoir
  // holds min(k, s) items, so the subsample is always well defined.
  SWS_DCHECK(expired <= current_.items().size());
  current_.SubsampleInto(expired, rng_, &out);
  return out;
}

Result<SamplerSnapshot> SequenceSworSampler::Snapshot() {
  SamplerSnapshot snapshot;
  snapshot.active = std::min(count_, n_);
  snapshot.k = k_;
  snapshot.without_replacement = true;
  snapshot.sample = Sample();
  return snapshot;
}

void SequenceSworSampler::SaveState(BinaryWriter* w) const {
  w->PutU64(count_);
  SaveRngState(rng_, w);
  current_.Save(w);
  w->PutU64(prev_sample_.size());
  for (const Item& item : prev_sample_) SaveItem(item, w);
}

bool SequenceSworSampler::LoadState(BinaryReader* r) {
  uint64_t prev_size = 0;
  if (!r->GetU64(&count_) || !LoadRngState(r, &rng_)) return false;
  // Invariants mirroring Observe: the reservoir holds exactly the current
  // bucket fill, and the previous bucket's k-sample exists iff a bucket
  // completed and rolled (see seq_swr.cc's matching check).
  const uint64_t in_bucket = count_ == 0 ? 0 : (count_ - 1) % n_ + 1;
  if (!current_.Load(r) || current_.k() != k_ ||
      current_.count() != in_bucket || !r->GetU64(&prev_size) ||
      prev_size != (count_ > n_ ? k_ : 0)) {
    return false;
  }
  prev_sample_.clear();
  for (uint64_t i = 0; i < prev_size; ++i) {
    Item item;
    if (!LoadItem(r, &item)) return false;
    prev_sample_.push_back(item);
  }
  return true;
}

uint64_t SequenceSworSampler::MemoryWords() const {
  // Stored items of both bucket samples + counters (arrivals, reservoir
  // counter, window size, k).
  return current_.MemoryWords() + prev_sample_.size() * kWordsPerItem + 4;
}

}  // namespace swsample
