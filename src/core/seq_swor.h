// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Sampling WITHOUT replacement from sequence-based windows -- paper Section
// 2.2, Theorem 2.2: a k-sample without replacement in O(k) words,
// deterministic.
//
// Same equivalent-width partition as Section 2.1, but each bucket carries a
// k-item reservoir (without replacement). With U the active bucket, V the
// partial one and i = |X_U  intersect  U_expired| the number of expired
// members of U's sample, the combined sample is
//
//     Z = (X_U  intersect  U_active)  union  X_V^i
//
// where X_V^i is a uniform i-subset of V's reservoir. The paper's counting
// argument (Section 2.2) shows P(Z = Q) = 1/C(n, k) for every k-subset Q of
// the window.

#ifndef SWSAMPLE_CORE_SEQ_SWOR_H_
#define SWSAMPLE_CORE_SEQ_SWOR_H_

#include <memory>
#include <vector>

#include "core/api.h"
#include "reservoir/reservoir.h"
#include "util/status.h"

namespace swsample {

/// k-sample without replacement over a fixed-size window of n items.
class SequenceSworSampler final : public WindowSampler {
 public:
  /// Creates a sampler. Requires 1 <= k <= n (a without-replacement
  /// k-sample needs k distinct active elements once the window fills).
  static Result<std::unique_ptr<SequenceSworSampler>> Create(uint64_t n,
                                                             uint64_t k,
                                                             uint64_t seed);

  void Observe(const Item& item) override;
  /// Batched fast path: splits the run at bucket boundaries and feeds each
  /// segment through the k-reservoir's Algorithm X skip (one RNG draw per
  /// acceptance instead of per item). Distributionally identical to
  /// item-by-item Observe.
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp) override {}
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + current_.RetainedBytes() +
           prev_sample_.capacity() * sizeof(Item);
  }
  uint64_t k() const override { return k_; }
  const char* name() const override { return "bop-seq-swor"; }
  bool mergeable() const override { return true; }
  /// Occupancy min(count, n) plus one Sample() draw (a uniform
  /// min(k, occupancy)-subset of the window, Thm 2.2).
  Result<SamplerSnapshot> Snapshot() override;

  /// Window size n.
  uint64_t n() const { return n_; }

  /// Total items observed.
  uint64_t count() const { return count_; }

  /// Interface-level persistence (counters, RNG, reservoir, prev sample);
  /// restore through the checkpoint envelope (core/checkpoint.h).
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  SequenceSworSampler(uint64_t n, uint64_t k, uint64_t seed);

  uint64_t n_;
  uint64_t k_;
  uint64_t count_ = 0;
  Rng rng_;
  KReservoir current_;                // k-reservoir of the newest bucket
  std::vector<Item> prev_sample_;    // final k-sample of the previous bucket
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_SEQ_SWOR_H_
