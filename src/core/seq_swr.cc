// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/seq_swr.h"

#include <algorithm>

#include "stream/item_serial.h"
#include "util/macros.h"
#include "util/serial.h"

namespace swsample {

Result<std::unique_ptr<SequenceSwrSampler>> SequenceSwrSampler::Create(
    uint64_t n, uint64_t k, uint64_t seed) {
  if (n < 1) {
    return Status::InvalidArgument("SequenceSwrSampler: n must be >= 1");
  }
  if (k < 1) {
    return Status::InvalidArgument("SequenceSwrSampler: k must be >= 1");
  }
  return std::unique_ptr<SequenceSwrSampler>(
      new SequenceSwrSampler(n, k, seed));
}

SequenceSwrSampler::SequenceSwrSampler(uint64_t n, uint64_t k, uint64_t seed)
    : n_(n), rng_(seed), units_(k) {}

void SequenceSwrSampler::Observe(const Item& item) {
  SWS_DCHECK(item.index == count_);
  ++count_;
  for (Unit& unit : units_) {
    if (unit.current.count() == n_) {
      // The newest bucket just completed on the previous arrival; its final
      // reservoir sample becomes the "active bucket" sample X_U.
      unit.prev_sample = unit.current.sample();
      unit.current.Reset();
    }
    unit.current.Observe(item, rng_);
  }
}

void SequenceSwrSampler::ObserveBatch(std::span<const Item> items) {
  if (items.empty()) return;
  SWS_DCHECK(items.front().index == count_);
  size_t pos = 0;
  while (pos < items.size()) {
    // Items already in the partial bucket; a full bucket (in_bucket == n_)
    // rolls over before the next arrival, exactly as in Observe.
    uint64_t in_bucket = count_ == 0 ? 0 : (count_ - 1) % n_ + 1;
    if (in_bucket == n_) {
      for (Unit& unit : units_) {
        unit.prev_sample = unit.current.sample();
        unit.current.Reset();
      }
      in_bucket = 0;
    }
    const size_t take =
        std::min<size_t>(items.size() - pos, n_ - in_bucket);
    for (Unit& unit : units_) {
      unit.current.ObserveRange(items.data() + pos, take, rng_);
    }
    count_ += take;
    pos += take;
  }
}

std::optional<Item> SequenceSwrSampler::SampleUnit(const Unit& unit) const {
  if (count_ == 0) return std::nullopt;
  // Window is exactly the newest bucket (it just completed), or the stream
  // is still shorter than one window: the bucket reservoir is the answer.
  if (unit.current.count() == n_ || count_ < n_) return unit.current.sample();
  // Window straddles the previous (complete) bucket U and the partial
  // bucket V. X_U expired <=> its index precedes the window start.
  SWS_DCHECK(unit.prev_sample.has_value());
  const uint64_t window_start = count_ - n_;
  if (unit.prev_sample->index >= window_start) return unit.prev_sample;
  return unit.current.sample();
}

std::vector<Item> SequenceSwrSampler::Sample() {
  std::vector<Item> out;
  out.reserve(units_.size());
  for (const Unit& unit : units_) {
    if (auto s = SampleUnit(unit)) out.push_back(*s);
  }
  return out;
}

Result<SamplerSnapshot> SequenceSwrSampler::Snapshot() {
  SamplerSnapshot snapshot;
  snapshot.active = std::min(count_, n_);
  snapshot.k = units_.size();
  snapshot.without_replacement = false;
  snapshot.sample = Sample();
  return snapshot;
}

void SequenceSwrSampler::SaveState(BinaryWriter* w) const {
  w->PutU64(count_);
  SaveRngState(rng_, w);
  for (const Unit& unit : units_) {
    unit.current.Save(w);
    w->PutBool(unit.prev_sample.has_value());
    if (unit.prev_sample) SaveItem(*unit.prev_sample, w);
  }
}

bool SequenceSwrSampler::LoadState(BinaryReader* r) {
  if (!r->GetU64(&count_) || !LoadRngState(r, &rng_)) return false;
  // Shared-counter invariants (see Observe): the newest bucket holds
  // exactly the arrivals past the last bucket boundary, and a previous
  // bucket sample exists iff at least one bucket completed and rolled.
  const uint64_t in_bucket = count_ == 0 ? 0 : (count_ - 1) % n_ + 1;
  for (Unit& unit : units_) {
    bool has_prev = false;
    if (!unit.current.Load(r) || unit.current.count() != in_bucket ||
        !r->GetBool(&has_prev) || has_prev != (count_ > n_)) {
      return false;
    }
    unit.prev_sample.reset();
    if (has_prev) {
      Item item;
      if (!LoadItem(r, &item)) return false;
      unit.prev_sample = item;
    }
  }
  return true;
}

uint64_t SequenceSwrSampler::MemoryWords() const {
  // Per unit: the partial bucket's reservoir item + the previous bucket's
  // final sample; plus the shared arrival counter and window size.
  uint64_t words = 2;
  for (const Unit& unit : units_) {
    words += unit.current.MemoryWords() + 1;  // +1: reservoir counter
    if (unit.prev_sample) words += kWordsPerItem;
  }
  return words;
}

}  // namespace swsample
