// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Sampling WITH replacement from sequence-based (fixed-size) windows --
// paper Section 2.1, Theorem 2.1: k samples in O(k) words, deterministic.
//
// Equivalent-width partition: the stream is split into consecutive buckets
// of exactly n items, B(in, (i+1)n). At any moment at most one bucket is
// "active" (complete, with a non-expired element) and at most one "partial"
// (still filling). Each maintains an independent single-item reservoir.
// The window W (last n items) satisfies  V_a <= W <= U union V_a  with
// |U| = |W| = n, so the Section 1.3.1 rule applies:
//
//     Z = X_U  if X_U has not expired, else  Z = X_V.
//
// For an active p in U: P(Z=p) = 1/n directly. For p among the s arrived
// items of V: P(Z=p) = P(X_U expired) * P(X_V=p) = (s/n)(1/s) = 1/n.

#ifndef SWSAMPLE_CORE_SEQ_SWR_H_
#define SWSAMPLE_CORE_SEQ_SWR_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/api.h"
#include "reservoir/reservoir.h"
#include "util/status.h"

namespace swsample {

/// k-sample with replacement over a fixed-size window of n items.
class SequenceSwrSampler final : public WindowSampler {
 public:
  /// Creates a sampler for window size `n` >= 1 with `k` >= 1 independent
  /// samples, seeded from `seed`.
  static Result<std::unique_ptr<SequenceSwrSampler>> Create(uint64_t n,
                                                            uint64_t k,
                                                            uint64_t seed);

  void Observe(const Item& item) override;
  /// Batched fast path: splits the run at bucket boundaries and feeds each
  /// segment through the reservoirs' skip-ahead (one RNG draw per
  /// replacement instead of per item). Distributionally identical to
  /// item-by-item Observe.
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp) override {}  // sequence windows ignore time
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + units_.capacity() * sizeof(Unit);
  }
  uint64_t k() const override { return units_.size(); }
  const char* name() const override { return "bop-seq-swr"; }
  bool mergeable() const override { return true; }
  /// Occupancy min(count, n) plus one Sample() draw; the k units are
  /// independent (Thm 2.1), so merged slots stay independent.
  Result<SamplerSnapshot> Snapshot() override;

  /// Window size n.
  uint64_t n() const { return n_; }

  /// Total items observed.
  uint64_t count() const { return count_; }

  /// Interface-level persistence (counters, RNG, per-unit reservoirs);
  /// restore through the checkpoint envelope (core/checkpoint.h).
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  /// One independent single-sample pipeline (Theorem 2.1 is "repeat the
  /// single-sample procedure k times independently").
  struct Unit {
    SingleReservoir current;           // reservoir of the newest bucket
    std::optional<Item> prev_sample;   // final sample of the previous bucket
  };

  SequenceSwrSampler(uint64_t n, uint64_t k, uint64_t seed);

  /// Single-sample combination rule for one unit; nullopt iff stream empty.
  std::optional<Item> SampleUnit(const Unit& unit) const;

  uint64_t n_;
  uint64_t count_ = 0;
  Rng rng_;
  std::vector<Unit> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_SEQ_SWR_H_
