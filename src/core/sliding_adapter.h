// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Theorem 5.1 -- the black-box translation: "For a sampling-based algorithm
// Lambda that solves problem P, there exists an algorithm Lambda' that
// solves P on sliding windows", obtained by swapping Lambda's sampling
// substrate for one of our window samplers. This adapter is the literal
// code form of that statement: it owns a WindowSampler and re-runs a
// sample-consuming estimator on the current window sample on demand. The
// richer estimators in src/apps (frequency moments, entropy, triangles)
// specialize the same idea with payload-carrying samplers.

#ifndef SWSAMPLE_CORE_SLIDING_ADAPTER_H_
#define SWSAMPLE_CORE_SLIDING_ADAPTER_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/api.h"
#include "stream/item.h"
#include "util/macros.h"

namespace swsample {

/// Adapts a sample-consuming computation to sliding windows.
///
/// `Estimator` is any callable `R(const std::vector<Item>&)`. Example:
///
///   SlidingAdapter mean_adapter(std::move(sampler),
///       [](const std::vector<Item>& s) {
///         double acc = 0; for (auto& it : s) acc += double(it.value);
///         return s.empty() ? 0.0 : acc / double(s.size());
///       });
///   for (const Item& it : stream) mean_adapter.Observe(it);
///   double windowed_mean = mean_adapter.Estimate();
template <typename Estimator>
class SlidingAdapter {
 public:
  SlidingAdapter(std::unique_ptr<WindowSampler> sampler, Estimator estimator)
      : sampler_(std::move(sampler)), estimator_(std::move(estimator)) {
    SWS_CHECK(sampler_ != nullptr);
  }

  /// Feeds one arrival to the underlying sampler.
  void Observe(const Item& item) { sampler_->Observe(item); }

  /// Advances the clock (timestamp windows).
  void AdvanceTime(Timestamp now) { sampler_->AdvanceTime(now); }

  /// Runs the estimator on a fresh window sample.
  auto Estimate() { return estimator_(sampler_->Sample()); }

  /// Underlying sampler (for memory accounting etc.).
  WindowSampler& sampler() { return *sampler_; }

 private:
  std::unique_ptr<WindowSampler> sampler_;
  Estimator estimator_;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_SLIDING_ADAPTER_H_
