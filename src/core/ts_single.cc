// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/ts_single.h"

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

Result<TsSingleSampler> TsSingleSampler::Create(Timestamp t0, uint64_t seed) {
  if (t0 < 1) {
    return Status::InvalidArgument("TsSingleSampler: t0 must be >= 1");
  }
  return TsSingleSampler(t0, seed);
}

void TsSingleSampler::AdvanceTime(Timestamp now) {
  SWS_CHECK(now >= now_);
  now_ = now;
  Restructure();
}

void TsSingleSampler::Restructure() {
  if (zeta_.empty()) {
    SWS_DCHECK(!straddler_);
    return;
  }
  // The newest represented element sits in the last (single-element) bucket
  // structure; if even it expired, everything did (Lemma 3.5 cases 2b/3b).
  const Timestamp newest_ts = zeta_.bucket(zeta_.size() - 1).first_ts;
  if (Expired(newest_ts)) {
    zeta_.Clear();
    straddler_.reset();
    return;
  }
  if (straddler_) {
    // Case 3a: p_z (head of zeta) still active -> state unchanged.
    if (!Expired(zeta_.bucket(0).first_ts)) return;
    // Case 3c: the straddler fell wholly behind; a new straddler lies
    // inside zeta. Discard the old one and fall through to the scan.
    straddler_.reset();
  } else {
    // Case 2a: the oldest represented element is still active -> Full.
    if (!Expired(zeta_.bucket(0).first_ts)) return;
  }
  // Case 2c/3c scan: find the unique bucket whose head expired while its
  // successor's head is active. The last bucket's head is the newest
  // element (active here), so the scan always terminates before it.
  uint64_t straddle_idx = 0;
  for (uint64_t i = 0; i + 1 < zeta_.size(); ++i) {
    if (Expired(zeta_.bucket(i).first_ts) &&
        !Expired(zeta_.bucket(i + 1).first_ts)) {
      straddle_idx = i;
      break;
    }
  }
  zeta_.DropFront(straddle_idx);
  straddler_ = zeta_.PopFront();
  // Lemma 3.5 case-2 invariant: z - y <= N + 1 - z.
  SWS_DCHECK(straddler_->width() <= zeta_.covered_width());
}

void TsSingleSampler::Insert(const Item& item) {
  SWS_DCHECK(item.timestamp <= now_);
  if (zeta_.empty()) {
    // Lemma 4.1: a delayed element may arrive pre-expired; representing it
    // would poison the fresh decomposition, so skip it.
    if (Expired(item.timestamp)) return;
    zeta_.InitFromItem(item);
    return;
  }
  zeta_.Incr(item, rng_);
}

void TsSingleSampler::InsertWithCoins(const Item& item, CoinSource& coins) {
  SWS_DCHECK(item.timestamp <= now_);
  if (zeta_.empty()) {
    if (Expired(item.timestamp)) return;
    zeta_.InitFromItem(item);
    return;
  }
  zeta_.Incr(item, coins);
}

void TsSingleSampler::Observe(const Item& item) {
  AdvanceTime(item.timestamp);
  Insert(item);
}

void TsSingleSampler::ObserveBatch(std::span<const Item> items) {
  CoinSource coins(rng_);
  for (const Item& item : items) {
    AdvanceTime(item.timestamp);
    InsertWithCoins(item, coins);
  }
}

bool TsSingleSampler::has_active() {
  Restructure();
  return !zeta_.empty();
}

std::optional<Item> TsSingleSampler::SampleOne() {
  Restructure();
  if (zeta_.empty()) return std::nullopt;
  if (!straddler_) {
    // Theorem 3.9 case 1: all represented elements are active; combine the
    // bucket samples with width-proportional probabilities.
    return zeta_.SampleCovered(rng_);
  }
  // Theorem 3.9 case 2 == Lemma 3.8: B1 = straddler, B2 = zeta coverage.
  const uint64_t beta = zeta_.covered_width();
  const ImplicitEventDraw draw =
      DrawImplicitEvent(*straddler_, beta, now_, t0_, rng_);
  if (draw.x && !Expired(straddler_->r.timestamp)) return straddler_->r;
  return zeta_.SampleCovered(rng_);
}

uint64_t TsSingleSampler::MemoryWords() const {
  // Decomposition + optional straddler + clock, t0 and rng bookkeeping
  // (4 state words for xoshiro, counted to be conservative).
  uint64_t words = zeta_.MemoryWords() + 6;
  if (straddler_) words += BucketStructure::kWords;
  return words;
}

void TsSingleSampler::SaveState(BinaryWriter* w) const {
  w->PutI64(now_);
  SaveRngState(rng_, w);
  w->PutBool(straddler_.has_value());
  if (straddler_) straddler_->Save(w);
  zeta_.Save(w);
}

bool TsSingleSampler::LoadState(BinaryReader* r) {
  straddler_.reset();
  zeta_.Clear();
  bool has_straddler = false;
  if (!r->GetI64(&now_) || now_ < 0 || !LoadRngState(r, &rng_) ||
      !r->GetBool(&has_straddler)) {
    return false;
  }
  if (has_straddler) {
    BucketStructure bs;
    if (!bs.Load(r)) return false;
    straddler_ = bs;
  }
  if (!zeta_.Load(r)) return false;
  // No represented element postdates the clock (Expired() subtracts
  // timestamps from now_, so this also rules out overflow on corrupt
  // blobs; BucketStructure::Load already enforces ts >= first_ts >= 0).
  const auto within_clock = [&](const BucketStructure& bs) {
    return bs.r.timestamp <= now_ && bs.q.timestamp <= now_;
  };
  for (uint64_t i = 0; i < zeta_.size(); ++i) {
    if (!within_clock(zeta_.bucket(i))) return false;
  }
  if (straddler_ && !within_clock(*straddler_)) return false;
  return CheckInvariants();
}

bool TsSingleSampler::CheckInvariants() const {
  if (!zeta_.CheckInvariants()) return false;
  if (straddler_) {
    if (zeta_.empty()) return false;
    if (straddler_->y != zeta_.a()) return false;
    if (straddler_->width() > zeta_.covered_width()) return false;
    if (!Expired(straddler_->first_ts)) return false;
  }
  return true;
}

}  // namespace swsample
