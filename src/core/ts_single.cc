// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/ts_single.h"

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

Result<TsSingleSampler> TsSingleSampler::Create(Timestamp t0, uint64_t seed) {
  if (t0 < 1) {
    return Status::InvalidArgument("TsSingleSampler: t0 must be >= 1");
  }
  return TsSingleSampler(t0, seed);
}

void TsSingleSampler::AdvanceTime(Timestamp now) {
  if (now < now_) return;  // clock regressions are no-ops (see header)
  now_ = now;
  Restructure();
}

void TsSingleSampler::Restructure() {
  if (zeta_.empty()) {
    SWS_DCHECK(!straddler_);
    return;
  }
  const Timestamp cutoff = now_ - t0_;  // expired <=> first_ts <= cutoff
  // Cases 2a/3a: the oldest represented head is still active, so nothing
  // moved across the expiry boundary -> state unchanged. One dense load
  // from the SoA mirror; this is the no-op the batched paths rely on.
  if (zeta_.first_ts(0) > cutoff) return;
  // Cases 2b/3b: the newest element (head of the last, single-element
  // bucket) expired, so everything did.
  if (zeta_.first_ts(zeta_.size() - 1) <= cutoff) {
    zeta_.Clear();
    straddler_.reset();
    return;
  }
  // Cases 2c/3c: head timestamps are non-decreasing, so the contiguous SoA
  // sweep finds the unique bucket whose head expired while its successor's
  // head is active; it becomes the (new) straddler, replacing any old one
  // that fell wholly behind. 1 <= expired < size here.
  const uint64_t expired = zeta_.CountExpiredPrefix(cutoff);
  zeta_.DropFront(expired - 1);
  straddler_ = zeta_.PopFront();
  // Lemma 3.5 case-2 invariant: z - y <= N + 1 - z.
  SWS_DCHECK(straddler_->width() <= zeta_.covered_width());
}

void TsSingleSampler::Insert(const Item& item) {
  SWS_DCHECK(item.timestamp <= now_);
  if (zeta_.empty()) {
    // Lemma 4.1: a delayed element may arrive pre-expired; representing it
    // would poison the fresh decomposition, so skip it.
    if (Expired(item.timestamp)) return;
    zeta_.InitFromItem(item);
    return;
  }
  zeta_.Incr(item, rng_);
}

void TsSingleSampler::InsertWithCoins(const Item& item, CoinSource& coins) {
  SWS_DCHECK(item.timestamp <= now_);
  if (zeta_.empty()) {
    if (Expired(item.timestamp)) return;
    zeta_.InitFromItem(item);
    return;
  }
  zeta_.Incr(item, coins);
}

void TsSingleSampler::Observe(const Item& item) {
  if (item.timestamp < now_) {
    // Out-of-order arrival: clamp to the clock (see header). The clamped
    // copy satisfies Insert's timestamp <= now_ precondition and keeps the
    // decomposition's head timestamps non-decreasing.
    Insert(Item{item.value, item.index, now_});
    return;
  }
  AdvanceTime(item.timestamp);
  Insert(item);
}

void TsSingleSampler::ObserveBatch(std::span<const Item> items) {
  if (items.empty()) return;
  CoinSource coins(rng_);
  if (IsTimestampOrdered(items, now_)) {
    ObserveBatchWithCoins(items, items.back().timestamp, coins);
    return;
  }
  // Slow path: normalize the disordered batch to its running-maximum clamp
  // (identical to clamped per-item Observe) and reuse the monotone batch
  // machinery. The allocation only happens for genuinely skewed input.
  std::vector<Item> clamped;
  ClampTimestamps(items, now_, &clamped);
  ObserveBatchWithCoins(clamped, clamped.back().timestamp, coins);
}

void TsSingleSampler::ObserveBatchWithCoins(std::span<const Item> items,
                                            Timestamp last_ts,
                                            CoinSource& coins) {
  ObserveDelayedBatchWithCoins(items, /*delay=*/0, last_ts, coins);
}

void TsSingleSampler::ObserveDelayedBatchWithCoins(std::span<const Item> items,
                                                   uint64_t delay,
                                                   Timestamp last_ts,
                                                   CoinSource& coins) {
  // Below this stretch length ExtendRun's O(log n) rebuild costs more than
  // running the per-item Incrs it replaces.
  constexpr size_t kRunCutover = 16;
  const size_t n = items.size();
  size_t m = delay;
  while (m < n) {
    if (!zeta_.empty()) {
      // Expiry horizon: while the arriving clock timestamp keeps the
      // current head active (ts - head < t0), the per-item Restructure
      // would be the case-2a/3a no-op, so the whole stretch can append
      // without touching the clock. `head` is loop-invariant: Incr's
      // merges keep the front bucket's head timestamp, and only
      // Restructure removes buckets from the front.
      const Timestamp head = zeta_.first_ts(0);
      const size_t start = m;
      if (last_ts - head < t0_) {
        m = n;  // even the batch's last timestamp leaves the head active
      } else {
        while (m < n && items[m].timestamp - head < t0_) ++m;
      }
      if (m > start) {
        const size_t len = m - start;
        if (len >= kRunCutover) {
          zeta_.ExtendRun(items.subspan(start - delay, len), rng_);
        } else {
          for (size_t p = start; p < m; ++p) {
            zeta_.Incr(items[p - delay], coins);
          }
        }
        now_ = items[m - 1].timestamp;
        continue;
      }
    }
    // Expiry boundary (or empty structure): advance the clock once for the
    // whole run of identical clock timestamps, then insert the run.
    // Mid-run Restructures would be no-ops: after the first insert at this
    // clock the structure is either empty (pre-expired delayed element,
    // skipped) or headed by an active element.
    const Timestamp ts = items[m].timestamp;
    AdvanceTime(ts);
    do {
      InsertWithCoins(items[m - delay], coins);
      ++m;
    } while (m < n && items[m].timestamp == ts);
  }
}

bool TsSingleSampler::has_active() {
  Restructure();
  return !zeta_.empty();
}

std::optional<Item> TsSingleSampler::SampleOne() {
  Restructure();
  if (zeta_.empty()) return std::nullopt;
  if (!straddler_) {
    // Theorem 3.9 case 1: all represented elements are active; combine the
    // bucket samples with width-proportional probabilities.
    return zeta_.SampleCovered(rng_);
  }
  // Theorem 3.9 case 2 == Lemma 3.8: B1 = straddler, B2 = zeta coverage.
  const uint64_t beta = zeta_.covered_width();
  const ImplicitEventDraw draw =
      DrawImplicitEvent(*straddler_, beta, now_, t0_, rng_);
  if (draw.x && !Expired(straddler_->r.timestamp)) return straddler_->r;
  return zeta_.SampleCovered(rng_);
}

uint64_t TsSingleSampler::MemoryWords() const {
  // Decomposition + optional straddler + clock, t0 and rng bookkeeping
  // (4 state words for xoshiro, counted to be conservative).
  uint64_t words = zeta_.MemoryWords() + 6;
  if (straddler_) words += BucketStructure::kWords;
  return words;
}

void TsSingleSampler::SaveState(BinaryWriter* w) const {
  w->PutI64(now_);
  SaveRngState(rng_, w);
  w->PutBool(straddler_.has_value());
  if (straddler_) straddler_->Save(w);
  zeta_.Save(w);
}

bool TsSingleSampler::LoadState(BinaryReader* r) {
  straddler_.reset();
  zeta_.Clear();
  bool has_straddler = false;
  if (!r->GetI64(&now_) || now_ < 0 || !LoadRngState(r, &rng_) ||
      !r->GetBool(&has_straddler)) {
    return false;
  }
  if (has_straddler) {
    BucketStructure bs;
    if (!bs.Load(r)) return false;
    straddler_ = bs;
  }
  if (!zeta_.Load(r)) return false;
  // No represented element postdates the clock (Expired() subtracts
  // timestamps from now_, so this also rules out overflow on corrupt
  // blobs; BucketStructure::Load already enforces ts >= first_ts >= 0).
  const auto within_clock = [&](const BucketStructure& bs) {
    return bs.r.timestamp <= now_ && bs.q.timestamp <= now_;
  };
  for (uint64_t i = 0; i < zeta_.size(); ++i) {
    if (!within_clock(zeta_.bucket(i))) return false;
  }
  if (straddler_ && !within_clock(*straddler_)) return false;
  return CheckInvariants();
}

bool TsSingleSampler::CheckInvariants() const {
  if (!zeta_.CheckInvariants()) return false;
  if (straddler_) {
    if (zeta_.empty()) return false;
    if (straddler_->y != zeta_.a()) return false;
    if (straddler_->width() > zeta_.covered_width()) return false;
    if (!Expired(straddler_->first_ts)) return false;
  }
  return true;
}

}  // namespace swsample
