// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Single-sample maintenance for TIMESTAMP-BASED windows -- paper Section 3
// (Lemma 3.5 maintenance + Theorem 3.9 sampling), Theta(log n) words
// deterministic.
//
// The sampler is always in one of three states:
//   Empty    - no active element is represented;
//   Full     - a covering decomposition zeta(l, N) whose head is the oldest
//              ACTIVE element (Lemma 3.5 case 1);
//   Straddle - one bucket structure BS(y, z) whose head p_y is expired but
//              whose tail may be active, plus zeta(z, N) covering the rest
//              (Lemma 3.5 case 2, with the invariant z - y <= N + 1 - z).
//
// Queries in the Full state combine bucket R-samples with width-
// proportional probabilities; in the Straddle state they use the implicit-
// event coin of Section 3.3 to decide between the straddler's R-sample and
// the suffix, which is exactly Lemma 3.8.
//
// The class deliberately separates AdvanceTime (clock) from Insert (data):
// the Section 4 black-box reduction feeds each structure *delayed* elements
// whose timestamps are older than the current clock, including elements
// that may already be expired on arrival (Lemma 4.1's "skip" case).
//
// The class implements the WindowSampler interface directly (registry name
// "bop-ts-single") so it participates in registry construction and
// interface-level persistence like every other sampler, while remaining a
// movable concrete value type the Section 4 reduction and the payload
// tracker (apps/ts_payload.h) embed by value.

#ifndef SWSAMPLE_CORE_TS_SINGLE_H_
#define SWSAMPLE_CORE_TS_SINGLE_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/api.h"
#include "core/covering_decomposition.h"
#include "core/implicit_events.h"
#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Maintains one uniform sample of the active elements of a timestamp-based
/// window with parameter t0 (active <=> now - T(p) < t0).
class TsSingleSampler final : public WindowSampler {
 public:
  /// Creates a sampler; requires t0 >= 1.
  static Result<TsSingleSampler> Create(Timestamp t0, uint64_t seed);

  /// Advances the clock and performs expiry maintenance. A `now` earlier
  /// than the current clock is a documented no-op: wall clocks regress
  /// (NTP steps, cross-shard skew), and the out-of-order contract (see
  /// StreamSink) is that time never moves backwards.
  void AdvanceTime(Timestamp now) override;

  /// Inserts an element with timestamp <= current clock. Consecutive calls
  /// must carry consecutive indices unless the structure emptied in
  /// between. Already-expired elements are skipped (Lemma 4.1).
  void Insert(const Item& item);

  /// Insert with the covering decomposition's merge coins served from a
  /// batch-scoped CoinSource (one raw draw per 64 coins) instead of one
  /// generator draw per coin. Identically distributed, not bit-identical.
  void InsertWithCoins(const Item& item, CoinSource& coins);

  /// Convenience: AdvanceTime(item.timestamp) then Insert(item). An item
  /// whose timestamp regresses below the current clock is clamped to the
  /// clock (out-of-order contract; see StreamSink) — the clock never moves
  /// backwards, so inserted timestamps stay non-decreasing and the
  /// covering decomposition's head-timestamp invariant is preserved.
  void Observe(const Item& item) override;

  /// Observe with merge coins from a caller-scoped CoinSource.
  void ObserveWithCoins(const Item& item, CoinSource& coins) {
    if (item.timestamp < now_) {
      InsertWithCoins(Item{item.value, item.index, now_}, coins);
      return;
    }
    AdvanceTime(item.timestamp);
    InsertWithCoins(item, coins);
  }

  /// Batched ingestion: one CoinSource serves every merge coin of the
  /// batch. Checkpoints are only taken at batch boundaries, where the
  /// coin cache is dead, so resume stays bit-identical (see CoinSource).
  /// A batch with timestamp regressions (against the clock or internally)
  /// is normalized to its running-maximum clamp first — equivalent to
  /// clamped per-item Observe — and then takes the monotone fast path;
  /// ordered batches are untouched and bit-identical to before.
  void ObserveBatch(std::span<const Item> items) override;

  /// Batch body with a caller-scoped coin cache and the batch's last
  /// timestamp precomputed (TsSwrSampler shares both across its k units).
  /// Equivalent to ObserveWithCoins per item, but expiry maintenance runs
  /// only at run boundaries: stretches whose timestamps keep the current
  /// oldest head active append with zero clock work (the per-item
  /// Restructure would be a no-op), and each run of identical timestamps
  /// past the horizon pays one AdvanceTime. Items must arrive in
  /// non-decreasing timestamp order with last_ts == items.back().timestamp.
  void ObserveBatchWithCoins(std::span<const Item> items, Timestamp last_ts,
                             CoinSource& coins);

  /// Section 4 delayed-feeding variant (TsSworSampler): step m advances
  /// the clock to items[m].timestamp but inserts items[m - delay], for m in
  /// [delay, items.size()). Same batch-scoped expiry structure as
  /// ObserveBatchWithCoins, which is the delay = 0 case.
  void ObserveDelayedBatchWithCoins(std::span<const Item> items,
                                    uint64_t delay, Timestamp last_ts,
                                    CoinSource& coins);

  /// Draws a uniform sample of the active elements; nullopt iff none are
  /// represented. Fresh randomness per call.
  std::optional<Item> SampleOne();

  /// WindowSampler surface over SampleOne(): zero or one item.
  std::vector<Item> Sample() override {
    std::vector<Item> out;
    if (auto s = SampleOne()) out.push_back(*s);
    return out;
  }

  uint64_t k() const override { return 1; }
  const char* name() const override { return "bop-ts-single"; }

  /// True iff at least one active element is represented.
  bool has_active();

  /// Current clock.
  Timestamp now() const { return now_; }

  /// Window parameter t0.
  Timestamp t0() const { return t0_; }

  /// Live memory words (paper model).
  uint64_t MemoryWords() const override;

  /// Real retained capacity: object footprint plus the covering
  /// decomposition's arena reservation.
  uint64_t RetainedBytes() const override {
    return sizeof(*this) + zeta_.RetainedBytes();
  }

  /// Number of bucket structures held (straddler included); the Theorem
  /// 3.9 claim is that this is O(log n).
  uint64_t StructureCount() const {
    return zeta_.size() + (straddler_ ? 1 : 0);
  }

  /// Structural invariants incl. Lemma 3.5's case-2 width inequality.
  bool CheckInvariants() const;

  /// Interface-level persistence: clock, RNG and both structures. t0 is
  /// configuration and stays with the envelope; LoadState restores into a
  /// sampler constructed with the same t0 and validates CheckInvariants().
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

  /// Read access to the internal structures. Used by the payload tracker
  /// (apps/ts_payload.h) that attaches estimator payloads to the O(log n)
  /// candidate samples, and by white-box tests.
  const CoveringDecomposition& zeta() const { return zeta_; }
  const std::optional<BucketStructure>& straddler() const {
    return straddler_;
  }

  /// Mutable generator access for batch-scoped coin caches (the payload
  /// tracker builds a CoinSource over it for ObserveWithCoins runs).
  Rng& rng() { return rng_; }

 private:
  TsSingleSampler(Timestamp t0, uint64_t seed) : t0_(t0), rng_(seed) {}

  bool Expired(Timestamp ts) const { return now_ - ts >= t0_; }

  /// Lemma 3.5 case analysis at the current clock; idempotent.
  void Restructure();

  Timestamp t0_;
  Rng rng_;
  Timestamp now_ = 0;
  std::optional<BucketStructure> straddler_;
  CoveringDecomposition zeta_;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_TS_SINGLE_H_
