// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/ts_swor.h"

#include <algorithm>

#include "stream/item_serial.h"
#include "util/macros.h"
#include "util/serial.h"

namespace swsample {

Result<std::unique_ptr<TsSworSampler>> TsSworSampler::Create(Timestamp t0,
                                                             uint64_t k,
                                                             uint64_t seed) {
  if (t0 < 1) {
    return Status::InvalidArgument("TsSworSampler: t0 must be >= 1");
  }
  if (k < 1) {
    return Status::InvalidArgument("TsSworSampler: k must be >= 1");
  }
  return std::unique_ptr<TsSworSampler>(new TsSworSampler(t0, k, seed));
}

TsSworSampler::TsSworSampler(Timestamp t0, uint64_t k, uint64_t seed)
    : t0_(t0), k_(k) {
  Rng seeder(seed);
  structures_.reserve(k);
  for (uint64_t i = 0; i < k; ++i) {
    structures_.push_back(
        std::move(TsSingleSampler::Create(t0, seeder.NextU64())).ValueOrDie());
  }
}

void TsSworSampler::AdvanceTime(Timestamp now) {
  if (now < now_) return;  // clock regressions are no-ops (see StreamSink)
  now_ = now;
  for (auto& s : structures_) s.AdvanceTime(now);
}

void TsSworSampler::ObserveOne(const Item& item,
                               std::span<CoinSource> coins) {
  if (item.timestamp < now_) {
    // Out-of-order arrival: clamp to the shared clock so the auxiliary
    // array's timestamps stay non-decreasing (Sample() and LoadState rely
    // on that) and each structure's Insert precondition holds.
    ObserveOne(Item{item.value, item.index, now_}, coins);
    return;
  }
  AdvanceTime(item.timestamp);
  // The new arrival enters the auxiliary array; each structure R_i then
  // receives the element that is now exactly i arrivals old. Element
  // (m - i) is recent_[size-1-i] after the push. Pre-expired delayed
  // elements are skipped inside Insert (Lemma 4.1).
  recent_.push_back(item);
  if (recent_.size() > k_) recent_.pop_front();
  const uint64_t have = recent_.size();
  for (uint64_t i = 0; i < k_; ++i) {
    if (item.index < i) break;  // fewer than i+1 arrivals so far
    if (i < have) {
      if (coins.empty()) {
        structures_[i].Insert(recent_[have - 1 - i]);
      } else {
        structures_[i].InsertWithCoins(recent_[have - 1 - i], coins[i]);
      }
    }
  }
}

void TsSworSampler::Observe(const Item& item) {
  ObserveOne(item, std::span<CoinSource>());
}

void TsSworSampler::ObserveBatch(std::span<const Item> items) {
  if (items.empty()) return;
  // Out-of-order contract: normalize a disordered batch to its running-
  // maximum clamp once (equivalent to clamped per-item Observe), then run
  // the unit-major fast path unchanged. Ordered batches pay one pre-scan.
  std::vector<Item> clamped;
  if (!IsTimestampOrdered(items, now_)) {
    ClampTimestamps(items, now_, &clamped);
    items = clamped;
  }
  const size_t n = items.size();
  const Timestamp last_ts = items.back().timestamp;
  SWS_CHECK(last_ts >= now_);
  const StreamIndex first_index = items[0].index;

  // Snapshot the pre-batch auxiliary array: unit i's first (up to i)
  // deliveries are elements that arrived before this batch.
  batch_recent_.clear();
  const uint64_t h = recent_.size();
  for (uint64_t j = 0; j < h; ++j) batch_recent_.push_back(recent_[j]);

  // Unit-major delayed feeding, equivalent to the item-wise loop because
  // the units are independent and skipping a unit's intermediate
  // AdvanceTime calls is state-identical (Restructure at the later clock
  // computes the same prefix drop and straddler, and consumes no
  // randomness). At step m, unit i receives the element i arrivals older
  // than items[m]: items[m - i] once m >= i, else the (i - m)-th newest
  // pre-batch arrival; nothing before the stream's (i+1)-th arrival.
  for (uint64_t i = 0; i < k_; ++i) {
    TsSingleSampler& s = structures_[i];
    CoinSource coins(s.rng());
    const uint64_t skip = first_index >= i ? 0 : i - first_index;
    const uint64_t prefix_end = std::min<uint64_t>(i, n);
    for (uint64_t m = skip; m < prefix_end; ++m) {
      s.AdvanceTime(items[m].timestamp);
      s.InsertWithCoins(batch_recent_[h - (i - m)], coins);
    }
    if (n > i) {
      s.ObserveDelayedBatchWithCoins(items, i, last_ts, coins);
    } else {
      s.AdvanceTime(last_ts);  // unit saw no (or only prefix) deliveries
    }
  }
  now_ = last_ts;

  // Rebuild the auxiliary array as if every item had been pushed/trimmed.
  if (n >= k_) {
    recent_.clear();
    for (size_t m = n - k_; m < n; ++m) recent_.push_back(items[m]);
  } else {
    if (h + n > k_) recent_.pop_front_n(h + n - k_);
    for (size_t m = 0; m < n; ++m) recent_.push_back(items[m]);
  }
}

std::vector<Item> TsSworSampler::Sample() {
  for (auto& s : structures_) s.AdvanceTime(now_);  // idempotent restructure

  // Small-window case: if D_{k-1} (active excluding the k-1 newest
  // arrivals) is empty, every active element is one of the last k-1
  // arrivals, all of which sit in the auxiliary array: return them exactly.
  if (!structures_[k_ - 1].has_active()) {
    std::vector<Item> all;
    for (uint64_t i = 0; i < recent_.size(); ++i) {
      if (now_ - recent_[i].timestamp < t0_) all.push_back(recent_[i]);
    }
    return all;
  }

  // Lemma 4.3 chain. S starts as a 1-sample of D_{k-1} and absorbs one
  // domain element per step.
  std::vector<Item> s;
  s.reserve(k_);
  {
    auto r = structures_[k_ - 1].SampleOne();
    SWS_CHECK(r.has_value());
    s.push_back(*r);
  }
  for (uint64_t j = 2; j <= k_; ++j) {
    const uint64_t idx = k_ - j;  // structure index feeding this step
    auto r = structures_[idx].SampleOne();
    SWS_CHECK(r.has_value());  // D_idx contains non-empty D_{k-1}
    // Newest element of D_idx: the (idx+1)-th most recent arrival. It is
    // active because D_{idx+1} (older elements) is non-empty and
    // timestamps are monotone.
    SWS_DCHECK(recent_.size() > idx);
    const Item& newest = recent_[recent_.size() - 1 - idx];
    SWS_DCHECK(now_ - newest.timestamp < t0_);
    const bool collision =
        std::any_of(s.begin(), s.end(), [&](const Item& it) {
          return it.index == r->index;
        });
    s.push_back(collision ? newest : *r);
  }
  return s;
}

void TsSworSampler::SaveState(BinaryWriter* w) const {
  w->PutI64(now_);
  for (const auto& s : structures_) s.SaveState(w);
  w->PutU64(recent_.size());
  for (uint64_t i = 0; i < recent_.size(); ++i) SaveItem(recent_[i], w);
}

bool TsSworSampler::LoadState(BinaryReader* r) {
  uint64_t recent_size = 0;
  if (!r->GetI64(&now_) || now_ < 0) return false;
  for (auto& s : structures_) {
    // Observe keeps every structure at the shared clock.
    if (!s.LoadState(r) || s.now() != now_) return false;
  }
  if (!r->GetU64(&recent_size) || recent_size > k_) return false;
  recent_.clear();
  for (uint64_t i = 0; i < recent_size; ++i) {
    Item item;
    // 0 <= ts <= now_ (Sample()'s activity subtraction must not
    // overflow); arrival order with consecutive indices.
    if (!LoadItem(r, &item) || item.timestamp < 0 ||
        item.timestamp > now_ ||
        (!recent_.empty() &&
         (item.index != recent_.back().index + 1 ||
          item.timestamp < recent_.back().timestamp))) {
      return false;
    }
    recent_.push_back(item);
  }
  // Cross-structure invariants the Lemma 4.3 chain relies on: R_i covers
  // D_i = active \ {i newest}, so activity is monotone non-increasing in
  // i, and a non-empty D_{k-1} implies >= k arrivals, i.e. a full
  // auxiliary array. (has_active() restructures, which Sample() would do
  // anyway before first use; it consumes no randomness.)
  for (uint64_t i = 0; i + 1 < k_; ++i) {
    if (structures_[i + 1].has_active() && !structures_[i].has_active()) {
      return false;
    }
  }
  if (structures_[k_ - 1].has_active() && recent_.size() != k_) {
    return false;
  }
  return true;
}

uint64_t TsSworSampler::MemoryWords() const {
  uint64_t words = 2 + recent_.size() * kWordsPerItem;  // t0, clock, aux
  for (const auto& s : structures_) words += s.MemoryWords();
  return words;
}

}  // namespace swsample
