// Copyright (c) swsample authors. Licensed under the MIT license.
//
// k-sample WITHOUT replacement for timestamp-based windows -- paper
// Section 4 (Theorem 4.4): the black-box reduction from sampling without
// replacement to sampling with replacement, O(k log n) words deterministic.
//
// The construction maintains k single-sample structures R_0 ... R_{k-1}
// where R_i receives every element DELAYED by i arrivals (Lemma 4.1), so
// R_i is a uniform sample of "all active elements except the i newest
// arrivals" (domain D_i). A shared auxiliary array of the last k arrivals
// completes the picture. A query stitches a k-sample without replacement
// from the chain of 1-samples via Lemma 4.2:
//
//   S(j)  =  S(j-1) + newest(D_{k-j})   if R_{k-j} lands inside S(j-1)
//   S(j)  =  S(j-1) + R_{k-j}           otherwise
//
// growing a 1-sample of D_{k-1} into a k-sample of D_0 = the window
// (Lemma 4.3). When fewer than k elements are active they all live inside
// the auxiliary array and are returned exactly.

#ifndef SWSAMPLE_CORE_TS_SWOR_H_
#define SWSAMPLE_CORE_TS_SWOR_H_

#include <memory>
#include <vector>

#include "core/api.h"
#include "core/ts_single.h"
#include "util/arena.h"
#include "util/status.h"

namespace swsample {

/// k-sample without replacement over a timestamp window of length t0.
class TsSworSampler final : public WindowSampler {
 public:
  /// Creates a sampler; requires t0 >= 1 and k >= 1.
  static Result<std::unique_ptr<TsSworSampler>> Create(Timestamp t0,
                                                       uint64_t k,
                                                       uint64_t seed);

  void Observe(const Item& item) override;
  /// Batched delayed feeding with one merge-coin cache per structure for
  /// the whole batch (see TsSingleSampler::ObserveBatch).
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp now) override;
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    uint64_t bytes = sizeof(*this) +
                     structures_.capacity() * sizeof(TsSingleSampler) +
                     recent_.ReservedBytes();
    for (const TsSingleSampler& s : structures_) {
      bytes += s.zeta().RetainedBytes();
    }
    return bytes;
  }
  uint64_t k() const override { return k_; }
  const char* name() const override { return "bop-ts-swor"; }

  /// Window parameter.
  Timestamp t0() const { return t0_; }

  /// Interface-level persistence (clock, structures, auxiliary array);
  /// restore through the checkpoint envelope (core/checkpoint.h).
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  TsSworSampler(Timestamp t0, uint64_t k, uint64_t seed);

  Timestamp t0_;
  uint64_t k_;
  Timestamp now_ = 0;
  /// Shared Observe/ObserveBatch body; `coins` is empty on the item-wise
  /// path and one batch-scoped CoinSource per structure on the batch path.
  void ObserveOne(const Item& item, std::span<CoinSource> coins);

  /// R_0 ... R_{k-1}; structures_[i] runs i arrivals behind the stream.
  std::vector<TsSingleSampler> structures_;
  /// Auxiliary array: the last min(k, arrivals) items, oldest first
  /// (arena-backed ring, no per-arrival allocator traffic).
  RingDeque<Item> recent_;
  /// Batch-scoped snapshot of recent_ taken at the top of ObserveBatch;
  /// unit i's first (up to i) delayed deliveries read it. Member so the
  /// allocation is reused across batches; dead between calls.
  std::vector<Item> batch_recent_;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_TS_SWOR_H_
