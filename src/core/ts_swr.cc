// Copyright (c) swsample authors. Licensed under the MIT license.

#include "core/ts_swr.h"

#include <algorithm>

#include "util/macros.h"
#include "util/serial.h"

namespace swsample {

Result<std::unique_ptr<TsSwrSampler>> TsSwrSampler::Create(Timestamp t0,
                                                           uint64_t k,
                                                           uint64_t seed) {
  if (t0 < 1) {
    return Status::InvalidArgument("TsSwrSampler: t0 must be >= 1");
  }
  if (k < 1) {
    return Status::InvalidArgument("TsSwrSampler: k must be >= 1");
  }
  return std::unique_ptr<TsSwrSampler>(new TsSwrSampler(t0, k, seed));
}

TsSwrSampler::TsSwrSampler(Timestamp t0, uint64_t k, uint64_t seed)
    : t0_(t0) {
  Rng seeder(seed);
  units_.reserve(k);
  for (uint64_t i = 0; i < k; ++i) {
    units_.push_back(std::move(TsSingleSampler::Create(t0, seeder.NextU64()))
                         .ValueOrDie());
  }
}

void TsSwrSampler::Observe(const Item& item) {
  for (auto& unit : units_) unit.Observe(item);
}

void TsSwrSampler::ObserveBatch(std::span<const Item> items) {
  if (items.empty()) return;
  // Unit-major order: each unit's structures stay hot in cache for the
  // whole batch instead of being re-touched k times per item. The batch's
  // timestamp summary (last_ts bounds every expiry horizon) is computed
  // once and shared by all k units. Every unit runs at the same clock, so
  // one disorder pre-scan and one running-max normalization (out-of-order
  // contract; see StreamSink) also serve all k units.
  std::vector<Item> clamped;
  if (!IsTimestampOrdered(items, units_.front().now())) {
    ClampTimestamps(items, units_.front().now(), &clamped);
    items = clamped;
  }
  const Timestamp last_ts = items.back().timestamp;
  for (auto& unit : units_) {
    CoinSource coins(unit.rng());
    unit.ObserveBatchWithCoins(items, last_ts, coins);
  }
}

void TsSwrSampler::AdvanceTime(Timestamp now) {
  for (auto& unit : units_) unit.AdvanceTime(now);
}

std::vector<Item> TsSwrSampler::Sample() {
  std::vector<Item> out;
  out.reserve(units_.size());
  for (auto& unit : units_) {
    if (auto s = unit.SampleOne()) out.push_back(*s);
  }
  return out;
}

uint64_t TsSwrSampler::MemoryWords() const {
  uint64_t words = 1;  // t0
  for (const auto& unit : units_) words += unit.MemoryWords();
  return words;
}

void TsSwrSampler::SaveState(BinaryWriter* w) const {
  for (const auto& unit : units_) unit.SaveState(w);
}

bool TsSwrSampler::LoadState(BinaryReader* r) {
  for (auto& unit : units_) {
    if (!unit.LoadState(r)) return false;
  }
  return true;
}

uint64_t TsSwrSampler::MaxStructureCount() const {
  uint64_t m = 0;
  for (const auto& unit : units_) m = std::max(m, unit.StructureCount());
  return m;
}

}  // namespace swsample
