// Copyright (c) swsample authors. Licensed under the MIT license.
//
// k-sample WITH replacement for timestamp-based windows: k independent
// copies of the Section 3 single-sample structure ("To create a k-random
// sample, we repeat the procedure k times, independently"), O(k log n)
// words deterministic, matching the Gemulla-Lehner Omega(k log n) lower
// bound.

#ifndef SWSAMPLE_CORE_TS_SWR_H_
#define SWSAMPLE_CORE_TS_SWR_H_

#include <memory>
#include <vector>

#include "core/api.h"
#include "core/ts_single.h"
#include "util/status.h"

namespace swsample {

/// k-sample with replacement over a timestamp window of length t0.
class TsSwrSampler final : public WindowSampler {
 public:
  /// Creates a sampler; requires t0 >= 1 and k >= 1.
  static Result<std::unique_ptr<TsSwrSampler>> Create(Timestamp t0,
                                                      uint64_t k,
                                                      uint64_t seed);

  void Observe(const Item& item) override;
  /// Each unit sweeps the whole batch with its own batch-scoped merge-coin
  /// cache (see TsSingleSampler::ObserveBatch).
  void ObserveBatch(std::span<const Item> items) override;
  void AdvanceTime(Timestamp now) override;
  std::vector<Item> Sample() override;
  uint64_t MemoryWords() const override;
  uint64_t RetainedBytes() const override {
    uint64_t bytes =
        sizeof(*this) + units_.capacity() * sizeof(TsSingleSampler);
    for (const TsSingleSampler& unit : units_) {
      bytes += unit.zeta().RetainedBytes();
    }
    return bytes;
  }
  uint64_t k() const override { return units_.size(); }
  const char* name() const override { return "bop-ts-swr"; }

  /// Window parameter.
  Timestamp t0() const { return t0_; }

  /// Max bucket structures across units (O(log n) claim, experiment E3).
  uint64_t MaxStructureCount() const;

  /// Interface-level persistence (per-unit clocks, RNGs, structures);
  /// restore through the checkpoint envelope (core/checkpoint.h).
  bool persistable() const override { return true; }
  void SaveState(BinaryWriter* w) const override;
  bool LoadState(BinaryReader* r) override;

 private:
  TsSwrSampler(Timestamp t0, uint64_t k, uint64_t seed);

  Timestamp t0_;
  std::vector<TsSingleSampler> units_;
};

}  // namespace swsample

#endif  // SWSAMPLE_CORE_TS_SWR_H_
