// Copyright (c) swsample authors. Licensed under the MIT license.

#include "reservoir/algorithm_l.h"

#include <cmath>

#include "util/macros.h"

namespace swsample {

SkipReservoir::SkipReservoir(uint64_t k) : k_(k) {
  SWS_CHECK(k >= 1);
  slots_.reserve(k);
}

void SkipReservoir::ScheduleNextAcceptance(Rng& rng) {
  // w is the product of k-th roots of uniforms; the skip is geometric with
  // success probability (1 - w) per element.
  double u = rng.Uniform01();
  if (u <= 0.0) u = 1e-300;
  w_ *= std::exp(std::log(u) / static_cast<double>(k_));
  double u2 = rng.Uniform01();
  if (u2 <= 0.0) u2 = 1e-300;
  double skip = std::floor(std::log(u2) / std::log(1.0 - w_));
  if (!(skip >= 0.0) || skip > 1e18) skip = 1e18;  // degenerate w ~ 1
  // Li: i := i + floor(log(u)/log(1-W)) + 1 -- the next accepted item is
  // `skip` items after the current one.
  next_accept_ = count_ + static_cast<uint64_t>(skip) + 1;
}

void SkipReservoir::Observe(const Item& item, Rng& rng) {
  ++count_;
  if (slots_.size() < k_) {
    slots_.push_back(item);
    if (slots_.size() == k_) ScheduleNextAcceptance(rng);
    return;
  }
  if (count_ == next_accept_) {
    slots_[rng.UniformIndex(k_)] = item;
    ScheduleNextAcceptance(rng);
  }
}

void SkipReservoir::Reset() {
  slots_.clear();
  count_ = 0;
  next_accept_ = 0;
  w_ = 1.0;
}

}  // namespace swsample
