// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Algorithm L (Li, "Reservoir-sampling algorithms of time complexity
// O(n(1+log(N/n)))", TOMS'94; paper reference [53]): a k-item reservoir that
// draws O(k(1 + log(N/k))) random numbers total instead of one per element
// by computing geometric skip lengths. Produces the same distribution as
// Algorithm R; used by the throughput benchmarks (E6) to show the substrate
// cost can be driven below one RNG call per element.

#ifndef SWSAMPLE_RESERVOIR_ALGORITHM_L_H_
#define SWSAMPLE_RESERVOIR_ALGORITHM_L_H_

#include <cstdint>
#include <vector>

#include "stream/item.h"
#include "util/rng.h"

namespace swsample {

/// Skip-based k-item reservoir without replacement. Same sampling
/// distribution as KReservoir; amortized O(1 + k log(N/k)/N) work/element.
class SkipReservoir {
 public:
  /// `k` must be >= 1.
  explicit SkipReservoir(uint64_t k);

  /// Observes one item (cheap no-op while inside a skip run).
  void Observe(const Item& item, Rng& rng);

  /// Items observed so far.
  uint64_t count() const { return count_; }

  /// The held sample: min(k, count) items, uniform subset of observed.
  const std::vector<Item>& items() const { return slots_; }

  /// Forgets everything.
  void Reset();

  /// Memory words held.
  uint64_t MemoryWords() const { return slots_.size() * kWordsPerItem; }

  /// Heap bytes retained beyond the object footprint (slot capacity).
  uint64_t RetainedBytes() const { return slots_.capacity() * sizeof(Item); }

 private:
  void ScheduleNextAcceptance(Rng& rng);

  uint64_t k_;
  uint64_t count_ = 0;
  uint64_t next_accept_ = 0;  // 1-based count at which the next item enters
  double w_ = 1.0;
  std::vector<Item> slots_;
};

}  // namespace swsample

#endif  // SWSAMPLE_RESERVOIR_ALGORITHM_L_H_
