// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Payload-carrying reservoirs for AMS-style estimators (paper Section 5).
//
// The Alon-Matias-Szegedy frequency-moment estimator and the
// Chakrabarti-Cormode-McGregor entropy estimator need, for a uniformly
// sampled position p, the count of occurrences of value(p) AFTER p. A
// reservoir can maintain that online: each slot carries a payload that is
// re-initialized when the slot is replaced and updated by every subsequent
// arrival. On sliding windows this stays correct because every element that
// arrives after an active position is itself active (sequence-based model),
// so the forward count never includes expired elements.

#ifndef SWSAMPLE_RESERVOIR_PAYLOAD_RESERVOIR_H_
#define SWSAMPLE_RESERVOIR_PAYLOAD_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "stream/item.h"
#include "util/macros.h"
#include "util/rng.h"

namespace swsample {

/// Single-slot reservoir whose sample carries a user payload.
///
/// `Payload` must be default-constructible and cheap to copy. Two hooks
/// drive it: `OnSampled(item) -> Payload` when the slot is (re)selected and
/// `OnArrival(payload&, item)` for every arrival observed while the slot
/// holds a sample (including the selecting arrival is NOT reported; the AMS
/// convention counts the sampled occurrence via the +1 in the estimator).
template <typename Payload, typename OnSampledFn, typename OnArrivalFn>
class PayloadReservoir {
 public:
  PayloadReservoir(OnSampledFn on_sampled, OnArrivalFn on_arrival)
      : on_sampled_(std::move(on_sampled)), on_arrival_(std::move(on_arrival)) {}

  /// Observes one item.
  void Observe(const Item& item, Rng& rng) {
    ++count_;
    if (rng.BernoulliRational(1, count_)) {
      item_ = item;
      payload_ = on_sampled_(item);
      has_ = true;
    } else if (has_) {
      on_arrival_(payload_, item);
    }
  }

  bool has_sample() const { return has_; }
  const Item& item() const {
    SWS_DCHECK(has_);
    return item_;
  }
  const Payload& payload() const {
    SWS_DCHECK(has_);
    return payload_;
  }

  uint64_t count() const { return count_; }

  void Reset() {
    has_ = false;
    count_ = 0;
  }

 private:
  OnSampledFn on_sampled_;
  OnArrivalFn on_arrival_;
  Item item_{};
  Payload payload_{};
  bool has_ = false;
  uint64_t count_ = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_RESERVOIR_PAYLOAD_RESERVOIR_H_
