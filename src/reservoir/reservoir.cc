// Copyright (c) swsample authors. Licensed under the MIT license.

#include "reservoir/reservoir.h"

#include <cmath>

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

void SingleReservoir::Observe(const Item& item, Rng& rng) {
  ++count_;
  if (rng.BernoulliRational(1, count_)) sample_ = item;
}

void SingleReservoir::ObserveRange(const Item* items, uint64_t m, Rng& rng) {
  SWS_DCHECK(items != nullptr || m == 0);
  uint64_t i = 0;
  if (count_ == 0 && m > 0) {
    sample_ = items[0];
    count_ = 1;
    i = 1;
  }
  while (i < m) {
    const uint64_t remaining = m - i;
    // Skip length S before the next replacement: P(S >= s) = c/(c+s), so
    // S = floor(c/u) - c with u uniform on (0, 1]. Truncation at the range
    // end is exact: P(S >= remaining) is the probability no replacement
    // happens among the remaining items, and the per-item coins are
    // independent, so a fresh draw next call loses nothing.
    const double u = 1.0 - rng.Uniform01();  // (0, 1]
    const double t = std::floor(static_cast<double>(count_) / u);
    if (t - static_cast<double>(count_) >= static_cast<double>(remaining)) {
      count_ += remaining;
      return;
    }
    const uint64_t skip = static_cast<uint64_t>(t) - count_;
    sample_ = items[i + skip];
    count_ += skip + 1;
    i += skip + 1;
  }
}

void SingleReservoir::Reset() {
  sample_.reset();
  count_ = 0;
}

void SingleReservoir::Save(BinaryWriter* w) const {
  w->PutU64(count_);
  w->PutBool(sample_.has_value());
  if (sample_) SaveItem(*sample_, w);
}

bool SingleReservoir::Load(BinaryReader* r) {
  Reset();
  bool has = false;
  if (!r->GetU64(&count_) || !r->GetBool(&has)) return false;
  if (has) {
    Item item;
    if (!LoadItem(r, &item)) return false;
    sample_ = item;
  }
  return true;
}

KReservoir::KReservoir(uint64_t k) : k_(k) {
  SWS_CHECK(k >= 1);
  slots_.reserve(k);
}

void KReservoir::Observe(const Item& item, Rng& rng) {
  ++count_;
  if (slots_.size() < k_) {
    slots_.push_back(item);
    return;
  }
  // Replace a uniformly random slot with probability k/count: draw a
  // position in [0, count) and replace iff it lands inside the reservoir.
  uint64_t pos = rng.UniformIndex(count_);
  if (pos < k_) slots_[pos] = item;
}

namespace {

#if defined(__GLIBC__)
extern "C" double lgamma_r(double, int*);  // not declared under -std=c++20
#endif

// std::lgamma writes the process-global `signgam` in glibc, which is a
// data race when sharded-driver workers run the skip search concurrently.
// Arguments here are always >= 1 (sign is always +), so the reentrant
// variant is a drop-in.
double LGammaThreadSafe(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// log P(S >= s) for the Algorithm R skip variable at count c with
// reservoir size k: P(S >= s) = prod_{t=c+1}^{c+s} (1 - k/t), a ratio of
// falling factorials evaluated through lgamma so it is O(1) regardless
// of s.
double LogSkipTail(uint64_t c, uint64_t k, uint64_t s) {
  const double cd = static_cast<double>(c);
  const double sd = static_cast<double>(s);
  const double kd = static_cast<double>(k);
  return (LGammaThreadSafe(cd + sd - kd + 1) -
          LGammaThreadSafe(cd - kd + 1)) -
         (LGammaThreadSafe(cd + sd + 1) - LGammaThreadSafe(cd + 1));
}

}  // namespace

void KReservoir::ObserveRange(const Item* items, uint64_t m, Rng& rng) {
  SWS_DCHECK(items != nullptr || m == 0);
  uint64_t i = 0;
  // Fill phase: every item is kept verbatim, no randomness needed.
  while (i < m && slots_.size() < k_) {
    slots_.push_back(items[i++]);
    ++count_;
  }
  while (i < m) {
    const uint64_t remaining = m - i;
    // Vitter's Algorithm X: one uniform decides the number of rejected
    // items S before the next acceptance, by inverting
    // P(S >= s) = prod_{t=c+1}^{c+s} (1 - k/t): S is the largest s with
    // P(S >= s) >= u. The acceptance then replaces a uniformly random
    // slot, exactly like Observe. Truncating the search at the range end
    // is exact (see SingleReservoir::ObserveRange).
    const double u = 1.0 - rng.Uniform01();  // (0, 1]
    uint64_t s;
    if (count_ < k_ + (k_ << 5)) {
      // Short expected skips (count/k <~ 33): sequential multiplication is
      // cheaper than transcendentals.
      double keep_all = 1.0;
      s = 0;
      while (s < remaining) {
        const double t = static_cast<double>(count_ + s + 1);
        const double next = keep_all * (t - static_cast<double>(k_)) / t;
        if (next < u) break;
        keep_all = next;
        ++s;
      }
    } else {
      // Long skips: binary search the log-CDF, O(log remaining) lgamma
      // evaluations per acceptance instead of O(skip) divisions.
      const double logu = std::log(u);
      if (LogSkipTail(count_, k_, remaining) >= logu) {
        s = remaining;
      } else {
        uint64_t lo = 0, hi = remaining;  // logp(lo) >= logu > logp(hi)
        while (hi - lo > 1) {
          const uint64_t mid = lo + (hi - lo) / 2;
          if (LogSkipTail(count_, k_, mid) >= logu) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        s = lo;
      }
    }
    if (s == remaining) {  // no acceptance inside this range
      count_ += remaining;
      return;
    }
    slots_[rng.UniformIndex(k_)] = items[i + s];
    count_ += s + 1;
    i += s + 1;
  }
}

void KReservoir::SubsampleInto(uint64_t i, Rng& rng,
                               std::vector<Item>* out) const {
  SWS_CHECK(out != nullptr);
  SWS_CHECK(i <= slots_.size());
  // Floyd's algorithm for a uniform i-subset of [0, m).
  const uint64_t m = slots_.size();
  std::vector<uint64_t> chosen;
  chosen.reserve(i);
  for (uint64_t j = m - i; j < m; ++j) {
    uint64_t t = rng.UniformIndex(j + 1);
    bool seen = false;
    for (uint64_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  for (uint64_t c : chosen) out->push_back(slots_[c]);
}

void KReservoir::Reset() {
  slots_.clear();
  count_ = 0;
}

void KReservoir::Save(BinaryWriter* w) const {
  w->PutU64(k_);
  w->PutU64(count_);
  w->PutU64(slots_.size());
  for (const Item& item : slots_) SaveItem(item, w);
}

bool KReservoir::Load(BinaryReader* r) {
  Reset();
  uint64_t size = 0;
  if (!r->GetU64(&k_) || !r->GetU64(&count_) || !r->GetU64(&size)) {
    return false;
  }
  // `remaining` bounds a corrupt size before the reserve allocates.
  if (k_ < 1 || size > k_ || size > r->remaining() / 24 + 1) return false;
  slots_.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    Item item;
    if (!LoadItem(r, &item)) return false;
    slots_.push_back(item);
  }
  return true;
}

}  // namespace swsample
