// Copyright (c) swsample authors. Licensed under the MIT license.

#include "reservoir/reservoir.h"

#include "stream/item_serial.h"
#include "util/macros.h"

namespace swsample {

void SingleReservoir::Observe(const Item& item, Rng& rng) {
  ++count_;
  if (rng.BernoulliRational(1, count_)) sample_ = item;
}

void SingleReservoir::Reset() {
  sample_.reset();
  count_ = 0;
}

void SingleReservoir::Save(BinaryWriter* w) const {
  w->PutU64(count_);
  w->PutBool(sample_.has_value());
  if (sample_) SaveItem(*sample_, w);
}

bool SingleReservoir::Load(BinaryReader* r) {
  Reset();
  bool has = false;
  if (!r->GetU64(&count_) || !r->GetBool(&has)) return false;
  if (has) {
    Item item;
    if (!LoadItem(r, &item)) return false;
    sample_ = item;
  }
  return true;
}

KReservoir::KReservoir(uint64_t k) : k_(k) {
  SWS_CHECK(k >= 1);
  slots_.reserve(k);
}

void KReservoir::Observe(const Item& item, Rng& rng) {
  ++count_;
  if (slots_.size() < k_) {
    slots_.push_back(item);
    return;
  }
  // Replace a uniformly random slot with probability k/count: draw a
  // position in [0, count) and replace iff it lands inside the reservoir.
  uint64_t pos = rng.UniformIndex(count_);
  if (pos < k_) slots_[pos] = item;
}

void KReservoir::SubsampleInto(uint64_t i, Rng& rng,
                               std::vector<Item>* out) const {
  SWS_CHECK(out != nullptr);
  SWS_CHECK(i <= slots_.size());
  // Floyd's algorithm for a uniform i-subset of [0, m).
  const uint64_t m = slots_.size();
  std::vector<uint64_t> chosen;
  chosen.reserve(i);
  for (uint64_t j = m - i; j < m; ++j) {
    uint64_t t = rng.UniformIndex(j + 1);
    bool seen = false;
    for (uint64_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  for (uint64_t c : chosen) out->push_back(slots_[c]);
}

void KReservoir::Reset() {
  slots_.clear();
  count_ = 0;
}

void KReservoir::Save(BinaryWriter* w) const {
  w->PutU64(k_);
  w->PutU64(count_);
  w->PutU64(slots_.size());
  for (const Item& item : slots_) SaveItem(item, w);
}

bool KReservoir::Load(BinaryReader* r) {
  Reset();
  uint64_t size = 0;
  if (!r->GetU64(&k_) || !r->GetU64(&count_) || !r->GetU64(&size)) {
    return false;
  }
  if (k_ < 1 || size > k_) return false;
  slots_.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    Item item;
    if (!LoadItem(r, &item)) return false;
    slots_.push_back(item);
  }
  return true;
}

}  // namespace swsample
