// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Reservoir sampling (Vitter, "Random sampling with a reservoir", TOMS'85).
//
// This is the insertion-only substrate the paper builds on: every bucket of
// the equivalent-width partition (Section 2) and every bucket structure of
// the covering decomposition (Section 3) carries reservoir samples. Two
// properties of Algorithm R are load-bearing for the paper:
//
//  * A reservoir over a prefix C of bucket B is a uniform sample of C
//    (used for partial buckets, Section 2.1).
//  * The sample held after i arrivals is independent of the portion of the
//    final sample that falls in the remaining |B| - i arrivals (Section
//    1.3.4, the independence-of-disjoint-windows argument).

#ifndef SWSAMPLE_RESERVOIR_RESERVOIR_H_
#define SWSAMPLE_RESERVOIR_RESERVOIR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "stream/item.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {

/// Single-item reservoir (Algorithm R with k = 1): after observing c items,
/// holds each of them with probability exactly 1/c.
class SingleReservoir {
 public:
  SingleReservoir() = default;

  /// Observes one item: it becomes the sample with probability 1/count.
  void Observe(const Item& item, Rng& rng);

  /// Observes `m` consecutive items with one RNG draw per sample
  /// REPLACEMENT instead of one per item (expected O(log) draws per
  /// bucket). Distributionally identical to m calls to Observe: the next
  /// replacement position T > c satisfies P(T > t) = c/t (the telescoping
  /// product of the per-item keep probabilities), which is inverted in
  /// closed form as T = floor(c/u) + 1 with u uniform on (0, 1].
  void ObserveRange(const Item* items, uint64_t m, Rng& rng);

  /// Number of items observed since construction/Reset.
  uint64_t count() const { return count_; }

  /// Current sample; nullopt iff count() == 0.
  const std::optional<Item>& sample() const { return sample_; }

  /// Forgets everything (fresh bucket).
  void Reset();

  /// Memory words held (paper model): the one stored item.
  uint64_t MemoryWords() const { return sample_ ? kWordsPerItem : 0; }

  /// Checkpointing (see util/serial.h).
  void Save(BinaryWriter* w) const;
  bool Load(BinaryReader* r);

 private:
  std::optional<Item> sample_;
  uint64_t count_ = 0;
};

/// k-item reservoir without replacement (Algorithm R): after observing
/// c >= k items, holds a uniformly random k-subset of them; for c < k it
/// holds all c items. Order of the stored items is NOT random -- callers
/// that need a random subset of the reservoir use SubsampleInto().
class KReservoir {
 public:
  /// `k` must be >= 1.
  explicit KReservoir(uint64_t k);

  /// Observes one item (replaces a random slot w.p. k/count once full).
  void Observe(const Item& item, Rng& rng);

  /// Observes `m` consecutive items with one RNG draw per ACCEPTANCE plus
  /// one per slot replacement (Vitter's Algorithm X skip: expected
  /// O(k log(1 + m/count)) draws) instead of one per item.
  /// Distributionally identical to m calls to Observe.
  void ObserveRange(const Item* items, uint64_t m, Rng& rng);

  /// Number of items observed since construction/Reset.
  uint64_t count() const { return count_; }

  /// Capacity k.
  uint64_t k() const { return k_; }

  /// The held sample: min(k, count) items, a uniform subset of observed.
  const std::vector<Item>& items() const { return slots_; }

  /// Draws a uniformly random i-subset of the held sample into `out`
  /// (appended). Requires i <= items().size(). A uniform i-subset of a
  /// uniform k-subset of C is a uniform i-subset of C, which is exactly the
  /// X_V^i of paper Section 2.2.
  void SubsampleInto(uint64_t i, Rng& rng, std::vector<Item>* out) const;

  /// Forgets everything (fresh bucket).
  void Reset();

  /// Memory words held: stored items only (k is configuration).
  uint64_t MemoryWords() const { return slots_.size() * kWordsPerItem; }

  /// Heap bytes retained beyond the object footprint (slot capacity).
  uint64_t RetainedBytes() const { return slots_.capacity() * sizeof(Item); }

  /// Checkpointing (see util/serial.h). Load replaces k, count and slots.
  void Save(BinaryWriter* w) const;
  bool Load(BinaryReader* r);

 private:
  uint64_t k_;
  uint64_t count_ = 0;
  std::vector<Item> slots_;
};

}  // namespace swsample

#endif  // SWSAMPLE_RESERVOIR_RESERVOIR_H_
