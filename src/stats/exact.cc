// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stats/exact.h"

#include <cmath>

namespace swsample {

std::unordered_map<uint64_t, uint64_t> ExactHistogram(
    const std::vector<uint64_t>& values) {
  std::unordered_map<uint64_t, uint64_t> hist;
  hist.reserve(values.size());
  for (uint64_t v : values) ++hist[v];
  return hist;
}

double ExactFrequencyMoment(const std::vector<uint64_t>& values, uint32_t k) {
  double fk = 0.0;
  for (const auto& [value, count] : ExactHistogram(values)) {
    (void)value;
    fk += std::pow(static_cast<double>(count), static_cast<double>(k));
  }
  return fk;
}

double ExactEntropy(const std::vector<uint64_t>& values) {
  if (values.empty()) return 0.0;
  const double n = static_cast<double>(values.size());
  double h = 0.0;
  for (const auto& [value, count] : ExactHistogram(values)) {
    (void)value;
    double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace swsample
