// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stats/exact.h"

#include <cmath>

namespace swsample {

void ExactHistogramInto(std::span<const uint64_t> values,
                        ValueHistogram* hist) {
  hist->Clear();
  hist->Reserve(values.size());
  for (uint64_t v : values) ++(*hist)[v];
}

ValueHistogram ExactHistogram(const std::vector<uint64_t>& values) {
  ValueHistogram hist;
  ExactHistogramInto(values, &hist);
  return hist;
}

double ExactFrequencyMoment(const ValueHistogram& hist, uint32_t k) {
  double fk = 0.0;
  hist.ForEach([&](uint64_t value, const uint64_t& count) {
    (void)value;
    fk += std::pow(static_cast<double>(count), static_cast<double>(k));
  });
  return fk;
}

double ExactFrequencyMoment(const std::vector<uint64_t>& values, uint32_t k) {
  return ExactFrequencyMoment(ExactHistogram(values), k);
}

double ExactEntropy(const ValueHistogram& hist) {
  uint64_t n = 0;
  hist.ForEach([&](uint64_t value, const uint64_t& count) {
    (void)value;
    n += count;
  });
  if (n == 0) return 0.0;
  const double nd = static_cast<double>(n);
  double h = 0.0;
  hist.ForEach([&](uint64_t value, const uint64_t& count) {
    (void)value;
    const double p = static_cast<double>(count) / nd;
    h -= p * std::log2(p);
  });
  return h;
}

double ExactEntropy(const std::vector<uint64_t>& values) {
  return ExactEntropy(ExactHistogram(values));
}

}  // namespace swsample
