// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Exact (non-streaming) aggregates over a window's contents. These are the
// ground-truth oracles for the application experiments (Corollaries 5.2 and
// 5.4): the streaming estimators built on our samplers are compared against
// exact values computed from a full buffer of the window.
//
// The histogram lives in a util/flat_map.h open-addressing table instead
// of std::unordered_map: oracle comparisons recompute it once per window
// per trial, and the reusable ExactHistogramInto entry point keeps one
// table's memory across calls instead of rebuilding node by node.

#ifndef SWSAMPLE_STATS_EXACT_H_
#define SWSAMPLE_STATS_EXACT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/flat_map.h"

namespace swsample {

/// Frequency histogram of a value multiset (value -> occurrence count).
using ValueHistogram = FlatMap<uint64_t, uint64_t>;

/// Accumulates the histogram of `values` into `*hist`. The table is
/// cleared first but keeps its capacity, so a caller that recomputes
/// windows of similar size in a loop (benches, oracle comparisons) pays
/// zero steady-state allocation.
void ExactHistogramInto(std::span<const uint64_t> values,
                        ValueHistogram* hist);

/// One-shot convenience over ExactHistogramInto.
ValueHistogram ExactHistogram(const std::vector<uint64_t>& values);

/// Exact k-th frequency moment F_k = sum_i x_i^k from a histogram.
double ExactFrequencyMoment(const ValueHistogram& hist, uint32_t k);

/// Exact k-th frequency moment of the multiset.
double ExactFrequencyMoment(const std::vector<uint64_t>& values, uint32_t k);

/// Exact empirical (Shannon) entropy from a histogram.
double ExactEntropy(const ValueHistogram& hist);

/// Exact empirical (Shannon) entropy H = -sum (x_i/N) log2(x_i/N).
double ExactEntropy(const std::vector<uint64_t>& values);

}  // namespace swsample

#endif  // SWSAMPLE_STATS_EXACT_H_
