// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Exact (non-streaming) aggregates over a window's contents. These are the
// ground-truth oracles for the application experiments (Corollaries 5.2 and
// 5.4): the streaming estimators built on our samplers are compared against
// exact values computed from a full buffer of the window.

#ifndef SWSAMPLE_STATS_EXACT_H_
#define SWSAMPLE_STATS_EXACT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace swsample {

/// Frequency histogram of a value multiset.
std::unordered_map<uint64_t, uint64_t> ExactHistogram(
    const std::vector<uint64_t>& values);

/// Exact k-th frequency moment F_k = sum_i x_i^k of the multiset.
double ExactFrequencyMoment(const std::vector<uint64_t>& values, uint32_t k);

/// Exact empirical (Shannon) entropy H = -sum (x_i/N) log2(x_i/N).
double ExactEntropy(const std::vector<uint64_t>& values);

}  // namespace swsample

#endif  // SWSAMPLE_STATS_EXACT_H_
