// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stats/special.h"

#include <cmath>

#include "util/macros.h"

namespace swsample {
namespace {

// Series expansion of the regularized LOWER incomplete gamma P(a, x),
// convergent for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for the regularized UPPER incomplete gamma Q(a, x),
// convergent for x >= a + 1 (modified Lentz).
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaQ(double a, double x) {
  SWS_CHECK(a > 0.0);
  SWS_CHECK(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareTail(double x, double df) {
  SWS_CHECK(df >= 1.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double KolmogorovTail(double t) {
  if (t <= 0.0) return 1.0;
  // P(sqrt(n) D > t) ~ 2 * sum_{j>=1} (-1)^(j-1) exp(-2 j^2 t^2).
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    double term = std::exp(-2.0 * j * j * t * t);
    sum += (j % 2 == 1) ? term : -term;
    if (term < 1e-16) break;
  }
  double p = 2.0 * sum;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  return p;
}

}  // namespace swsample
