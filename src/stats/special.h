// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Special functions backing the statistical tests: regularized incomplete
// gamma (chi-square tail) and the Kolmogorov distribution tail. Implemented
// from the standard series/continued-fraction expansions; accurate to ~1e-10
// over the ranges the tests use, which is far tighter than the 1e-3
// significance thresholds the harness checks against.

#ifndef SWSAMPLE_STATS_SPECIAL_H_
#define SWSAMPLE_STATS_SPECIAL_H_

namespace swsample {

/// Regularized upper incomplete gamma Q(a, x) = Gamma(a, x) / Gamma(a),
/// a > 0, x >= 0. Q(df/2, x/2) is the chi-square upper tail with df degrees
/// of freedom at statistic x.
double RegularizedGammaQ(double a, double x);

/// Chi-square upper-tail p-value for statistic `x` with `df` degrees of
/// freedom (df >= 1).
double ChiSquareTail(double x, double df);

/// Kolmogorov distribution tail: P(D_n * sqrt(n) > t) asymptotic series.
double KolmogorovTail(double t);

}  // namespace swsample

#endif  // SWSAMPLE_STATS_SPECIAL_H_
