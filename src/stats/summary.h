// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Running summaries (mean/variance/min/max) and percentile extraction used
// by the memory-bound experiments: the paper's headline is deterministic
// worst-case memory, so the harness reports max and high percentiles of the
// per-step memory footprint, not just averages.

#ifndef SWSAMPLE_STATS_SUMMARY_H_
#define SWSAMPLE_STATS_SUMMARY_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/macros.h"

namespace swsample {

/// Welford running summary over doubles.
class RunningSummary {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile (nearest-rank) of a sample set; `q` in [0, 1]. Copies and
/// sorts; intended for post-run reporting, not hot paths.
inline double Percentile(std::vector<double> xs, double q) {
  SWS_CHECK(!xs.empty());
  SWS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(xs.size() - 1));
  return xs[rank];
}

}  // namespace swsample

#endif  // SWSAMPLE_STATS_SUMMARY_H_
