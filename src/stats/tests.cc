// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stats/tests.h"

#include <algorithm>
#include <cmath>

#include "stats/special.h"
#include "util/macros.h"

namespace swsample {

ChiSquareResult ChiSquareUniform(const std::vector<uint64_t>& counts) {
  SWS_CHECK(!counts.empty());
  std::vector<double> probs(counts.size(),
                            1.0 / static_cast<double>(counts.size()));
  return ChiSquareExpected(counts, probs);
}

ChiSquareResult ChiSquareExpected(const std::vector<uint64_t>& counts,
                                  const std::vector<double>& expected_probs) {
  SWS_CHECK(counts.size() == expected_probs.size());
  SWS_CHECK(!counts.empty());
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  SWS_CHECK(total > 0);
  double prob_sum = 0.0;
  for (double p : expected_probs) prob_sum += p;
  SWS_CHECK(std::fabs(prob_sum - 1.0) < 1e-9);

  double stat = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double expected = expected_probs[i] * static_cast<double>(total);
    SWS_CHECK(expected > 0.0);
    double diff = static_cast<double>(counts[i]) - expected;
    stat += diff * diff / expected;
  }
  ChiSquareResult result;
  result.statistic = stat;
  result.df = static_cast<double>(counts.size()) - 1.0;
  result.p_value = result.df >= 1.0 ? ChiSquareTail(stat, result.df) : 1.0;
  return result;
}

KsResult KsUniform(std::vector<double> samples) {
  SWS_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    double cdf = samples[i];  // U(0,1) CDF
    double hi = (static_cast<double>(i) + 1.0) / n - cdf;
    double lo = cdf - static_cast<double>(i) / n;
    d = std::max({d, hi, lo});
  }
  KsResult result;
  result.statistic = d;
  double t = d * (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n));
  result.p_value = KolmogorovTail(t);
  return result;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  SWS_CHECK(xs.size() == ys.size());
  SWS_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace swsample
