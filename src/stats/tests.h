// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Goodness-of-fit tests used by the uniformity experiments (E4/E5/E11) and
// by property-style unit tests: a sampler's output over many trials must be
// statistically indistinguishable from the uniform distribution over the
// window it claims to sample.

#ifndef SWSAMPLE_STATS_TESTS_H_
#define SWSAMPLE_STATS_TESTS_H_

#include <cstdint>
#include <vector>

namespace swsample {

/// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;
  double df = 0.0;
  double p_value = 1.0;
};

/// Chi-square test of observed counts against a uniform distribution over
/// `categories` cells. `counts` must have exactly `categories` entries and a
/// positive total. Callers should ensure expected counts >= ~5 for validity.
ChiSquareResult ChiSquareUniform(const std::vector<uint64_t>& counts);

/// Chi-square test against arbitrary expected probabilities (must sum to 1
/// within 1e-9 and match counts.size()).
ChiSquareResult ChiSquareExpected(const std::vector<uint64_t>& counts,
                                  const std::vector<double>& expected_probs);

/// Result of a one-sample Kolmogorov-Smirnov test against U(0, 1).
struct KsResult {
  double statistic = 0.0;  // D_n
  double p_value = 1.0;
};

/// KS test of samples (each in [0,1]) against the uniform distribution.
/// `samples` is sorted internally; requires at least 1 sample.
KsResult KsUniform(std::vector<double> samples);

/// Pearson correlation of paired observations (requires equal sizes >= 2).
/// Used by the disjoint-window independence experiment (E11).
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace swsample

#endif  // SWSAMPLE_STATS_TESTS_H_
