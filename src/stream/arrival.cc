// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/arrival.h"

#include <cmath>

#include "util/bits.h"

namespace swsample {

Result<std::unique_ptr<PoissonBurstArrivals>> PoissonBurstArrivals::Create(
    double lambda) {
  if (!(lambda > 0.0) || !std::isfinite(lambda)) {
    return Status::InvalidArgument(
        "PoissonBurstArrivals: lambda must be finite and > 0");
  }
  return std::unique_ptr<PoissonBurstArrivals>(
      new PoissonBurstArrivals(lambda));
}

uint64_t PoissonBurstArrivals::CountAt(Timestamp, Rng& rng) {
  if (lambda_ <= 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda_);
    uint64_t count = 0;
    double prod = rng.Uniform01();
    while (prod > limit) {
      ++count;
      prod *= rng.Uniform01();
    }
    return count;
  }
  // Normal approximation N(lambda, lambda), rounded and clamped at zero.
  // Box-Muller from two uniforms.
  double u1 = rng.Uniform01();
  double u2 = rng.Uniform01();
  if (u1 <= 0.0) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double x = lambda_ + std::sqrt(lambda_) * z;
  if (x < 0.0) return 0;
  return static_cast<uint64_t>(std::llround(x));
}

Result<std::unique_ptr<DoublingBurstArrivals>> DoublingBurstArrivals::Create(
    int64_t t0, uint64_t max_burst) {
  if (t0 < 1 || t0 > 30) {
    return Status::InvalidArgument(
        "DoublingBurstArrivals: t0 must be in [1, 30]");
  }
  if (max_burst < 1) {
    return Status::InvalidArgument(
        "DoublingBurstArrivals: max_burst must be >= 1");
  }
  return std::unique_ptr<DoublingBurstArrivals>(
      new DoublingBurstArrivals(t0, max_burst));
}

uint64_t DoublingBurstArrivals::CountAt(Timestamp t, Rng&) {
  if (t < 0) return 0;
  if (t <= 2 * t0_) {
    uint64_t exponent = static_cast<uint64_t>(2 * t0_ - t);
    uint64_t burst = exponent >= 63 ? max_burst_ : Pow2(static_cast<uint32_t>(exponent));
    return burst > max_burst_ ? max_burst_ : burst;
  }
  return 1;
}

}  // namespace swsample
