// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Arrival processes: how many items arrive at each timestamp.
//
// Sequence-based windows only need one-item-per-step arrivals, but the
// timestamp-based algorithms (Sections 3-4 of the paper) exist precisely
// because arrivals can be bursty, making the number of active elements n(t)
// unknowable in sublinear space. We therefore provide:
//  * ConstantRateArrivals  - r items every step (r = 1 reproduces the
//    sequence-based regime on the timestamp algorithms);
//  * PoissonBurstArrivals  - Poisson(lambda) items per step, the standard
//    asynchronous-network model;
//  * DoublingBurstArrivals - the adversarial stream of Lemma 3.10
//    (2^(2*t0 - i) items at timestamp i for i <= 2*t0, then one per step),
//    which forces ANY single-sample algorithm to hold Omega(log n) words.

#ifndef SWSAMPLE_STREAM_ARRIVAL_H_
#define SWSAMPLE_STREAM_ARRIVAL_H_

#include <cstdint>
#include <memory>

#include "stream/item.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Interface: number of items arriving at a given timestamp.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Number of arrivals at timestamp `t` (t increases by 1 per call site
  /// step). May be zero (empty steps are legal and exercised in tests).
  virtual uint64_t CountAt(Timestamp t, Rng& rng) = 0;
};

/// Exactly `rate` items per step.
class ConstantRateArrivals final : public ArrivalProcess {
 public:
  /// `rate` may be zero only if you want an empty stream; requires >= 0.
  explicit ConstantRateArrivals(uint64_t rate) : rate_(rate) {}

  uint64_t CountAt(Timestamp, Rng&) override { return rate_; }

 private:
  uint64_t rate_;
};

/// Poisson(lambda) items per step; lambda <= 30 uses Knuth's product method,
/// larger lambda a rounded normal approximation (documented substitution:
/// exact tail shape of the arrival counts is irrelevant to the samplers,
/// only burstiness is).
class PoissonBurstArrivals final : public ArrivalProcess {
 public:
  /// Requires lambda > 0 and finite.
  static Result<std::unique_ptr<PoissonBurstArrivals>> Create(double lambda);

  uint64_t CountAt(Timestamp, Rng& rng) override;

 private:
  explicit PoissonBurstArrivals(double lambda) : lambda_(lambda) {}
  double lambda_;
};

/// The Lemma 3.10 lower-bound stream: for 0 <= t <= 2*t0 there are
/// 2^(2*t0 - t) arrivals at timestamp t; afterwards exactly one per step.
/// `t0` is the window parameter the lemma is stated for; t0 <= 30 keeps
/// the first burst below 2^60 items only notionally -- callers cap bursts
/// with `max_burst` to keep runs tractable while preserving the doubling
/// shape (the lemma only needs ratios between consecutive steps).
class DoublingBurstArrivals final : public ArrivalProcess {
 public:
  /// Requires 1 <= t0 <= 30 and max_burst >= 1.
  static Result<std::unique_ptr<DoublingBurstArrivals>> Create(
      int64_t t0, uint64_t max_burst);

  uint64_t CountAt(Timestamp t, Rng&) override;

 private:
  DoublingBurstArrivals(int64_t t0, uint64_t max_burst)
      : t0_(t0), max_burst_(max_burst) {}
  int64_t t0_;
  uint64_t max_burst_;
};

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_ARRIVAL_H_
