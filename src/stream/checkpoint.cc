// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "apps/estimator_checkpoint.h"
#include "core/checkpoint.h"
#include "stream/driver.h"
#include "stream/item_serial.h"
#include "stream/sharded_driver.h"
#include "util/file_ops.h"

namespace swsample {
namespace {

namespace fs = std::filesystem;

constexpr const char kManifestName[] = "MANIFEST";

/// Bound on untrusted element counts in a manifest (shards, pending
/// buffers); matches the checkpoint-level unit cap.
constexpr uint64_t kMaxManifestEntries = kMaxCheckpointUnits;

std::string ShardFileName(uint64_t shard, uint64_t items) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "shard-%04" PRIu64 "-%" PRIu64 ".ckpt",
                shard, items);
  return buf;
}

/// Manifest wire format: envelope header (kManifest) + position fields +
/// shard file names + pending buffers.
std::string EncodeManifest(const CheckpointManifest& manifest,
                           const std::vector<std::string>& shard_files) {
  BinaryWriter w;
  WriteCheckpointHeader(CheckpointKind::kManifest, &w);
  w.PutU64(manifest.items);
  w.PutI64(manifest.last_ts);
  w.PutBool(manifest.saw_items);
  w.PutU64(manifest.next_chunk_shard);
  w.PutU64(manifest.chunk_items);
  w.PutU64(manifest.partition);
  w.PutU64(manifest.shard_items.size());
  for (size_t s = 0; s < manifest.shard_items.size(); ++s) {
    w.PutU64(manifest.shard_items[s]);
    w.PutString(shard_files[s]);
  }
  w.PutU64(manifest.pending.size());
  for (const std::vector<Item>& buffer : manifest.pending) {
    w.PutU64(buffer.size());
    for (const Item& item : buffer) SaveItem(item, &w);
  }
  return w.Release();
}

Result<CheckpointManifest> DecodeManifest(
    const std::string& data, std::vector<std::string>* shard_files) {
  BinaryReader r(data);
  CheckpointKind kind;
  if (!ReadCheckpointHeader(&r, &kind) ||
      kind != CheckpointKind::kManifest) {
    return Status::InvalidArgument(
        "checkpoint: MANIFEST has a bad header (wrong magic, version, or "
        "kind)");
  }
  CheckpointManifest manifest;
  uint64_t next_shard = 0, shards = 0, targets = 0;
  if (!r.GetU64(&manifest.items) || !r.GetI64(&manifest.last_ts) ||
      !r.GetBool(&manifest.saw_items) || !r.GetU64(&next_shard) ||
      !r.GetU64(&manifest.chunk_items) || !r.GetU64(&manifest.partition) ||
      !r.GetU64(&shards) || next_shard > 0xffffffffu ||
      shards < 1 || shards > kMaxManifestEntries) {
    return Status::InvalidArgument("checkpoint: truncated MANIFEST header");
  }
  manifest.next_chunk_shard = static_cast<uint32_t>(next_shard);
  shard_files->clear();
  for (uint64_t s = 0; s < shards; ++s) {
    uint64_t items = 0;
    std::string file;
    if (!r.GetU64(&items) || !r.GetString(&file) || file.empty() ||
        file.find('/') != std::string::npos) {
      return Status::InvalidArgument(
          "checkpoint: truncated or invalid MANIFEST shard entry");
    }
    manifest.shard_items.push_back(items);
    shard_files->push_back(std::move(file));
  }
  if (!r.GetU64(&targets) || targets > kMaxManifestEntries) {
    return Status::InvalidArgument("checkpoint: truncated MANIFEST");
  }
  for (uint64_t t = 0; t < targets; ++t) {
    uint64_t count = 0;
    if (!r.GetU64(&count) || count > r.remaining() / 24 + 1) {
      return Status::InvalidArgument(
          "checkpoint: invalid MANIFEST pending buffer");
    }
    std::vector<Item> buffer;
    buffer.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Item item;
      if (!LoadItem(&r, &item)) {
        return Status::InvalidArgument(
            "checkpoint: truncated MANIFEST pending item");
      }
      buffer.push_back(item);
    }
    manifest.pending.push_back(std::move(buffer));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("checkpoint: trailing bytes in MANIFEST");
  }
  return manifest;
}

}  // namespace

Status SpillBatch(const std::string& dir, std::span<const SpillFile> files,
                  bool fsync_files, size_t* files_written,
                  const RetryPolicy& retry, uint64_t* io_retries,
                  const char* site) {
  if (files_written != nullptr) *files_written = 0;
  for (size_t i = 0; i < files.size(); ++i) {
    const SpillFile& file = files[i];
    if (file.name.empty() || file.name.find('/') != std::string::npos) {
      return Status::InvalidArgument("checkpoint: invalid spill file name \"" +
                                     file.name + "\"");
    }
    const std::string path = (fs::path(dir) / file.name).string();
    if (Status status = RetryIo(retry, i, io_retries,
                                [&] {
                                  return AtomicWriteFile(site, path, file.data,
                                                         fsync_files);
                                });
        !status.ok()) {
      return status;
    }
    if (files_written != nullptr) ++*files_written;
  }
  // One directory fsync covers every rename above; without per-file
  // durability there is nothing to pin, so skip it too.
  if (fsync_files && !files.empty()) SyncDirectory(dir);
  return Status::Ok();
}

Result<std::vector<SinkSerializer>> MakeSinkSerializers(const SinkSpec& spec,
                                                        uint64_t shards) {
  std::vector<SinkSerializer> serializers;
  serializers.reserve(shards);
  for (uint64_t shard = 0; shard < shards; ++shard) {
    auto shard_spec = ShardSinkSpec(spec, shard, shards);
    if (!shard_spec.ok()) return shard_spec.status();
    serializers.push_back([spec = shard_spec.value()](StreamSink& sink) {
      return SaveSink(sink, spec);
    });
  }
  return serializers;
}

CheckpointWriter::CheckpointWriter(CheckpointPolicy policy,
                                   std::vector<SinkSerializer> serializers,
                                   uint64_t start_items)
    : policy_(std::move(policy)),
      serializers_(std::move(serializers)),
      last_items_(start_items),
      last_write_time_(std::chrono::steady_clock::now()) {}

bool CheckpointWriter::Due(uint64_t items) const {
  if (!enabled()) return false;
  if (policy_.every_items > 0 &&
      items - last_items_ >= policy_.every_items) {
    return true;
  }
  if (policy_.every_seconds > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_write_time_)
            .count();
    if (elapsed >= policy_.every_seconds) return true;
  }
  return false;
}

Status CheckpointWriter::Write(const CheckpointManifest& manifest,
                               std::span<StreamSink* const> sinks) {
  if (!enabled()) {
    return Status::FailedPrecondition("checkpoint: writer is disabled");
  }
  if (sinks.size() != serializers_.size() ||
      manifest.shard_items.size() != sinks.size()) {
    return Status::InvalidArgument(
        "checkpoint: sink/serializer/manifest shard counts disagree");
  }
  std::error_code ec;
  fs::create_directories(policy_.dir, ec);
  if (ec) {
    return Status::InvalidArgument("checkpoint: cannot create directory " +
                                   policy_.dir);
  }
  // Shard files first; the MANIFEST rename below is the commit point.
  // SpillBatch pins their directory entries with one fsync before the
  // manifest references them.
  std::vector<SpillFile> shard_spills;
  std::vector<std::string> shard_files;
  shard_spills.reserve(sinks.size());
  shard_files.reserve(sinks.size());
  for (size_t s = 0; s < sinks.size(); ++s) {
    auto blob = serializers_[s](*sinks[s]);
    if (!blob.ok()) return blob.status();
    shard_files.push_back(ShardFileName(s, manifest.items));
    shard_spills.push_back(
        SpillFile{shard_files.back(), std::move(blob).ValueOrDie()});
  }
  if (Status status = SpillBatch(policy_.dir, shard_spills,
                                 /*fsync_files=*/true, nullptr, policy_.retry,
                                 &io_retries_, "ckpt.write");
      !status.ok()) {
    ++io_giveups_;
    return status;
  }
  const std::string manifest_path =
      (fs::path(policy_.dir) / kManifestName).string();
  const std::string manifest_data = EncodeManifest(manifest, shard_files);
  if (Status status = RetryIo(policy_.retry, /*op_id=*/sinks.size(),
                              &io_retries_,
                              [&] {
                                return AtomicWriteFile("ckpt.manifest",
                                                       manifest_path,
                                                       manifest_data,
                                                       /*do_fsync=*/true);
                              });
      !status.ok()) {
    ++io_giveups_;
    return status;
  }
  SyncDirectory(policy_.dir);
  // The new checkpoint is committed; clean up files it does not
  // reference, plus temps orphaned by a crash between write and rename
  // (our own error paths never leave one behind).
  for (const auto& entry : fs::directory_iterator(policy_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
      continue;
    }
    if (name == kManifestName) continue;
    if (name.rfind("shard-", 0) != 0) continue;
    bool referenced = false;
    for (const std::string& file : shard_files) {
      if (name == file) {
        referenced = true;
        break;
      }
    }
    if (!referenced) fs::remove(entry.path(), ec);
  }
  last_items_ = manifest.items;
  last_write_time_ = std::chrono::steady_clock::now();
  if (after_write_) after_write_(manifest.items);
  return Status::Ok();
}

Result<uint64_t> PumpEventLines(
    std::FILE* f, const std::string& source_name, bool timestamped,
    const CheckpointManifest* resume,
    const std::function<Status(const Item& item)>& deliver) {
  const uint64_t skip = resume == nullptr ? 0 : resume->items;
  char line[256];
  uint64_t index = 0;
  Timestamp last_ts = 0;
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f)) {
    ++line_no;
    uint64_t value = 0;
    Timestamp ts = 0;
    bool skip_line = false;
    if (Status s = ParseEventLine(line, sizeof(line), timestamped,
                                  source_name, line_no, last_ts, &value, &ts,
                                  &skip_line);
        !s.ok()) {
      return s;
    }
    if (skip_line) continue;
    if (timestamped) last_ts = ts;
    if (index < skip) {
      // Already ingested before the checkpoint: re-parse (validating the
      // replayed input) but do not deliver. The clock handoff catches a
      // resume against a different stream.
      ++index;
      if (index == skip && timestamped && last_ts != resume->last_ts) {
        return Status::InvalidArgument(
            source_name + ":" + std::to_string(line_no) +
            ": replayed input does not match the checkpoint (timestamp "
            "diverges at the resume point)");
      }
      continue;
    }
    if (!timestamped) ts = static_cast<Timestamp>(index);
    if (Status s = deliver(Item{value, index++, ts}); !s.ok()) return s;
  }
  if (index < skip) {
    return Status::InvalidArgument(
        source_name + ": replayed input ends before the checkpoint's " +
        std::to_string(skip) + " ingested events");
  }
  return index;
}

Result<ResumedCheckpoint> LoadCheckpoint(const std::string& dir) {
  auto manifest_data =
      ReadFileBytes("ckpt.read", (fs::path(dir) / kManifestName).string());
  if (!manifest_data.ok()) return manifest_data.status();
  std::vector<std::string> shard_files;
  auto manifest = DecodeManifest(manifest_data.value(), &shard_files);
  if (!manifest.ok()) return manifest.status();

  ResumedCheckpoint resumed;
  resumed.position = std::move(manifest).ValueOrDie();
  for (size_t s = 0; s < shard_files.size(); ++s) {
    auto blob =
        ReadFileBytes("ckpt.read", (fs::path(dir) / shard_files[s]).string());
    if (!blob.ok()) return blob.status();
    // Record the envelope metadata (name + per-shard config) alongside
    // the restored sink; Restore* re-validates everything.
    BinaryReader header(blob.value());
    CheckpointKind kind;
    std::string name;
    if (!ReadCheckpointHeader(&header, &kind) || !header.GetString(&name)) {
      return Status::InvalidArgument("checkpoint: shard file " +
                                     shard_files[s] +
                                     " has an invalid envelope");
    }
    if (s == 0) {
      resumed.name = name;
    } else if (name != resumed.name) {
      return Status::InvalidArgument(
          "checkpoint: shard files disagree on the registry name (\"" +
          resumed.name + "\" vs \"" + name + "\")");
    }
    if (kind == CheckpointKind::kSampler) {
      SamplerConfig config;
      if (!resumed.estimators.empty() ||
          !LoadSamplerConfig(&header, &config)) {
        return Status::InvalidArgument(
            "checkpoint: mixed or invalid sampler shard files");
      }
      auto sampler = RestoreSampler(blob.value());
      if (!sampler.ok()) return sampler.status();
      resumed.sampler_configs.push_back(config);
      resumed.samplers.push_back(std::move(sampler).ValueOrDie());
      resumed.sinks.push_back(resumed.samplers.back().get());
    } else if (kind == CheckpointKind::kEstimator) {
      EstimatorConfig config;
      if (!resumed.samplers.empty() ||
          !LoadEstimatorConfig(&header, &config)) {
        return Status::InvalidArgument(
            "checkpoint: mixed or invalid estimator shard files");
      }
      auto estimator = RestoreEstimator(blob.value());
      if (!estimator.ok()) return estimator.status();
      resumed.estimator_configs.push_back(config);
      resumed.estimators.push_back(std::move(estimator).ValueOrDie());
      resumed.sinks.push_back(resumed.estimators.back().get());
    } else {
      return Status::InvalidArgument(
          "checkpoint: shard file " + shard_files[s] +
          " does not hold a sampler or estimator envelope");
    }
  }
  return resumed;
}

std::vector<SinkSerializer> SerializersFor(const ResumedCheckpoint& resumed) {
  std::vector<SinkSerializer> serializers;
  serializers.reserve(resumed.sinks.size());
  for (size_t s = 0; s < resumed.sampler_configs.size(); ++s) {
    serializers.push_back(
        [config = resumed.sampler_configs[s]](StreamSink& sink) {
          auto* sampler = dynamic_cast<WindowSampler*>(&sink);
          if (sampler == nullptr) {
            return Result<std::string>(Status::InvalidArgument(
                "checkpoint: sink is not a WindowSampler"));
          }
          return SaveSampler(*sampler, config);
        });
  }
  for (size_t s = 0; s < resumed.estimator_configs.size(); ++s) {
    serializers.push_back(
        [config = resumed.estimator_configs[s]](StreamSink& sink) {
          auto* estimator = dynamic_cast<WindowEstimator*>(&sink);
          if (estimator == nullptr) {
            return Result<std::string>(Status::InvalidArgument(
                "checkpoint: sink is not a WindowEstimator"));
          }
          return SaveEstimator(*estimator, config);
        });
  }
  return serializers;
}

}  // namespace swsample
