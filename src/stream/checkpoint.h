// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Driver-level checkpointing: periodic, atomic persistence of an entire
/// ingestion run — every shard sink plus the producer's position — so a
/// killed process resumes bit-identically from its last checkpoint.
///
/// On-disk layout (one directory per run):
///
///   <dir>/MANIFEST             ingestion position + shard file names
///   <dir>/shard-NNNN-I.ckpt    sink envelope of shard NNNN at item count I
///
/// Every file is written to a temporary name and atomically renamed; the
/// MANIFEST rename is the commit point, and it references the shard files
/// by exact name, so a crash mid-write always leaves the previous
/// complete checkpoint readable. Shard files are self-describing sampler
/// or estimator envelopes (core/checkpoint.h), so a checkpoint taken in
/// one process restores in another with no shared state.
///
/// Checkpoint positions are chosen by the drivers at batch-consistent
/// points (StreamDriver: batch boundaries; ShardedStreamDriver: any item,
/// with un-flushed router buffers persisted in the manifest), which is
/// what makes a resumed run's delivery segmentation — and therefore its
/// RNG consumption — identical to an uninterrupted run's.
///
/// Ownership: CheckpointWriter borrows sinks per Write call;
/// LoadCheckpoint returns caller-owned restored sinks.
///
/// Thread-safety: a CheckpointWriter is driven from one producer thread;
/// the sharded driver quiesces its workers before serializing shards.

#ifndef SWSAMPLE_STREAM_CHECKPOINT_H_
#define SWSAMPLE_STREAM_CHECKPOINT_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apps/estimator_registry.h"
#include "apps/sink_spec.h"
#include "core/api.h"
#include "core/registry.h"
#include "stream/item.h"
#include "util/file_ops.h"
#include "util/status.h"

namespace swsample {

/// When to checkpoint. `dir` empty disables checkpointing entirely;
/// otherwise a checkpoint is written whenever either threshold (items
/// since the last write, seconds since the last write) is crossed at the
/// next consistent point. Both thresholds 0 means "never due" (useful for
/// a writer that only serves an explicit final Write).
struct CheckpointPolicy {
  std::string dir;
  uint64_t every_items = 0;
  double every_seconds = 0.0;
  /// Transient I/O faults (ENOSPC, EIO, injected failpoints) on shard
  /// files and the MANIFEST commit are retried under this policy before
  /// the Write reports failure.
  RetryPolicy retry;
};

/// Builds the self-describing envelope blob for one sink. Bound to the
/// (registry name, config) the harness constructed the sink from.
using SinkSerializer = std::function<Result<std::string>(StreamSink&)>;

/// The producer-side ingestion position a checkpoint captures beyond the
/// shard envelopes; written as the MANIFEST (CheckpointKind::kManifest).
struct CheckpointManifest {
  /// Events delivered to the run so far (the resume skip count).
  uint64_t items = 0;
  /// Last parsed timestamp (validates resume input; final clock sync).
  Timestamp last_ts = 0;
  /// Sharded-router state: whether any chunk shipped, and the next shard
  /// in the round-robin rotation (kChunks).
  bool saw_items = false;
  uint32_t next_chunk_shard = 0;
  /// Sharded options stamped for resume validation (0 for single-sink
  /// runs): chunk size and partition mode (ShardPartition as integer).
  uint64_t chunk_items = 0;
  uint64_t partition = 0;
  /// Per-shard delivered item counts (the shard-local re-index cursors);
  /// size 1 for single-sink runs.
  std::vector<uint64_t> shard_items;
  /// Un-flushed router buffers (sharded runs): items routed but not yet
  /// shipped as chunks, per routing target. Persisting them keeps chunk
  /// segmentation identical to an uninterrupted run.
  std::vector<std::vector<Item>> pending;
};

/// Serializers for spec-constructed shard sinks (samplers AND
/// estimators): entry `s` binds the same derived spec CreateShardedSinks
/// gives shard `s` (ShardSinkSpec: window split + forked seed).
/// `shards` == 1 describes a single-sink run.
Result<std::vector<SinkSerializer>> MakeSinkSerializers(const SinkSpec& spec,
                                                        uint64_t shards);

/// One file of a batched spill pass: a file name (relative to the batch
/// directory, no '/') plus its full contents.
struct SpillFile {
  std::string name;
  std::string data;
};

/// Writes `files` into `dir` in order, each via the same tmp + rename
/// protocol the checkpoint writer uses, then persists the directory
/// entries with ONE fsync for the whole group — the amortization that
/// makes batched keyed eviction cheap (N files, N+1 fsyncs instead of
/// 2N). `fsync_files` false skips every fsync (callers that opted out of
/// spill durability, e.g. benchmarks); the directory sync is likewise
/// elided then.
///
/// Writes stop at the first failure: on return, files [0,
/// *files_written) are durably renamed and the rest were not attempted,
/// so a caller can commit exactly the written prefix (the keyed engine
/// drops only those entries). `files_written` may be null.
///
/// Each file write goes through the FileOps seam at failpoint `site` and
/// is retried per `retry` while the failure is transient; `io_retries`
/// (nullable) accumulates the retry count.
Status SpillBatch(const std::string& dir, std::span<const SpillFile> files,
                  bool fsync_files, size_t* files_written = nullptr,
                  const RetryPolicy& retry = RetryPolicy{},
                  uint64_t* io_retries = nullptr,
                  const char* site = "spill.write");

/// Writes atomic checkpoints for one ingestion run. Drivers call Due() at
/// consistent points and Write() when it fires.
class CheckpointWriter {
 public:
  /// `serializers[s]` must serialize the sink passed as shard `s`.
  /// `start_items` seeds the every-N cadence for resumed runs (pass the
  /// resumed position's item count so the first post-resume checkpoint
  /// lands N items after the one being resumed from, not immediately).
  CheckpointWriter(CheckpointPolicy policy,
                   std::vector<SinkSerializer> serializers,
                   uint64_t start_items = 0);

  /// False when the policy has no directory (checkpointing disabled).
  bool enabled() const { return !policy_.dir.empty(); }

  /// True when a checkpoint should be taken at `items` delivered.
  bool Due(uint64_t items) const;

  /// Serializes every sink and atomically replaces the checkpoint set
  /// (shard files first, MANIFEST rename as the commit point, stale files
  /// removed after). `sinks.size()` must match the serializer count.
  Status Write(const CheckpointManifest& manifest,
               std::span<StreamSink* const> sinks);

  /// Items recorded by the last successful Write (0 before the first).
  uint64_t last_written_items() const { return last_items_; }

  /// Transient-fault retries spent across every Write so far, and the
  /// number of operations that exhausted their retry budget (each give-up
  /// also failed that Write).
  uint64_t io_retries() const { return io_retries_; }
  uint64_t io_giveups() const { return io_giveups_; }

  /// Test hook: invoked after each successful Write with the manifest's
  /// item count (the CLI's --kill-after uses this to SIGKILL itself at a
  /// deterministic point).
  void set_after_write(std::function<void(uint64_t)> fn) {
    after_write_ = std::move(fn);
  }

 private:
  CheckpointPolicy policy_;
  std::vector<SinkSerializer> serializers_;
  uint64_t io_retries_ = 0;
  uint64_t io_giveups_ = 0;
  uint64_t last_items_ = 0;
  std::chrono::steady_clock::time_point last_write_time_;
  std::function<void(uint64_t)> after_write_;
};

/// A checkpoint read back from disk: the ingestion position plus the
/// restored sinks and the envelope metadata that reconstructed them.
/// Exactly one of `samplers`/`estimators` is non-empty (all shard files
/// of one run hold the same kind and registry name); `sinks` views it.
struct ResumedCheckpoint {
  CheckpointManifest position;
  /// The registry name every shard envelope carried.
  std::string name;
  /// The per-shard envelope configs (parallel to the sink vectors) —
  /// the ORIGINAL run's configuration, authoritative over any flags the
  /// resuming process was started with.
  std::vector<SamplerConfig> sampler_configs;
  std::vector<EstimatorConfig> estimator_configs;
  std::vector<std::unique_ptr<WindowSampler>> samplers;
  std::vector<std::unique_ptr<WindowEstimator>> estimators;
  std::vector<StreamSink*> sinks;
};

/// Reads the checkpoint committed in `dir` and reconstructs every shard
/// sink. InvalidArgument on missing/corrupt files or mixed-kind shards.
Result<ResumedCheckpoint> LoadCheckpoint(const std::string& dir);

/// Serializers re-bound to the exact (name, config) pairs the resumed
/// checkpoint's envelopes carried, so a resumed run's further
/// checkpoints describe the restored sinks — immune to drift in the
/// resuming process's own flags.
std::vector<SinkSerializer> SerializersFor(const ResumedCheckpoint& resumed);

/// Shared line-iteration core of both drivers' checkpointed drives:
/// reads `f` with StreamDriver's event-line grammar, skips the first
/// `resume->items` events of the replayed input (still parsing them, and
/// failing if the clock diverges from the checkpoint's at the handoff or
/// the input ends early), resolves sequence-mode timestamps to the
/// arrival index, and calls `deliver(item)` for every event past the
/// skip point (item.index continues the checkpoint's numbering). A
/// non-OK `deliver` aborts the pump. Returns the total event count.
Result<uint64_t> PumpEventLines(
    std::FILE* f, const std::string& source_name, bool timestamped,
    const CheckpointManifest* resume,
    const std::function<Status(const Item& item)>& deliver);

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_CHECKPOINT_H_
