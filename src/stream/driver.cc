// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/driver.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstring>

#include "util/macros.h"

namespace swsample {

namespace {
using Clock = std::chrono::steady_clock;

// Shared epilogue of every Drive* method: stamps timing, throughput and
// final/peak memory into the report.
void Finalize(Clock::time_point begin, StreamSink& sink,
              DriveReport* report) {
  report->seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  report->memory_words = sink.MemoryWords();
  report->peak_memory_words =
      std::max(report->peak_memory_words, report->memory_words);
  if (report->seconds > 0) {
    report->items_per_sec =
        static_cast<double>(report->items) / report->seconds;
  }
}

bool IsBlank(const char* line) {
  for (; *line; ++line) {
    if (!std::isspace(static_cast<unsigned char>(*line))) return false;
  }
  return true;
}
}  // namespace

Status ParseEventLine(const char* line, size_t line_cap, bool timestamped,
                      const std::string& source_name, uint64_t line_no,
                      Timestamp last_ts, uint64_t* value, Timestamp* ts,
                      bool* skip) {
  *skip = false;
  const size_t len = std::strlen(line);
  if (len + 1 == line_cap && line[len - 1] != '\n') {
    return Status::InvalidArgument(
        source_name + ":" + std::to_string(line_no) +
        ": event line too long (limit " + std::to_string(line_cap - 2) +
        " characters)");
  }
  if (IsBlank(line)) {
    *skip = true;
    return Status::Ok();
  }
  if (timestamped) {
    if (std::sscanf(line, "%" SCNd64 " %" SCNu64, ts, value) != 2) {
      return Status::InvalidArgument(
          source_name + ":" + std::to_string(line_no) +
          ": malformed event line (expected \"<timestamp> <value>\")");
    }
    if (*ts < last_ts) {
      return Status::InvalidArgument(
          source_name + ":" + std::to_string(line_no) +
          ": timestamps must be non-decreasing");
    }
    return Status::Ok();
  }
  if (std::sscanf(line, "%" SCNu64, value) != 1) {
    return Status::InvalidArgument(
        source_name + ":" + std::to_string(line_no) +
        ": malformed event line (expected \"<value>\")");
  }
  return Status::Ok();
}

StreamDriver::StreamDriver(const Options& options) : options_(options) {}

/// Accumulates items into batch_size runs, forwards them to the sink,
/// and maintains the report counters. Not reentrant; one Pump per Drive.
class StreamDriver::Pump {
 public:
  Pump(const Options& options, StreamSink& sink, DriveReport* report)
      : options_(options), sink_(sink), report_(report) {
    if (options_.batch_size > 0) buffer_.reserve(options_.batch_size);
  }

  void Push(const Item& item) {
    if (options_.batch_size == 0) {
      sink_.Observe(item);
      ++report_->items;
      ++report_->batches;  // a "batch" of one, for uniform reporting
      ProbeMaybe();
      return;
    }
    buffer_.push_back(item);
    if (buffer_.size() >= options_.batch_size) Flush();
  }

  void PushBurst(const std::vector<Item>& burst) {
    for (const Item& item : burst) Push(item);
  }

  void AdvanceTime(Timestamp now) {
    Flush();  // keep arrival/clock order identical to unbatched feeding
    sink_.AdvanceTime(now);
  }

  void Flush() {
    if (buffer_.empty()) return;
    sink_.ObserveBatch(std::span<const Item>(buffer_));
    report_->items += buffer_.size();
    ++report_->batches;
    buffer_.clear();
    ProbeMaybe();
  }

  /// Items accumulated but not yet delivered. Zero exactly at batch
  /// boundaries — the only points where a checkpoint may be taken
  /// without disturbing the batch segmentation an uninterrupted run
  /// would produce.
  size_t buffered() const { return buffer_.size(); }

 private:
  void ProbeMaybe() {
    if (options_.memory_probe_every == 0) return;
    if (report_->batches % options_.memory_probe_every != 0) return;
    report_->peak_memory_words =
        std::max(report_->peak_memory_words, sink_.MemoryWords());
  }

  const Options& options_;
  StreamSink& sink_;
  DriveReport* report_;
  std::vector<Item> buffer_;
};

DriveReport StreamDriver::Drive(std::span<const Item> items,
                                StreamSink& sink) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  for (const Item& item : items) pump.Push(item);
  pump.Flush();
  Finalize(begin, sink, &report);
  return report;
}

DriveReport StreamDriver::DriveSynthetic(SyntheticStream& stream,
                                         uint64_t steps,
                                         StreamSink& sink) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  for (uint64_t step = 0; step < steps; ++step) {
    const std::vector<Item>& burst = stream.Step();
    if (burst.empty()) {
      ++report.empty_steps;
      pump.AdvanceTime(stream.now());
    } else {
      pump.PushBurst(burst);
    }
  }
  pump.Flush();
  Finalize(begin, sink, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveLines(std::FILE* f,
                                             const std::string& source_name,
                                             bool timestamped,
                                             StreamSink& sink,
                                             const ProgressFn& progress,
                                             uint64_t progress_every) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  char line[256];
  StreamIndex index = 0;
  Timestamp last_ts = 0;
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f)) {
    ++line_no;
    uint64_t value = 0;
    Timestamp ts = 0;
    bool skip = false;
    if (Status s = ParseEventLine(line, sizeof(line), timestamped,
                                  source_name, line_no, last_ts, &value, &ts,
                                  &skip);
        !s.ok()) {
      return s;
    }
    if (skip) continue;
    if (timestamped) {
      last_ts = ts;
    } else {
      ts = static_cast<Timestamp>(index);
    }
    pump.Push(Item{value, index++, ts});
    if (progress && progress_every && index % progress_every == 0) {
      pump.Flush();
      progress(index);
    }
  }
  pump.Flush();
  Finalize(begin, sink, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveFile(const std::string& path,
                                            bool timestamped,
                                            StreamSink& sink) const {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open stream file: " + path);
  }
  auto result = DriveLines(f, path, timestamped, sink);
  std::fclose(f);
  return result;
}

Result<DriveReport> StreamDriver::DriveLinesCheckpointed(
    std::FILE* f, const std::string& source_name, bool timestamped,
    StreamSink& sink, CheckpointWriter* writer,
    const CheckpointManifest* resume, const ProgressFn& progress,
    uint64_t progress_every) const {
  if (resume != nullptr) {
    if (resume->shard_items.size() != 1 ||
        resume->shard_items[0] != resume->items) {
      return Status::InvalidArgument(
          source_name +
          ": checkpoint was written by a sharded run; resume it with "
          "ShardedStreamDriver");
    }
    for (const std::vector<Item>& buffer : resume->pending) {
      if (!buffer.empty()) {
        return Status::InvalidArgument(
            source_name + ": single-sink checkpoint has pending items");
      }
    }
  }
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  StreamSink* const sinks[] = {&sink};
  auto deliver = [&](const Item& item) -> Status {
    pump.Push(item);
    const uint64_t delivered = item.index + 1;
    // Checkpoints only at batch boundaries — see Pump::buffered().
    if (writer != nullptr && pump.buffered() == 0 &&
        writer->Due(delivered)) {
      CheckpointManifest manifest;
      manifest.items = delivered;
      manifest.last_ts = timestamped ? item.timestamp : 0;
      manifest.shard_items = {delivered};
      if (Status s = writer->Write(manifest, sinks); !s.ok()) return s;
    }
    if (progress && progress_every && delivered % progress_every == 0) {
      pump.Flush();
      progress(delivered);
    }
    return Status::Ok();
  };
  auto events = PumpEventLines(f, source_name, timestamped, resume, deliver);
  if (!events.ok()) return events.status();
  pump.Flush();
  Finalize(begin, sink, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveFileCheckpointed(
    const std::string& path, bool timestamped, StreamSink& sink,
    CheckpointWriter* writer, const CheckpointManifest* resume) const {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open stream file: " + path);
  }
  auto result =
      DriveLinesCheckpointed(f, path, timestamped, sink, writer, resume);
  std::fclose(f);
  return result;
}

}  // namespace swsample
