// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/driver.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define SWSAMPLE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/bits.h"
#include "util/file_ops.h"
#include "util/macros.h"

namespace swsample {

namespace {
using Clock = std::chrono::steady_clock;

/// Line buffer size shared by the stdio paths; the mmap path enforces the
/// same limit so both report identical errors on over-long lines.
constexpr size_t kEventLineCap = 256;

// Shared epilogue of every Drive* method: stamps timing, throughput and
// final/peak memory into the report.
void Finalize(Clock::time_point begin, StreamSink& sink,
              DriveReport* report) {
  report->seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  report->memory_words = sink.MemoryWords();
  report->peak_memory_words =
      std::max(report->peak_memory_words, report->memory_words);
  if (report->seconds > 0) {
    report->items_per_sec =
        static_cast<double>(report->items) / report->seconds;
  }
}

/// The grammar's whitespace set (what sscanf would skip).
inline bool IsSpaceByte(char c) {
  return c == ' ' || (c >= '\t' && c <= '\r');
}

/// Tight decimal parse over raw bytes: optional whitespace, optional
/// sign, at least one digit; advances `p` past the digits. No locale, no
/// errno, no copies — this is the per-line hot loop of DriveBuffer.
/// Matches the strtoull family the stdio path historically used: digit
/// overflow saturates the magnitude at UINT64_MAX (the sign is reported
/// separately so callers can reproduce strtoull's modular '-' handling
/// or strtoll's signed saturation).
inline bool ParseDecimal(const char*& p, const char* end, uint64_t* magnitude,
                         bool* negative) {
  while (p != end && IsSpaceByte(*p)) ++p;
  *negative = false;
  if (p != end && (*p == '+' || *p == '-')) {
    *negative = *p == '-';
    ++p;
  }
  if (p == end || *p < '0' || *p > '9') return false;
  uint64_t v = 0;
  bool overflow = false;
  if constexpr (std::endian::native == std::endian::little) {
    // SWAR gulp: fold eight digits per multiply ladder while the
    // accumulated value provably cannot overflow (v * 1e8 + 99999999 <=
    // UINT64_MAX); the scalar loop below handles the tail and reproduces
    // the exact saturation semantics near the limit.
    constexpr uint64_t kGulpSafe = (UINT64_MAX - 99999999) / 100000000;
    while (end - p >= 8 && v <= kGulpSafe) {
      uint64_t chunk;
      __builtin_memcpy(&chunk, p, 8);
      if (!IsEightDigits(chunk)) break;
      v = v * 100000000 + ParseEightDigits(chunk);
      p += 8;
    }
  }
  while (p != end && *p >= '0' && *p <= '9') {
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      overflow = true;
    } else {
      v = v * 10 + digit;
    }
    ++p;
  }
  *magnitude = overflow ? UINT64_MAX : v;
  return true;
}

/// strtoll-style signed saturation of a parsed (magnitude, sign).
inline Timestamp SaturateTimestamp(uint64_t magnitude, bool negative) {
  if (negative) {
    return magnitude > static_cast<uint64_t>(INT64_MAX)
               ? INT64_MIN
               : -static_cast<Timestamp>(magnitude);
  }
  return magnitude > static_cast<uint64_t>(INT64_MAX)
             ? INT64_MAX
             : static_cast<Timestamp>(magnitude);
}
}  // namespace

LineParse ParseEventSpan(const char* begin, const char* end, bool timestamped,
                         Timestamp last_ts, uint64_t* value, Timestamp* ts) {
  const char* p = begin;
  while (p != end && IsSpaceByte(*p)) ++p;
  if (p == end) return LineParse::kBlank;
  bool negative = false;
  if (timestamped) {
    uint64_t ts_magnitude = 0;
    bool ts_negative = false;
    uint64_t magnitude = 0;
    if (!ParseDecimal(p, end, &ts_magnitude, &ts_negative) ||
        !ParseDecimal(p, end, &magnitude, &negative)) {
      return LineParse::kMalformed;
    }
    *ts = SaturateTimestamp(ts_magnitude, ts_negative);
    *value = negative ? (0 - magnitude) : magnitude;
    if (*ts < last_ts) return LineParse::kNonMonotone;
    return LineParse::kOk;
  }
  uint64_t magnitude = 0;
  if (!ParseDecimal(p, end, &magnitude, &negative)) {
    return LineParse::kMalformed;
  }
  *value = negative ? (0 - magnitude) : magnitude;
  return LineParse::kOk;
}

Status LineParseError(LineParse failure, const std::string& source_name,
                      uint64_t line_no, bool timestamped) {
  const std::string where = source_name + ":" + std::to_string(line_no);
  switch (failure) {
    case LineParse::kNonMonotone:
      return Status::InvalidArgument(where +
                                     ": timestamps must be non-decreasing");
    case LineParse::kMalformed:
    default:
      return Status::InvalidArgument(
          where + ": malformed event line (expected " +
          (timestamped ? "\"<timestamp> <value>\")" : "\"<value>\")"));
  }
}

Status ParseEventLine(const char* line, size_t line_cap, bool timestamped,
                      const std::string& source_name, uint64_t line_no,
                      Timestamp last_ts, uint64_t* value, Timestamp* ts,
                      bool* skip) {
  *skip = false;
  const size_t len = std::strlen(line);
  if (len + 1 == line_cap && line[len - 1] != '\n') {
    return Status::InvalidArgument(
        source_name + ":" + std::to_string(line_no) +
        ": event line too long (limit " + std::to_string(line_cap - 2) +
        " characters)");
  }
  const LineParse parsed =
      ParseEventSpan(line, line + len, timestamped, last_ts, value, ts);
  switch (parsed) {
    case LineParse::kOk:
      return Status::Ok();
    case LineParse::kBlank:
      *skip = true;
      return Status::Ok();
    default:
      return LineParseError(parsed, source_name, line_no, timestamped);
  }
}

StreamDriver::StreamDriver(const Options& options) : options_(options) {}

/// Accumulates items into batch_size runs, forwards them to the sink,
/// and maintains the report counters. Not reentrant; one Pump per Drive.
class StreamDriver::Pump {
 public:
  Pump(const Options& options, StreamSink& sink, DriveReport* report)
      : options_(options), sink_(sink), report_(report) {
    if (options_.batch_size > 0) buffer_.reserve(options_.batch_size);
  }

  void Push(const Item& item) {
    if (options_.batch_size == 0) {
      if (options_.track_batch_latency) {
        const auto t0 = Clock::now();
        sink_.Observe(item);
        latencies_.push_back(
            std::chrono::duration<double>(Clock::now() - t0).count());
      } else {
        sink_.Observe(item);
      }
      ++report_->items;
      ++report_->batches;  // a "batch" of one, for uniform reporting
      ProbeMaybe();
      return;
    }
    buffer_.push_back(item);
    if (buffer_.size() >= options_.batch_size) Flush();
  }

  void PushBurst(const std::vector<Item>& burst) {
    for (const Item& item : burst) Push(item);
  }

  /// Feeds a span with the same batch segmentation Push-by-one would
  /// produce, but delivers every full batch_size run as a subspan of the
  /// caller's storage — no staging copy through buffer_. Only a batch
  /// straddling the span edge (or a partially filled buffer_ on entry)
  /// goes through the buffer.
  void PushSpan(std::span<const Item> items) {
    if (options_.batch_size == 0) {
      for (const Item& item : items) Push(item);
      return;
    }
    size_t off = 0;
    while (off < items.size()) {
      if (buffer_.empty() && items.size() - off >= options_.batch_size) {
        DeliverBatch(items.subspan(off, options_.batch_size));
        off += options_.batch_size;
      } else {
        const size_t take = std::min(options_.batch_size - buffer_.size(),
                                     items.size() - off);
        buffer_.insert(buffer_.end(), items.begin() + off,
                       items.begin() + off + take);
        off += take;
        if (buffer_.size() >= options_.batch_size) Flush();
      }
    }
  }

  void AdvanceTime(Timestamp now) {
    Flush();  // keep arrival/clock order identical to unbatched feeding
    sink_.AdvanceTime(now);
  }

  void Flush() {
    if (buffer_.empty()) return;
    DeliverBatch(std::span<const Item>(buffer_));
    buffer_.clear();
  }

  /// Stamps p50/p99 batch latency into the report (call once, after the
  /// final Flush). No-op unless track_batch_latency was set.
  void FinishLatencies() {
    if (latencies_.empty()) return;
    std::sort(latencies_.begin(), latencies_.end());
    report_->p50_batch_seconds = latencies_[(latencies_.size() - 1) / 2];
    report_->p99_batch_seconds =
        latencies_[(latencies_.size() - 1) * 99 / 100];
  }

  /// Items accumulated but not yet delivered. Zero exactly at batch
  /// boundaries — the only points where a checkpoint may be taken
  /// without disturbing the batch segmentation an uninterrupted run
  /// would produce.
  size_t buffered() const { return buffer_.size(); }

 private:
  void DeliverBatch(std::span<const Item> batch) {
    if (options_.track_batch_latency) {
      const auto t0 = Clock::now();
      sink_.ObserveBatch(batch);
      latencies_.push_back(
          std::chrono::duration<double>(Clock::now() - t0).count());
    } else {
      sink_.ObserveBatch(batch);
    }
    report_->items += batch.size();
    ++report_->batches;
    ProbeMaybe();
  }

  void ProbeMaybe() {
    if (options_.memory_probe_every == 0) return;
    if (report_->batches % options_.memory_probe_every != 0) return;
    report_->peak_memory_words =
        std::max(report_->peak_memory_words, sink_.MemoryWords());
  }

  const Options& options_;
  StreamSink& sink_;
  DriveReport* report_;
  std::vector<Item> buffer_;
  std::vector<double> latencies_;  // only filled under track_batch_latency
};

DriveReport StreamDriver::Drive(std::span<const Item> items,
                                StreamSink& sink) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  pump.PushSpan(items);
  pump.Flush();
  pump.FinishLatencies();
  Finalize(begin, sink, &report);
  return report;
}

DriveReport StreamDriver::DriveSynthetic(SyntheticStream& stream,
                                         uint64_t steps,
                                         StreamSink& sink) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  for (uint64_t step = 0; step < steps; ++step) {
    const std::vector<Item>& burst = stream.Step();
    if (burst.empty()) {
      ++report.empty_steps;
      pump.AdvanceTime(stream.now());
    } else {
      pump.PushBurst(burst);
    }
  }
  pump.Flush();
  pump.FinishLatencies();
  Finalize(begin, sink, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveLines(std::FILE* f,
                                             const std::string& source_name,
                                             bool timestamped,
                                             StreamSink& sink,
                                             const ProgressFn& progress,
                                             uint64_t progress_every) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  char line[256];
  StreamIndex index = 0;
  Timestamp last_ts = 0;
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f)) {
    ++line_no;
    uint64_t value = 0;
    Timestamp ts = 0;
    bool skip = false;
    if (Status s = ParseEventLine(line, sizeof(line), timestamped,
                                  source_name, line_no, last_ts, &value, &ts,
                                  &skip);
        !s.ok()) {
      return s;
    }
    if (skip) continue;
    if (timestamped) {
      last_ts = ts;
    } else {
      ts = static_cast<Timestamp>(index);
    }
    pump.Push(Item{value, index++, ts});
    if (progress && progress_every && index % progress_every == 0) {
      pump.Flush();
      progress(index);
    }
  }
  pump.Flush();
  pump.FinishLatencies();
  Finalize(begin, sink, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveBuffer(std::string_view data,
                                              const std::string& source_name,
                                              bool timestamped,
                                              StreamSink& sink) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  const char* p = data.data();
  const char* const end = p + data.size();
  StreamIndex index = 0;
  Timestamp last_ts = 0;
  uint64_t line_no = 0;
  while (p != end) {
    // One word-wise scan finds whichever of '\n' (line break) or '\0'
    // (strlen-style truncation, matching the stdio path's NUL-terminated
    // buffer semantics) comes first, instead of two memchr passes.
    const char* hit = FindNewlineOrNul(p, end);
    const char* nl;
    const char* line_end;
    if (hit == end || *hit == '\n') {
      nl = hit == end ? nullptr : hit;
      line_end = hit;
    } else {
      // Rare path: a stray NUL truncates the parsed span, but the line
      // itself still runs to the newline — both for advancing to the next
      // line and for the over-long check below, which measures the full
      // (pre-truncation) length exactly like the two-pass code did.
      nl = static_cast<const char*>(std::memchr(hit, '\n', end - hit));
      line_end = hit;
    }
    const char* const full_line_end = nl != nullptr ? nl : end;
    ++line_no;
    // Same limit the stdio path's fixed buffer imposes, same message.
    if (static_cast<size_t>(full_line_end - p) + 1 >= kEventLineCap) {
      return Status::InvalidArgument(
          source_name + ":" + std::to_string(line_no) +
          ": event line too long (limit " +
          std::to_string(kEventLineCap - 2) + " characters)");
    }
    uint64_t value = 0;
    Timestamp ts = 0;
    const LineParse parsed =
        ParseEventSpan(p, line_end, timestamped, last_ts, &value, &ts);
    if (parsed == LineParse::kOk) {
      if (timestamped) {
        last_ts = ts;
      } else {
        ts = static_cast<Timestamp>(index);
      }
      pump.Push(Item{value, index++, ts});
    } else if (parsed != LineParse::kBlank) {
      return LineParseError(parsed, source_name, line_no, timestamped);
    }
    p = nl != nullptr ? nl + 1 : end;
  }
  pump.Flush();
  pump.FinishLatencies();
  Finalize(begin, sink, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveFile(const std::string& path,
                                            bool timestamped,
                                            StreamSink& sink) const {
#if SWSAMPLE_HAVE_MMAP
  // Fast path: map regular files read-only and parse in place — no
  // per-line copies, no stdio locking, and the kernel readahead streams
  // pages in under MADV_SEQUENTIAL.
  auto fd_or = OpenReadFd("ingest.open", path);
  if (!fd_or.ok()) return fd_or.status();
  const int fd = fd_or.value();
  struct stat st;
  // The SIZE_MAX guard keeps a >4 GiB file on an ILP32 build from being
  // silently truncated by the size_t cast — such files take the stdio
  // path instead.
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0 &&
      static_cast<uint64_t>(st.st_size) <= SIZE_MAX) {
    const size_t size = static_cast<size_t>(st.st_size);
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::madvise(map, size, MADV_SEQUENTIAL);
      auto result = DriveBuffer(
          std::string_view(static_cast<const char*>(map), size), path,
          timestamped, sink);
      ::munmap(map, size);
      ::close(fd);
      return result;
    }
  }
  ::close(fd);
  // Fall through: empty files, pipes/devices, or mmap failure use stdio.
#endif
  auto f_or = OpenStdioFile("ingest.open", path);
  if (!f_or.ok()) return f_or.status();
  std::FILE* f = f_or.value();
  auto result = DriveLines(f, path, timestamped, sink);
  std::fclose(f);
  return result;
}

Result<DriveReport> StreamDriver::DriveLinesCheckpointed(
    std::FILE* f, const std::string& source_name, bool timestamped,
    StreamSink& sink, CheckpointWriter* writer,
    const CheckpointManifest* resume, const ProgressFn& progress,
    uint64_t progress_every) const {
  if (resume != nullptr) {
    if (resume->shard_items.size() != 1 ||
        resume->shard_items[0] != resume->items) {
      return Status::InvalidArgument(
          source_name +
          ": checkpoint was written by a sharded run; resume it with "
          "ShardedStreamDriver");
    }
    for (const std::vector<Item>& buffer : resume->pending) {
      if (!buffer.empty()) {
        return Status::InvalidArgument(
            source_name + ": single-sink checkpoint has pending items");
      }
    }
  }
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sink, &report);
  StreamSink* const sinks[] = {&sink};
  auto deliver = [&](const Item& item) -> Status {
    pump.Push(item);
    const uint64_t delivered = item.index + 1;
    // Checkpoints only at batch boundaries — see Pump::buffered().
    if (writer != nullptr && pump.buffered() == 0 &&
        writer->Due(delivered)) {
      CheckpointManifest manifest;
      manifest.items = delivered;
      manifest.last_ts = timestamped ? item.timestamp : 0;
      manifest.shard_items = {delivered};
      if (Status s = writer->Write(manifest, sinks); !s.ok()) return s;
    }
    if (progress && progress_every && delivered % progress_every == 0) {
      pump.Flush();
      progress(delivered);
    }
    return Status::Ok();
  };
  auto events = PumpEventLines(f, source_name, timestamped, resume, deliver);
  if (!events.ok()) return events.status();
  pump.Flush();
  pump.FinishLatencies();
  Finalize(begin, sink, &report);
  if (writer != nullptr) {
    report.io_retries = writer->io_retries();
    report.io_giveups = writer->io_giveups();
  }
  return report;
}

Result<DriveReport> StreamDriver::DriveFileCheckpointed(
    const std::string& path, bool timestamped, StreamSink& sink,
    CheckpointWriter* writer, const CheckpointManifest* resume) const {
  auto f_or = OpenStdioFile("ingest.open", path);
  if (!f_or.ok()) return f_or.status();
  std::FILE* f = f_or.value();
  auto result =
      DriveLinesCheckpointed(f, path, timestamped, sink, writer, resume);
  std::fclose(f);
  return result;
}

}  // namespace swsample
