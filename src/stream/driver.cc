// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/driver.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>

#include "util/macros.h"

namespace swsample {

namespace {
using Clock = std::chrono::steady_clock;

// Shared epilogue of every Drive* method: stamps timing, throughput and
// final/peak memory into the report.
void Finalize(Clock::time_point begin, WindowSampler& sampler,
              DriveReport* report) {
  report->seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  report->memory_words = sampler.MemoryWords();
  report->peak_memory_words =
      std::max(report->peak_memory_words, report->memory_words);
  if (report->seconds > 0) {
    report->items_per_sec =
        static_cast<double>(report->items) / report->seconds;
  }
}
}  // namespace

StreamDriver::StreamDriver(const Options& options) : options_(options) {}

/// Accumulates items into batch_size runs, forwards them to the sampler,
/// and maintains the report counters. Not reentrant; one Pump per Drive.
class StreamDriver::Pump {
 public:
  Pump(const Options& options, WindowSampler& sampler, DriveReport* report)
      : options_(options), sampler_(sampler), report_(report) {
    if (options_.batch_size > 0) buffer_.reserve(options_.batch_size);
  }

  void Push(const Item& item) {
    if (options_.batch_size == 0) {
      sampler_.Observe(item);
      ++report_->items;
      ++report_->batches;  // a "batch" of one, for uniform reporting
      ProbeMaybe();
      return;
    }
    buffer_.push_back(item);
    if (buffer_.size() >= options_.batch_size) Flush();
  }

  void PushBurst(const std::vector<Item>& burst) {
    for (const Item& item : burst) Push(item);
  }

  void AdvanceTime(Timestamp now) {
    Flush();  // keep arrival/clock order identical to unbatched feeding
    sampler_.AdvanceTime(now);
  }

  void Flush() {
    if (buffer_.empty()) return;
    sampler_.ObserveBatch(std::span<const Item>(buffer_));
    report_->items += buffer_.size();
    ++report_->batches;
    buffer_.clear();
    ProbeMaybe();
  }

 private:
  void ProbeMaybe() {
    if (options_.memory_probe_every == 0) return;
    if (report_->batches % options_.memory_probe_every != 0) return;
    report_->peak_memory_words =
        std::max(report_->peak_memory_words, sampler_.MemoryWords());
  }

  const Options& options_;
  WindowSampler& sampler_;
  DriveReport* report_;
  std::vector<Item> buffer_;
};

DriveReport StreamDriver::Drive(std::span<const Item> items,
                                WindowSampler& sampler) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sampler, &report);
  for (const Item& item : items) pump.Push(item);
  pump.Flush();
  Finalize(begin, sampler, &report);
  return report;
}

DriveReport StreamDriver::DriveSynthetic(SyntheticStream& stream,
                                         uint64_t steps,
                                         WindowSampler& sampler) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sampler, &report);
  for (uint64_t step = 0; step < steps; ++step) {
    const std::vector<Item>& burst = stream.Step();
    if (burst.empty()) {
      ++report.empty_steps;
      pump.AdvanceTime(stream.now());
    } else {
      pump.PushBurst(burst);
    }
  }
  pump.Flush();
  Finalize(begin, sampler, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveLines(std::FILE* f,
                                             const std::string& source_name,
                                             bool timestamped,
                                             WindowSampler& sampler,
                                             const ProgressFn& progress,
                                             uint64_t progress_every) const {
  DriveReport report;
  const auto begin = Clock::now();
  Pump pump(options_, sampler, &report);
  char line[256];
  StreamIndex index = 0;
  Timestamp last_ts = 0;
  while (std::fgets(line, sizeof(line), f)) {
    uint64_t value = 0;
    Timestamp ts = 0;
    if (timestamped) {
      if (std::sscanf(line, "%" SCNd64 " %" SCNu64, &ts, &value) != 2) {
        continue;
      }
      if (ts < last_ts) {
        return Status::InvalidArgument(
            "timestamps must be non-decreasing in " + source_name);
      }
      last_ts = ts;
    } else {
      if (std::sscanf(line, "%" SCNu64, &value) != 1) continue;
      ts = static_cast<Timestamp>(index);
    }
    pump.Push(Item{value, index++, ts});
    if (progress && progress_every && index % progress_every == 0) {
      pump.Flush();
      progress(index, sampler);
    }
  }
  pump.Flush();
  Finalize(begin, sampler, &report);
  return report;
}

Result<DriveReport> StreamDriver::DriveFile(const std::string& path,
                                            bool timestamped,
                                            WindowSampler& sampler) const {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open stream file: " + path);
  }
  auto result = DriveLines(f, path, timestamped, sampler);
  std::fclose(f);
  return result;
}

}  // namespace swsample
