// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Batched ingestion engine: feeds generated or file-backed streams through
/// any StreamSink — a sampler from the sampler registry or an estimator
/// from the estimator registry — in batches, and reports throughput and
/// live memory. This is the one place single-threaded harness code pumps
/// items from — benchmarks, examples and the CLI share it — and the
/// sharded engine (stream/sharded_driver.h) reuses its line grammar, so
/// the two backends stay drop-in interchangeable at call sites.
///
/// Ownership: a driver borrows the sink only for the duration of one
/// Drive* call and holds no state between calls.
///
/// Thread-safety: a StreamDriver is immutable after construction and may
/// be shared across threads, but each Drive* call pumps one sink from the
/// calling thread — drive a given sink from one thread at a time.
///
/// Status conventions: unreadable files and malformed input return
/// InvalidArgument through Result<DriveReport> with "source:line"-prefixed
/// messages (e.g. `events.txt:17: malformed event line (expected
/// "<timestamp> <value>")`); Drive/DriveSynthetic cannot fail and return
/// plain reports.

#ifndef SWSAMPLE_STREAM_DRIVER_H_
#define SWSAMPLE_STREAM_DRIVER_H_

#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/api.h"
#include "stream/checkpoint.h"
#include "stream/item.h"
#include "stream/stream_gen.h"
#include "util/status.h"

namespace swsample {

/// What one Drive* call did, with wall-clock throughput.
struct DriveReport {
  uint64_t items = 0;            ///< arrivals delivered
  uint64_t batches = 0;          ///< ObserveBatch (or Observe-run) calls
  uint64_t empty_steps = 0;      ///< AdvanceTime-only steps (synthetic)
  double seconds = 0.0;          ///< wall-clock ingestion time
  double items_per_sec = 0.0;    ///< items / seconds (0 when instant)
  uint64_t memory_words = 0;     ///< sink MemoryWords() after the run
  uint64_t peak_memory_words = 0;  ///< max MemoryWords() across probes
  /// Per-ObserveBatch wall-clock percentiles, only populated when
  /// Options::track_batch_latency is set (the bench reporter's tail
  /// statistic); 0 otherwise.
  double p50_batch_seconds = 0.0;
  double p99_batch_seconds = 0.0;
  /// Transient-I/O retries spent (and retry budgets exhausted) by the
  /// checkpoint writer during a checkpointed drive; 0 otherwise.
  uint64_t io_retries = 0;
  uint64_t io_giveups = 0;
};

/// Drives streams through a sampler or estimator in batches.
class StreamDriver {
 public:
  struct Options {
    /// Items per ObserveBatch call; 0 means per-item Observe (the slow
    /// path, kept selectable so benchmarks can compare the two).
    uint64_t batch_size = 1024;
    /// Probe MemoryWords() every this many batches for the peak statistic;
    /// 0 probes only once at the end (probing an O(n) oracle is not free).
    uint64_t memory_probe_every = 16;
    /// Record every batch's delivery latency and report p50/p99 in the
    /// DriveReport. Off by default: the timestamp pair per batch is cheap
    /// but not free, and only the bench reporter wants the tail.
    bool track_batch_latency = false;
  };

  StreamDriver() : StreamDriver(Options{}) {}
  explicit StreamDriver(const Options& options);

  /// Feeds a pre-materialized run of consecutive items.
  DriveReport Drive(std::span<const Item> items, StreamSink& sink) const;

  /// Steps `steps` bursts out of a synthetic stream. Empty bursts become
  /// AdvanceTime calls (flushing any pending batch first, so the sink
  /// observes the same arrival/clock order as unbatched feeding).
  DriveReport DriveSynthetic(SyntheticStream& stream, uint64_t steps,
                             StreamSink& sink) const;

  /// Called every `progress_every` items (pending batches are flushed
  /// first, so the sink state reflects everything delivered so far).
  using ProgressFn = std::function<void(uint64_t items)>;

  /// Feeds a text stream, one event per line: "<value>" when
  /// `timestamped` is false (timestamp := arrival index) or
  /// "<timestamp> <value>" with non-decreasing timestamps when true.
  /// Blank (whitespace-only) lines are skipped; a malformed line, an
  /// over-long line, or a decreasing timestamp is an InvalidArgument
  /// error reported against `source_name` with its line number.
  Result<DriveReport> DriveLines(std::FILE* f, const std::string& source_name,
                                 bool timestamped, StreamSink& sink,
                                 const ProgressFn& progress = nullptr,
                                 uint64_t progress_every = 0) const;

  /// Zero-copy ingestion over an in-memory text buffer with the DriveLines
  /// grammar: events are parsed straight out of `data` (no per-line
  /// std::string, no stdio), errors carry the same "source:line" messages.
  /// This is the core DriveFile's mmap fast path runs on.
  Result<DriveReport> DriveBuffer(std::string_view data,
                                  const std::string& source_name,
                                  bool timestamped, StreamSink& sink) const;

  /// DriveLines over a file path. Regular files are mmap'ed and ingested
  /// through DriveBuffer (zero-copy); pipes/devices and platforms without
  /// mmap fall back to the buffered stdio path. Behavior is identical for
  /// any input without NUL bytes; stray NULs truncate their line exactly
  /// like the stdio path's strlen, with one pathological exception — a
  /// NUL inside an over-long (> 254 chars) line is rejected by both paths
  /// but may be reported against a different line number (the stdio
  /// buffer re-splits such lines into 255-byte chunks).
  Result<DriveReport> DriveFile(const std::string& path, bool timestamped,
                                StreamSink& sink) const;

  /// DriveLines with crash recovery: writes periodic checkpoints through
  /// `writer` (nullable = disabled) and, when `resume` is non-null,
  /// skips the first `resume->items` events (the input must replay the
  /// stream from the beginning) and continues indices from there into a
  /// sink restored by ResumeFrom. Checkpoints are taken only at batch
  /// boundaries, so a resumed run's batch segmentation — and therefore
  /// its RNG draws — is identical to an uninterrupted run's: the final
  /// state is bit-identical. The report counts only items delivered by
  /// THIS call (resumed runs add resume->items for stream totals).
  Result<DriveReport> DriveLinesCheckpointed(
      std::FILE* f, const std::string& source_name, bool timestamped,
      StreamSink& sink, CheckpointWriter* writer,
      const CheckpointManifest* resume, const ProgressFn& progress = nullptr,
      uint64_t progress_every = 0) const;

  /// DriveLinesCheckpointed over a file path.
  Result<DriveReport> DriveFileCheckpointed(
      const std::string& path, bool timestamped, StreamSink& sink,
      CheckpointWriter* writer, const CheckpointManifest* resume) const;

  /// Reads back the checkpoint committed in `dir` (see
  /// stream/checkpoint.h); pass its position as `resume` above.
  static Result<ResumedCheckpoint> ResumeFrom(const std::string& dir) {
    return LoadCheckpoint(dir);
  }

  const Options& options() const { return options_; }

 private:
  /// Shared pump: delivers buffered items, tracks batches + peak memory.
  class Pump;

  Options options_;
};

/// Allocation-free core of the event-line grammar: how one line failed to
/// parse, if it did. Error strings are built lazily (LineParseError) only
/// on the failing line — successfully parsed lines allocate nothing.
enum class LineParse {
  kOk,           ///< *value (and *ts when timestamped) are set
  kBlank,        ///< whitespace-only line; skip it
  kMalformed,    ///< not "<value>" / "<timestamp> <value>"
  kNonMonotone,  ///< timestamp decreased
};

/// Parses the event on [begin, end) (one line, no terminator) with a
/// tight digit loop over the raw bytes — no sscanf, no locale, no copies.
/// Grammar matches the historical sscanf forms: optional whitespace,
/// optional sign, digits; trailing bytes after the last field ignored.
LineParse ParseEventSpan(const char* begin, const char* end, bool timestamped,
                         Timestamp last_ts, uint64_t* value, Timestamp* ts);

/// Builds the InvalidArgument status for a failed line (cold path).
Status LineParseError(LineParse failure, const std::string& source_name,
                      uint64_t line_no, bool timestamped);

/// The event-line grammar shared by StreamDriver::DriveLines and the
/// sharded driver. Parses one NUL-terminated `line` (as read into a
/// buffer of `line_cap` bytes) into (*value, *ts), enforcing
/// non-decreasing timestamps against `last_ts` when `timestamped`. Blank
/// (whitespace-only) lines set *skip and touch nothing else. Over-long
/// and malformed lines return InvalidArgument mentioning
/// `source_name:line_no`.
Status ParseEventLine(const char* line, size_t line_cap, bool timestamped,
                      const std::string& source_name, uint64_t line_no,
                      Timestamp last_ts, uint64_t* value, Timestamp* ts,
                      bool* skip);

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_DRIVER_H_
