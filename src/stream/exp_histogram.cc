// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/exp_histogram.h"

#include <cmath>

#include "util/bits.h"
#include "util/macros.h"

namespace swsample {

Result<ExpHistogram> ExpHistogram::Create(Timestamp t0, double eps) {
  if (t0 < 1) {
    return Status::InvalidArgument("ExpHistogram: t0 must be >= 1");
  }
  if (!(eps > 0.0 && eps <= 1.0)) {
    return Status::InvalidArgument("ExpHistogram: eps must be in (0, 1]");
  }
  const uint64_t k = static_cast<uint64_t>(std::ceil(1.0 / eps));
  return ExpHistogram(t0, k / 2 + 2);
}

void ExpHistogram::EvictExpired() {
  // A bucket is dropped once even its NEWEST element expired; the oldest
  // surviving bucket may straddle the window boundary, which is where the
  // eps error comes from. The sweep reads only the dense timestamp ring.
  while (!newest_.empty() && now_ - newest_.front() >= t0_) {
    const uint64_t c = count_.front();
    total_ -= c;
    --class_count_[FloorLog2(c)];
    newest_.pop_front();
    count_.pop_front();
  }
}

void ExpHistogram::MergeCascade() {
  // DGIM merge rule via the class counters: a freshly appended size-1
  // bucket can only overflow class 0, and a merge moves one bucket from
  // class c to class c+1, so overflows cascade upward. The two oldest
  // buckets of class c sit at ring indices above(c) and above(c) + 1 with
  // above(c) = sum of the counts of all larger classes; the doubled bucket
  // stays in place, which is exactly the end of class c+1's block.
  for (uint32_t c = 0; c < 63 && class_count_[c] > max_per_size_; ++c) {
    uint64_t above = 0;
    for (uint32_t d = c + 1; d < 64; ++d) above += class_count_[d];
    const uint64_t i = above;
    SWS_DCHECK(count_[i] == uint64_t{1} << c);
    SWS_DCHECK(count_[i + 1] == uint64_t{1} << c);
    count_[i] *= 2;
    newest_[i] = newest_[i + 1];
    // Close the gap at i + 1 by shifting the (small) suffix of newer
    // buckets down: at most max_per_size_ per class below the cascade
    // point, O(1) amortized over adds.
    for (uint64_t j = i + 1; j + 1 < newest_.size(); ++j) {
      newest_[j] = newest_[j + 1];
      count_[j] = count_[j + 1];
    }
    newest_.pop_back();
    count_.pop_back();
    class_count_[c] -= 2;
    ++class_count_[c + 1];
  }
}

void ExpHistogram::Add(Timestamp ts) {
  // Out-of-order contract (see StreamSink): count a regressed timestamp as
  // arriving at the current clock so bucket timestamps stay non-decreasing.
  if (ts < now_) ts = now_;
  AdvanceTime(ts);
  newest_.push_back(ts);
  count_.push_back(1);
  ++class_count_[0];
  ++total_;
  MergeCascade();
}

void ExpHistogram::AdvanceTime(Timestamp now) {
  if (now < now_) return;  // clock regressions are no-ops (see StreamSink)
  now_ = now;
  EvictExpired();
}

void ExpHistogram::Save(BinaryWriter* w) const {
  w->PutI64(now_);
  w->PutU64(count_.size());
  for (uint64_t i = 0; i < count_.size(); ++i) {
    w->PutI64(newest_[i]);
    w->PutU64(count_[i]);
  }
}

bool ExpHistogram::Load(BinaryReader* r) {
  uint64_t size = 0;
  if (!r->GetI64(&now_) || now_ < 0 || !r->GetU64(&size) ||
      size > r->remaining() / 16 + 1) {
    return false;
  }
  newest_.clear();
  count_.clear();
  class_count_.fill(0);
  total_ = 0;
  for (uint64_t i = 0; i < size; ++i) {
    Timestamp newest = 0;
    uint64_t count = 0;
    // Counts are powers of two, non-increasing front (oldest) to back;
    // newest-arrival timestamps are non-decreasing, non-negative (so the
    // expiry subtraction cannot overflow) and not expired.
    if (!r->GetI64(&newest) || !r->GetU64(&count) || count < 1 ||
        (count & (count - 1)) != 0 || newest < 0 || newest > now_ ||
        now_ - newest >= t0_ ||
        (!count_.empty() &&
         (count > count_.back() || newest < newest_.back()))) {
      return false;
    }
    newest_.push_back(newest);
    count_.push_back(count);
    ++class_count_[FloorLog2(count)];
    total_ += count;
  }
  return true;
}

uint64_t ExpHistogram::Estimate() {
  EvictExpired();
  if (count_.empty()) return 0;
  // Count the straddling oldest bucket at half weight.
  return total_ - count_.front() / 2;
}

}  // namespace swsample
