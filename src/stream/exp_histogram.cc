// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/exp_histogram.h"

#include <cmath>

#include "util/macros.h"

namespace swsample {

Result<ExpHistogram> ExpHistogram::Create(Timestamp t0, double eps) {
  if (t0 < 1) {
    return Status::InvalidArgument("ExpHistogram: t0 must be >= 1");
  }
  if (!(eps > 0.0 && eps <= 1.0)) {
    return Status::InvalidArgument("ExpHistogram: eps must be in (0, 1]");
  }
  const uint64_t k = static_cast<uint64_t>(std::ceil(1.0 / eps));
  return ExpHistogram(t0, k / 2 + 2);
}

void ExpHistogram::EvictExpired() {
  // A bucket is dropped once even its NEWEST element expired; the oldest
  // surviving bucket may straddle the window boundary, which is where the
  // eps error comes from.
  while (!buckets_.empty() && now_ - buckets_.front().newest >= t0_) {
    buckets_.pop_front();
  }
}

void ExpHistogram::Merge() {
  // Walk sizes from small (back) to large (front); whenever a size class
  // exceeds max_per_size_, merge its two OLDEST buckets. A merge can
  // cascade into the next size class, hence the loop.
  for (;;) {
    uint64_t size = buckets_.empty() ? 0 : buckets_.back().count;
    bool merged = false;
    // Scan from the back (newest, smallest sizes first). Index i walks
    // newest -> oldest; when a size class overflows at i, the two oldest
    // of that class are buckets_[i] (older) and buckets_[i + 1] (newer).
    uint64_t count_of_size = 0;
    for (uint64_t back = 0; back < buckets_.size(); ++back) {
      const uint64_t i = buckets_.size() - 1 - back;
      if (buckets_[i].count != size) {
        size = buckets_[i].count;
        count_of_size = 0;
      }
      ++count_of_size;
      if (count_of_size > max_per_size_) {
        buckets_[i].count *= 2;
        buckets_[i].newest = buckets_[i + 1].newest;
        buckets_.EraseAt(i + 1);
        merged = true;
        break;
      }
    }
    if (!merged) return;
  }
}

void ExpHistogram::Add(Timestamp ts) {
  SWS_CHECK(ts >= now_);
  AdvanceTime(ts);
  buckets_.push_back(Bucket{ts, 1});
  Merge();
}

void ExpHistogram::AdvanceTime(Timestamp now) {
  SWS_CHECK(now >= now_);
  now_ = now;
  EvictExpired();
}

void ExpHistogram::Save(BinaryWriter* w) const {
  w->PutI64(now_);
  w->PutU64(buckets_.size());
  for (uint64_t i = 0; i < buckets_.size(); ++i) {
    w->PutI64(buckets_[i].newest);
    w->PutU64(buckets_[i].count);
  }
}

bool ExpHistogram::Load(BinaryReader* r) {
  uint64_t size = 0;
  if (!r->GetI64(&now_) || now_ < 0 || !r->GetU64(&size) ||
      size > r->remaining() / 16 + 1) {
    return false;
  }
  buckets_.clear();
  for (uint64_t i = 0; i < size; ++i) {
    Bucket b;
    // Counts are powers of two, non-increasing front (oldest) to back;
    // newest-arrival timestamps are non-decreasing, non-negative (so the
    // expiry subtraction cannot overflow) and not expired.
    if (!r->GetI64(&b.newest) || !r->GetU64(&b.count) || b.count < 1 ||
        (b.count & (b.count - 1)) != 0 || b.newest < 0 || b.newest > now_ ||
        now_ - b.newest >= t0_ ||
        (!buckets_.empty() && (b.count > buckets_.back().count ||
                               b.newest < buckets_.back().newest))) {
      return false;
    }
    buckets_.push_back(b);
  }
  return true;
}

uint64_t ExpHistogram::Estimate() {
  EvictExpired();
  if (buckets_.empty()) return 0;
  uint64_t total = 0;
  for (uint64_t i = 0; i < buckets_.size(); ++i) total += buckets_[i].count;
  // Count the straddling oldest bucket at half weight.
  return total - buckets_.front().count / 2;
}

}  // namespace swsample
