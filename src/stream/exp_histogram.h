// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Exponential histograms -- Datar, Gionis, Indyk, Motwani (SODA'02), the
// paper's reference [31] and the companion substrate for its negative
// result: the EXACT number of active elements in a timestamp window cannot
// be maintained in sublinear space, but a (1 +/- eps) approximation can,
// in O(eps^-1 log^2 n) bits. swsample uses it to run count-consuming
// estimators (AMS frequency moments, entropy) over TIMESTAMP windows,
// where the window size n(t) that the sequence-based estimators take for
// granted is unknowable.
//
// Structure: per arrival a size-1 bucket (timestamp, count) is appended;
// whenever more than ceil(1/eps)/2 + 2 buckets of one size exist, the two
// oldest of that size merge into one of double size. The window count is
// the sum of all non-expired buckets, counting the oldest (straddling)
// bucket at half weight -- relative error at most eps.
//
// Layout: the bucket list is stored as two parallel rings (SoA) -- newest-
// arrival timestamps and power-of-two counts -- plus a per-size-class
// bucket counter. The counter turns the DGIM merge rule into O(1)
// amortized work per Add (the two oldest buckets of an overflowing class
// sit at a directly computable ring position, no scan), and expiry sweeps
// touch only the dense timestamp ring.

#ifndef SWSAMPLE_STREAM_EXP_HISTOGRAM_H_
#define SWSAMPLE_STREAM_EXP_HISTOGRAM_H_

#include <array>
#include <cstdint>

#include "stream/item.h"
#include "util/arena.h"
#include "util/serial.h"
#include "util/status.h"

namespace swsample {

/// (1 +/- eps)-approximate count of arrivals within the last t0 time units.
class ExpHistogram {
 public:
  /// Creates a histogram for window length `t0` >= 1 with relative error
  /// `eps` in (0, 1].
  static Result<ExpHistogram> Create(Timestamp t0, double eps);

  /// Records one arrival at time `ts` (non-decreasing). O(1) amortized.
  void Add(Timestamp ts);

  /// Advances the clock without arrivals.
  void AdvanceTime(Timestamp now);

  /// (1 +/- eps) estimate of the number of active arrivals. O(1) beyond
  /// the expiry sweep (a running total is maintained across mutations).
  uint64_t Estimate();

  /// Number of buckets held (O(eps^-1 log n)).
  uint64_t BucketCount() const { return count_.size(); }

  /// Live memory words (one timestamp + one count per bucket).
  uint64_t MemoryWords() const { return 3 + count_.size() * 2; }

  /// Heap bytes retained beyond the object footprint (both SoA rings'
  /// arena reservations).
  uint64_t RetainedBytes() const {
    return newest_.ReservedBytes() + count_.ReservedBytes();
  }

  /// Checkpointing: clock + buckets (t0/eps are configuration and live in
  /// the owning estimator's envelope). The byte format is unchanged from
  /// the AoS layout: (newest, count) pairs, oldest first. Load validates
  /// bucket monotonicity and power-of-two counts; see util/serial.h.
  void Save(BinaryWriter* w) const;
  bool Load(BinaryReader* r);

 private:
  ExpHistogram(Timestamp t0, uint64_t max_per_size)
      : t0_(t0), max_per_size_(max_per_size) {
    class_count_.fill(0);
  }

  void EvictExpired();
  void MergeCascade();

  Timestamp t0_;
  uint64_t max_per_size_;  // k/2 + 2 with k = ceil(1/eps)
  Timestamp now_ = 0;
  uint64_t total_ = 0;  // sum of all bucket counts (maintained)
  // SoA bucket list, front = oldest. Counts are powers of two,
  // non-increasing from the front; newest-arrival timestamps are
  // non-decreasing. Buckets of one size class are contiguous.
  RingDeque<Timestamp> newest_;
  RingDeque<uint64_t> count_;
  // class_count_[c] = number of buckets with count 2^c. The oldest bucket
  // of class c sits at ring index sum(class_count_[d] for d > c).
  std::array<uint32_t, 64> class_count_;
};

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_EXP_HISTOGRAM_H_
