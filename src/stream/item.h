// Copyright (c) swsample authors. Licensed under the MIT license.
//
// The stream element model (paper Section 1.4).
//
// A stream D is a sequence p_0, p_1, ... of items. Every item carries its
// 0-based arrival index and an integer timestamp. In the sequence-based
// window model only the index matters (the last n items are active); in the
// timestamp-based model an item p is active at time t iff t - T(p) < t0.
// Many items may share one timestamp (bursts), which is exactly what makes
// the timestamp model hard: the number of active elements is not derivable
// from the current time.

#ifndef SWSAMPLE_STREAM_ITEM_H_
#define SWSAMPLE_STREAM_ITEM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace swsample {

/// Arrival index of an item within the stream (0-based).
using StreamIndex = uint64_t;

/// Integer timestamp ("step" in the paper). Monotone non-decreasing across
/// the stream.
using Timestamp = int64_t;

/// One stream element. A "memory word" in the paper's accounting stores one
/// value, one index, or one timestamp; an Item therefore costs 3 words.
struct Item {
  /// Application payload (e.g. a key, a measurement, an encoded edge).
  uint64_t value = 0;
  /// Arrival position in the stream, 0-based.
  StreamIndex index = 0;
  /// Arrival timestamp; equal for all items of one burst.
  Timestamp timestamp = 0;

  friend bool operator==(const Item& a, const Item& b) {
    return a.value == b.value && a.index == b.index &&
           a.timestamp == b.timestamp;
  }
};

/// Number of memory words an Item occupies under the paper's word model.
inline constexpr uint64_t kWordsPerItem = 3;

/// True iff every timestamp in `items` is >= `from` and the sequence is
/// non-decreasing — i.e. the batch satisfies the monotone-clock contract
/// relative to a sink whose clock currently reads `from`. The batched fast
/// paths pre-scan with this; it is one predictable-branch pass.
inline bool IsTimestampOrdered(std::span<const Item> items, Timestamp from) {
  Timestamp prev = from;
  for (const Item& item : items) {
    if (item.timestamp < prev) return false;
    prev = item.timestamp;
  }
  return true;
}

/// Copies `items` into `*out` with each timestamp clamped to the running
/// maximum seen so far (seeded with `from`). This is the canonical
/// normalization of an out-of-order batch: it is exactly what feeding the
/// items one at a time through a clamping Observe would produce, so the
/// batched slow path can normalize once and reuse the monotone fast path.
inline void ClampTimestamps(std::span<const Item> items, Timestamp from,
                            std::vector<Item>* out) {
  out->clear();
  out->reserve(items.size());
  Timestamp clock = from;
  for (const Item& item : items) {
    if (item.timestamp > clock) clock = item.timestamp;
    out->push_back(Item{item.value, item.index, clock});
  }
}

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_ITEM_H_
