// Copyright (c) swsample authors. Licensed under the MIT license.
//
// The stream element model (paper Section 1.4).
//
// A stream D is a sequence p_0, p_1, ... of items. Every item carries its
// 0-based arrival index and an integer timestamp. In the sequence-based
// window model only the index matters (the last n items are active); in the
// timestamp-based model an item p is active at time t iff t - T(p) < t0.
// Many items may share one timestamp (bursts), which is exactly what makes
// the timestamp model hard: the number of active elements is not derivable
// from the current time.

#ifndef SWSAMPLE_STREAM_ITEM_H_
#define SWSAMPLE_STREAM_ITEM_H_

#include <cstdint>

namespace swsample {

/// Arrival index of an item within the stream (0-based).
using StreamIndex = uint64_t;

/// Integer timestamp ("step" in the paper). Monotone non-decreasing across
/// the stream.
using Timestamp = int64_t;

/// One stream element. A "memory word" in the paper's accounting stores one
/// value, one index, or one timestamp; an Item therefore costs 3 words.
struct Item {
  /// Application payload (e.g. a key, a measurement, an encoded edge).
  uint64_t value = 0;
  /// Arrival position in the stream, 0-based.
  StreamIndex index = 0;
  /// Arrival timestamp; equal for all items of one burst.
  Timestamp timestamp = 0;

  friend bool operator==(const Item& a, const Item& b) {
    return a.value == b.value && a.index == b.index &&
           a.timestamp == b.timestamp;
  }
};

/// Number of memory words an Item occupies under the paper's word model.
inline constexpr uint64_t kWordsPerItem = 3;

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_ITEM_H_
