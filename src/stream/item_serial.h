// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Item (de)serialization helpers shared by the sampler checkpoints.

#ifndef SWSAMPLE_STREAM_ITEM_SERIAL_H_
#define SWSAMPLE_STREAM_ITEM_SERIAL_H_

#include <array>

#include "stream/item.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {

inline void SaveItem(const Item& item, BinaryWriter* w) {
  w->PutU64(item.value);
  w->PutU64(item.index);
  w->PutI64(item.timestamp);
}

inline bool LoadItem(BinaryReader* r, Item* item) {
  return r->GetU64(&item->value) && r->GetU64(&item->index) &&
         r->GetI64(&item->timestamp);
}

/// Rng state helpers (kept beside the Item helpers for one include).
inline void SaveRngState(const Rng& rng, BinaryWriter* w) {
  for (uint64_t word : rng.SaveState()) w->PutU64(word);
}

inline bool LoadRngState(BinaryReader* r, Rng* rng) {
  std::array<uint64_t, 4> state;
  for (auto& word : state) {
    if (!r->GetU64(&word)) return false;
  }
  *rng = Rng::FromState(state);
  return true;
}

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_ITEM_SERIAL_H_
