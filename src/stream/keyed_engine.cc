// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/keyed_engine.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "stream/checkpoint.h"
#include "util/failpoint.h"
#include "util/file_ops.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {
namespace fs = std::filesystem;

namespace {

// Spill file wire format: metadata header + the standard sink envelope.
// "SWSKEYS\0" little-endian.
constexpr uint64_t kSpillMagic = 0x005359454B535753ULL;
constexpr uint64_t kSpillVersion = 1;
constexpr char kSpillGlobPrefix[] = "key-";
constexpr char kSpillSuffix[] = ".ckpt";

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Every spill read — the async reader included — goes through the
// FileOps seam at this site, so restore faults are injectable on both
// the sync and prefetch paths.
constexpr char kSpillReadSite[] = "spill.read";
constexpr char kSpillWriteSite[] = "spill.write";

// "key-%016llx.ckpt" -> key; false for any other file name.
bool ParseSpillName(const std::string& name, uint64_t* key) {
  const size_t prefix = sizeof(kSpillGlobPrefix) - 1;
  const size_t suffix = sizeof(kSpillSuffix) - 1;
  if (name.size() != prefix + 16 + suffix) return false;
  if (name.compare(0, prefix, kSpillGlobPrefix) != 0) return false;
  if (name.compare(prefix + 16, suffix, kSpillSuffix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = prefix; i < prefix + 16; ++i) {
    const char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *key = v;
  return true;
}

}  // namespace

const char* KeyedHealthName(KeyedEngineHealth health) {
  switch (health) {
    case KeyedEngineHealth::kHealthy:
      return "healthy";
    case KeyedEngineHealth::kDegraded:
      return "degraded";
    case KeyedEngineHealth::kRecovering:
      return "recovering";
  }
  return "healthy";
}

/// I/O-only background reader for the async restore lane: Submit hands it
/// a spill file path, the worker reads the file BYTES into the slot, and
/// Take blocks until that read completes. The worker never touches engine
/// state — decode and directory adoption happen on the ingest thread at
/// the key's delivery point — which is what makes async restore
/// bit-identical to the synchronous path by construction. All slot state
/// is mutex-guarded.
class KeyedSpillReader {
 public:
  static constexpr int kSlots = 16;

  KeyedSpillReader() : thread_([this] { Run(); }) {}

  ~KeyedSpillReader() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    thread_.join();
  }

  /// Queues a read; -1 when every slot is busy (the caller falls back to
  /// a synchronous read for that key).
  int Submit(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < kSlots; ++i) {
      if (slots_[i].state == State::kFree) {
        slots_[i].path = std::move(path);
        slots_[i].blob.clear();
        slots_[i].status = Status::Ok();
        slots_[i].state = State::kQueued;
        work_cv_.notify_one();
        return i;
      }
    }
    return -1;
  }

  /// Blocks until slot `slot`'s read completes, then frees the slot.
  Result<std::string> Take(int slot) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return slots_[slot].state == State::kDone; });
    Slot& s = slots_[slot];
    s.state = State::kFree;
    if (!s.status.ok()) return s.status;
    return std::move(s.blob);
  }

 private:
  enum class State { kFree, kQueued, kReading, kDone };
  struct Slot {
    std::string path;
    std::string blob;
    Status status = Status::Ok();
    State state = State::kFree;
  };

  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      int next = -1;
      for (int i = 0; i < kSlots; ++i) {
        if (slots_[i].state == State::kQueued) {
          next = i;
          break;
        }
      }
      if (next < 0) {
        if (stop_) return;
        work_cv_.wait(lock);
        continue;
      }
      Slot& s = slots_[next];  // slots_ is a fixed array; `s` stays valid
      s.state = State::kReading;
      const std::string path = s.path;
      lock.unlock();
      auto blob = ReadFileBytes(kSpillReadSite, path);
      lock.lock();
      if (blob.ok()) {
        s.blob = std::move(blob).ValueOrDie();
      } else {
        s.status = blob.status();
      }
      s.state = State::kDone;
      done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  Slot slots_[kSlots];
  std::thread thread_;
};

/// One live key: its sink, tier, per-key stream cursor and LRU linkage.
/// Pool-allocated from the engine's entry arena (the directory FlatMap
/// stores the pointer, which is trivially copyable as FlatMap values
/// must be). The per-key SinkSpec is NOT stored: it is a pure function
/// of (key, tier) under the engine's options (TierSpec), so spilling
/// derives it on demand instead of keeping two strings per key.
struct KeyedWindowEngine::KeyEntry {
  uint64_t key = 0;
  uint64_t tier = 0;  ///< 0 = tail (options.spec), 1 = hot (hot_spec)
  Sink sink;
  /// Next local index for this key's tier instance (sequence re-index).
  uint64_t local_index = 0;
  uint64_t arrivals = 0;  ///< lifetime arrivals (drives promotion)
  Timestamp last_seen = 0;
  uint64_t charge_bytes = 0;
  uint64_t charge_words = 0;
  KeyEntry* lru_prev = nullptr;
  KeyEntry* lru_next = nullptr;
};

KeyedWindowEngine::KeyedWindowEngine(const KeyedEngineOptions& options)
    : options_(options) {}

KeyedWindowEngine::~KeyedWindowEngine() {
  reader_.reset();  // join the restore thread before tearing down state
  directory_.ForEach([](uint64_t, KeyEntry*& entry) { entry->~KeyEntry(); });
}

Result<std::unique_ptr<KeyedWindowEngine>> KeyedWindowEngine::Create(
    const KeyedEngineOptions& options) {
  // Bind both tier factories now (Bind probe-constructs) so
  // misconfiguration surfaces at build time, not on some key's first
  // arrival mid-stream.
  auto tail_factory = SinkFactory::Bind(options.spec);
  if (!tail_factory.ok()) {
    return Status::InvalidArgument("keyed: tail spec invalid: " +
                                   tail_factory.status().message());
  }
  SinkFactory hot_factory;
  if (options.promote_after > 0) {
    auto bound = SinkFactory::Bind(options.hot_spec);
    if (!bound.ok()) {
      return Status::InvalidArgument("keyed: hot spec invalid: " +
                                     bound.status().message());
    }
    if (bound.value().kind() != tail_factory.value().kind()) {
      return Status::InvalidArgument(
          "keyed: hot and tail specs must be the same kind (both "
          "samplers or both estimators) so the per-key query surface is "
          "uniform across tiers");
    }
    hot_factory = std::move(bound).ValueOrDie();
  }
  if (options.memory_budget_bytes > 0 && options.spill_dir.empty()) {
    return Status::InvalidArgument(
        "keyed: a memory budget requires spill_dir (evicted keys must "
        "have somewhere to go)");
  }

  auto engine =
      std::unique_ptr<KeyedWindowEngine>(new KeyedWindowEngine(options));
  engine->kind_ = tail_factory.value().kind();
  engine->tail_factory_ = std::move(tail_factory).ValueOrDie();
  engine->hot_factory_ = std::move(hot_factory);
  if (options.max_keys_hint > 0) {
    engine->directory_.Reserve(options.max_keys_hint);
  }
  if (!options.spill_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.spill_dir, ec);
    if (ec) {
      return Status::InvalidArgument("keyed: cannot create spill dir " +
                                     options.spill_dir + ": " + ec.message());
    }
    // A crash between write and rename leaves orphaned temps; GC them
    // before adoption (mirrors the checkpoint writer's manifest GC).
    SweepTempFiles(options.spill_dir);
    // Adopt spill files from a previous (crashed or handed-off) run.
    // Files quarantined by an earlier engine (".bad") are skipped by the
    // exact-name parse but surface in the stats.
    for (const auto& dirent : fs::directory_iterator(options.spill_dir, ec)) {
      const std::string name = dirent.path().filename().string();
      uint64_t key;
      if (ParseSpillName(name, &key)) {
        engine->spilled_.TryEmplace(key, 1);
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".bad") == 0) {
        ++engine->stats_.quarantined_files;
      }
    }
    if (ec) {
      return Status::InvalidArgument("keyed: cannot scan spill dir " +
                                     options.spill_dir + ": " + ec.message());
    }
    engine->stats_.spilled_keys = engine->spilled_.Size();
  }
  return engine;
}

std::string KeyedWindowEngine::SpillFileName(uint64_t key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%016" PRIx64 "%s", kSpillGlobPrefix,
                key, kSpillSuffix);
  return name;
}

std::string KeyedWindowEngine::SpillPath(uint64_t key) const {
  return (fs::path(options_.spill_dir) / SpillFileName(key)).string();
}

SinkSpec KeyedWindowEngine::TierSpec(uint64_t key, uint64_t tier) const {
  SinkSpec spec = tier == 0 ? options_.spec : options_.hot_spec;
  spec.seed = Rng::ForkSeed(Rng::ForkSeed(spec.seed, key), tier);
  return spec;
}

void KeyedWindowEngine::LatchError(const Status& status) {
  if (last_error_.ok()) last_error_ = status;
}

void KeyedWindowEngine::SetHealth(KeyedEngineHealth health) {
  if (stats_.health == health) return;
  stats_.health = health;
  if (health == KeyedEngineHealth::kDegraded) {
    next_reprobe_items_ = stats_.items + options_.reprobe_every_items;
  }
}

RetryPolicy KeyedWindowEngine::EffectiveRetry() const {
  RetryPolicy retry = options_.io_retry;
  if (stats_.health == KeyedEngineHealth::kDegraded) retry.max_attempts = 1;
  return retry;
}

void KeyedWindowEngine::MaybeReprobe() {
  if (stats_.health != KeyedEngineHealth::kDegraded) return;
  if (options_.spill_dir.empty()) return;
  if (stats_.items < next_reprobe_items_) return;
  next_reprobe_items_ = stats_.items + options_.reprobe_every_items;
  // The probe goes through the same failpoint site as real spills, so an
  // injected permanent outage keeps the engine degraded and a transient
  // one heals it; the name never matches the adoption parse.
  const std::string probe =
      (fs::path(options_.spill_dir) / "health.probe").string();
  if (AtomicWriteFile(kSpillWriteSite, probe, "probe",
                      /*do_fsync=*/false)
          .ok()) {
    std::remove(probe.c_str());
    SetHealth(KeyedEngineHealth::kRecovering);
  }
}

void KeyedWindowEngine::QuarantineSpill(uint64_t key,
                                        const std::string& path) {
  // Rename aside so adoption scans skip it and an operator can inspect
  // the bytes; fall back to unlink if even the rename fails.
  const std::string aside = path + ".bad";
  if (std::rename(path.c_str(), aside.c_str()) != 0) {
    std::remove(path.c_str());
  }
  spilled_.Erase(key);
  stats_.spilled_keys = spilled_.Size();
  ++stats_.quarantined_files;
}

void KeyedWindowEngine::TouchLru(KeyEntry* entry) {
  if (lru_head_ == entry) return;
  UnlinkLru(entry);
  entry->lru_next = lru_head_;
  entry->lru_prev = nullptr;
  if (lru_head_ != nullptr) lru_head_->lru_prev = entry;
  lru_head_ = entry;
  if (lru_tail_ == nullptr) lru_tail_ = entry;
}

void KeyedWindowEngine::UnlinkLru(KeyEntry* entry) {
  if (entry->lru_prev != nullptr) entry->lru_prev->lru_next = entry->lru_next;
  if (entry->lru_next != nullptr) entry->lru_next->lru_prev = entry->lru_prev;
  if (lru_head_ == entry) lru_head_ = entry->lru_next;
  if (lru_tail_ == entry) lru_tail_ = entry->lru_prev;
  entry->lru_prev = entry->lru_next = nullptr;
}

void KeyedWindowEngine::RechargeEntry(KeyEntry* entry) {
  const uint64_t bytes = sizeof(KeyEntry) + entry->sink.sink->RetainedBytes();
  const uint64_t words = entry->sink.sink->MemoryWords();
  total_charge_bytes_ += bytes - entry->charge_bytes;
  total_charge_words_ += words - entry->charge_words;
  entry->charge_bytes = bytes;
  entry->charge_words = words;
}

KeyedWindowEngine::KeyEntry* KeyedWindowEngine::AllocEntry() {
  KeyEntry* storage;
  if (!entry_free_.empty()) {
    storage = entry_free_.back();
    entry_free_.pop_back();
  } else {
    storage = static_cast<KeyEntry*>(
        entry_arena_.Allocate(sizeof(KeyEntry), alignof(KeyEntry)));
  }
  return new (storage) KeyEntry();
}

void KeyedWindowEngine::ReleaseEntry(KeyEntry* entry) {
  entry->~KeyEntry();
  entry_free_.push_back(entry);
}

KeyedWindowEngine::KeyEntry* KeyedWindowEngine::CreateEntry(
    uint64_t key, uint64_t tier, uint64_t local_index, uint64_t arrivals,
    Timestamp last_seen, KeyEntry** slot) {
  ++block_creates_;
  const uint64_t root = tier == 0 ? options_.spec.seed : options_.hot_spec.seed;
  auto sink = (tier == 0 ? tail_factory_ : hot_factory_)
                  .Create(Rng::ForkSeed(Rng::ForkSeed(root, key), tier));
  if (!sink.ok()) {
    // Both tier specs were probe-validated at Create; a failure here is
    // an engine bug, not user input.
    LatchError(Status::Internal("keyed: per-key construction failed: " +
                                sink.status().message()));
    directory_.Erase(key);
    stats_.live_keys = directory_.Size();
    return nullptr;
  }
  KeyEntry* entry = AllocEntry();
  entry->key = key;
  entry->tier = tier;
  entry->sink = std::move(sink).ValueOrDie();
  entry->local_index = local_index;
  entry->arrivals = arrivals;
  entry->last_seen = last_seen;
  *slot = entry;
  stats_.live_keys = directory_.Size();
  TouchLru(entry);
  RechargeEntry(entry);
  return entry;
}

bool KeyedWindowEngine::PromoteInPlace(KeyEntry* entry) {
  auto sink = hot_factory_.Create(
      Rng::ForkSeed(Rng::ForkSeed(options_.hot_spec.seed, entry->key), 1));
  if (!sink.ok()) {
    LatchError(Status::Internal("keyed: hot-tier construction failed: " +
                                sink.status().message()));
    DropEntry(entry);
    return false;
  }
  // A FRESH hot-tier sink (no history replay — the documented warm-up);
  // lifetime arrivals and last_seen carry over, the local re-index
  // restarts with the new tier instance.
  entry->sink = std::move(sink).ValueOrDie();
  entry->tier = 1;
  entry->local_index = 0;
  ++stats_.promotions;
  return true;
}

Result<std::string> KeyedWindowEngine::EncodeSpill(
    const KeyEntry& entry) const {
  auto envelope =
      SaveSink(*entry.sink.sink, TierSpec(entry.key, entry.tier));
  if (!envelope.ok()) return envelope.status();
  BinaryWriter w;
  w.PutU64(kSpillMagic);
  w.PutU64(kSpillVersion);
  w.PutU64(entry.key);
  w.PutU64(entry.tier);
  w.PutU64(entry.local_index);
  w.PutU64(entry.arrivals);
  w.PutI64(entry.last_seen);
  w.PutString(envelope.value());
  return w.Release();
}

Status KeyedWindowEngine::SpillEntry(KeyEntry* entry) {
  const auto start = Clock::now();
  auto blob = EncodeSpill(*entry);
  if (!blob.ok()) return blob.status();
  const SpillFile file{SpillFileName(entry->key),
                       std::move(blob).ValueOrDie()};
  if (Status status =
          SpillBatch(options_.spill_dir, std::span<const SpillFile>(&file, 1),
                     options_.fsync_spills, nullptr, EffectiveRetry(),
                     &stats_.io_retries, kSpillWriteSite);
      !status.ok()) {
    if (status.retryable()) {
      ++stats_.io_giveups;
      SetHealth(KeyedEngineHealth::kDegraded);
    }
    return status;
  }
  if (stats_.health == KeyedEngineHealth::kRecovering) {
    SetHealth(KeyedEngineHealth::kHealthy);
  }
  spilled_.TryEmplace(entry->key, 1);
  stats_.spilled_keys = spilled_.Size();
  ++stats_.evictions;
  stats_.evict_seconds += SecondsSince(start);
  DropEntry(entry);
  return Status::Ok();
}

void KeyedWindowEngine::DropEntry(KeyEntry* entry) {
  UnlinkLru(entry);
  total_charge_bytes_ -= entry->charge_bytes;
  total_charge_words_ -= entry->charge_words;
  directory_.Erase(entry->key);
  stats_.live_keys = directory_.Size();
  ReleaseEntry(entry);
}

Result<KeyedWindowEngine::KeyEntry*> KeyedWindowEngine::RestoreEntry(
    uint64_t key, KeyEntry** slot) {
  MaybeReprobe();
  const auto start = Clock::now();
  const std::string path = SpillPath(key);
  // Prefer bytes the async reader already fetched for this block; the
  // decode below runs on this thread either way.
  int prefetched = -1;
  for (size_t i = 0; i < prefetch_keys_.size(); ++i) {
    if (prefetch_keys_[i] == key && prefetch_slots_[i] >= 0) {
      prefetched = static_cast<int>(i);
      break;
    }
  }
  Result<std::string> blob = prefetched >= 0
                                 ? reader_->Take(prefetch_slots_[prefetched])
                                 : ReadFileBytes(kSpillReadSite, path);
  if (prefetched >= 0) {
    prefetch_slots_[prefetched] = -1;  // consumed
    ++stats_.prefetched_restores;
  }
  // Transient read faults — from either lane — retry synchronously here;
  // a retried restore rereads the same bytes, so success is bit-identical
  // to a fault-free restore.
  const RetryPolicy retry = EffectiveRetry();
  const uint32_t attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  for (uint32_t attempt = 1;
       !blob.ok() && blob.status().retryable() && attempt < attempts;
       ++attempt) {
    ++stats_.io_retries;
    const double secs = RetryBackoffSeconds(retry, key, attempt);
    if (secs > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    }
    blob = ReadFileBytes(kSpillReadSite, path);
  }
  if (!blob.ok()) {
    if (blob.status().retryable()) {
      ++stats_.io_giveups;
      SetHealth(KeyedEngineHealth::kDegraded);
      if (options_.degrade == KeyedDegradeMode::kBlock) return blob.status();
      // kShed: the parked state is unreachable — the key restarts fresh
      // and the loss is reported. The file stays put; a later eviction
      // of the reborn key overwrites it.
      spilled_.Erase(key);
      stats_.spilled_keys = spilled_.Size();
      ++stats_.restore_misses;
      return static_cast<KeyEntry*>(nullptr);
    }
    // Permanent: the file is gone or unreadable — same treatment as
    // corruption below.
    QuarantineSpill(key, path);
    ++stats_.restore_misses;
    return static_cast<KeyEntry*>(nullptr);
  }
  BinaryReader r(blob.value());
  uint64_t magic = 0, version = 0, stored_key = 0, tier = 0, local_index = 0,
           arrivals = 0;
  int64_t last_seen = 0;
  std::string envelope;
  bool decoded =
      r.GetU64(&magic) && magic == kSpillMagic &&  //
      r.GetU64(&version) && version == kSpillVersion &&
      r.GetU64(&stored_key) && stored_key == key && r.GetU64(&tier) &&
      r.GetU64(&local_index) && r.GetU64(&arrivals) && r.GetI64(&last_seen) &&
      r.GetString(&envelope) && r.AtEnd();
  Result<RestoredSink> restored =
      decoded ? RestoreSink(envelope)
              : Result<RestoredSink>(Status::InvalidArgument(
                    "keyed: corrupt spill file " + path));
  if (restored.ok() && (restored.value().sink.sampler != nullptr) !=
                           (kind_ == SinkKind::kSampler)) {
    restored = Status::InvalidArgument(
        "keyed: spill file " + path +
        " holds a different sink kind than this engine");
  }
  if (!restored.ok()) {
    // Torn/corrupt spill state (a crash mid-write, a truncated file):
    // quarantine just this file and restart the key instead of failing
    // the whole engine.
    QuarantineSpill(key, path);
    ++stats_.restore_misses;
    return static_cast<KeyEntry*>(nullptr);
  }
  KeyEntry* entry = AllocEntry();
  entry->key = key;
  entry->tier = tier;
  entry->sink = std::move(restored.value().sink);
  entry->local_index = local_index;
  entry->arrivals = arrivals;
  entry->last_seen = last_seen;
  *slot = entry;
  stats_.live_keys = directory_.Size();
  TouchLru(entry);
  RechargeEntry(entry);
  std::remove(path.c_str());
  spilled_.Erase(key);
  stats_.spilled_keys = spilled_.Size();
  ++stats_.restores;
  stats_.restore_seconds += SecondsSince(start);
  if (stats_.health == KeyedEngineHealth::kRecovering) {
    SetHealth(KeyedEngineHealth::kHealthy);
  }
  return entry;
}

KeyedWindowEngine::KeyEntry* KeyedWindowEngine::FindEntry(
    uint64_t key, bool create_missing) {
  if (!create_missing) {
    // Query path: never insert unless a spill file backs the key.
    if (KeyEntry** slot = directory_.Find(key); slot != nullptr) return *slot;
    if (!spilled_.Contains(key)) return nullptr;
    auto probe = directory_.TryEmplace(key, nullptr);
    auto restored = RestoreEntry(key, probe.first);
    if (!restored.ok() || restored.value() == nullptr) {
      // Error, or a restore miss (quarantined/unreachable state): either
      // way there is nothing to query — the key reads as unknown.
      directory_.Erase(key);
      stats_.live_keys = directory_.Size();
      if (!restored.ok()) LatchError(restored.status());
      return nullptr;
    }
    return restored.value();
  }
  // Ingest path: ONE probe routes, creates, or restores.
  auto probe = directory_.TryEmplace(key, nullptr);
  if (!probe.second) return *probe.first;
  if (spilled_.Contains(key)) {
    auto restored = RestoreEntry(key, probe.first);
    if (!restored.ok()) {
      directory_.Erase(key);
      stats_.live_keys = directory_.Size();
      LatchError(restored.status());
      return nullptr;
    }
    if (restored.value() != nullptr) return restored.value();
    // Restore miss: the key starts over fresh on the tail tier.
  }
  return CreateEntry(key, /*tier=*/0, /*local_index=*/0, /*arrivals=*/0,
                     /*last_seen=*/now_, probe.first);
}

void KeyedWindowEngine::Observe(const Item& item) {
  if (item.timestamp > now_) now_ = item.timestamp;
  const uint64_t key = item.value >> options_.key_shift;
  KeyEntry* entry = FindEntry(key, /*create_missing=*/true);
  if (entry == nullptr) return;  // I/O failure latched; arrival dropped
  ++entry->arrivals;
  // Tier promotion: the triggering arrival lands in the fresh hot sink.
  if (options_.promote_after > 0 && entry->tier == 0 &&
      entry->arrivals >= options_.promote_after) {
    if (!PromoteInPlace(entry)) return;
  }
  entry->sink.sink->Observe(
      Item{item.value, entry->local_index++, item.timestamp});
  entry->last_seen = now_;
  ++stats_.items;
  TouchLru(entry);
  RechargeEntry(entry);
  ExpireIdle();
  EnforceBudget(entry);
  stats_.retained_bytes = RetainedBytes();
  if (stats_.retained_bytes > stats_.peak_retained_bytes) {
    stats_.peak_retained_bytes = stats_.retained_bytes;
  }
  stats_.charged_bytes = ChargedBytes();
  if (stats_.charged_bytes > stats_.peak_charged_bytes) {
    stats_.peak_charged_bytes = stats_.charged_bytes;
  }
}

void KeyedWindowEngine::ObserveBatch(std::span<const Item> items) {
  if (options_.strict_budget) {
    // Exact per-item semantics: TTL sweep + budget enforcement after
    // every arrival, at per-item cost.
    for (const Item& item : items) Observe(item);
    return;
  }
  while (items.size() > kDemuxBlockItems) {
    ObserveBlock(items.first(kDemuxBlockItems));
    items = items.subspan(kDemuxBlockItems);
  }
  if (!items.empty()) ObserveBlock(items);
}

void KeyedWindowEngine::EnsureDemuxScratch(size_t need) {
  if (need <= demux_capacity_) return;
  size_t cap = demux_capacity_ == 0 ? 1024 : demux_capacity_;
  while (cap < need) cap *= 2;
  // Both arrays are dead between blocks, so the arena's chunks recycle;
  // growth doubles, so abandoned bytes stay bounded by the final size.
  demux_arena_.Reset();
  demux_next_ = demux_arena_.AllocateArray<uint32_t>(cap);
  demux_staging_ = demux_arena_.AllocateArray<Item>(cap);
  demux_capacity_ = static_cast<uint32_t>(cap);
}

void KeyedWindowEngine::ObserveBlock(std::span<const Item> block) {
  if (demux_backoff_ > 0) {
    // Churn-dominated singleton traffic (see the decision below): the
    // demux has nothing to amortize here, so deliver item-wise until
    // the backoff window ends and one block re-probes the demux.
    --demux_backoff_;
    for (const Item& item : block) Observe(item);
    return;
  }
  EnsureDemuxScratch(block.size());
  // --- One scan: same-key run detection, per-key index chains, and the
  // clock prefix-max that decides TTL generation splits. `before` is
  // the clock BEFORE item i — the exact value every item-wise expiry
  // check between the key's last arrival and this one could have seen.
  runs_.clear();
  run_index_.Clear();
  Timestamp clock = now_;
  uint64_t prev_key = 0;
  uint32_t prev_run = kNoIndex;
  const uint64_t shift = options_.key_shift;
  const Timestamp ttl = options_.idle_ttl;
  const uint32_t n = static_cast<uint32_t>(block.size());
  for (uint32_t i = 0; i < n; ++i) {
    const Item& item = block[i];
    const Timestamp before = clock;
    if (item.timestamp > clock) clock = item.timestamp;
    const uint64_t key = item.value >> shift;
    demux_next_[i] = kNoIndex;
    if (prev_run != kNoIndex && key == prev_key) {
      // Contiguous same-key run: no probe, and no TTL check — the key
      // was just seen at `before`, so it cannot have expired since.
      KeyRun& run = runs_[prev_run];
      demux_next_[run.tail] = i;
      run.tail = i;
      ++run.count;
      run.last_seen = clock;
      continue;
    }
    prev_key = key;
    auto probe = run_index_.TryEmplace(key, 0);
    if (!probe.second) {
      KeyRun& run = runs_[*probe.first];
      if (ttl > 0 && before - run.last_seen > ttl) {
        // The key expired mid-block (an item-wise sweep between its two
        // arrivals would have dropped it): close the old generation and
        // open a fresh run; delivery recreates the key from scratch.
        *probe.first = static_cast<uint32_t>(runs_.size());
        runs_.push_back(KeyRun{key, i, i, 1, before, clock});
      } else {
        demux_next_[run.tail] = i;
        run.tail = i;
        ++run.count;
        run.last_seen = clock;
      }
    } else {
      *probe.first = static_cast<uint32_t>(runs_.size());
      runs_.push_back(KeyRun{key, i, i, 1, before, clock});
    }
    prev_run = *probe.first;
  }
  now_ = clock;
  // --- Queue disk reads for spilled keys before any delivery work, so
  // the reader thread overlaps the micro-batch deliveries below.
  PrefetchSpilledRuns();
  // --- Deliver each key's micro-batch in first-arrival order, with a
  // staged software prefetch over the run list. Each delivery chases
  // three dependent cache lines (directory slot -> KeyEntry -> sink), and
  // at 1e5+ live keys all three miss; the run list knows every upcoming
  // key, so the slot is prefetched 8 runs ahead, the entry 4 ahead (the
  // Find re-probe hits the slot line fetched at distance 8), and the
  // sink object 2 ahead. Re-probing instead of caching slot pointers
  // keeps this safe across deliveries that grow the directory.
  const size_t run_count = runs_.size();
  block_creates_ = 0;
  for (size_t i = 0; i < run_count; ++i) {
#ifndef SWSAMPLE_NO_STAGED_PREFETCH
    if (i + 8 < run_count) directory_.Prefetch(runs_[i + 8].key);
    if (i + 4 < run_count) {
      KeyEntry** slot = directory_.Find(runs_[i + 4].key);
      if (slot != nullptr) __builtin_prefetch(*slot);
    }
    if (i + 2 < run_count) {
      KeyEntry** slot = directory_.Find(runs_[i + 2].key);
      if (slot != nullptr && *slot != nullptr) {
        __builtin_prefetch((*slot)->sink.sink.get());
      }
    }
#endif
    ProcessRun(block, runs_[i]);
  }
  // --- Per-block bookkeeping item-wise Observe does per item.
  ExpireIdle();
  stats_.retained_bytes = RetainedBytes();
  if (stats_.retained_bytes > stats_.peak_retained_bytes) {
    stats_.peak_retained_bytes = stats_.retained_bytes;
  }
  stats_.charged_bytes = ChargedBytes();
  if (stats_.charged_bytes > stats_.peak_charged_bytes) {
    stats_.peak_charged_bytes = stats_.charged_bytes;
  }
  // --- Adaptive fallback decision. Mean micro-batch under 2 items means
  // the demux amortized nothing, and a majority of runs constructing a
  // fresh sink means delivery was TTL-churn-bound — worse than that, the
  // block-scoped create/drop bursts defeat the allocator's chunk reuse
  // (the item-wise path's drop-then-recreate ping-pong stays in the
  // thread cache, measured ~2x faster on uniform traffic over 1e6+ keys
  // with a binding idle_ttl). Hand such traffic to the item-wise path
  // for a window; one block re-probes after it ends, so a shift back to
  // skewed or churn-free traffic re-engages the demux within ~16 blocks.
  if (run_count * 2 > block.size() && block_creates_ * 2 > run_count) {
    demux_backoff_ = demux_backoff_window_;
    demux_backoff_window_ =
        std::min(demux_backoff_window_ * 2 + 1, kDemuxBackoffMax);
  } else {
    demux_backoff_window_ = kDemuxBackoffBlocks;
  }
}

void KeyedWindowEngine::PrefetchSpilledRuns() {
  prefetch_keys_.clear();
  prefetch_slots_.clear();
  if (!options_.async_restore || options_.spill_dir.empty()) return;
  if (spilled_.Size() == 0) return;
  for (const KeyRun& run : runs_) {
    if (!spilled_.Contains(run.key)) continue;
    bool queued = false;  // a key split into generations has two runs
    for (uint64_t key : prefetch_keys_) {
      if (key == run.key) {
        queued = true;
        break;
      }
    }
    if (queued) continue;
    if (reader_ == nullptr) reader_ = std::make_unique<KeyedSpillReader>();
    const int slot = reader_->Submit(SpillPath(run.key));
    if (slot < 0) break;  // queue full; later keys restore synchronously
    prefetch_keys_.push_back(run.key);
    prefetch_slots_.push_back(slot);
  }
}

KeyedWindowEngine::KeyEntry* KeyedWindowEngine::ResolveRunEntry(
    const KeyRun& run) {
  auto probe = directory_.TryEmplace(run.key, nullptr);
  if (!probe.second) {
    KeyEntry* entry = *probe.first;
    if (options_.idle_ttl > 0 &&
        run.first_clock - entry->last_seen > options_.idle_ttl) {
      // Expired before this run's first arrival: an item-wise sweep ran
      // at every prior item with clock <= first_clock, so the largest
      // gap it could see is exactly first_clock - last_seen.
      DropEntry(entry);
      ++stats_.expirations;
      probe = directory_.TryEmplace(run.key, nullptr);
    } else {
      return entry;
    }
  }
  if (spilled_.Contains(run.key)) {
    auto restored = RestoreEntry(run.key, probe.first);
    if (!restored.ok()) {
      directory_.Erase(run.key);
      stats_.live_keys = directory_.Size();
      LatchError(restored.status());
      return nullptr;
    }
    if (restored.value() != nullptr) return restored.value();
    // Restore miss: the key starts over fresh on the tail tier.
  }
  return CreateEntry(run.key, /*tier=*/0, /*local_index=*/0, /*arrivals=*/0,
                     /*last_seen=*/now_, probe.first);
}

void KeyedWindowEngine::ProcessRun(std::span<const Item> block,
                                   const KeyRun& run) {
  KeyEntry* entry = ResolveRunEntry(run);
  if (entry == nullptr) return;  // I/O failure latched; arrivals dropped
  if (options_.memory_budget_bytes > 0) {
    // Conservative pre-delivery headroom: a window sink retains at most
    // a few words per arrival; 64 bytes/item over-covers every
    // registered sink, so evicting down to budget - headroom first
    // keeps the transient peak near the budget. The post-delivery
    // EnforceBudget below is the actual invariant.
    const uint64_t headroom = uint64_t{run.count} * 64;
    if (headroom < options_.memory_budget_bytes) {
      EvictUntil(options_.memory_budget_bytes - headroom, entry);
    }
  }
  uint32_t idx = run.head;
  uint64_t remaining = run.count;
  while (remaining > 0) {
    uint64_t take = remaining;
    if (options_.promote_after > 0 && entry->tier == 0) {
      if (entry->arrivals + 1 >= options_.promote_after) {
        // The next arrival triggers promotion; it lands in the hot sink.
        if (!PromoteInPlace(entry)) return;
      } else {
        // Deliver to the tail tier only up to the promotion point, then
        // split the micro-batch — exactly where item-wise would switch.
        take = std::min<uint64_t>(
            take, options_.promote_after - 1 - entry->arrivals);
      }
    }
    if (take == 1) {
      // Singleton micro-batch (the Zipf tail): skip the staging gather
      // and the sink's batch-path setup — Observe is the cheaper call
      // for one item and the per-item contract is the same.
      const Item& item = block[idx];
      entry->sink.sink->Observe(
          Item{item.value, entry->local_index, item.timestamp});
      idx = demux_next_[idx];
    } else {
      for (uint64_t j = 0; j < take; ++j) {
        const Item& item = block[idx];
        demux_staging_[j] =
            Item{item.value, entry->local_index + j, item.timestamp};
        idx = demux_next_[idx];
      }
      entry->sink.sink->ObserveBatch(
          std::span<const Item>(demux_staging_, take));
    }
    entry->local_index += take;
    entry->arrivals += take;
    remaining -= take;
  }
  entry->last_seen = run.last_seen;
  stats_.items += run.count;
  TouchLru(entry);
  RechargeEntry(entry);
  EnforceBudget(entry);
  stats_.charged_bytes = ChargedBytes();
  if (stats_.charged_bytes > stats_.peak_charged_bytes) {
    stats_.peak_charged_bytes = stats_.charged_bytes;
  }
}

void KeyedWindowEngine::AdvanceTime(Timestamp now) {
  if (now > now_) now_ = now;
  ExpireIdle();
}

void KeyedWindowEngine::ExpireIdle() {
  if (options_.idle_ttl <= 0) return;
  while (lru_tail_ != nullptr &&
         now_ - lru_tail_->last_seen > options_.idle_ttl) {
    DropEntry(lru_tail_);
    ++stats_.expirations;
  }
}

void KeyedWindowEngine::EvictUntil(uint64_t limit, const KeyEntry* protect) {
  if (ChargedBytes() <= limit) return;
  MaybeReprobe();
  if (options_.degrade == KeyedDegradeMode::kShed &&
      stats_.health == KeyedEngineHealth::kDegraded) {
    // Storage is known-down: hold the budget without touching the disk
    // until the re-probe sees it heal.
    ShedUntil(limit, protect);
    return;
  }
  const auto start = Clock::now();
  // Collect LRU victims until the projected charge fits, then write all
  // their spill files as ONE batch: one directory fsync instead of one
  // per victim. Entries drop only for files that actually hit disk.
  std::vector<SpillFile> files;
  std::vector<KeyEntry*> victims;
  uint64_t projected = ChargedBytes();
  KeyEntry* victim = lru_tail_;
  while (projected > limit && victim != nullptr) {
    if (victim == protect) {
      victim = victim->lru_prev;
      continue;
    }
    auto blob = EncodeSpill(*victim);
    if (!blob.ok()) {
      LatchError(blob.status());
      break;
    }
    files.push_back(
        SpillFile{SpillFileName(victim->key), std::move(blob).ValueOrDie()});
    victims.push_back(victim);
    projected -= victim->charge_bytes;
    victim = victim->lru_prev;
  }
  if (victims.empty()) return;
  size_t written = 0;
  Status status =
      SpillBatch(options_.spill_dir, files, options_.fsync_spills, &written,
                 EffectiveRetry(), &stats_.io_retries, kSpillWriteSite);
  if (!status.ok()) {
    if (status.retryable()) {
      ++stats_.io_giveups;
      SetHealth(KeyedEngineHealth::kDegraded);
    }
    if (options_.degrade == KeyedDegradeMode::kBlock || !status.retryable()) {
      LatchError(status);
    }
  } else if (stats_.health == KeyedEngineHealth::kRecovering) {
    SetHealth(KeyedEngineHealth::kHealthy);
  }
  for (size_t v = 0; v < written; ++v) {
    spilled_.TryEmplace(victims[v]->key, 1);
    ++stats_.evictions;
    DropEntry(victims[v]);
  }
  stats_.spilled_keys = spilled_.Size();
  ++stats_.spill_batches;
  stats_.evict_seconds += SecondsSince(start);
  if (!status.ok() && options_.degrade == KeyedDegradeMode::kShed) {
    // The write prefix was not enough: shed the rest so the budget holds
    // even on the very pass that discovered the outage.
    ShedUntil(limit, protect);
  }
}

void KeyedWindowEngine::ShedUntil(uint64_t limit, const KeyEntry* protect) {
  if (ChargedBytes() <= limit) return;
  const auto start = Clock::now();
  KeyEntry* victim = lru_tail_;
  while (ChargedBytes() > limit && victim != nullptr) {
    KeyEntry* next = victim->lru_prev;
    if (victim != protect) {
      stats_.shed_bytes += victim->charge_bytes;
      ++stats_.degraded_drops;
      DropEntry(victim);
    }
    victim = next;
  }
  stats_.shed_seconds += SecondsSince(start);
}

void KeyedWindowEngine::EnforceBudget(const KeyEntry* protect) {
  if (options_.memory_budget_bytes == 0) return;
  EvictUntil(options_.memory_budget_bytes, protect);
}

uint64_t KeyedWindowEngine::ScratchBytes() const {
  // The entry pool's reserved bytes beyond the live entries (free-list
  // slots + arena slack); live entries are already in ChargedBytes().
  const uint64_t pool = entry_arena_.ReservedBytes();
  const uint64_t live = directory_.Size() * sizeof(KeyEntry);
  return demux_arena_.ReservedBytes() + run_index_.ReservedBytes() +
         runs_.capacity() * sizeof(KeyRun) + (pool > live ? pool - live : 0);
}

uint64_t KeyedWindowEngine::MemoryWords() const {
  return total_charge_words_ +
         (directory_.ReservedBytes() + spilled_.ReservedBytes() +
          ScratchBytes()) /
             8;
}

uint64_t KeyedWindowEngine::RetainedBytes() const {
  return ChargedBytes() + spilled_.ReservedBytes() + ScratchBytes();
}

uint64_t KeyedWindowEngine::ChargedBytes() const {
  return sizeof(*this) + total_charge_bytes_ + directory_.ReservedBytes();
}

bool KeyedWindowEngine::HasKey(uint64_t key) const {
  return directory_.Contains(key) || spilled_.Contains(key);
}

Result<std::vector<Item>> KeyedWindowEngine::SampleKey(uint64_t key) {
  if (kind_ != SinkKind::kSampler) {
    return Status::FailedPrecondition(
        "keyed: SampleKey on an estimator-kind engine (use EstimateKey)");
  }
  KeyEntry* entry = FindEntry(key, /*create_missing=*/false);
  if (entry == nullptr) {
    if (!last_error_.ok()) return last_error_;
    return Status::InvalidArgument("keyed: unknown key");
  }
  entry->sink.sink->AdvanceTime(now_);
  RechargeEntry(entry);
  return entry->sink.sampler->Sample();
}

Result<EstimateReport> KeyedWindowEngine::EstimateKey(uint64_t key) {
  if (kind_ != SinkKind::kEstimator) {
    return Status::FailedPrecondition(
        "keyed: EstimateKey on a sampler-kind engine (use SampleKey)");
  }
  KeyEntry* entry = FindEntry(key, /*create_missing=*/false);
  if (entry == nullptr) {
    if (!last_error_.ok()) return last_error_;
    return Status::InvalidArgument("keyed: unknown key");
  }
  entry->sink.sink->AdvanceTime(now_);
  RechargeEntry(entry);
  return entry->sink.estimator->Estimate();
}

Result<std::string> KeyedWindowEngine::SaveKeyState(uint64_t key) {
  KeyEntry* entry = FindEntry(key, /*create_missing=*/false);
  if (entry == nullptr) {
    if (!last_error_.ok()) return last_error_;
    return Status::InvalidArgument("keyed: unknown key");
  }
  return EncodeSpill(*entry);
}

Status KeyedWindowEngine::EvictKey(uint64_t key) {
  if (options_.spill_dir.empty()) {
    return Status::FailedPrecondition("keyed: EvictKey requires spill_dir");
  }
  if (spilled_.Contains(key)) return Status::Ok();  // already parked
  KeyEntry** slot = directory_.Find(key);
  if (slot == nullptr) return Status::InvalidArgument("keyed: unknown key");
  return SpillEntry(*slot);
}

std::vector<uint64_t> KeyedWindowEngine::LiveKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(directory_.Size());
  directory_.ForEach(
      [&keys](uint64_t key, KeyEntry* const&) { keys.push_back(key); });
  return keys;
}

Result<std::vector<std::unique_ptr<KeyedWindowEngine>>> CreateKeyedEngines(
    const KeyedEngineOptions& options, uint64_t shards) {
  if (shards < 1) {
    return Status::InvalidArgument("keyed: shards must be >= 1");
  }
  if (options.memory_budget_bytes > 0 &&
      options.memory_budget_bytes < shards) {
    return Status::InvalidArgument(
        "keyed: memory budget too small to split across shards");
  }
  std::vector<std::unique_ptr<KeyedWindowEngine>> engines;
  engines.reserve(shards);
  for (uint64_t shard = 0; shard < shards; ++shard) {
    KeyedEngineOptions shard_options = options;
    shard_options.memory_budget_bytes = options.memory_budget_bytes / shards;
    shard_options.spec.seed = Rng::ForkSeed(options.spec.seed, shard);
    shard_options.hot_spec.seed = Rng::ForkSeed(options.hot_spec.seed, shard);
    if (!options.spill_dir.empty()) {
      char sub[32];
      std::snprintf(sub, sizeof(sub), "shard-%04" PRIu64, shard);
      shard_options.spill_dir =
          (fs::path(options.spill_dir) / sub).string();
    }
    if (options.max_keys_hint > 0) {
      shard_options.max_keys_hint =
          options.max_keys_hint / shards + (options.max_keys_hint % shards != 0);
    }
    auto engine = KeyedWindowEngine::Create(shard_options);
    if (!engine.ok()) return engine.status();
    engines.push_back(std::move(engine).ValueOrDie());
  }
  return engines;
}

std::vector<StreamSink*> SinkPointers(
    const std::vector<std::unique_ptr<KeyedWindowEngine>>& engines) {
  std::vector<StreamSink*> sinks;
  sinks.reserve(engines.size());
  for (const auto& engine : engines) sinks.push_back(engine.get());
  return sinks;
}

}  // namespace swsample
