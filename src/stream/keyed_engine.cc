// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/keyed_engine.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/macros.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {
namespace fs = std::filesystem;

namespace {

// Spill file wire format: metadata header + the standard sink envelope.
// "SWSKEYS\0" little-endian.
constexpr uint64_t kSpillMagic = 0x005359454B535753ULL;
constexpr uint64_t kSpillVersion = 1;
constexpr char kSpillGlobPrefix[] = "key-";
constexpr char kSpillSuffix[] = ".ckpt";

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Same durability discipline as stream/checkpoint.cc: tmp + flush +
// fsync + atomic rename, so a crash mid-spill leaves either the old
// complete file or none — never a torn one.
Status AtomicWriteFile(const fs::path& path, const std::string& data,
                       bool do_fsync) {
  const fs::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("keyed: cannot create " + tmp.string());
  }
  bool ok = (data.empty() ||
             std::fwrite(data.data(), 1, data.size(), f) == data.size()) &&
            std::fflush(f) == 0;
#ifndef _WIN32
  ok = ok && (!do_fsync || fsync(fileno(f)) == 0);
#else
  (void)do_fsync;
#endif
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("keyed: short write to " + tmp.string());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("keyed: cannot rename " + tmp.string());
  }
  return Status::Ok();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("keyed: cannot open " + path.string());
  }
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    return Status::InvalidArgument("keyed: read error on " + path.string());
  }
  return data;
}

// "key-%016llx.ckpt" -> key; false for any other file name.
bool ParseSpillName(const std::string& name, uint64_t* key) {
  const size_t prefix = sizeof(kSpillGlobPrefix) - 1;
  const size_t suffix = sizeof(kSpillSuffix) - 1;
  if (name.size() != prefix + 16 + suffix) return false;
  if (name.compare(0, prefix, kSpillGlobPrefix) != 0) return false;
  if (name.compare(prefix + 16, suffix, kSpillSuffix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = prefix; i < prefix + 16; ++i) {
    const char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *key = v;
  return true;
}

}  // namespace

/// One live key: its sink, tier, per-key stream cursor and LRU linkage.
/// Heap-allocated (the directory FlatMap stores the pointer, which is
/// trivially copyable as FlatMap values must be).
struct KeyedWindowEngine::KeyEntry {
  uint64_t key = 0;
  uint64_t tier = 0;  ///< 0 = tail (options.spec), 1 = hot (hot_spec)
  Sink sink;
  SinkSpec spec;  ///< the exact per-key spec `sink` was built from
  /// Next local index for this key's tier instance (sequence re-index).
  uint64_t local_index = 0;
  uint64_t arrivals = 0;  ///< lifetime arrivals (drives promotion)
  Timestamp last_seen = 0;
  uint64_t charge_bytes = 0;
  uint64_t charge_words = 0;
  KeyEntry* lru_prev = nullptr;
  KeyEntry* lru_next = nullptr;
};

KeyedWindowEngine::KeyedWindowEngine(const KeyedEngineOptions& options)
    : options_(options) {}

KeyedWindowEngine::~KeyedWindowEngine() {
  directory_.ForEach([](uint64_t, KeyEntry*& entry) { delete entry; });
}

Result<std::unique_ptr<KeyedWindowEngine>> KeyedWindowEngine::Create(
    const KeyedEngineOptions& options) {
  auto kind = SinkKindOf(options.spec.name);
  if (!kind.ok()) return kind.status();
  // Probe-construct both tier specs now so misconfiguration surfaces at
  // build time, not on some key's first arrival mid-stream.
  if (auto probe = CreateSink(options.spec); !probe.ok()) {
    return Status::InvalidArgument("keyed: tail spec invalid: " +
                                   probe.status().message());
  }
  if (options.promote_after > 0) {
    auto hot_kind = SinkKindOf(options.hot_spec.name);
    if (!hot_kind.ok()) {
      return Status::InvalidArgument("keyed: hot spec invalid: " +
                                     hot_kind.status().message());
    }
    if (hot_kind.value() != kind.value()) {
      return Status::InvalidArgument(
          "keyed: hot and tail specs must be the same kind (both "
          "samplers or both estimators) so the per-key query surface is "
          "uniform across tiers");
    }
    if (auto probe = CreateSink(options.hot_spec); !probe.ok()) {
      return Status::InvalidArgument("keyed: hot spec invalid: " +
                                     probe.status().message());
    }
  }
  if (options.memory_budget_bytes > 0 && options.spill_dir.empty()) {
    return Status::InvalidArgument(
        "keyed: a memory budget requires spill_dir (evicted keys must "
        "have somewhere to go)");
  }

  auto engine =
      std::unique_ptr<KeyedWindowEngine>(new KeyedWindowEngine(options));
  engine->kind_ = kind.value();
  if (options.max_keys_hint > 0) {
    engine->directory_.Reserve(options.max_keys_hint);
  }
  if (!options.spill_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.spill_dir, ec);
    if (ec) {
      return Status::InvalidArgument("keyed: cannot create spill dir " +
                                     options.spill_dir + ": " + ec.message());
    }
    // Adopt spill files from a previous (crashed or handed-off) run.
    for (const auto& dirent : fs::directory_iterator(options.spill_dir, ec)) {
      uint64_t key;
      if (ParseSpillName(dirent.path().filename().string(), &key)) {
        engine->spilled_.TryEmplace(key, 1);
      }
    }
    if (ec) {
      return Status::InvalidArgument("keyed: cannot scan spill dir " +
                                     options.spill_dir + ": " + ec.message());
    }
    engine->stats_.spilled_keys = engine->spilled_.Size();
  }
  return engine;
}

std::string KeyedWindowEngine::SpillPath(uint64_t key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%016" PRIx64 "%s", kSpillGlobPrefix,
                key, kSpillSuffix);
  return (fs::path(options_.spill_dir) / name).string();
}

SinkSpec KeyedWindowEngine::TierSpec(uint64_t key, uint64_t tier) const {
  SinkSpec spec = tier == 0 ? options_.spec : options_.hot_spec;
  spec.seed = Rng::ForkSeed(Rng::ForkSeed(spec.seed, key), tier);
  return spec;
}

void KeyedWindowEngine::LatchError(const Status& status) {
  if (last_error_.ok()) last_error_ = status;
}

void KeyedWindowEngine::TouchLru(KeyEntry* entry) {
  if (lru_head_ == entry) return;
  UnlinkLru(entry);
  entry->lru_next = lru_head_;
  entry->lru_prev = nullptr;
  if (lru_head_ != nullptr) lru_head_->lru_prev = entry;
  lru_head_ = entry;
  if (lru_tail_ == nullptr) lru_tail_ = entry;
}

void KeyedWindowEngine::UnlinkLru(KeyEntry* entry) {
  if (entry->lru_prev != nullptr) entry->lru_prev->lru_next = entry->lru_next;
  if (entry->lru_next != nullptr) entry->lru_next->lru_prev = entry->lru_prev;
  if (lru_head_ == entry) lru_head_ = entry->lru_next;
  if (lru_tail_ == entry) lru_tail_ = entry->lru_prev;
  entry->lru_prev = entry->lru_next = nullptr;
}

void KeyedWindowEngine::RechargeEntry(KeyEntry* entry) {
  const uint64_t bytes = sizeof(KeyEntry) + entry->sink.sink->RetainedBytes();
  const uint64_t words = entry->sink.sink->MemoryWords();
  total_charge_bytes_ += bytes - entry->charge_bytes;
  total_charge_words_ += words - entry->charge_words;
  entry->charge_bytes = bytes;
  entry->charge_words = words;
}

KeyedWindowEngine::KeyEntry* KeyedWindowEngine::CreateEntry(
    uint64_t key, uint64_t tier, uint64_t local_index, uint64_t arrivals,
    Timestamp last_seen) {
  auto sink = CreateSink(TierSpec(key, tier));
  if (!sink.ok()) {
    // Both tier specs were probe-validated at Create; a failure here is
    // an engine bug, not user input.
    LatchError(Status::Internal("keyed: per-key construction failed: " +
                                sink.status().message()));
    return nullptr;
  }
  auto* entry = new KeyEntry();
  entry->key = key;
  entry->tier = tier;
  entry->spec = TierSpec(key, tier);
  entry->sink = std::move(sink).ValueOrDie();
  entry->local_index = local_index;
  entry->arrivals = arrivals;
  entry->last_seen = last_seen;
  directory_[key] = entry;
  stats_.live_keys = directory_.Size();
  TouchLru(entry);
  RechargeEntry(entry);
  return entry;
}

Result<std::string> KeyedWindowEngine::EncodeSpill(
    const KeyEntry& entry) const {
  auto envelope = SaveSink(*entry.sink.sink, entry.spec);
  if (!envelope.ok()) return envelope.status();
  BinaryWriter w;
  w.PutU64(kSpillMagic);
  w.PutU64(kSpillVersion);
  w.PutU64(entry.key);
  w.PutU64(entry.tier);
  w.PutU64(entry.local_index);
  w.PutU64(entry.arrivals);
  w.PutI64(entry.last_seen);
  w.PutString(envelope.value());
  return w.Release();
}

Status KeyedWindowEngine::SpillEntry(KeyEntry* entry) {
  const auto start = Clock::now();
  auto blob = EncodeSpill(*entry);
  if (!blob.ok()) return blob.status();
  if (Status status = AtomicWriteFile(SpillPath(entry->key), blob.value(),
                                      options_.fsync_spills);
      !status.ok()) {
    return status;
  }
  spilled_.TryEmplace(entry->key, 1);
  stats_.spilled_keys = spilled_.Size();
  ++stats_.evictions;
  stats_.evict_seconds += SecondsSince(start);
  DropEntry(entry);
  return Status::Ok();
}

void KeyedWindowEngine::DropEntry(KeyEntry* entry) {
  UnlinkLru(entry);
  total_charge_bytes_ -= entry->charge_bytes;
  total_charge_words_ -= entry->charge_words;
  directory_.Erase(entry->key);
  stats_.live_keys = directory_.Size();
  delete entry;
}

Result<KeyedWindowEngine::KeyEntry*> KeyedWindowEngine::RestoreEntry(
    uint64_t key) {
  const auto start = Clock::now();
  const std::string path = SpillPath(key);
  auto blob = ReadFile(path);
  if (!blob.ok()) return blob.status();
  BinaryReader r(blob.value());
  uint64_t magic, version, stored_key, tier, local_index, arrivals;
  int64_t last_seen;
  std::string envelope;
  if (!r.GetU64(&magic) || magic != kSpillMagic ||  //
      !r.GetU64(&version) || version != kSpillVersion ||
      !r.GetU64(&stored_key) || stored_key != key || !r.GetU64(&tier) ||
      !r.GetU64(&local_index) || !r.GetU64(&arrivals) ||
      !r.GetI64(&last_seen) || !r.GetString(&envelope) || !r.AtEnd()) {
    return Status::InvalidArgument("keyed: corrupt spill file " + path);
  }
  auto restored = RestoreSink(envelope);
  if (!restored.ok()) return restored.status();
  if ((restored.value().sink.sampler != nullptr) !=
      (kind_ == SinkKind::kSampler)) {
    return Status::InvalidArgument(
        "keyed: spill file " + path +
        " holds a different sink kind than this engine");
  }
  auto* entry = new KeyEntry();
  entry->key = key;
  entry->tier = tier;
  entry->spec = restored.value().spec;
  entry->sink = std::move(restored.value().sink);
  entry->local_index = local_index;
  entry->arrivals = arrivals;
  entry->last_seen = last_seen;
  directory_[key] = entry;
  stats_.live_keys = directory_.Size();
  TouchLru(entry);
  RechargeEntry(entry);
  std::remove(path.c_str());
  spilled_.Erase(key);
  stats_.spilled_keys = spilled_.Size();
  ++stats_.restores;
  stats_.restore_seconds += SecondsSince(start);
  return entry;
}

KeyedWindowEngine::KeyEntry* KeyedWindowEngine::FindEntry(
    uint64_t key, bool create_missing) {
  if (KeyEntry** slot = directory_.Find(key); slot != nullptr) return *slot;
  if (spilled_.Contains(key)) {
    auto restored = RestoreEntry(key);
    if (!restored.ok()) {
      LatchError(restored.status());
      return nullptr;
    }
    return restored.value();
  }
  if (!create_missing) return nullptr;
  return CreateEntry(key, /*tier=*/0, /*local_index=*/0, /*arrivals=*/0,
                     /*last_seen=*/now_);
}

void KeyedWindowEngine::Observe(const Item& item) {
  if (item.timestamp > now_) now_ = item.timestamp;
  const uint64_t key = item.value >> options_.key_shift;
  KeyEntry* entry = FindEntry(key, /*create_missing=*/true);
  if (entry == nullptr) return;  // I/O failure latched; arrival dropped
  ++entry->arrivals;
  // Tier promotion: a FRESH hot-tier sink (no history replay — the
  // documented warm-up), and the triggering arrival lands in it.
  if (options_.promote_after > 0 && entry->tier == 0 &&
      entry->arrivals >= options_.promote_after) {
    const uint64_t arrivals = entry->arrivals;
    DropEntry(entry);
    entry = CreateEntry(key, /*tier=*/1, /*local_index=*/0, arrivals, now_);
    if (entry == nullptr) return;
    ++stats_.promotions;
  }
  entry->sink.sink->Observe(
      Item{item.value, entry->local_index++, item.timestamp});
  entry->last_seen = now_;
  ++stats_.items;
  TouchLru(entry);
  RechargeEntry(entry);
  ExpireIdle();
  EnforceBudget(entry);
  stats_.retained_bytes = RetainedBytes();
  if (stats_.retained_bytes > stats_.peak_retained_bytes) {
    stats_.peak_retained_bytes = stats_.retained_bytes;
  }
  stats_.charged_bytes = ChargedBytes();
  if (stats_.charged_bytes > stats_.peak_charged_bytes) {
    stats_.peak_charged_bytes = stats_.charged_bytes;
  }
}

void KeyedWindowEngine::ObserveBatch(std::span<const Item> items) {
  for (const Item& item : items) Observe(item);
}

void KeyedWindowEngine::AdvanceTime(Timestamp now) {
  if (now > now_) now_ = now;
  ExpireIdle();
}

void KeyedWindowEngine::ExpireIdle() {
  if (options_.idle_ttl <= 0) return;
  while (lru_tail_ != nullptr &&
         now_ - lru_tail_->last_seen > options_.idle_ttl) {
    DropEntry(lru_tail_);
    ++stats_.expirations;
  }
}

void KeyedWindowEngine::EnforceBudget(const KeyEntry* protect) {
  if (options_.memory_budget_bytes == 0) return;
  while (ChargedBytes() > options_.memory_budget_bytes) {
    KeyEntry* victim = lru_tail_;
    if (victim == protect) victim = victim->lru_prev;
    if (victim == nullptr) return;  // only the protected key remains
    if (Status status = SpillEntry(victim); !status.ok()) {
      LatchError(status);
      return;
    }
  }
}

uint64_t KeyedWindowEngine::MemoryWords() const {
  return total_charge_words_ +
         (directory_.ReservedBytes() + spilled_.ReservedBytes()) / 8;
}

uint64_t KeyedWindowEngine::RetainedBytes() const {
  return ChargedBytes() + spilled_.ReservedBytes();
}

uint64_t KeyedWindowEngine::ChargedBytes() const {
  return sizeof(*this) + total_charge_bytes_ + directory_.ReservedBytes();
}

bool KeyedWindowEngine::HasKey(uint64_t key) const {
  return directory_.Contains(key) || spilled_.Contains(key);
}

Result<std::vector<Item>> KeyedWindowEngine::SampleKey(uint64_t key) {
  if (kind_ != SinkKind::kSampler) {
    return Status::FailedPrecondition(
        "keyed: SampleKey on an estimator-kind engine (use EstimateKey)");
  }
  KeyEntry* entry = FindEntry(key, /*create_missing=*/false);
  if (entry == nullptr) {
    if (!last_error_.ok()) return last_error_;
    return Status::InvalidArgument("keyed: unknown key");
  }
  entry->sink.sink->AdvanceTime(now_);
  RechargeEntry(entry);
  return entry->sink.sampler->Sample();
}

Result<EstimateReport> KeyedWindowEngine::EstimateKey(uint64_t key) {
  if (kind_ != SinkKind::kEstimator) {
    return Status::FailedPrecondition(
        "keyed: EstimateKey on a sampler-kind engine (use SampleKey)");
  }
  KeyEntry* entry = FindEntry(key, /*create_missing=*/false);
  if (entry == nullptr) {
    if (!last_error_.ok()) return last_error_;
    return Status::InvalidArgument("keyed: unknown key");
  }
  entry->sink.sink->AdvanceTime(now_);
  RechargeEntry(entry);
  return entry->sink.estimator->Estimate();
}

Result<std::string> KeyedWindowEngine::SaveKeyState(uint64_t key) {
  KeyEntry* entry = FindEntry(key, /*create_missing=*/false);
  if (entry == nullptr) {
    if (!last_error_.ok()) return last_error_;
    return Status::InvalidArgument("keyed: unknown key");
  }
  return EncodeSpill(*entry);
}

Status KeyedWindowEngine::EvictKey(uint64_t key) {
  if (options_.spill_dir.empty()) {
    return Status::FailedPrecondition("keyed: EvictKey requires spill_dir");
  }
  if (spilled_.Contains(key)) return Status::Ok();  // already parked
  KeyEntry** slot = directory_.Find(key);
  if (slot == nullptr) return Status::InvalidArgument("keyed: unknown key");
  return SpillEntry(*slot);
}

std::vector<uint64_t> KeyedWindowEngine::LiveKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(directory_.Size());
  directory_.ForEach(
      [&keys](uint64_t key, KeyEntry* const&) { keys.push_back(key); });
  return keys;
}

Result<std::vector<std::unique_ptr<KeyedWindowEngine>>> CreateKeyedEngines(
    const KeyedEngineOptions& options, uint64_t shards) {
  if (shards < 1) {
    return Status::InvalidArgument("keyed: shards must be >= 1");
  }
  if (options.memory_budget_bytes > 0 &&
      options.memory_budget_bytes < shards) {
    return Status::InvalidArgument(
        "keyed: memory budget too small to split across shards");
  }
  std::vector<std::unique_ptr<KeyedWindowEngine>> engines;
  engines.reserve(shards);
  for (uint64_t shard = 0; shard < shards; ++shard) {
    KeyedEngineOptions shard_options = options;
    shard_options.memory_budget_bytes = options.memory_budget_bytes / shards;
    shard_options.spec.seed = Rng::ForkSeed(options.spec.seed, shard);
    shard_options.hot_spec.seed = Rng::ForkSeed(options.hot_spec.seed, shard);
    if (!options.spill_dir.empty()) {
      char sub[32];
      std::snprintf(sub, sizeof(sub), "shard-%04" PRIu64, shard);
      shard_options.spill_dir =
          (fs::path(options.spill_dir) / sub).string();
    }
    if (options.max_keys_hint > 0) {
      shard_options.max_keys_hint =
          options.max_keys_hint / shards + (options.max_keys_hint % shards != 0);
    }
    auto engine = KeyedWindowEngine::Create(shard_options);
    if (!engine.ok()) return engine.status();
    engines.push_back(std::move(engine).ValueOrDie());
  }
  return engines;
}

std::vector<StreamSink*> SinkPointers(
    const std::vector<std::unique_ptr<KeyedWindowEngine>>& engines) {
  std::vector<StreamSink*> sinks;
  sinks.reserve(engines.size());
  for (const auto& engine : engines) sinks.push_back(engine.get());
  return sinks;
}

}  // namespace swsample
