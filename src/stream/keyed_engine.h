// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Multi-tenant keyed window engine: one StreamSink that routes every
/// arrival to a lazily-instantiated per-key window sink, under a global
/// memory budget, with idle-key expiry and cold-key spill-to-disk.
///
/// Shape: a FlatMap directory (key -> entry) of independently configured
/// per-key sinks built through the unified SinkSpec factory
/// (apps/sink_spec.h). Each key's sink sees a locally re-indexed stream
/// (indices consecutive from 0 within that key's tier instance), which is
/// what the sequence-model samplers' positional expiry requires;
/// timestamps pass through unchanged, so timestamp-model sinks behave
/// per-key exactly as they would standalone.
///
/// Tiering: every new key starts on the cheap tail tier
/// (`options.spec`, typically a bop-ts-single-family O(k)-word sink).
/// When a key's lifetime arrival count reaches `promote_after` it is
/// promoted to the hot tier (`options.hot_spec`, typically an exact
/// window) — a FRESH sink with a documented warm-up: promotion does not
/// replay the key's history, so hot-tier answers are exact only once the
/// post-promotion arrivals fill the window. Promotion happens before the
/// triggering arrival is delivered, so that arrival lands in the hot
/// sink.
///
/// Memory budget: each key is charged its entry footprint plus its
/// sink's RetainedBytes() (real retained capacity, core/api.h). The
/// budget governs ChargedBytes() — live per-key state plus the key
/// directory — i.e. everything eviction can actually reclaim. The spill
/// INDEX (~9 bytes per spilled key, the cost of knowing a key is parked
/// on disk) is reported in RetainedBytes() but exempt from the budget:
/// it grows with key cardinality, not with retained window state, and
/// evicting more keys only makes it bigger. When ChargedBytes() exceeds
/// `memory_budget_bytes`, the
/// least-recently-seen keys (never the key currently being delivered)
/// are EVICTED: serialized through the standard checkpoint envelope
/// (SaveSink) into `spill_dir/key-<hex>.ckpt` (atomic tmp+rename) and
/// dropped from memory. The next arrival or query for a spilled key
/// restores it bit-identically — RNG state, window contents and the
/// key's local index all round-trip — so an evict/restore cycle is
/// indistinguishable from an uninterrupted run. A fresh engine
/// constructed over a non-empty spill directory adopts its spill files
/// (crash recovery for the spilled tail).
///
/// TTL expiry: keys idle longer than `idle_ttl` (engine clock = max
/// observed timestamp) are DROPPED, state and all — expiry models
/// tenant departure, not cold storage. A later arrival for an expired
/// key starts over on the tail tier. Spilled keys are exempt (they cost
/// no memory); the engine clock only advances sinks lazily (a key's
/// sink is advanced by its own arrivals and at query time), so idle
/// keys cost no per-arrival work.
///
/// Batched ingestion: ObserveBatch demultiplexes each incoming batch in
/// 16384-item blocks — ONE scan detects same-key runs and scatter/
/// gathers the rest into per-key index chains in an engine-owned arena,
/// then each key's items are delivered as one micro-batch through the
/// per-key sink's own ObserveBatch (the PR 7 closed-form fast paths).
/// Charging, LRU touch, TTL sweep and budget enforcement run once per
/// micro-batch / block instead of once per item; the scan tracks the
/// clock prefix-max so TTL generation splits, promotion splits and
/// last_seen land exactly where item-wise delivery would put them.
/// Evictions triggered within a block are grouped into one spill pass
/// with a single directory fsync (SpillBatch), and spilled keys touched
/// by a block are prefetched by a background reader thread that only
/// reads file bytes — decode and adoption stay on the ingest thread at
/// the key's delivery point, keeping restores bit-identical to the
/// synchronous path.
///
/// The demux only pays off when micro-batches amortize the per-key
/// resolve, so ObserveBatch is adaptive: a block whose scan yields
/// near-singleton micro-batches AND whose delivery was dominated by
/// TTL-churn sink creation (uniform traffic over a huge key space with
/// a binding idle_ttl — nothing to amortize, and the block-scoped
/// create/drop bursts defeat the allocator's chunk reuse) puts the
/// engine into a backoff window: the next kDemuxBackoffBlocks blocks
/// are delivered item-wise (the reference semantics, so equivalence is
/// trivial), after which one block re-probes the demux path.
///
/// Sharded use: the engine is itself a StreamSink, so
/// ShardedStreamDriver with ShardPartition::kKeyHash drives N engines
/// as shard sinks — every key lives in exactly one engine
/// (ShardOfKey), budgets and spill directories are per shard
/// (CreateKeyedEngines splits them), and per-key queries go to the
/// owning shard.
///
/// Error latching: StreamSink::Observe cannot return a Status, so spill
/// and restore I/O failures latch into `status()` (first error wins)
/// and the affected arrival is dropped; drivers check `status()` after
/// a run. Query-surface methods return errors directly.
///
/// Ownership: the engine owns every per-key sink. Thread-safety: one
/// engine per thread (core/api.h rule); sharded use gives each worker
/// its own engine.

#ifndef SWSAMPLE_STREAM_KEYED_ENGINE_H_
#define SWSAMPLE_STREAM_KEYED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "apps/sink_spec.h"
#include "core/api.h"
#include "stream/item.h"
#include "util/arena.h"
#include "util/file_ops.h"
#include "util/flat_map.h"
#include "util/status.h"

namespace swsample {

class KeyedSpillReader;

/// What the engine does when spill storage stays down after retries.
enum class KeyedDegradeMode : uint8_t {
  /// Strict fail-stop: the failure latches into `status()`, the affected
  /// arrival is dropped, and the budget may be exceeded until the next
  /// successful spill (the pre-existing behavior).
  kBlock = 0,
  /// Availability over durability: victims the engine cannot spill are
  /// dropped outright (accounted in `degraded_drops`/`shed_bytes`), so
  /// the memory budget holds even with the spill dir permanently failed;
  /// unreadable parked keys restart fresh (`restore_misses`). Nothing
  /// latches — the loss is reported, not fatal.
  kShed = 1,
};

/// Spill-storage health, driven by I/O outcomes: a retry give-up moves
/// the engine to kDegraded; a periodic re-probe of the spill dir that
/// succeeds moves it to kRecovering; the next real spill/restore success
/// completes the round trip back to kHealthy.
enum class KeyedEngineHealth : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kRecovering = 2,
};

/// Lowercase display name ("healthy", "degraded", "recovering").
const char* KeyedHealthName(KeyedEngineHealth health);

/// Construction-time policy for a KeyedWindowEngine.
struct KeyedEngineOptions {
  /// Tail-tier spec: every new (or expired-and-returned) key starts on
  /// this sink. Required. `spec.seed` is the engine seed root; each
  /// key's sink is seeded Rng::ForkSeed(Rng::ForkSeed(seed, key), tier)
  /// so per-key streams are independent and reproducible.
  SinkSpec spec;
  /// Hot-tier spec for promoted keys (same kind — sampler/estimator —
  /// as `spec`). Ignored unless `promote_after` > 0.
  SinkSpec hot_spec;
  /// Promote a key to `hot_spec` when its lifetime arrivals reach this
  /// count; 0 disables tiering.
  uint64_t promote_after = 0;
  /// Key derivation: key = item.value >> key_shift (0 keys on the raw
  /// value). Lets callers fold a value space onto a coarser tenant id.
  uint64_t key_shift = 0;
  /// Global retained-bytes budget (RetainedBytes(), real capacity).
  /// 0 = unlimited. A positive budget requires `spill_dir`.
  uint64_t memory_budget_bytes = 0;
  /// Drop keys idle longer than this many timestamp units; 0 = never.
  Timestamp idle_ttl = 0;
  /// Directory for eviction spill files; created if missing. Existing
  /// key-*.ckpt files in it are adopted as spilled keys.
  std::string spill_dir;
  /// fsync each spill file before its atomic rename. The default makes
  /// evicted state survive power loss (the bit-identical crash-recovery
  /// guarantee); turning it off trades that durability for an
  /// order-of-magnitude cheaper eviction (write + rename only) where
  /// spills are working-set overflow, not crash state — e.g. benches.
  bool fsync_spills = true;
  /// Pre-size the key directory for this many live keys (0 = grow).
  uint64_t max_keys_hint = 0;
  /// Enforce the memory budget after every ITEM of a batch instead of
  /// after every per-key micro-batch. The batched fast path holds the
  /// budget at micro-batch boundaries (with a conservative pre-delivery
  /// headroom check), which is the documented batched invariant; this
  /// knob recovers the strict item-granular behavior — at per-item cost
  /// — for tests and callers that assert it mid-batch.
  bool strict_budget = false;
  /// Restore spilled keys touched by a batch through a background read
  /// thread: the reader fetches file BYTES while the ingest thread
  /// demuxes, and decode + adoption happen on the ingest thread at each
  /// key's delivery point, so results are bit-identical to synchronous
  /// restore. Only the batched path prefetches; Observe() and the query
  /// surface always restore synchronously.
  bool async_restore = true;
  /// Bounded-retry schedule for transient spill/restore I/O faults.
  /// Retries rewrite/reread the same bytes, so a run whose every fault
  /// is cured by a retry is bit-identical to a fault-free run. While the
  /// engine is degraded, operations fail fast (one attempt) until the
  /// re-probe sees storage heal.
  RetryPolicy io_retry;
  /// Behavior when spill storage stays down after retries.
  KeyedDegradeMode degrade = KeyedDegradeMode::kBlock;
  /// While degraded, re-probe the spill dir (a small write + unlink
  /// through the same failpoint site as real spills) every this many
  /// delivered items; success moves the engine to kRecovering.
  uint64_t reprobe_every_items = 65536;
};

/// Counters exposed for benches, budget gates and tests.
struct KeyedEngineStats {
  uint64_t live_keys = 0;       ///< keys resident in memory
  uint64_t spilled_keys = 0;    ///< keys parked on disk
  uint64_t evictions = 0;       ///< budget-driven spills (+ EvictKey)
  uint64_t restores = 0;        ///< spill files read back
  uint64_t expirations = 0;     ///< TTL drops
  uint64_t promotions = 0;      ///< tail -> hot tier moves
  uint64_t items = 0;           ///< arrivals delivered
  uint64_t retained_bytes = 0;  ///< current RetainedBytes() total
  uint64_t peak_retained_bytes = 0;  ///< max of the above over the run
  uint64_t charged_bytes = 0;        ///< current ChargedBytes() total
  uint64_t peak_charged_bytes = 0;   ///< max budget-governed bytes seen
  uint64_t spill_batches = 0;   ///< batched spill passes (1 dir fsync each)
  uint64_t prefetched_restores = 0;  ///< restores served by the async reader
  uint64_t io_retries = 0;      ///< transient-fault retries that ran
  uint64_t io_giveups = 0;      ///< operations that exhausted retries
  uint64_t degraded_drops = 0;  ///< victims shed without a spill (kShed)
  uint64_t shed_bytes = 0;      ///< charged bytes reclaimed by shedding
  uint64_t quarantined_files = 0;  ///< corrupt spill files renamed aside
  uint64_t restore_misses = 0;  ///< parked keys that had to restart fresh
  KeyedEngineHealth health = KeyedEngineHealth::kHealthy;
  double evict_seconds = 0.0;    ///< total wall time spent spilling
  double shed_seconds = 0.0;     ///< wall time spent in degraded shedding
  double restore_seconds = 0.0;  ///< total wall time spent restoring
};

/// The multi-tenant engine (see file comment).
class KeyedWindowEngine final : public StreamSink {
 public:
  /// Validates the options (both specs must construct, same kind;
  /// budget requires spill_dir), creates/scans the spill directory.
  static Result<std::unique_ptr<KeyedWindowEngine>> Create(
      const KeyedEngineOptions& options);

  ~KeyedWindowEngine() override;
  KeyedWindowEngine(const KeyedWindowEngine&) = delete;
  KeyedWindowEngine& operator=(const KeyedWindowEngine&) = delete;

  // StreamSink surface -----------------------------------------------
  void Observe(const Item& item) override;
  void ObserveBatch(std::span<const Item> items) override;
  /// Advances the engine clock and applies TTL expiry. Per-key sinks
  /// are advanced lazily (on their own arrivals and at query time).
  void AdvanceTime(Timestamp now) override;
  /// Paper-model words: sum of live sinks' MemoryWords plus directory
  /// overhead. Maintained incrementally (O(1) per arrival).
  uint64_t MemoryWords() const override;
  /// Real retained capacity including the spill index.
  uint64_t RetainedBytes() const override;
  /// The budget-governed subset of RetainedBytes(): live per-key state
  /// plus the key directory — everything eviction can reclaim.
  uint64_t ChargedBytes() const;
  const char* name() const override { return "keyed-engine"; }
  /// Engine state spans disk (spill files) and a directory of sinks;
  /// it does not flatten into the single-sink checkpoint envelope.
  bool persistable() const override { return false; }

  // Per-key query surface --------------------------------------------
  /// True when `key` is live in memory or parked in a spill file.
  bool HasKey(uint64_t key) const;
  /// Current sample of `key`'s window (sampler-kind engines only).
  /// Restores the key if spilled; advances its sink to the engine
  /// clock first. NotFound-flavored InvalidArgument for unknown keys.
  Result<std::vector<Item>> SampleKey(uint64_t key);
  /// Current estimate for `key` (estimator-kind engines only).
  Result<EstimateReport> EstimateKey(uint64_t key);
  /// The exact blob an eviction would spill for `key` right now —
  /// envelope plus key metadata. The bit-equality tests compare these
  /// across evict/restore boundaries.
  Result<std::string> SaveKeyState(uint64_t key);
  /// Forces `key` out to its spill file (requires spill_dir).
  Status EvictKey(uint64_t key);

  /// First spill/restore I/O error latched during Observe (Ok when
  /// clean). Check after a drive. kShed engines do not latch storage
  /// give-ups — check `stats().io_giveups` and `health()` instead.
  Status status() const { return last_error_; }
  /// Current spill-storage health (see KeyedEngineHealth).
  KeyedEngineHealth health() const { return stats_.health; }
  const KeyedEngineStats& stats() const { return stats_; }
  /// Live (in-memory) keys, unordered. O(directory); test/debug aid.
  std::vector<uint64_t> LiveKeys() const;
  /// Engine clock: max timestamp observed / advanced to.
  Timestamp now() const { return now_; }

 private:
  struct KeyEntry;

  /// One per-key micro-batch discovered by the block scan: a chain of
  /// item indices (through `demux_next_`) plus the clock facts exact
  /// item-wise equivalence needs — `first_clock` is the engine clock
  /// BEFORE the run's first item (the TTL-expiry decision point) and
  /// `last_seen` the running-max clock AT its last item (what item-wise
  /// delivery would leave in entry->last_seen).
  struct KeyRun {
    uint64_t key = 0;
    uint32_t head = 0;
    uint32_t tail = 0;
    uint32_t count = 0;
    Timestamp first_clock = 0;
    Timestamp last_seen = 0;
  };

  /// Items demuxed per block: bounds the arena scratch (64 KiB of chain
  /// links + 384 KiB of staging) and matches the batch16k bench shape.
  static constexpr uint32_t kDemuxBlockItems = 16384;
  /// Item-wise blocks delivered after a churn-dominated singleton block
  /// before the demux path is probed again (see the file comment). The
  /// window doubles (capped below) each time the probe block re-triggers
  /// the decision, so steady hostile traffic converges to item-wise
  /// parity instead of re-paying the demux every 16 blocks; any block
  /// that stays demuxed resets the window.
  static constexpr uint32_t kDemuxBackoffBlocks = 15;
  static constexpr uint32_t kDemuxBackoffMax = 255;
  static constexpr uint32_t kNoIndex = 0xffffffffu;

  explicit KeyedWindowEngine(const KeyedEngineOptions& options);

  /// Live entry lookup; restores from spill when parked. Creates a
  /// fresh tail-tier entry when `create_missing`. nullptr when absent
  /// (or on latched I/O failure). One directory probe on every path.
  KeyEntry* FindEntry(uint64_t key, bool create_missing);
  /// Constructs a fresh entry into the pre-probed directory slot.
  KeyEntry* CreateEntry(uint64_t key, uint64_t tier, uint64_t local_index,
                        uint64_t arrivals, Timestamp last_seen,
                        KeyEntry** slot);
  /// Reads + decodes `key`'s spill file into the pre-probed slot
  /// (prefetched bytes when the async reader fetched them already),
  /// retrying transient read faults under the engine retry policy. The
  /// caller erases the placeholder slot unless a live entry comes back.
  /// Three outcomes: a live entry; a nullptr VALUE — the parked state is
  /// unusable (quarantined corruption, or unreachable storage in kShed)
  /// and the key restarts fresh (`restore_misses`); or an error Status
  /// (kBlock give-up — the caller latches it).
  Result<KeyEntry*> RestoreEntry(uint64_t key, KeyEntry** slot);
  /// Renames `key`'s spill file aside (`.bad`, invisible to adoption
  /// scans) and forgets the parked key, so one torn file costs one key
  /// instead of the directory.
  void QuarantineSpill(uint64_t key, const std::string& path);
  /// Replaces the entry's sink with a fresh hot-tier instance in place —
  /// no directory erase/re-insert, LRU linkage preserved.
  bool PromoteInPlace(KeyEntry* entry);
  /// Per-key spec of `tier` with the key-forked seed applied.
  SinkSpec TierSpec(uint64_t key, uint64_t tier) const;

  Result<std::string> EncodeSpill(const KeyEntry& entry) const;
  Status SpillEntry(KeyEntry* entry);
  void DropEntry(KeyEntry* entry);
  void RechargeEntry(KeyEntry* entry);

  /// Entry pool: placement-new over an engine-owned arena + free list,
  /// so evict/restore churn stops hitting the global allocator.
  KeyEntry* AllocEntry();
  void ReleaseEntry(KeyEntry* entry);

  // Batched ingestion (see ObserveBatch).
  void ObserveBlock(std::span<const Item> block);
  void EnsureDemuxScratch(size_t need);
  void PrefetchSpilledRuns();
  void ProcessRun(std::span<const Item> block, const KeyRun& run);
  KeyEntry* ResolveRunEntry(const KeyRun& run);

  void TouchLru(KeyEntry* entry);
  void UnlinkLru(KeyEntry* entry);
  void ExpireIdle();
  /// Spills LRU victims (never `protect`) as ONE batched pass until
  /// ChargedBytes() <= limit; EnforceBudget passes the budget itself,
  /// the pre-delivery headroom check passes budget - expected growth.
  void EvictUntil(uint64_t limit, const KeyEntry* protect);
  /// Degraded-mode budget enforcement: drops LRU victims (never
  /// `protect`) with no I/O and no allocation until ChargedBytes() <=
  /// limit, accounting every loss.
  void ShedUntil(uint64_t limit, const KeyEntry* protect);
  void EnforceBudget(const KeyEntry* protect);
  void LatchError(const Status& status);
  void SetHealth(KeyedEngineHealth health);
  /// While degraded, probes the spill dir every `reprobe_every_items`
  /// delivered items; a successful probe write moves to kRecovering.
  void MaybeReprobe();
  /// The engine retry policy, collapsed to one attempt while degraded
  /// (storage is known-bad; fail fast until the re-probe heals it).
  RetryPolicy EffectiveRetry() const;

  /// Demux/staging/pool bytes: engine scratch that eviction cannot
  /// reclaim — reported by RetainedBytes(), exempt from the budget like
  /// the spill index.
  uint64_t ScratchBytes() const;

  std::string SpillPath(uint64_t key) const;
  std::string SpillFileName(uint64_t key) const;

  KeyedEngineOptions options_;
  SinkKind kind_ = SinkKind::kSampler;
  /// Pre-resolved per-tier constructors (registry lookup + config
  /// projection done once, not per key).
  SinkFactory tail_factory_;
  SinkFactory hot_factory_;
  FlatMap<uint64_t, KeyEntry*> directory_;
  /// Keys parked on disk (value unused; FlatMap as a set).
  FlatMap<uint64_t, uint8_t> spilled_;
  /// Intrusive LRU over live entries: head = most recent.
  KeyEntry* lru_head_ = nullptr;
  KeyEntry* lru_tail_ = nullptr;
  Timestamp now_ = 0;
  uint64_t total_charge_bytes_ = 0;
  uint64_t total_charge_words_ = 0;

  /// Entry pool storage (AllocEntry/ReleaseEntry).
  Arena entry_arena_{4096};
  std::vector<KeyEntry*> entry_free_;

  /// Batch demux scratch, reset per block, zero steady-state allocation.
  Arena demux_arena_{4096};
  uint32_t* demux_next_ = nullptr;
  Item* demux_staging_ = nullptr;
  uint32_t demux_capacity_ = 0;
  std::vector<KeyRun> runs_;
  FlatMap<uint64_t, uint32_t> run_index_;
  /// Adaptive fallback: item-wise blocks left before re-probing the
  /// demux, the next window length (doubles on consecutive triggers),
  /// and the current block's CreateEntry count (churn signal).
  uint32_t demux_backoff_ = 0;
  uint32_t demux_backoff_window_ = kDemuxBackoffBlocks;
  uint64_t block_creates_ = 0;

  /// Async restore lane: I/O-only reader thread (lazily started) plus
  /// the per-block key -> reader-slot map (bounded, linear scan).
  std::unique_ptr<KeyedSpillReader> reader_;
  std::vector<uint64_t> prefetch_keys_;
  std::vector<int> prefetch_slots_;

  KeyedEngineStats stats_;
  Status last_error_ = Status::Ok();
  /// Next stats_.items threshold at which a degraded engine re-probes.
  uint64_t next_reprobe_items_ = 0;
};

/// N per-shard engines for ShardedStreamDriver kKeyHash runs: budget
/// split evenly, spill_dir suffixed per shard ("<dir>/shard-NNNN"),
/// seeds forked per shard so no key's RNG stream collides across
/// reshardings.
Result<std::vector<std::unique_ptr<KeyedWindowEngine>>> CreateKeyedEngines(
    const KeyedEngineOptions& options, uint64_t shards);

/// StreamSink* views over CreateKeyedEngines results (driver spans).
std::vector<StreamSink*> SinkPointers(
    const std::vector<std::unique_ptr<KeyedWindowEngine>>& engines);

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_KEYED_ENGINE_H_
