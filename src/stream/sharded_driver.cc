// Copyright (c) swsample authors. Licensed under the MIT license.
//
// The sharded ingestion engine (see sharded_driver.h for the data-flow
// picture). One bounded SPSC queue per worker thread carries routed
// chunks; the producer blocks on a full queue (backpressure), workers
// re-index each chunk into their shard's local stream before pumping it,
// and joining the workers is the synchronization point that makes
// post-drive shard queries race-free.

#include "stream/sharded_driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "util/file_ops.h"
#include "util/flat_map.h"
#include "util/macros.h"

namespace swsample {

namespace {

using Clock = std::chrono::steady_clock;

/// Key-hash partition function: the shared SplitMix64 finalizer
/// (util/flat_map.h) over a golden-ratio-offset key — bit-identical to
/// the file-local copy it replaces. Uniform enough that per-shard loads
/// concentrate tightly for any key distribution.
uint64_t MixKey(uint64_t value) {
  return SplitMix64Hash(value + 0x9e3779b97f4a7c15ULL);
}

/// One routed unit of work. kSpan references producer-owned storage (the
/// zero-copy path of Drive over a materialized stream); kOwned moves the
/// storage through the queue; kBarrier is the checkpoint quiesce token
/// (the worker acknowledges it after draining everything before it).
struct Msg {
  enum class Kind { kSpan, kOwned, kAdvance, kBarrier, kStop };
  Kind kind = Kind::kStop;
  uint32_t shard = 0;
  std::span<const Item> span;
  std::vector<Item> owned;
  Timestamp now = 0;
};

/// Bounded FIFO with one producer and one consumer; Push blocks while the
/// queue is at capacity, which is the engine's backpressure mechanism.
class BoundedMsgQueue {
 public:
  explicit BoundedMsgQueue(size_t capacity) : capacity_(capacity) {}

  void Push(Msg&& msg) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(msg));
    not_empty_.notify_one();
  }

  Msg Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !queue_.empty(); });
    Msg msg = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return msg;
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Msg> queue_;
};

}  // namespace

/// Queues + worker threads of one Drive* call. Every shard's messages go
/// through the queue of worker (shard % workers), so per-shard order is
/// FIFO; a shard's state (local re-index counter, report) is touched only
/// by its owning worker until Finish() joins the threads.
class ShardedStreamDriver::Engine {
 public:
  /// `initial_indices` (empty, or one entry per sink) seeds the shards'
  /// local re-index cursors when resuming from a checkpoint.
  Engine(const Options& options, std::span<StreamSink* const> sinks,
         std::span<const uint64_t> initial_indices = {})
      : options_(options),
        sinks_(sinks.begin(), sinks.end()),
        shard_state_(sinks.size()) {
    for (size_t s = 0; s < initial_indices.size() && s < shard_state_.size();
         ++s) {
      shard_state_[s].local_index = initial_indices[s];
    }
    const uint64_t workers =
        std::min<uint64_t>(std::max<uint64_t>(options.threads, 1),
                           sinks_.size());
    queues_.reserve(workers);
    for (uint64_t w = 0; w < workers; ++w) {
      queues_.push_back(
          std::make_unique<BoundedMsgQueue>(options.queue_chunks));
    }
    threads_.reserve(workers);
    for (uint64_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~Engine() {
    if (!finished_) Finish();
  }

  void SendSpan(uint32_t shard, std::span<const Item> span) {
    Msg msg;
    msg.kind = Msg::Kind::kSpan;
    msg.shard = shard;
    msg.span = span;
    QueueOf(shard).Push(std::move(msg));
  }

  void SendOwned(uint32_t shard, std::vector<Item>&& items) {
    Msg msg;
    msg.kind = Msg::Kind::kOwned;
    msg.shard = shard;
    msg.owned = std::move(items);
    QueueOf(shard).Push(std::move(msg));
  }

  /// Moves every shard's clock to `now` (empty synthetic steps, and the
  /// final clock sync so post-drive queries of timestamp sinks all see
  /// the stream-end time).
  void BroadcastAdvance(Timestamp now) {
    for (uint32_t shard = 0; shard < sinks_.size(); ++shard) {
      Msg msg;
      msg.kind = Msg::Kind::kAdvance;
      msg.shard = shard;
      msg.now = now;
      QueueOf(shard).Push(std::move(msg));
    }
  }

  /// Drains every queue: pushes one barrier per worker and blocks until
  /// all are acknowledged. On return the workers are idle (blocked in
  /// Pop) and every previously routed chunk has been delivered, so the
  /// producer may read shard sinks and cursors race-free. Checkpoints
  /// serialize the sinks inside this window.
  void Quiesce() {
    {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      barrier_acks_ = 0;
    }
    for (auto& queue : queues_) {
      Msg msg;
      msg.kind = Msg::Kind::kBarrier;
      queue->Push(std::move(msg));
    }
    std::unique_lock<std::mutex> lock(barrier_mu_);
    barrier_cv_.wait(lock,
                     [&] { return barrier_acks_ == queues_.size(); });
  }

  /// Per-shard local re-index cursors; call only after Quiesce().
  std::vector<uint64_t> LocalIndices() const {
    std::vector<uint64_t> indices;
    indices.reserve(shard_state_.size());
    for (const ShardState& state : shard_state_) {
      indices.push_back(state.local_index);
    }
    return indices;
  }

  /// Stops and joins the workers, then stamps final/peak memory and
  /// per-shard throughput. Idempotent; called by the destructor on error
  /// paths so no Drive* exit leaks a thread.
  std::vector<ShardReport> Finish() {
    if (!finished_) {
      finished_ = true;
      for (auto& queue : queues_) queue->Push(Msg{});  // kStop
      for (std::thread& thread : threads_) thread.join();
      for (size_t shard = 0; shard < sinks_.size(); ++shard) {
        ShardReport& report = shard_state_[shard].report;
        report.memory_words = sinks_[shard]->MemoryWords();
        report.peak_memory_words =
            std::max(report.peak_memory_words, report.memory_words);
        if (report.busy_seconds > 0) {
          report.items_per_sec =
              static_cast<double>(report.items) / report.busy_seconds;
        }
      }
    }
    std::vector<ShardReport> reports;
    reports.reserve(shard_state_.size());
    for (const ShardState& state : shard_state_) {
      reports.push_back(state.report);
    }
    return reports;
  }

 private:
  struct ShardState {
    uint64_t local_index = 0;  ///< next index of the shard's local stream
    ShardReport report;
  };

  BoundedMsgQueue& QueueOf(uint32_t shard) {
    return *queues_[shard % queues_.size()];
  }

  void ObserveChunk(uint32_t shard, std::span<const Item> items) {
    if (items.empty()) return;
    ShardState& state = shard_state_[shard];
    const auto begin = Clock::now();
    sinks_[shard]->ObserveBatch(items);
    state.report.busy_seconds +=
        std::chrono::duration<double>(Clock::now() - begin).count();
    state.report.items += items.size();
    ++state.report.batches;
    if (options_.memory_probe_every != 0 &&
        state.report.batches % options_.memory_probe_every == 0) {
      state.report.peak_memory_words = std::max(
          state.report.peak_memory_words, sinks_[shard]->MemoryWords());
    }
  }

  void WorkerLoop(uint64_t worker) {
    std::vector<Item> scratch;
    scratch.reserve(options_.chunk_items);
    BoundedMsgQueue& queue = *queues_[worker];
    for (;;) {
      Msg msg = queue.Pop();
      switch (msg.kind) {
        case Msg::Kind::kStop:
          return;
        case Msg::Kind::kBarrier: {
          std::lock_guard<std::mutex> lock(barrier_mu_);
          ++barrier_acks_;
          barrier_cv_.notify_one();
          break;
        }
        case Msg::Kind::kAdvance:
          sinks_[msg.shard]->AdvanceTime(msg.now);
          break;
        case Msg::Kind::kSpan: {
          // Re-index into the shard's local stream; values and timestamps
          // pass through. The copy runs on the worker, so it scales with
          // the pool instead of serializing on the producer.
          ShardState& state = shard_state_[msg.shard];
          scratch.clear();
          for (const Item& item : msg.span) {
            scratch.push_back(
                Item{item.value, state.local_index++, item.timestamp});
          }
          ObserveChunk(msg.shard, scratch);
          break;
        }
        case Msg::Kind::kOwned: {
          ShardState& state = shard_state_[msg.shard];
          for (Item& item : msg.owned) item.index = state.local_index++;
          ObserveChunk(msg.shard, msg.owned);
          break;
        }
      }
    }
  }

  const Options options_;
  std::vector<StreamSink*> sinks_;
  std::vector<ShardState> shard_state_;
  std::vector<std::unique_ptr<BoundedMsgQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  uint64_t barrier_acks_ = 0;
  bool finished_ = false;
};

namespace {

/// Producer-side accumulator for streams that are not pre-materialized
/// (synthetic bursts, parsed lines): buffers items into chunk_items-sized
/// owned chunks per routing target and ships them through the engine.
class OwnedRouter {
 public:
  /// `resume` (nullable) restores the router exactly as a checkpoint
  /// captured it: un-flushed buffers, round-robin cursor, clock state.
  OwnedRouter(const ShardedStreamDriver::Options& options, uint64_t shards,
              ShardedStreamDriver::Engine& engine,
              const CheckpointManifest* resume = nullptr)
      : options_(options), engine_(engine) {
    const uint64_t targets =
        options.partition == ShardPartition::kKeyHash ? shards : 1;
    pending_.resize(targets);
    for (auto& pending : pending_) pending.reserve(options.chunk_items);
    shards_ = shards;
    if (resume != nullptr) {
      for (size_t t = 0; t < resume->pending.size() && t < pending_.size();
           ++t) {
        pending_[t] = resume->pending[t];
      }
      next_chunk_shard_ = resume->next_chunk_shard % shards_;
      last_ts_ = resume->last_ts;
      saw_items_ = resume->saw_items;
    }
  }

  /// Captures the producer-side state a checkpoint must persist so a
  /// resumed run reproduces the exact chunk segmentation.
  void ExportTo(CheckpointManifest* manifest) const {
    manifest->last_ts = last_ts_;
    manifest->saw_items = saw_items_;
    manifest->next_chunk_shard = next_chunk_shard_;
    manifest->pending = pending_;
  }

  void Add(const Item& item) {
    last_ts_ = item.timestamp;
    if (options_.partition == ShardPartition::kKeyHash) {
      const uint32_t shard = static_cast<uint32_t>(
          ShardOfKey(item.value >> options_.key_shift, shards_));
      pending_[shard].push_back(item);
      if (pending_[shard].size() >= options_.chunk_items) {
        FlushTarget(shard, shard);
      }
      return;
    }
    pending_[0].push_back(item);
    if (pending_[0].size() >= options_.chunk_items) {
      FlushTarget(0, next_chunk_shard_);
      next_chunk_shard_ =
          static_cast<uint32_t>((next_chunk_shard_ + 1) % shards_);
    }
  }

  /// Empty synthetic step: deliver buffered arrivals first so every shard
  /// observes the same arrival/clock order as unbatched feeding, then
  /// move all clocks.
  void AdvanceAll(Timestamp now) {
    FlushAll();
    last_ts_ = now;
    engine_.BroadcastAdvance(now);
  }

  /// End of stream: flush and sync every shard's clock to the last seen
  /// timestamp so post-drive queries agree on "now".
  void FinishStream() {
    FlushAll();
    if (saw_items_) engine_.BroadcastAdvance(last_ts_);
  }

 private:
  bool FlushTarget(size_t target, uint32_t shard) {
    if (pending_[target].empty()) return false;
    saw_items_ = true;
    std::vector<Item> chunk = std::move(pending_[target]);
    pending_[target] = std::vector<Item>();
    pending_[target].reserve(options_.chunk_items);
    engine_.SendOwned(shard, std::move(chunk));
    return true;
  }

  void FlushAll() {
    if (options_.partition == ShardPartition::kKeyHash) {
      for (uint32_t shard = 0; shard < pending_.size(); ++shard) {
        FlushTarget(shard, shard);
      }
      return;
    }
    // Rotate only when a chunk actually shipped, or repeated empty steps
    // would skip shards in the round-robin rotation.
    if (FlushTarget(0, next_chunk_shard_)) {
      next_chunk_shard_ =
          static_cast<uint32_t>((next_chunk_shard_ + 1) % shards_);
    }
  }

  const ShardedStreamDriver::Options& options_;
  ShardedStreamDriver::Engine& engine_;
  uint64_t shards_ = 1;
  uint32_t next_chunk_shard_ = 0;
  std::vector<std::vector<Item>> pending_;  // [shard] or [0] for kChunks
  Timestamp last_ts_ = 0;
  bool saw_items_ = false;
};

/// Sums the per-shard reports into the wall-clock total.
ShardedDriveReport AssembleReport(Clock::time_point begin,
                                  std::vector<ShardReport> shards,
                                  uint64_t empty_steps) {
  ShardedDriveReport report;
  report.shards = std::move(shards);
  report.total.empty_steps = empty_steps;
  for (const ShardReport& shard : report.shards) {
    report.total.items += shard.items;
    report.total.batches += shard.batches;
    report.total.memory_words += shard.memory_words;
    report.total.peak_memory_words += shard.peak_memory_words;
  }
  report.total.seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  if (report.total.seconds > 0) {
    report.total.items_per_sec =
        static_cast<double>(report.total.items) / report.total.seconds;
  }
  return report;
}

}  // namespace

ShardedStreamDriver::ShardedStreamDriver(const Options& options)
    : options_(options) {}

Status ShardedStreamDriver::Validate(
    std::span<StreamSink* const> shards) const {
  if (options_.threads < 1) {
    return Status::InvalidArgument(
        "ShardedStreamDriver: options.threads must be >= 1");
  }
  if (options_.chunk_items < 1) {
    return Status::InvalidArgument(
        "ShardedStreamDriver: options.chunk_items must be >= 1");
  }
  if (options_.queue_chunks < 1) {
    return Status::InvalidArgument(
        "ShardedStreamDriver: options.queue_chunks must be >= 1");
  }
  if (shards.empty()) {
    return Status::InvalidArgument(
        "ShardedStreamDriver: at least one shard sink is required");
  }
  for (StreamSink* shard : shards) {
    if (shard == nullptr) {
      return Status::InvalidArgument(
          "ShardedStreamDriver: shard sinks must be non-null");
    }
  }
  return Status::Ok();
}

Result<ShardedDriveReport> ShardedStreamDriver::Drive(
    std::span<const Item> items, std::span<StreamSink* const> shards) const {
  if (Status s = Validate(shards); !s.ok()) return s;
  const auto begin = Clock::now();
  Engine engine(options_, shards);
  const uint64_t num_shards = shards.size();
  if (options_.partition == ShardPartition::kChunks) {
    // Zero copy on the producer: route sub-spans of the caller's storage
    // round-robin; workers do the per-item re-index copy in parallel.
    uint64_t chunk = 0;
    for (size_t offset = 0; offset < items.size();
         offset += options_.chunk_items, ++chunk) {
      const size_t len =
          std::min<size_t>(options_.chunk_items, items.size() - offset);
      engine.SendSpan(static_cast<uint32_t>(chunk % num_shards),
                      items.subspan(offset, len));
    }
    if (!items.empty()) engine.BroadcastAdvance(items.back().timestamp);
  } else {
    OwnedRouter router(options_, num_shards, engine);
    for (const Item& item : items) router.Add(item);
    router.FinishStream();
  }
  return AssembleReport(begin, engine.Finish(), /*empty_steps=*/0);
}

Result<ShardedDriveReport> ShardedStreamDriver::DriveSynthetic(
    SyntheticStream& stream, uint64_t steps,
    std::span<StreamSink* const> shards) const {
  if (Status s = Validate(shards); !s.ok()) return s;
  const auto begin = Clock::now();
  uint64_t empty_steps = 0;
  Engine engine(options_, shards);
  {
    OwnedRouter router(options_, shards.size(), engine);
    for (uint64_t step = 0; step < steps; ++step) {
      const std::vector<Item>& burst = stream.Step();
      if (burst.empty()) {
        ++empty_steps;
        router.AdvanceAll(stream.now());
      } else {
        for (const Item& item : burst) router.Add(item);
      }
    }
    router.FinishStream();
  }
  return AssembleReport(begin, engine.Finish(), empty_steps);
}

Result<ShardedDriveReport> ShardedStreamDriver::DriveLines(
    std::FILE* f, const std::string& source_name, bool timestamped,
    std::span<StreamSink* const> shards) const {
  if (Status s = Validate(shards); !s.ok()) return s;
  const auto begin = Clock::now();
  Engine engine(options_, shards);
  OwnedRouter router(options_, shards.size(), engine);
  char line[256];
  StreamIndex index = 0;
  Timestamp last_ts = 0;
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f)) {
    ++line_no;
    uint64_t value = 0;
    Timestamp ts = 0;
    bool skip = false;
    if (Status s = ParseEventLine(line, sizeof(line), timestamped,
                                  source_name, line_no, last_ts, &value, &ts,
                                  &skip);
        !s.ok()) {
      return s;  // ~Engine stops and joins the workers
    }
    if (skip) continue;
    if (timestamped) {
      last_ts = ts;
    } else {
      ts = static_cast<Timestamp>(index);
    }
    router.Add(Item{value, index++, ts});
  }
  router.FinishStream();
  return AssembleReport(begin, engine.Finish(), /*empty_steps=*/0);
}

Result<ShardedDriveReport> ShardedStreamDriver::DriveFile(
    const std::string& path, bool timestamped,
    std::span<StreamSink* const> shards) const {
  auto f_or = OpenStdioFile("ingest.open", path);
  if (!f_or.ok()) return f_or.status();
  std::FILE* f = f_or.value();
  auto result = DriveLines(f, path, timestamped, shards);
  std::fclose(f);
  return result;
}

Result<ShardedDriveReport> ShardedStreamDriver::DriveLinesCheckpointed(
    std::FILE* f, const std::string& source_name, bool timestamped,
    std::span<StreamSink* const> shards, CheckpointWriter* writer,
    const CheckpointManifest* resume) const {
  if (Status s = Validate(shards); !s.ok()) return s;
  if (options_.key_shift != 0 && (writer != nullptr || resume != nullptr)) {
    // The manifest does not record key_shift, so a resumed run could
    // silently re-route keys; reject instead.
    return Status::InvalidArgument(
        source_name +
        ": checkpointed drives do not support options.key_shift != 0");
  }
  if (resume != nullptr) {
    // The checkpoint is only bit-exact under the identical partitioning
    // geometry; reject any drift instead of silently skewing windows.
    const uint64_t targets =
        options_.partition == ShardPartition::kKeyHash ? shards.size() : 1;
    if (resume->shard_items.size() != shards.size() ||
        resume->chunk_items != options_.chunk_items ||
        resume->partition != static_cast<uint64_t>(options_.partition) ||
        resume->pending.size() != targets) {
      return Status::InvalidArgument(
          source_name +
          ": checkpoint manifest disagrees with the drive options (shard "
          "count, chunk_items, or partition mode changed)");
    }
  }
  const auto begin = Clock::now();
  Engine engine(options_, shards,
                resume == nullptr ? std::span<const uint64_t>()
                                  : std::span<const uint64_t>(
                                        resume->shard_items));
  OwnedRouter router(options_, shards.size(), engine, resume);
  auto deliver = [&](const Item& item) -> Status {
    router.Add(item);
    if (writer != nullptr && writer->Due(item.index + 1)) {
      // Drain the workers so shard sinks are stable, then persist the
      // sinks plus the router's un-flushed buffers.
      engine.Quiesce();
      CheckpointManifest manifest;
      manifest.items = item.index + 1;
      manifest.chunk_items = options_.chunk_items;
      manifest.partition = static_cast<uint64_t>(options_.partition);
      manifest.shard_items = engine.LocalIndices();
      router.ExportTo(&manifest);
      if (Status s = writer->Write(manifest, shards); !s.ok()) return s;
    }
    return Status::Ok();
  };
  // Parse errors and failed checkpoint writes return through here;
  // ~Engine stops and joins the workers on every exit path.
  auto events = PumpEventLines(f, source_name, timestamped, resume, deliver);
  if (!events.ok()) return events.status();
  router.FinishStream();
  auto report = AssembleReport(begin, engine.Finish(), /*empty_steps=*/0);
  if (writer != nullptr) {
    report.total.io_retries = writer->io_retries();
    report.total.io_giveups = writer->io_giveups();
  }
  return report;
}

Result<ShardedDriveReport> ShardedStreamDriver::DriveFileCheckpointed(
    const std::string& path, bool timestamped,
    std::span<StreamSink* const> shards, CheckpointWriter* writer,
    const CheckpointManifest* resume) const {
  auto f_or = OpenStdioFile("ingest.open", path);
  if (!f_or.ok()) return f_or.status();
  std::FILE* f = f_or.value();
  auto result = DriveLinesCheckpointed(f, path, timestamped, shards, writer,
                                       resume);
  std::fclose(f);
  return result;
}

uint64_t ShardOfKey(uint64_t value, uint64_t shards) {
  SWS_DCHECK(shards >= 1);
  return MixKey(value) % shards;
}

std::vector<StreamSink*> SinkPointers(
    const std::vector<std::unique_ptr<WindowSampler>>& shards) {
  std::vector<StreamSink*> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(shard.get());
  return out;
}

std::vector<StreamSink*> SinkPointers(
    const std::vector<std::unique_ptr<WindowEstimator>>& shards) {
  std::vector<StreamSink*> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(shard.get());
  return out;
}

std::vector<WindowSampler*> SamplerPointers(
    const std::vector<std::unique_ptr<WindowSampler>>& shards) {
  std::vector<WindowSampler*> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(shard.get());
  return out;
}

std::vector<WindowEstimator*> EstimatorPointers(
    const std::vector<std::unique_ptr<WindowEstimator>>& shards) {
  std::vector<WindowEstimator*> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(shard.get());
  return out;
}

}  // namespace swsample
