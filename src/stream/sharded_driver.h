// Copyright (c) swsample authors. Licensed under the MIT license.

/// \file
/// Sharded multi-threaded ingestion engine: partitions an incoming stream
/// across N worker threads, each pumping its own registry-constructed
/// StreamSink replica over a bounded SPSC chunk queue with backpressure.
///
/// Data flow (the reactor-per-thread fan-out shape):
///
///   producer (caller thread)                    workers (one thread each)
///   ------------------------                    -------------------------
///   slice/partition stream into chunks   --->   pop chunk from own queue
///   route chunk to shard s               SPSC   re-index items for shard s
///   push onto worker (s % threads)      queues  sinks[s]->ObserveBatch(...)
///   block while that queue is full  (backpressure)   account items/memory
///
/// Partitioning:
///  * kChunks — round-robin contiguous chunks. The right mode for
///    SEQUENCE windows: with shard windows of n/N, the union of the
///    shards' windows is the global last-n window (the paper's Section 2
///    equivalent-width partition, replicated per shard), so merged
///    samples are uniform over it. The union is EXACT when n/N is a
///    multiple of chunk_items and the delivered item count is a multiple
///    of chunk_items * N; otherwise it is offset by at most one round of
///    chunks at the window boundary (a (1 +/- chunk_items*N/n) skew).
///  * kKeyHash — items routed by hash(value). The right mode for KEYED
///    workloads and timestamp windows: every key lives in one shard, so
///    per-key quantities (F_k, entropy terms) are additive across shards,
///    and timestamp activity is per-item, making the shard actives a
///    disjoint cover of the global active set. Caveat for SEQUENCE
///    windows under key-hash: each shard's n/N-arrival window spans a
///    global stream region proportional to 1 / (that shard's traffic
///    share), so the shard windows only union to the global last-n
///    window when the key load is near-uniform across shards — for
///    skewed keys prefer a timestamp-model sink, whose per-item expiry
///    is load-independent.
///
/// Each shard replica sees a locally re-indexed stream (indices
/// consecutive from 0 within the shard), which is what the samplers'
/// positional expiry logic requires; values and timestamps pass through
/// unchanged. Query the shards after Drive* returns — joining the workers
/// is the synchronization point — with MergedSnapshot (samplers) or
/// MergedEstimate (estimators) from the layers below.
///
/// Ownership: the caller owns the shard sinks (create them with the
/// CreateSharded* helpers below) and passes raw pointers for the duration
/// of one Drive* call. The driver owns threads and queues per call; no
/// state outlives a Drive* invocation.
///
/// Thread-safety: a ShardedStreamDriver is itself stateless apart from
/// options and may be shared; each Drive* call spawns and joins its own
/// workers. Shard sinks must NOT be touched by the caller while a Drive*
/// call is in flight.
///
/// Status conventions: option and shard-set validation errors come back
/// as InvalidArgument from Drive*; file/parse errors propagate exactly
/// like StreamDriver::DriveLines (source:line prefixed messages).

#ifndef SWSAMPLE_STREAM_SHARDED_DRIVER_H_
#define SWSAMPLE_STREAM_SHARDED_DRIVER_H_

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "apps/estimator_registry.h"
#include "core/api.h"
#include "core/registry.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "stream/item.h"
#include "stream/stream_gen.h"
#include "util/status.h"

namespace swsample {

/// How the producer routes items to shards (see file comment).
enum class ShardPartition {
  kChunks,   ///< round-robin contiguous chunks (sequence windows)
  kKeyHash,  ///< hash(value) routing (keyed workloads, timestamp windows)
};

/// What one shard did during a sharded drive.
struct ShardReport {
  uint64_t items = 0;              ///< arrivals delivered to this shard
  uint64_t batches = 0;            ///< ObserveBatch calls on this shard
  double busy_seconds = 0.0;       ///< time spent inside the sink
  double items_per_sec = 0.0;      ///< items / busy_seconds (0 if instant)
  uint64_t memory_words = 0;       ///< sink MemoryWords() after the run
  uint64_t peak_memory_words = 0;  ///< max MemoryWords() across probes
};

/// Aggregate + per-shard accounting for one sharded drive. `total` uses
/// wall-clock seconds for throughput; total.memory_words and
/// total.peak_memory_words are sums over shards (the peak sum is an upper
/// bound on the true simultaneous peak).
struct ShardedDriveReport {
  DriveReport total;
  std::vector<ShardReport> shards;
};

/// Drives streams through N sink replicas on worker threads.
class ShardedStreamDriver {
 public:
  struct Options {
    /// Worker threads (>= 1). The shard count is the size of the sinks
    /// span passed to Drive*; shards are assigned to workers
    /// round-robin, so more shards than threads multiplexes replicas
    /// onto the pool.
    uint64_t threads = 4;
    /// Items per routed chunk — the partition granularity and the unit of
    /// queue transfer (>= 1).
    uint64_t chunk_items = 4096;
    /// Bounded per-worker queue capacity in chunks (>= 1); the producer
    /// blocks while a worker's queue is full (backpressure).
    uint64_t queue_chunks = 16;
    ShardPartition partition = ShardPartition::kChunks;
    /// kKeyHash routing hashes `item.value >> key_shift`, mirroring the
    /// keyed engine's key derivation (stream/keyed_engine.h) so every
    /// value that folds onto one tenant key lands on one shard — the
    /// invariant per-key queries against CreateKeyedEngines rely on.
    /// Ignored by kChunks. Checkpointed drives require 0 (the manifest
    /// does not carry it).
    uint64_t key_shift = 0;
    /// Probe a shard's MemoryWords() every this many of its batches for
    /// the peak statistic; 0 probes only once at the end.
    uint64_t memory_probe_every = 16;
  };

  ShardedStreamDriver() : ShardedStreamDriver(Options{}) {}
  explicit ShardedStreamDriver(const Options& options);

  /// Feeds a pre-materialized run of consecutive items. In kChunks mode
  /// the producer only slices spans into `items` (zero copy on the
  /// producer path — workers re-index into their own scratch buffers), so
  /// this is the scaling path bench_e16 measures. `items` must outlive
  /// the call.
  Result<ShardedDriveReport> Drive(std::span<const Item> items,
                                   std::span<StreamSink* const> shards) const;

  /// Steps `steps` bursts out of a synthetic stream. Empty bursts become
  /// AdvanceTime broadcasts to every shard.
  Result<ShardedDriveReport> DriveSynthetic(
      SyntheticStream& stream, uint64_t steps,
      std::span<StreamSink* const> shards) const;

  /// Feeds a text stream with StreamDriver::DriveLines' grammar and error
  /// behavior: "<value>" lines (timestamp := arrival index) or
  /// "<timestamp> <value>" with non-decreasing timestamps; blank lines
  /// skipped; malformed/over-long lines and decreasing timestamps are
  /// InvalidArgument against `source_name` with the line number.
  Result<ShardedDriveReport> DriveLines(
      std::FILE* f, const std::string& source_name, bool timestamped,
      std::span<StreamSink* const> shards) const;

  /// DriveLines over a file path.
  Result<ShardedDriveReport> DriveFile(
      const std::string& path, bool timestamped,
      std::span<StreamSink* const> shards) const;

  /// DriveLines with crash recovery: writes periodic checkpoints through
  /// `writer` (nullable = disabled) and, when `resume` is non-null,
  /// skips the first `resume->items` events of the replayed input and
  /// continues into shard sinks restored by ResumeFrom. A checkpoint
  /// quiesces the workers (barrier through every queue), serializes the
  /// shard sinks, and persists the router's un-flushed buffers in the
  /// manifest — so the resumed run's chunk segmentation, per-shard
  /// delivery order and RNG draws are identical to an uninterrupted
  /// run's. Requires the same shard count, chunk_items, and partition
  /// mode as the run that wrote the checkpoint (validated against the
  /// manifest). The report counts only items delivered by THIS call.
  Result<ShardedDriveReport> DriveLinesCheckpointed(
      std::FILE* f, const std::string& source_name, bool timestamped,
      std::span<StreamSink* const> shards, CheckpointWriter* writer,
      const CheckpointManifest* resume) const;

  /// DriveLinesCheckpointed over a file path.
  Result<ShardedDriveReport> DriveFileCheckpointed(
      const std::string& path, bool timestamped,
      std::span<StreamSink* const> shards, CheckpointWriter* writer,
      const CheckpointManifest* resume) const;

  /// Reads back the checkpoint committed in `dir` (see
  /// stream/checkpoint.h); pass its position as `resume` above and its
  /// restored sinks as the shard span.
  static Result<ResumedCheckpoint> ResumeFrom(const std::string& dir) {
    return LoadCheckpoint(dir);
  }

  const Options& options() const { return options_; }

  /// Queues + workers of one Drive* call (implementation detail; public
  /// only so producer-side helpers in the .cc can reference it).
  class Engine;

 private:
  Status Validate(std::span<StreamSink* const> shards) const;

  Options options_;
};

/// The shard that kKeyHash routing sends value `v` to — the exact hash
/// the producer's router applies. Exposed so the keyed multi-tenant
/// engine (stream/keyed_engine.h) and tests can partition per-key state
/// consistently with the driver's delivery. Requires shards >= 1.
uint64_t ShardOfKey(uint64_t value, uint64_t shards);

/// Replica construction lives in the unified SinkSpec factory
/// (apps/sink_spec.h): ShardSinkSpec derives each shard's configuration
/// (window split + forked seed) and CreateShardedSinks materializes the
/// replicas — samplers and estimators through ONE entry point.

/// View adaptors: the Drive* entry points take StreamSink*, so harness
/// code holding typed unique_ptr replicas (e.g. out of a resumed
/// checkpoint) flattens them with these.
std::vector<StreamSink*> SinkPointers(
    const std::vector<std::unique_ptr<WindowSampler>>& shards);
std::vector<StreamSink*> SinkPointers(
    const std::vector<std::unique_ptr<WindowEstimator>>& shards);
std::vector<WindowSampler*> SamplerPointers(
    const std::vector<std::unique_ptr<WindowSampler>>& shards);
std::vector<WindowEstimator*> EstimatorPointers(
    const std::vector<std::unique_ptr<WindowEstimator>>& shards);

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_SHARDED_DRIVER_H_
