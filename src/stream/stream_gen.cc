// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/stream_gen.h"

#include "util/macros.h"

namespace swsample {

SyntheticStream::SyntheticStream(std::unique_ptr<ValueGenerator> values,
                                 std::unique_ptr<ArrivalProcess> arrivals,
                                 uint64_t seed)
    : values_(std::move(values)), arrivals_(std::move(arrivals)), rng_(seed) {
  SWS_CHECK(values_ != nullptr);
  SWS_CHECK(arrivals_ != nullptr);
}

const std::vector<Item>& SyntheticStream::Step() {
  ++now_;
  burst_.clear();
  uint64_t count = arrivals_->CountAt(now_, rng_);
  burst_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    burst_.push_back(Item{values_->Next(rng_), next_index_++, now_});
  }
  return burst_;
}

}  // namespace swsample
