// Copyright (c) swsample authors. Licensed under the MIT license.
//
// SyntheticStream composes a ValueGenerator with an ArrivalProcess into the
// Item sequence consumed by the samplers: per timestamp step it emits a
// (possibly empty) burst of items with consecutive indices.

#ifndef SWSAMPLE_STREAM_STREAM_GEN_H_
#define SWSAMPLE_STREAM_STREAM_GEN_H_

#include <memory>
#include <vector>

#include "stream/arrival.h"
#include "stream/item.h"
#include "stream/value_gen.h"
#include "util/rng.h"

namespace swsample {

/// Generates a synthetic stream step by step.
///
/// Typical use:
///   SyntheticStream stream(std::move(values), std::move(arrivals), seed);
///   for (Timestamp t = 0; t < horizon; ++t)
///     for (const Item& item : stream.Step()) sampler.Observe(item);
class SyntheticStream {
 public:
  /// Takes ownership of the two process objects. Neither may be null.
  SyntheticStream(std::unique_ptr<ValueGenerator> values,
                  std::unique_ptr<ArrivalProcess> arrivals, uint64_t seed);

  /// Advances the clock by one step and returns the burst arriving at the
  /// new timestamp. The returned reference is invalidated by the next call.
  const std::vector<Item>& Step();

  /// Timestamp of the most recently generated burst (-1 before first Step).
  Timestamp now() const { return now_; }

  /// Total items generated so far.
  uint64_t total_items() const { return next_index_; }

 private:
  std::unique_ptr<ValueGenerator> values_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Rng rng_;
  Timestamp now_ = -1;
  StreamIndex next_index_ = 0;
  std::vector<Item> burst_;
};

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_STREAM_GEN_H_
