// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/value_gen.h"

#include <algorithm>
#include <cmath>

namespace swsample {

Result<std::unique_ptr<UniformValues>> UniformValues::Create(uint64_t domain) {
  if (domain < 1) {
    return Status::InvalidArgument("UniformValues: domain must be >= 1");
  }
  return std::unique_ptr<UniformValues>(new UniformValues(domain));
}

Result<std::unique_ptr<ZipfValues>> ZipfValues::Create(uint64_t domain,
                                                       double alpha) {
  if (domain < 1) {
    return Status::InvalidArgument("ZipfValues: domain must be >= 1");
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("ZipfValues: alpha must be finite, >= 0");
  }
  std::vector<double> cdf(domain);
  double acc = 0.0;
  for (uint64_t i = 0; i < domain; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -alpha);
    cdf[i] = acc;
  }
  for (auto& c : cdf) c /= acc;
  cdf.back() = 1.0;  // guard against rounding
  return std::unique_ptr<ZipfValues>(new ZipfValues(std::move(cdf)));
}

uint64_t ZipfValues::Next(Rng& rng) {
  double u = rng.Uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

Result<std::unique_ptr<SequentialValues>> SequentialValues::Create(
    uint64_t domain) {
  if (domain < 1) {
    return Status::InvalidArgument("SequentialValues: domain must be >= 1");
  }
  return std::unique_ptr<SequentialValues>(new SequentialValues(domain));
}

}  // namespace swsample
