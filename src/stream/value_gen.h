// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Value distributions for synthetic workloads.
//
// The paper's motivating applications (sensor feeds, stock ticks, network
// traces) are not published datasets; per DESIGN.md Section 5 we substitute
// synthetic distributions that exercise the same code paths. Zipf is the
// standard skewed-key model for the frequency-moment / entropy corollaries
// (Section 5 of the paper); uniform is the unstructured control.

#ifndef SWSAMPLE_STREAM_VALUE_GEN_H_
#define SWSAMPLE_STREAM_VALUE_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Interface for value distributions over the domain [0, m).
class ValueGenerator {
 public:
  virtual ~ValueGenerator() = default;

  /// Draws the next value.
  virtual uint64_t Next(Rng& rng) = 0;

  /// Domain size m (values are in [0, m)).
  virtual uint64_t domain() const = 0;
};

/// Uniform values over [0, m).
class UniformValues final : public ValueGenerator {
 public:
  /// Creates a uniform generator; `domain` must be >= 1.
  static Result<std::unique_ptr<UniformValues>> Create(uint64_t domain);

  uint64_t Next(Rng& rng) override { return rng.UniformIndex(domain_); }
  uint64_t domain() const override { return domain_; }

 private:
  explicit UniformValues(uint64_t domain) : domain_(domain) {}
  uint64_t domain_;
};

/// Zipf(alpha) values over [0, m): P(v = i) proportional to 1/(i+1)^alpha.
///
/// Implemented by inverse-CDF binary search over a precomputed table, which
/// is exact and fast enough for workload generation (domain sizes up to a
/// few million); the table costs O(m) doubles and is paid once per workload,
/// not per sampler.
class ZipfValues final : public ValueGenerator {
 public:
  /// Creates a Zipf generator. Requires domain >= 1 and alpha >= 0
  /// (alpha == 0 degenerates to uniform).
  static Result<std::unique_ptr<ZipfValues>> Create(uint64_t domain,
                                                    double alpha);

  uint64_t Next(Rng& rng) override;
  uint64_t domain() const override { return cdf_.size(); }

 private:
  ZipfValues(std::vector<double> cdf) : cdf_(std::move(cdf)) {}
  std::vector<double> cdf_;  // cdf_[i] = P(v <= i); cdf_.back() == 1.0
};

/// Deterministic round-robin values 0,1,2,...,m-1,0,1,... Useful in tests
/// where the exact multiset of window values must be known.
class SequentialValues final : public ValueGenerator {
 public:
  static Result<std::unique_ptr<SequentialValues>> Create(uint64_t domain);

  uint64_t Next(Rng&) override {
    uint64_t v = next_;
    next_ = (next_ + 1) % domain_;
    return v;
  }
  uint64_t domain() const override { return domain_; }

 private:
  explicit SequentialValues(uint64_t domain) : domain_(domain) {}
  uint64_t domain_;
  uint64_t next_ = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_VALUE_GEN_H_
