// Copyright (c) swsample authors. Licensed under the MIT license.

#include "stream/workload.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace swsample {

namespace {

bool ParseU64Token(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDoubleToken(std::string_view token, double* out) {
  if (token.empty()) return false;
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

Status BadSpec(std::string_view text, const std::string& why) {
  return Status::InvalidArgument("workload spec \"" + std::string(text) +
                                 "\": " + why);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  if (ParseDoubleToken(buf, &back) && back == v) {
    for (int prec = 1; prec <= 16; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      if (ParseDoubleToken(shorter, &back) && back == v) {
        return shorter;
      }
    }
  }
  return buf;
}

// Churn phase tables (see header): plateau lengths straddle the batched
// ExtendRun cutover (16) and include a power of two for deep Definition-3.1
// merge cascades; gaps land on the expiry horizon's three edges plus a
// steady-state filler.
constexpr uint64_t kChurnPlateaus[] = {15, 16, 17, 64, 1};
constexpr size_t kChurnPlateauCount = 5;
constexpr size_t kChurnGapCount = 4;  // {1, t-1, t, t+1}

}  // namespace

Result<WorkloadSpec> ParseWorkloadSpec(std::string_view text) {
  WorkloadSpec spec;
  std::string_view rest = text;
  const size_t comma = rest.find(',');
  std::string_view head =
      comma == std::string_view::npos ? rest : rest.substr(0, comma);
  rest = comma == std::string_view::npos ? std::string_view()
                                         : rest.substr(comma + 1);

  const size_t at = head.find('@');
  std::string_view arrivals_name =
      at == std::string_view::npos ? head : head.substr(0, at);
  std::string_view values_name =
      at == std::string_view::npos ? std::string_view() : head.substr(at + 1);

  if (arrivals_name == "constant") {
    spec.arrivals = WorkloadArrivals::kConstant;
  } else if (arrivals_name == "poisson") {
    spec.arrivals = WorkloadArrivals::kPoisson;
  } else if (arrivals_name == "bmodel") {
    spec.arrivals = WorkloadArrivals::kBModel;
  } else if (arrivals_name == "churn") {
    spec.arrivals = WorkloadArrivals::kChurn;
  } else {
    return BadSpec(text, "unknown arrival family \"" +
                             std::string(arrivals_name) +
                             "\"; known: constant poisson bmodel churn");
  }

  if (values_name.empty() || values_name == "uniform") {
    spec.values = WorkloadValues::kUniform;
  } else if (values_name == "zipf") {
    spec.values = WorkloadValues::kZipf;
  } else if (values_name == "seq") {
    spec.values = WorkloadValues::kSequential;
  } else {
    return BadSpec(text, "unknown value family \"" + std::string(values_name) +
                             "\"; known: uniform zipf seq");
  }

  while (!rest.empty()) {
    const size_t next = rest.find(',');
    std::string_view kv =
        next == std::string_view::npos ? rest : rest.substr(0, next);
    rest = next == std::string_view::npos ? std::string_view()
                                          : rest.substr(next + 1);
    const size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return BadSpec(text, "expected key=value, got \"" + std::string(kv) +
                               "\"");
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string_view value = kv.substr(eq + 1);
    uint64_t u = 0;
    double d = 0.0;
    if (key == "rate" && ParseU64Token(value, &u)) {
      spec.rate = u;
    } else if (key == "lambda" && ParseDoubleToken(value, &d)) {
      spec.lambda = d;
    } else if (key == "bias" && ParseDoubleToken(value, &d)) {
      spec.bias = d;
    } else if (key == "levels" && ParseU64Token(value, &u)) {
      spec.levels = u;
    } else if (key == "volume" && ParseU64Token(value, &u)) {
      spec.volume = u;
    } else if (key == "t" && ParseU64Token(value, &u)) {
      spec.t = static_cast<Timestamp>(u);
    } else if (key == "domain" && ParseU64Token(value, &u)) {
      spec.domain = u;
    } else if (key == "alpha" && ParseDoubleToken(value, &d)) {
      spec.alpha = d;
    } else if (key == "skew" && ParseU64Token(value, &u)) {
      spec.skew = static_cast<Timestamp>(u);
    } else if (key == "skewp" && ParseDoubleToken(value, &d)) {
      spec.skew_p = d;
    } else if (key == "dup" && ParseDoubleToken(value, &d)) {
      spec.dup = d;
    } else if (key == "duplag" && ParseU64Token(value, &u)) {
      spec.dup_lag = u;
    } else {
      return BadSpec(text, "bad key or value in \"" + std::string(kv) + "\"");
    }
  }
  return spec;
}

std::string FormatWorkloadSpec(const WorkloadSpec& spec) {
  const WorkloadSpec defaults;
  std::string out;
  switch (spec.arrivals) {
    case WorkloadArrivals::kConstant:
      out = "constant";
      break;
    case WorkloadArrivals::kPoisson:
      out = "poisson";
      break;
    case WorkloadArrivals::kBModel:
      out = "bmodel";
      break;
    case WorkloadArrivals::kChurn:
      out = "churn";
      break;
  }
  switch (spec.values) {
    case WorkloadValues::kUniform:
      break;  // the default family is implicit
    case WorkloadValues::kZipf:
      out += "@zipf";
      break;
    case WorkloadValues::kSequential:
      out += "@seq";
      break;
  }
  auto put_u64 = [&out](const char* key, uint64_t v) {
    out += ",";
    out += key;
    out += "=";
    out += std::to_string(v);
  };
  auto put_double = [&out](const char* key, double v) {
    out += ",";
    out += key;
    out += "=";
    out += FormatDouble(v);
  };
  if (spec.rate != defaults.rate) put_u64("rate", spec.rate);
  if (spec.lambda != defaults.lambda) put_double("lambda", spec.lambda);
  if (spec.bias != defaults.bias) put_double("bias", spec.bias);
  if (spec.levels != defaults.levels) put_u64("levels", spec.levels);
  if (spec.volume != defaults.volume) put_u64("volume", spec.volume);
  if (spec.t != defaults.t) put_u64("t", static_cast<uint64_t>(spec.t));
  if (spec.domain != defaults.domain) put_u64("domain", spec.domain);
  if (spec.alpha != defaults.alpha) put_double("alpha", spec.alpha);
  if (spec.skew != defaults.skew) {
    put_u64("skew", static_cast<uint64_t>(spec.skew));
  }
  if (spec.skew_p != defaults.skew_p) put_double("skewp", spec.skew_p);
  if (spec.dup != defaults.dup) put_double("dup", spec.dup);
  if (spec.dup_lag != defaults.dup_lag) put_u64("duplag", spec.dup_lag);
  return out;
}

Result<std::unique_ptr<WorkloadGenerator>> WorkloadGenerator::Create(
    const WorkloadSpec& spec, uint64_t seed) {
  switch (spec.arrivals) {
    case WorkloadArrivals::kConstant:
      if (spec.rate < 1) {
        return Status::InvalidArgument("workload: rate must be >= 1");
      }
      break;
    case WorkloadArrivals::kPoisson:
      if (!(spec.lambda > 0.0) || !std::isfinite(spec.lambda)) {
        return Status::InvalidArgument(
            "workload: lambda must be finite and > 0");
      }
      break;
    case WorkloadArrivals::kBModel:
      if (!(spec.bias >= 0.5) || !(spec.bias < 1.0)) {
        return Status::InvalidArgument(
            "workload: bias must be in [0.5, 1)");
      }
      if (spec.levels < 1 || spec.levels > 20) {
        return Status::InvalidArgument(
            "workload: levels must be in [1, 20]");
      }
      if (spec.volume < 1) {
        return Status::InvalidArgument("workload: volume must be >= 1");
      }
      break;
    case WorkloadArrivals::kChurn:
      if (spec.t < 2) {
        return Status::InvalidArgument("workload: churn t must be >= 2");
      }
      break;
  }
  if (spec.domain < 1) {
    return Status::InvalidArgument("workload: domain must be >= 1");
  }
  if (!(spec.alpha >= 0.0) || !std::isfinite(spec.alpha)) {
    return Status::InvalidArgument("workload: alpha must be finite, >= 0");
  }
  if (spec.skew < 0) {
    return Status::InvalidArgument("workload: skew must be >= 0");
  }
  if (!(spec.skew_p >= 0.0) || !(spec.skew_p <= 1.0)) {
    return Status::InvalidArgument("workload: skewp must be in [0, 1]");
  }
  if (!(spec.dup >= 0.0) || !(spec.dup < 1.0)) {
    return Status::InvalidArgument("workload: dup must be in [0, 1)");
  }
  if (spec.dup > 0.0 && spec.dup_lag < 1) {
    return Status::InvalidArgument("workload: duplag must be >= 1");
  }
  return std::unique_ptr<WorkloadGenerator>(new WorkloadGenerator(spec, seed));
}

Result<std::unique_ptr<WorkloadGenerator>> WorkloadGenerator::Create(
    std::string_view spec_text, uint64_t seed) {
  auto spec = ParseWorkloadSpec(spec_text);
  if (!spec.ok()) return spec.status();
  return Create(spec.value(), seed);
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {
  if (spec_.values == WorkloadValues::kZipf) {
    // Same inverse-CDF table as ZipfValues (value_gen.cc); built here so
    // the generator is one self-contained seeded object.
    zipf_cdf_.resize(spec_.domain);
    double acc = 0.0;
    for (uint64_t i = 0; i < spec_.domain; ++i) {
      acc += std::pow(static_cast<double>(i + 1), -spec_.alpha);
      zipf_cdf_[i] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
    zipf_cdf_.back() = 1.0;
  }
  if (spec_.dup > 0.0) recent_values_.reserve(spec_.dup_lag);
  step_ = -1;  // the first AdvanceStep lands on timestamp 0
}

uint64_t WorkloadGenerator::NextBurst() {
  switch (spec_.arrivals) {
    case WorkloadArrivals::kConstant:
      ++step_;
      return spec_.rate;
    case WorkloadArrivals::kPoisson: {
      ++step_;
      if (spec_.lambda <= 30.0) {
        const double limit = std::exp(-spec_.lambda);
        uint64_t count = 0;
        double prod = rng_.Uniform01();
        while (prod > limit) {
          ++count;
          prod *= rng_.Uniform01();
        }
        return count;
      }
      double u1 = rng_.Uniform01();
      double u2 = rng_.Uniform01();
      if (u1 <= 0.0) u1 = 1e-300;
      double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      double x = spec_.lambda + std::sqrt(spec_.lambda) * z;
      return x < 0.0 ? 0 : static_cast<uint64_t>(std::llround(x));
    }
    case WorkloadArrivals::kBModel: {
      ++step_;
      if (bmodel_pos_ >= bmodel_slots_.size()) {
        // (Re)build one epoch: split the volume bias/(1-bias) recursively,
        // the split side re-drawn per node, which is the classic b-model
        // cascade and gives burstiness at every timescale.
        bmodel_slots_.assign(uint64_t{1} << spec_.levels, 0);
        bmodel_pos_ = 0;
        struct Frame {
          uint64_t lo, hi, vol;
        };
        std::vector<Frame> stack;
        stack.push_back({0, static_cast<uint64_t>(bmodel_slots_.size()),
                         spec_.volume});
        while (!stack.empty()) {
          const Frame f = stack.back();
          stack.pop_back();
          if (f.vol == 0) continue;
          if (f.hi - f.lo == 1) {
            bmodel_slots_[f.lo] += f.vol;
            continue;
          }
          const uint64_t mid = (f.lo + f.hi) / 2;
          uint64_t big = static_cast<uint64_t>(
              std::llround(spec_.bias * static_cast<double>(f.vol)));
          if (big > f.vol) big = f.vol;
          const uint64_t small = f.vol - big;
          if (rng_.Bernoulli(0.5)) {
            stack.push_back({f.lo, mid, big});
            stack.push_back({mid, f.hi, small});
          } else {
            stack.push_back({f.lo, mid, small});
            stack.push_back({mid, f.hi, big});
          }
        }
      }
      return bmodel_slots_[bmodel_pos_++];
    }
    case WorkloadArrivals::kChurn: {
      const uint64_t plateau = kChurnPlateaus[churn_phase_ % kChurnPlateauCount];
      const uint64_t gap_index =
          (churn_phase_ / kChurnPlateauCount) % kChurnGapCount;
      // Gaps: steady filler, then the three expiry-horizon edges. The first
      // plateau of the stream starts at timestamp 0 (step_ begins at -1).
      Timestamp gap = 1;
      if (gap_index == 1) gap = spec_.t - 1;
      if (gap_index == 2) gap = spec_.t;
      if (gap_index == 3) gap = spec_.t + 1;
      step_ += gap;
      ++churn_phase_;
      return plateau;
    }
  }
  return 0;  // unreachable
}

uint64_t WorkloadGenerator::NextValue() {
  if (spec_.dup > 0.0 && !recent_values_.empty() && rng_.Bernoulli(spec_.dup)) {
    // Replay: re-emit one of the last duplag values verbatim.
    return recent_values_[rng_.UniformIndex(recent_values_.size())];
  }
  uint64_t v = 0;
  switch (spec_.values) {
    case WorkloadValues::kUniform:
      v = rng_.UniformIndex(spec_.domain);
      break;
    case WorkloadValues::kZipf: {
      const double u = rng_.Uniform01();
      auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      v = static_cast<uint64_t>(it - zipf_cdf_.begin());
      break;
    }
    case WorkloadValues::kSequential:
      v = seq_next_;
      seq_next_ = (seq_next_ + 1) % spec_.domain;
      break;
  }
  if (spec_.dup > 0.0) {
    if (recent_values_.size() < spec_.dup_lag) {
      recent_values_.push_back(v);
    } else {
      recent_values_[recent_pos_] = v;
      recent_pos_ = (recent_pos_ + 1) % spec_.dup_lag;
    }
  }
  return v;
}

Timestamp WorkloadGenerator::EmitTimestamp() {
  if (spec_.skew > 0 && rng_.Bernoulli(spec_.skew_p)) {
    const Timestamp jitter = static_cast<Timestamp>(
        rng_.UniformRange(1, static_cast<uint64_t>(spec_.skew)));
    const Timestamp ts = step_ - jitter;
    return ts < 0 ? 0 : ts;
  }
  return step_;
}

void WorkloadGenerator::Generate(uint64_t count, std::vector<Item>* out) {
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    while (pending_ == 0) pending_ = NextBurst();
    --pending_;
    Item item;
    item.value = NextValue();
    item.index = next_index_++;
    item.timestamp = EmitTimestamp();
    out->push_back(item);
  }
}

std::vector<Item> WorkloadGenerator::Take(uint64_t count) {
  std::vector<Item> out;
  Generate(count, &out);
  return out;
}

// --- trace format -----------------------------------------------------------

namespace {

constexpr char kTraceMagic[8] = {'S', 'W', 'S', 'T', 'R', 'C', '1', '\n'};

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const char** p, const char* end, uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    const uint8_t byte = static_cast<uint8_t>(**p);
    ++*p;
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = out;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutFixed64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

Status WriteTrace(const std::string& path, std::span<const Item> items) {
  std::string buf;
  buf.reserve(16 + items.size() * 4);
  buf.append(kTraceMagic, sizeof kTraceMagic);
  PutFixed64(&buf, items.size());
  Timestamp prev_ts = 0;
  for (const Item& item : items) {
    PutVarint(&buf, item.value);
    PutVarint(&buf, ZigZag(item.timestamp - prev_ts));
    prev_ts = item.timestamp;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("WriteTrace: cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  const size_t wrote = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (wrote != buf.size() || !closed) {
    return Status::Internal("WriteTrace: short write to " + path);
  }
  return Status::Ok();
}

Result<std::vector<Item>> ReadTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("ReadTrace: cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  std::string buf;
  char chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buf.append(chunk, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("ReadTrace: read error on " + path);
  }
  if (buf.size() < sizeof kTraceMagic + 8 ||
      std::memcmp(buf.data(), kTraceMagic, sizeof kTraceMagic) != 0) {
    return Status::InvalidArgument("ReadTrace: " + path +
                                   " is not a SWSTRC1 trace");
  }
  const uint64_t count = GetFixed64(buf.data() + sizeof kTraceMagic);
  const char* p = buf.data() + sizeof kTraceMagic + 8;
  const char* end = buf.data() + buf.size();
  std::vector<Item> items;
  if (count > buf.size()) {  // >= 2 bytes per item; cheap corruption guard
    return Status::InvalidArgument("ReadTrace: " + path +
                                   ": count exceeds payload");
  }
  items.reserve(count);
  Timestamp prev_ts = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    uint64_t delta = 0;
    if (!GetVarint(&p, end, &value) || !GetVarint(&p, end, &delta)) {
      return Status::InvalidArgument("ReadTrace: " + path +
                                     ": truncated at item " +
                                     std::to_string(i));
    }
    prev_ts += UnZigZag(delta);
    items.push_back(Item{value, i, prev_ts});
  }
  if (p != end) {
    return Status::InvalidArgument("ReadTrace: " + path +
                                   ": trailing bytes after payload");
  }
  return items;
}

Result<DriveReport> ReplayTrace(const StreamDriver& driver,
                                const std::string& path, StreamSink& sink) {
  auto items = ReadTrace(path);
  if (!items.ok()) return items.status();
  return driver.Drive(items.value(), sink);
}

Result<ShardedDriveReport> ReplayTraceSharded(
    const ShardedStreamDriver& driver, const std::string& path,
    std::span<StreamSink* const> shards) {
  auto items = ReadTrace(path);
  if (!items.ok()) return items.status();
  return driver.Drive(items.value(), shards);
}

}  // namespace swsample
