// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Seeded, composable workload generators + a binary trace format.
//
// Every distributional guarantee in this library was originally validated
// on uniform synthetic streams; production traffic is Zipf-skewed, bursty,
// clock-skewed, and duplicated. This header packages those behaviors as
// named, parseable workload specs so tests, benches, and the CLI can all
// drive the SAME adversarial streams:
//
//  * arrival families: `constant` (r items/step), `poisson` (Poisson(lambda)
//    bursts), `bmodel` (the b-model self-similar burst cascade: an epoch's
//    volume is split bias/(1-bias) recursively over 2^levels slots, the
//    standard model for long-range-dependent network traffic), and `churn`
//    (adversarial covering-decomposition churn, below);
//  * value families: `uniform`, `zipf(alpha)`, `seq` over a domain;
//  * modifiers: `skew` (bounded backward timestamp jitter, producing genuine
//    out-of-order input for the StreamSink clamping contract), `dup`
//    (duplicate-and-replay injection: re-emit a recently seen value).
//
// The `churn` family is built from the implementation's own worst cases
// rather than a traffic model: same-timestamp plateaus of lengths 15/16/17
// straddling the batched `ExtendRun` cutover (kRunCutover = 16 in
// core/ts_single.cc), power-of-two plateaus that force maximal
// Definition-3.1 merge cascades in `CoveringDecomposition`, and inter-burst
// gaps of t0-1 / t0 / t0+1 steps that land exactly on the expiry horizon
// (partial expiry, exact-boundary expiry, full expiry). It maximizes bucket
// churn per item and is the stress stream for the PR-7 fast paths.
//
// Spec grammar (mirrors SinkSpec): `<arrivals>[@<values>][,key=value]...`
//
//   constant            rate=R (items per step, default 4)
//   poisson             lambda=L (default 4)
//   bmodel              bias=B (default 0.7), levels=V (default 10),
//                       volume=N (items per epoch, default 4096)
//   churn               t=T0 (target window parameter, default 64)
//   @uniform|@zipf|@seq domain=M (default 1024), alpha=A (zipf, default 1.1)
//   any                 skew=S (max backward ts jitter, default 0 = off),
//                       skewp=P (probability an item is jittered, 0.25),
//                       dup=P (replay probability, default 0 = off),
//                       duplag=K (replay reach, default 64)
//
// Examples: "poisson@zipf,lambda=16,alpha=1.3", "churn,t=128,skew=32",
// "bmodel@uniform,bias=0.8,dup=0.05".
//
// Generation is deterministic: equal (spec, seed) pairs produce identical
// item sequences, so a spec string in a test log IS the reproduction
// recipe. Indices are consecutive from 0 and timestamps non-decreasing
// unless `skew` is set (skewed streams exercise the documented clamping
// contract; see core/api.h).
//
// Trace format (record/replay for real datasets): little-endian, magic
// "SWSTRC1\n", u64 item count, then per item a varint value and a zigzag
// varint timestamp delta. Indices are not stored (consecutive from 0).
// Typical text traces shrink ~10x; replay feeds the standard drivers.

#ifndef SWSAMPLE_STREAM_WORKLOAD_H_
#define SWSAMPLE_STREAM_WORKLOAD_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stream/driver.h"
#include "stream/item.h"
#include "stream/sharded_driver.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {

/// Arrival-process family of a workload.
enum class WorkloadArrivals {
  kConstant,  ///< `rate` items per step.
  kPoisson,   ///< Poisson(`lambda`) items per step.
  kBModel,    ///< b-model self-similar cascade (bias, levels, volume).
  kChurn,     ///< adversarial covering-decomposition churn (t).
};

/// Value-distribution family of a workload.
enum class WorkloadValues {
  kUniform,     ///< uniform over [0, domain)
  kZipf,        ///< Zipf(alpha) over [0, domain)
  kSequential,  ///< 0,1,...,domain-1,0,...
};

/// Parsed form of a workload spec string; see the grammar above. Field
/// defaults are the grammar's documented defaults.
struct WorkloadSpec {
  WorkloadArrivals arrivals = WorkloadArrivals::kConstant;
  WorkloadValues values = WorkloadValues::kUniform;
  uint64_t rate = 4;        ///< constant: items per step
  double lambda = 4.0;      ///< poisson: burst intensity
  double bias = 0.7;        ///< bmodel: cascade split in (0.5, 1)
  uint64_t levels = 10;     ///< bmodel: 2^levels slots per epoch
  uint64_t volume = 4096;   ///< bmodel: items per epoch
  Timestamp t = 64;         ///< churn: target window parameter t0
  uint64_t domain = 1024;   ///< value domain size
  double alpha = 1.1;       ///< zipf exponent
  Timestamp skew = 0;       ///< max backward ts jitter (0 = monotone)
  double skew_p = 0.25;     ///< probability an item is jittered
  double dup = 0.0;         ///< replay probability (0 = off)
  uint64_t dup_lag = 64;    ///< replay reach (items)
};

/// Parses the grammar above; rejects unknown families/keys and
/// out-of-range parameters with a message naming the offending token.
Result<WorkloadSpec> ParseWorkloadSpec(std::string_view text);

/// Canonical round-trip rendering: ParseWorkloadSpec(FormatWorkloadSpec(s))
/// reproduces `s`. Defaults are rendered explicitly only when non-default.
std::string FormatWorkloadSpec(const WorkloadSpec& spec);

/// A deterministic item-sequence generator for one (spec, seed) pair.
/// Generate() may be called repeatedly; the stream continues where the
/// previous call stopped (indices stay consecutive).
class WorkloadGenerator {
 public:
  /// Validates the spec and builds the generator.
  static Result<std::unique_ptr<WorkloadGenerator>> Create(
      const WorkloadSpec& spec, uint64_t seed);

  /// Convenience: parse + Create.
  static Result<std::unique_ptr<WorkloadGenerator>> Create(
      std::string_view spec_text, uint64_t seed);

  /// Appends exactly `count` items to `*out`.
  void Generate(uint64_t count, std::vector<Item>* out);

  /// Returns the next `count` items as a fresh vector.
  std::vector<Item> Take(uint64_t count);

  const WorkloadSpec& spec() const { return spec_; }

  /// Index the next generated item will carry.
  StreamIndex next_index() const { return next_index_; }

 private:
  WorkloadGenerator(const WorkloadSpec& spec, uint64_t seed);

  /// Number of arrivals at the current step (consumes generator state).
  uint64_t NextBurst();

  /// Value for the next item, after dup/replay modifiers.
  uint64_t NextValue();

  /// Timestamp for an item of the current step, after skew.
  Timestamp EmitTimestamp();

  WorkloadSpec spec_;
  Rng rng_;
  StreamIndex next_index_ = 0;
  Timestamp step_ = 0;        ///< monotone base clock (pre-skew)
  uint64_t pending_ = 0;      ///< arrivals remaining at the current step
  std::vector<double> zipf_cdf_;
  uint64_t seq_next_ = 0;
  std::vector<uint64_t> bmodel_slots_;  ///< per-slot counts, one epoch
  uint64_t bmodel_pos_ = 0;
  std::vector<uint64_t> recent_values_;  ///< dup ring buffer
  uint64_t recent_pos_ = 0;
  // churn phase machine: cycles plateau lengths x gap offsets.
  uint64_t churn_phase_ = 0;
};

/// Writes `items` to `path` in the trace format above. Timestamps must fit
/// the zigzag delta encoding (any int64 does); indices are dropped.
Status WriteTrace(const std::string& path, std::span<const Item> items);

/// Reads a trace written by WriteTrace; indices are regenerated as
/// consecutive from 0. Fails with a descriptive Status on a bad magic,
/// truncation, or a count that disagrees with the payload.
Result<std::vector<Item>> ReadTrace(const std::string& path);

/// Replays a trace through the single-threaded driver into `sink`.
Result<DriveReport> ReplayTrace(const StreamDriver& driver,
                                const std::string& path, StreamSink& sink);

/// Replays a trace through the sharded driver into `shards`.
Result<ShardedDriveReport> ReplayTraceSharded(
    const ShardedStreamDriver& driver, const std::string& path,
    std::span<StreamSink* const> shards);

}  // namespace swsample

#endif  // SWSAMPLE_STREAM_WORKLOAD_H_
