// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Bump/pool arena and the arena-backed ring deque used by the hot-path
// window state (covering decompositions, exponential histograms, exact
// window buffers). The samplers' steady state holds O(polylog n) words
// but was paying per-item allocator traffic through std::deque's chunk
// churn; everything here allocates only on capacity growth (geometric,
// so O(log final-size) allocations over a run) and reuses memory on
// Clear()/Reset().
//
// Ownership rules (see ARCHITECTURE.md "Performance"):
//  * An Arena owns every block it hands out; blocks are reclaimed all at
//    once by Reset() or the destructor, never individually.
//  * Containers backed by an arena (RingDeque, FlatMap) own their arena
//    by value, so moving the container moves the memory with it and the
//    usual move semantics stay valid.
//  * Growth abandons the previous block inside the arena. Because
//    capacities double, abandoned bytes are bounded by the final block
//    size, i.e. live memory is at most ~2x the peak working set.

#ifndef SWSAMPLE_UTIL_ARENA_H_
#define SWSAMPLE_UTIL_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/macros.h"

namespace swsample {

/// Chunked bump allocator. Allocate() bumps a pointer inside the current
/// chunk and starts a new (geometrically larger) chunk when it runs out;
/// Reset() makes every chunk reusable without returning it to the system.
/// Not thread-safe; embed one per single-threaded structure.
class Arena {
 public:
  /// `first_chunk_bytes` sizes the initial chunk (allocated lazily on the
  /// first Allocate, so empty structures cost nothing).
  explicit Arena(size_t first_chunk_bytes = 256)
      : next_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    SWS_DCHECK(align != 0 && (align & (align - 1)) == 0);
    for (;;) {
      if (chunk_ < chunks_.size()) {
        Chunk& c = chunks_[chunk_];
        // Align the actual address, not the offset: the chunk base only
        // guarantees new[] alignment.
        const uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
        const size_t aligned =
            ((base + offset_ + align - 1) & ~(uintptr_t{align} - 1)) - base;
        if (aligned + bytes <= c.size) {
          offset_ = aligned + bytes;
          return c.data.get() + aligned;
        }
        if (++chunk_ < chunks_.size()) {
          offset_ = 0;
          continue;
        }
      }
      // Need a fresh chunk; double so that total allocations over the
      // arena's lifetime stay logarithmic in the peak footprint.
      size_t want = next_chunk_bytes_;
      while (want < bytes + align) want *= 2;
      chunks_.push_back(Chunk{std::make_unique<char[]>(want), want});
      next_chunk_bytes_ = want * 2;
      chunk_ = chunks_.size() - 1;
      offset_ = 0;
    }
  }

  /// Typed array allocation (elements are NOT constructed).
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Makes every chunk reusable. Nothing is returned to the system; the
  /// next Allocate() bumps from the first chunk again. Callers must have
  /// abandoned every pointer previously handed out.
  void Reset() {
    chunk_ = 0;
    offset_ = 0;
  }

  /// Total bytes reserved from the system (capacity, not live bytes).
  size_t ReservedBytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  std::vector<Chunk> chunks_;
  size_t chunk_ = 0;       // current chunk index (== chunks_.size() if none)
  size_t offset_ = 0;      // bump offset inside the current chunk
  size_t next_chunk_bytes_;
};

/// Fixed-stride double-ended queue over a power-of-two ring, backed by an
/// arena: push/pop at both ends are O(1) with zero allocation until the
/// ring grows, Clear() keeps the capacity, and the storage is contiguous
/// modulo one wrap point (index math is a mask, not a deque's two-level
/// pointer chase). Replaces std::deque for the bucket lists and window
/// buffers; requires trivially copyable elements so growth is a pair of
/// memcpys.
template <typename T>
class RingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingDeque moves elements with memcpy");

 public:
  RingDeque() = default;
  RingDeque(RingDeque&&) = default;
  RingDeque& operator=(RingDeque&&) = default;
  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  T& operator[](size_t i) {
    SWS_DCHECK(i < size_);
    return data_[(head_ + i) & mask()];
  }
  const T& operator[](size_t i) const {
    SWS_DCHECK(i < size_);
    return data_[(head_ + i) & mask()];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == cap_) Grow(size_ + 1);
    data_[(head_ + size_) & mask()] = value;
    ++size_;
  }

  void push_front(const T& value) {
    if (size_ == cap_) Grow(size_ + 1);
    head_ = (head_ + cap_ - 1) & mask();
    data_[head_] = value;
    ++size_;
  }

  void pop_front() {
    SWS_DCHECK(size_ > 0);
    head_ = (head_ + 1) & mask();
    --size_;
  }

  void pop_back() {
    SWS_DCHECK(size_ > 0);
    --size_;
  }

  /// Drops the `count` oldest elements in O(1).
  void pop_front_n(size_t count) {
    SWS_DCHECK(count <= size_);
    head_ = (head_ + count) & mask();
    size_ -= count;
  }

  /// Drops the `count` newest elements in O(1).
  void pop_back_n(size_t count) {
    SWS_DCHECK(count <= size_);
    size_ -= count;
  }

  /// Order-preserving erase of element `i`, shifting whichever side is
  /// smaller (O(min(i, size - i)) element copies).
  void EraseAt(size_t i) {
    SWS_DCHECK(i < size_);
    if (i < size_ - 1 - i) {
      for (size_t j = i; j > 0; --j) (*this)[j] = (*this)[j - 1];
      pop_front();
    } else {
      for (size_t j = i; j + 1 < size_; ++j) (*this)[j] = (*this)[j + 1];
      pop_back();
    }
  }

  /// Forgets every element but keeps the ring (and its arena memory).
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Ensures capacity for `n` elements without changing contents.
  void reserve(size_t n) {
    if (n > cap_) Grow(n);
  }

  size_t capacity() const { return cap_; }

  /// Bytes the backing arena has reserved from the system (ring capacity
  /// plus any abandoned-by-growth blocks) — the retained-memory quantity
  /// budget enforcement charges, as opposed to size() * sizeof(T) live
  /// bytes.
  size_t ReservedBytes() const { return arena_.ReservedBytes(); }

 private:
  size_t mask() const { return cap_ - 1; }

  void Grow(size_t need) {
    size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    while (new_cap < need) new_cap *= 2;
    // With no live elements every previously handed-out block is dead, so
    // the arena's chunks can be recycled instead of abandoned.
    if (size_ == 0) arena_.Reset();
    T* fresh = arena_.AllocateArray<T>(new_cap);
    if (size_ > 0) {
      // Linearize [head_, head_ + size_) into the new ring.
      const size_t first = std::min(size_, cap_ - head_);
      std::memcpy(fresh, data_ + head_, first * sizeof(T));
      std::memcpy(fresh + first, data_, (size_ - first) * sizeof(T));
    }
    data_ = fresh;
    cap_ = new_cap;
    head_ = 0;
  }

  Arena arena_;
  T* data_ = nullptr;
  size_t cap_ = 0;   // power of two (or 0)
  size_t head_ = 0;  // index of the oldest element
  size_t size_ = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_ARENA_H_
