// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Small integer/bit helpers used by the covering decomposition (Section 3 of
// the paper), whose bucket widths are powers of two derived from
// floor(log2(width)) computations.

#ifndef SWSAMPLE_UTIL_BITS_H_
#define SWSAMPLE_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/macros.h"

namespace swsample {

/// floor(log2(x)) for x >= 1. This is the paper's notation
/// `floor(log(b + 1 - a))` used to size covering-decomposition buckets.
inline uint32_t FloorLog2(uint64_t x) {
  SWS_DCHECK(x >= 1);
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1.
inline uint32_t CeilLog2(uint64_t x) {
  SWS_DCHECK(x >= 1);
  return (x == 1) ? 0u : FloorLog2(x - 1) + 1u;
}

/// True iff x is a power of two (x >= 1).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// 2^e as uint64_t, e < 64.
inline uint64_t Pow2(uint32_t e) {
  SWS_DCHECK(e < 64);
  return uint64_t{1} << e;
}

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_BITS_H_
