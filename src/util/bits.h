// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Small integer/bit helpers used by the covering decomposition (Section 3 of
// the paper), whose bucket widths are powers of two derived from
// floor(log2(width)) computations.

#ifndef SWSAMPLE_UTIL_BITS_H_
#define SWSAMPLE_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/macros.h"

namespace swsample {

/// floor(log2(x)) for x >= 1. This is the paper's notation
/// `floor(log(b + 1 - a))` used to size covering-decomposition buckets.
inline uint32_t FloorLog2(uint64_t x) {
  SWS_DCHECK(x >= 1);
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1.
inline uint32_t CeilLog2(uint64_t x) {
  SWS_DCHECK(x >= 1);
  return (x == 1) ? 0u : FloorLog2(x - 1) + 1u;
}

/// True iff x is a power of two (x >= 1).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// 2^e as uint64_t, e < 64.
inline uint64_t Pow2(uint32_t e) {
  SWS_DCHECK(e < 64);
  return uint64_t{1} << e;
}

// --- SWAR (SIMD-within-a-register) byte tricks -----------------------------
//
// The ingestion hot loops (stream/driver.cc) process text eight bytes at a
// time: a word-wise scanner finds line breaks and a word-wise parser folds
// eight ASCII digits per multiply ladder. Everything below is plain
// uint64_t arithmetic — portable, no intrinsics — but the byte-order-
// sensitive helpers are only used behind std::endian checks.

/// The byte `b` replicated into all eight lanes.
inline constexpr uint64_t RepeatByte(uint8_t b) {
  return 0x0101010101010101ULL * b;
}

/// Nonzero iff `v` contains a zero byte. Marked lanes carry 0x80; a false
/// positive can only appear ABOVE (more significant than) the first true
/// zero byte, because the borrow that causes it must originate at one, so
/// the LOWEST set bit always marks the first zero byte.
inline constexpr uint64_t ZeroByteMask(uint64_t v) {
  return (v - RepeatByte(0x01)) & ~v & RepeatByte(0x80);
}

/// First occurrence of '\n' or '\0' in [p, end), or `end` if absent.
/// Word-at-a-time on little-endian hosts, byte-wise otherwise.
inline const char* FindNewlineOrNul(const char* p, const char* end) {
  if constexpr (std::endian::native == std::endian::little) {
    while (end - p >= 8) {
      uint64_t word;
      __builtin_memcpy(&word, p, 8);
      const uint64_t hit =
          ZeroByteMask(word) | ZeroByteMask(word ^ RepeatByte('\n'));
      // Spurious marks sit above each mask's first true hit, so the lowest
      // set bit of the union is the first byte equal to either target.
      if (hit != 0) {
        return p + (static_cast<unsigned>(std::countr_zero(hit)) >> 3);
      }
      p += 8;
    }
  }
  for (; p != end; ++p) {
    if (*p == '\n' || *p == '\0') return p;
  }
  return end;
}

/// True iff all eight bytes of the (little-endian-loaded) chunk are ASCII
/// digits '0'..'9'.
inline constexpr bool IsEightDigits(uint64_t chunk) {
  return ((chunk & RepeatByte(0xF0)) |
          (((chunk + RepeatByte(0x06)) & RepeatByte(0xF0)) >> 4)) ==
         RepeatByte(0x33);
}

/// Decimal value of eight ASCII digits loaded little-endian (lowest byte =
/// leftmost digit). Three multiply-mask steps fold 8 lanes -> 4 -> 2 -> 1.
inline constexpr uint32_t ParseEightDigits(uint64_t chunk) {
  constexpr uint64_t kMask = 0x000000FF000000FF;
  constexpr uint64_t kMul1 = 100 + (1000000ULL << 32);
  constexpr uint64_t kMul2 = 1 + (10000ULL << 32);
  chunk -= RepeatByte('0');
  chunk = (chunk * 10) + (chunk >> 8);  // pairs of digits per 16-bit lane
  chunk = (((chunk & kMask) * kMul1) + (((chunk >> 16) & kMask) * kMul2)) >>
          32;
  return static_cast<uint32_t>(chunk);
}

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_BITS_H_
