// Copyright (c) swsample authors. Licensed under the MIT license.

#include "util/failpoint.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/rng.h"

namespace swsample {
namespace {

// Fixed-capacity registry: slots are append-only, so readers can scan
// [0, count) lock-free while creation of new sites takes `mu`.
constexpr size_t kMaxFailpoints = 64;

struct Registry {
  std::atomic<size_t> count{0};
  Failpoint* slots[kMaxFailpoints] = {};
  std::mutex mu;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();  // leaked: sites live forever
  return *r;
}

Failpoint* FindSite(std::string_view site) {
  Registry& r = GlobalRegistry();
  const size_t n = r.count.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (r.slots[i]->site() == site) return r.slots[i];
  }
  return nullptr;
}

// Uniform double in [0, 1) from well-mixed bits; the decision for armed
// hit `n` of a site hashes (site seed, n) so concurrent hitters never
// share mutable RNG state.
double Uniform01FromHash(uint64_t seed, uint64_t n) {
  return static_cast<double>(Rng::ForkSeed(seed, n) >> 11) * 0x1.0p-53;
}

bool ParseClass(std::string_view token, FaultClass* out) {
  if (token == "enospc") *out = FaultClass::kEnospc;
  else if (token == "eio") *out = FaultClass::kEio;
  else if (token == "torn") *out = FaultClass::kTorn;
  else if (token == "fsync") *out = FaultClass::kFsync;
  else if (token == "rename") *out = FaultClass::kRename;
  else return false;
  return true;
}

bool ParseU64Token(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kEnospc:
      return "enospc";
    case FaultClass::kEio:
      return "eio";
    case FaultClass::kTorn:
      return "torn";
    case FaultClass::kFsync:
      return "fsync";
    case FaultClass::kRename:
      return "rename";
  }
  return "none";
}

Failpoint& Failpoint::At(std::string_view site) {
  if (Failpoint* fp = FindSite(site)) return *fp;
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (Failpoint* fp = FindSite(site)) return *fp;  // raced creation
  const size_t n = r.count.load(std::memory_order_relaxed);
  SWS_CHECK(n < kMaxFailpoints);
  Failpoint* fp = new Failpoint(site);  // leaked: sites live forever
  r.slots[n] = fp;
  r.count.store(n + 1, std::memory_order_release);
  return *fp;
}

FaultClass Failpoint::Hit() {
  if (!armed_.load(std::memory_order_relaxed)) return FaultClass::kNone;
  if (!armed_.load(std::memory_order_acquire)) return FaultClass::kNone;
  const uint64_t n = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (trigger_) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kNth:
      fire = (n == arg_);
      break;
    case Trigger::kEvery:
      fire = (arg_ != 0 && n % arg_ == 0);
      break;
    case Trigger::kProb:
      fire = Uniform01FromHash(seed_, n) < prob_;
      break;
  }
  if (!fire) return FaultClass::kNone;
  const uint64_t f = fires_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (times_ != 0 && f > times_) {
    fires_.fetch_sub(1, std::memory_order_relaxed);
    return FaultClass::kNone;
  }
  return klass_;
}

Status ArmFailpoints(std::string_view specs, uint64_t seed) {
  size_t pos = 0;
  uint64_t site_index = 0;
  while (pos <= specs.size()) {
    const size_t end = std::min(specs.find(';', pos), specs.size());
    std::string_view spec = specs.substr(pos, end - pos);
    pos = end + 1;
    if (spec.empty()) {
      if (pos > specs.size()) break;
      continue;
    }
    const size_t eq = spec.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec needs <site>=<class>: " +
                                     std::string(spec));
    }
    const std::string_view site = spec.substr(0, eq);
    std::string_view rest = spec.substr(eq + 1);

    FaultClass klass = FaultClass::kNone;
    Failpoint::Trigger trigger = Failpoint::Trigger::kAlways;
    uint64_t arg = 1;
    double prob = 0.0;
    uint64_t times = 0;

    size_t tpos = 0;
    bool first = true;
    while (tpos <= rest.size()) {
      const size_t tend = std::min(rest.find(',', tpos), rest.size());
      std::string_view token = rest.substr(tpos, tend - tpos);
      tpos = tend + 1;
      if (token.empty() && tpos > rest.size()) break;
      if (first) {
        first = false;
        if (!ParseClass(token, &klass)) {
          return Status::InvalidArgument(
              "failpoint class must be enospc|eio|torn|fsync|rename, got: " +
              std::string(token));
        }
        continue;
      }
      const size_t keq = token.find('=');
      if (keq == std::string_view::npos) {
        return Status::InvalidArgument("failpoint arg needs k=v: " +
                                       std::string(token));
      }
      const std::string_view key = token.substr(0, keq);
      const std::string_view val = token.substr(keq + 1);
      if (key == "nth" || key == "every" || key == "times") {
        uint64_t v = 0;
        if (!ParseU64Token(val, &v) || (key != "times" && v == 0)) {
          return Status::InvalidArgument("bad failpoint arg: " +
                                         std::string(token));
        }
        if (key == "times") {
          times = v;
        } else {
          trigger = (key == "nth") ? Failpoint::Trigger::kNth
                                     : Failpoint::Trigger::kEvery;
          arg = v;
        }
      } else if (key == "prob") {
        char* endp = nullptr;
        const std::string vs(val);
        prob = std::strtod(vs.c_str(), &endp);
        if (endp == vs.c_str() || *endp != '\0' || prob < 0.0 || prob > 1.0) {
          return Status::InvalidArgument("failpoint prob must be in [0,1]: " +
                                         std::string(token));
        }
        trigger = Failpoint::Trigger::kProb;
      } else {
        return Status::InvalidArgument("unknown failpoint arg: " +
                                       std::string(token));
      }
    }
    if (klass == FaultClass::kNone) {
      return Status::InvalidArgument("failpoint spec missing class: " +
                                     std::string(spec));
    }

    Failpoint& fp = Failpoint::At(site);
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    fp.armed_.store(false, std::memory_order_release);
    fp.klass_ = klass;
    fp.trigger_ = trigger;
    fp.arg_ = arg;
    fp.prob_ = prob;
    fp.times_ = times;
    fp.seed_ = Rng::ForkSeed(seed, site_index);
    fp.hits_.store(0, std::memory_order_relaxed);
    fp.fires_.store(0, std::memory_order_relaxed);
    fp.armed_.store(true, std::memory_order_release);
    ++site_index;
    if (pos > specs.size()) break;
  }
  return Status::Ok();
}

Status ArmFailpointsFromEnv(uint64_t seed) {
  const char* env = std::getenv("SWSAMPLE_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::Ok();
  return ArmFailpoints(env, seed);
}

void DisarmFailpoints() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  const size_t n = r.count.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    r.slots[i]->armed_.store(false, std::memory_order_release);
  }
}

bool AnyFailpointArmed() {
  Registry& r = GlobalRegistry();
  const size_t n = r.count.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (r.slots[i]->armed()) return true;
  }
  return false;
}

std::string FailpointReport() {
  Registry& r = GlobalRegistry();
  const size_t n = r.count.load(std::memory_order_acquire);
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    Failpoint* fp = r.slots[i];
    if (!fp->armed() && fp->hits() == 0 && fp->fires() == 0) continue;
    if (fp->klass_ == FaultClass::kNone) continue;
    out += fp->site();
    out += " class=";
    out += FaultClassName(fp->klass_);
    out += " hits=" + std::to_string(fp->hits());
    out += " fires=" + std::to_string(fp->fires());
    out += '\n';
  }
  return out;
}

}  // namespace swsample
