// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Deterministic, seeded fault injection for the persistence/ingestion
// stack. A *failpoint* is a named site inside an I/O primitive (e.g.
// "spill.write") that production code consults via `Hit()`; when armed it
// answers with the fault class to inject, otherwise `FaultClass::kNone`.
//
// Design constraints, in order:
//   1. Zero cost when unarmed: `Hit()` is a single relaxed atomic load on
//      that path, so the seam can stay compiled into release builds and
//      the BENCH.json gate stays green.
//   2. Deterministic: probabilistic triggers derive each decision from a
//      hash of (armed seed, hit index) — no shared RNG state, no locks,
//      reproducible from the seed regardless of thread interleaving for a
//      fixed per-site hit order.
//   3. Thread-safe: sites are hit concurrently from ingest threads and
//      the keyed engine's async restore reader.
//
// Spec grammar (CLI `--failpoints=`, env `SWSAMPLE_FAILPOINTS`, tests):
//
//   spec-list := spec (';' spec)*
//   spec      := <site> '=' <class> (',' arg)*
//   class     := 'enospc' | 'eio' | 'torn' | 'fsync' | 'rename'
//   arg       := 'nth=' <i>     fire exactly on the i-th armed hit (1-based)
//              | 'every=' <n>   fire on every n-th armed hit
//              | 'prob=' <p>    fire each hit with probability p (seeded)
//              | 'times=' <n>   stop after n injected faults
//
// A spec with no trigger arg fires on every hit (a permanently failed
// resource). Example: `spill.write=eio,prob=0.05;ckpt.manifest=rename,nth=2`.
//
// Arm/disarm are not synchronized against in-flight `Hit()` calls beyond
// the armed flag's release/acquire pair: arm before starting ingestion and
// disarm after it drains.

#ifndef SWSAMPLE_UTIL_FAILPOINT_H_
#define SWSAMPLE_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace swsample {

/// What an armed failpoint injects. The file_ops primitives map these onto
/// realistic failure shapes: `kEnospc`/`kEio` are transient errors
/// (retryable `Status::Unavailable`), `kTorn` is a *silent* short write —
/// the operation reports success but leaves a truncated file, as a crash
/// mid-write would — `kFsync` is a commit-time fsync lie, and `kRename`
/// fails the atomic publish step.
enum class FaultClass : uint8_t {
  kNone = 0,
  kEnospc,
  kEio,
  kTorn,
  kFsync,
  kRename,
};

/// Grammar name of a fault class ("enospc", ...); "none" for kNone.
const char* FaultClassName(FaultClass c);

/// One named injection site. Obtain with `Failpoint::At`, consult with
/// `Hit()`. Instances live forever once created (bounded registry).
class Failpoint {
 public:
  /// Finds or registers the site. Lookup is a lock-free scan of a fixed
  /// table; creation (first use of a name) takes a mutex. Call sites that
  /// care about the lookup cost cache the reference.
  static Failpoint& At(std::string_view site);

  /// Consults the site: kNone when unarmed (one relaxed load) or when the
  /// armed trigger does not fire for this hit.
  FaultClass Hit();

  const std::string& site() const { return site_; }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  /// Armed hits observed since this site was last armed.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Faults actually injected since this site was last armed.
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  enum class Trigger : uint8_t { kAlways, kNth, kEvery, kProb };

  explicit Failpoint(std::string_view site) : site_(site) {}

  friend Status ArmFailpoints(std::string_view, uint64_t);
  friend void DisarmFailpoints();
  friend std::string FailpointReport();

  std::string site_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
  // Trigger config: written before the release-store that arms the site,
  // read only after the acquire-load that observes it armed.
  FaultClass klass_ = FaultClass::kNone;
  Trigger trigger_ = Trigger::kAlways;
  uint64_t arg_ = 1;    // nth / every operand
  double prob_ = 0.0;   // prob operand
  uint64_t times_ = 0;  // 0 = unlimited
  uint64_t seed_ = 0;   // forked decision seed for prob triggers
};

/// Parses and arms a spec list (grammar above). Sites named in the spec
/// are created if they do not exist yet, so arming may precede the first
/// I/O through a site. Sites not named are left untouched. `seed` forks
/// the per-site decision streams for `prob=` triggers.
Status ArmFailpoints(std::string_view specs, uint64_t seed);

/// Arms from `SWSAMPLE_FAILPOINTS` if set; Ok (and a no-op) when unset.
Status ArmFailpointsFromEnv(uint64_t seed);

/// Disarms every site. Counters are kept for post-run reporting; re-arming
/// a site resets its counters.
void DisarmFailpoints();

/// True if any site is currently armed.
bool AnyFailpointArmed();

/// One line per armed-or-fired site: "<site> class=<c> hits=<n> fires=<m>".
/// Empty string when nothing was ever armed.
std::string FailpointReport();

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_FAILPOINT_H_
