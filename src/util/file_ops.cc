// Copyright (c) swsample authors. Licensed under the MIT license.

#include "util/file_ops.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/failpoint.h"
#include "util/rng.h"

namespace swsample {
namespace {

namespace fs = std::filesystem;

/// Maps an errno from a file operation on a known-valid path to the
/// transient/permanent split RetryIo keys off. ENOENT stays permanent:
/// a missing file or directory will not appear by retrying.
Status ErrnoStatus(const char* what, const std::string& path, int err) {
  const std::string msg = std::string("io: ") + what + " " + path + ": " +
                          std::strerror(err);
  switch (err) {
    case ENOSPC:
    case EIO:
    case EINTR:
    case EAGAIN:
    case EMFILE:
    case ENFILE:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return Status::Unavailable(msg);
    default:
      return Status::InvalidArgument(msg);
  }
}

Status InjectedError(FaultClass fault, const char* what,
                     const std::string& path) {
  return Status::Unavailable(std::string("io: injected ") +
                             FaultClassName(fault) + " fault: " + what + " " +
                             path);
}

}  // namespace

double RetryBackoffSeconds(const RetryPolicy& policy, uint64_t op_id,
                           uint32_t attempt) {
  if (attempt == 0) return 0.0;
  double base_ms = policy.backoff_ms;
  for (uint32_t a = 1; a < attempt && base_ms < policy.backoff_max_ms; ++a) {
    base_ms *= 2.0;
  }
  if (base_ms > policy.backoff_max_ms) base_ms = policy.backoff_max_ms;
  const uint64_t bits =
      Rng::ForkSeed(Rng::ForkSeed(policy.seed, op_id), attempt);
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return base_ms * (0.5 + 0.5 * u) / 1e3;
}

Status RetryIo(const RetryPolicy& policy, uint64_t op_id, uint64_t* io_retries,
               const std::function<Status()>& op) {
  const uint32_t attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Status last;
  for (uint32_t a = 0; a < attempts; ++a) {
    if (a > 0) {
      if (io_retries != nullptr) ++*io_retries;
      const double secs = RetryBackoffSeconds(policy, op_id, a);
      if (secs > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(secs));
      }
    }
    last = op();
    if (last.ok() || !last.retryable()) return last;
  }
  return last;
}

Status AtomicWriteFile(const char* site, const std::string& path,
                       std::string_view data, bool do_fsync) {
  const FaultClass fault = Failpoint::At(site).Hit();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return ErrnoStatus("cannot create", tmp, errno);
  }
  // A torn fault publishes a strict prefix (what a crash between write
  // and rename leaves behind); transient write faults stop at the same
  // prefix but report the failure.
  size_t write_len = data.size();
  if (fault == FaultClass::kTorn ||
      (fault == FaultClass::kEnospc || fault == FaultClass::kEio)) {
    write_len = data.size() / 2;
  }
  bool ok = (write_len == 0 ||
             std::fwrite(data.data(), 1, write_len, f) == write_len) &&
            std::fflush(f) == 0;
  const int write_err = ok ? 0 : (errno != 0 ? errno : EIO);
#ifndef _WIN32
  int fsync_err = 0;
  if (ok && do_fsync && fault != FaultClass::kTorn) {
    if (fsync(fileno(f)) != 0) {
      fsync_err = errno != 0 ? errno : EIO;
      ok = false;
    }
  }
#else
  const int fsync_err = 0;
  (void)do_fsync;
#endif
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    if (write_err != 0) return ErrnoStatus("short write to", tmp, write_err);
    return ErrnoStatus("cannot fsync", tmp, fsync_err);
  }
  if (fault == FaultClass::kEnospc || fault == FaultClass::kEio) {
    std::remove(tmp.c_str());
    return InjectedError(fault, "writing", path);
  }
  if (fault == FaultClass::kFsync) {
    std::remove(tmp.c_str());
    return InjectedError(fault, "syncing", path);
  }
  if (fault == FaultClass::kRename) {
    std::remove(tmp.c_str());
    return InjectedError(fault, "renaming", path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno != 0 ? errno : EIO;
    std::remove(tmp.c_str());
    return ErrnoStatus("cannot rename", tmp, err);
  }
  return Status::Ok();
}

Result<std::string> ReadFileBytes(const char* site, const std::string& path) {
  const FaultClass fault = Failpoint::At(site).Hit();
  if (fault != FaultClass::kNone && fault != FaultClass::kTorn) {
    return InjectedError(fault, "reading", path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return ErrnoStatus("cannot open", path, errno);
  }
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    return Status::Unavailable("io: read error on " + path);
  }
  if (fault == FaultClass::kTorn) data.resize(data.size() / 2);
  return data;
}

void SyncDirectory(const std::string& dir) {
#ifndef _WIN32
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    fsync(fd);
    close(fd);
  }
#else
  (void)dir;
#endif
}

Status RemoveFile(const char* site, const std::string& path) {
  const FaultClass fault = Failpoint::At(site).Hit();
  if (fault != FaultClass::kNone && fault != FaultClass::kTorn) {
    return InjectedError(fault, "unlinking", path);
  }
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("cannot unlink", path, errno);
  }
  return Status::Ok();
}

Result<int> OpenReadFd(const char* site, const std::string& path) {
#ifndef _WIN32
  const FaultClass fault = Failpoint::At(site).Hit();
  if (fault != FaultClass::kNone) {
    return InjectedError(fault, "opening", path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoStatus("cannot open", path, errno);
  }
  return fd;
#else
  (void)site;
  return Status::InvalidArgument("io: OpenReadFd unsupported on " + path);
#endif
}

Result<std::FILE*> OpenStdioFile(const char* site, const std::string& path) {
  const FaultClass fault = Failpoint::At(site).Hit();
  if (fault != FaultClass::kNone) {
    return InjectedError(fault, "opening", path);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return ErrnoStatus("cannot open", path, errno);
  }
  return f;
}

uint64_t SweepTempFiles(const std::string& dir) {
  std::error_code ec;
  uint64_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.compare(name.size() - 4, 4, ".tmp") != 0) {
      continue;
    }
    std::error_code rm_ec;
    if (fs::remove(entry.path(), rm_ec)) ++removed;
  }
  return removed;
}

}  // namespace swsample
