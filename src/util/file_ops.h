// Copyright (c) swsample authors. Licensed under the MIT license.
//
// The FileOps seam: every durable-file primitive used by the persistence
// and ingestion layers (checkpoint shards, MANIFEST commits, keyed spill
// files, the async restore lane, mmap ingestion) funnels through these
// functions. Each takes a failpoint *site* name, so a deterministic fault
// — transient error, torn write, fsync lie, failed rename — can be
// injected at exactly that layer (see util/failpoint.h for the grammar).
// Unarmed, the seam adds one relaxed atomic load per operation on top of
// the syscalls it wraps.
//
// Error classification: failures that rewriting the same bytes may cure
// (ENOSPC, EIO, interrupted syscalls, fd exhaustion, every injected
// transient) come back as `Status::Unavailable` — `retryable()` — while
// misuse (missing directory, bad path) stays `InvalidArgument`. `RetryIo`
// is the matching driver: bounded attempts with exponential, seeded,
// deterministic jitter, stopping early on permanent errors.

#ifndef SWSAMPLE_UTIL_FILE_OPS_H_
#define SWSAMPLE_UTIL_FILE_OPS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace swsample {

/// Bounded-retry schedule for idempotent I/O. Attempt `a` (1-based retry
/// index) sleeps `backoff_ms * 2^(a-1)` capped at `backoff_max_ms`, scaled
/// by a deterministic jitter in [0.5, 1.0) derived from (seed, op_id,
/// attempt) — no shared RNG state, so concurrent retriers stay
/// reproducible. `max_attempts = 1` disables retrying.
struct RetryPolicy {
  uint32_t max_attempts = 3;
  double backoff_ms = 0.05;
  double backoff_max_ms = 10.0;
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// The deterministic sleep before retry `attempt` (1-based) of `op_id`.
/// Exposed for tests; RetryIo uses it verbatim.
double RetryBackoffSeconds(const RetryPolicy& policy, uint64_t op_id,
                           uint32_t attempt);

/// Runs `op` up to `policy.max_attempts` times while it fails with a
/// retryable status, sleeping the jittered backoff between attempts and
/// bumping `*io_retries` (nullable) once per retry. Returns the first
/// success, the first permanent error, or the last retryable error when
/// attempts are exhausted. `op_id` salts the jitter stream (use the key,
/// shard index, or another stable operation identity).
Status RetryIo(const RetryPolicy& policy, uint64_t op_id, uint64_t* io_retries,
               const std::function<Status()>& op);

/// Writes `data` to `path` via `path + ".tmp"` + optional fsync + atomic
/// rename. The fsync-before-rename matters: without it a crash can commit
/// the rename (metadata) before the file contents, leaving a readable name
/// full of garbage. The temp file is unlinked on every error path, so a
/// failed write never leaks a `.tmp` (crash-orphaned temps are handled by
/// SweepTempFiles). Injection at `site`: enospc/eio fail mid-write,
/// fsync/rename fail the commit step — all retryable — while `torn`
/// silently publishes a truncated file and reports success, as a crash
/// between write and rename would.
Status AtomicWriteFile(const char* site, const std::string& path,
                       std::string_view data, bool do_fsync);

/// Reads the whole file. Open/read failures on an existing path are
/// retryable; a missing file is permanent. Injection at `site`:
/// enospc/eio/fsync/rename fail the read (retryable); `torn` silently
/// returns a truncated prefix.
Result<std::string> ReadFileBytes(const char* site, const std::string& path);

/// Persists the directory entries themselves (the renames above) so a
/// commit survives power loss. Best-effort on filesystems that reject
/// directory fsync; no injection (the interesting fsync lies live in
/// AtomicWriteFile's commit step).
void SyncDirectory(const std::string& dir);

/// Unlinks `path`. Missing file is Ok (idempotent). Injection at `site`
/// fails it with a retryable error.
Status RemoveFile(const char* site, const std::string& path);

/// Opens `path` read-only for mmap-style ingestion; returns the fd.
/// Injection at `site` fails the open with a retryable error.
Result<int> OpenReadFd(const char* site, const std::string& path);

/// Opens `path` for buffered stdio reading (the drivers' line-pump
/// paths). Caller std::fcloses the handle. Injection at `site` fails the
/// open with a retryable error.
Result<std::FILE*> OpenStdioFile(const char* site, const std::string& path);

/// Unlinks every directory entry whose name ends in ".tmp" — temps
/// orphaned by a crash between write and rename. Returns the number
/// removed. Safe on a missing directory (returns 0).
uint64_t SweepTempFiles(const std::string& dir);

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_FILE_OPS_H_
