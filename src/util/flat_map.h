// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Cache-friendly open-addressing hash map for the hot paths that were
// paying std::unordered_map node churn (per-candidate payload state in
// apps/ts_payload.h, value histograms in stats/exact.*). Keys are hashed
// through the SplitMix64 finalizer, probing is linear over a power-of-two
// table (one cache line resolves most lookups), and erase uses
// backward-shift deletion so the table never accumulates tombstones.
//
// Invariants (see ARCHITECTURE.md "Performance"):
//  * capacity is a power of two; load factor is kept <= 3/4;
//  * every element is reachable from its home slot by a linear probe with
//    no empty slot in between (the invariant Knuth-style backward-shift
//    deletion restores after every Erase, so no tombstones ever exist);
//  * Clear() keeps the table memory (the arena reclaims it wholesale),
//    so steady-state use allocates only when the table grows.

#ifndef SWSAMPLE_UTIL_FLAT_MAP_H_
#define SWSAMPLE_UTIL_FLAT_MAP_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "util/arena.h"
#include "util/macros.h"

namespace swsample {

/// SplitMix64 finalizer: a fast, well-mixing 64-bit hash (every input bit
/// affects every output bit).
inline uint64_t SplitMix64Hash(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Open-addressing hash map from a 64-bit-convertible key to a trivially
/// copyable V (the estimator payloads are PODs; triviality is what lets
/// the table live in raw arena memory and rehash with plain stores).
/// Not thread-safe. Iteration order is unspecified (serialize sorted).
template <typename K, typename V>
class FlatMap {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "FlatMap keys must be integral (hashed via SplitMix64)");
  static_assert(std::is_trivially_copyable_v<V>,
                "FlatMap values live in raw arena memory");

 public:
  FlatMap() = default;
  FlatMap(FlatMap&&) = default;
  FlatMap& operator=(FlatMap&&) = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  uint64_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  uint64_t Capacity() const { return cap_; }

  /// Bytes the backing arena has reserved from the system (table slots,
  /// occupancy flags, abandoned-by-growth blocks) — what budget
  /// enforcement charges for this map.
  uint64_t ReservedBytes() const { return arena_.ReservedBytes(); }

  /// Pointer to the mapped value, or nullptr.
  V* Find(K key) {
    if (size_ == 0) return nullptr;
    for (uint64_t i = Home(key);; i = (i + 1) & Mask()) {
      if (!full_[i]) return nullptr;
      if (slots_[i].key == key) return &slots_[i].value;
    }
  }
  const V* Find(K key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  bool Contains(K key) const { return Find(key) != nullptr; }

  /// Hints the cache that `key`'s home slot is about to be probed. Linear
  /// probing resolves most lookups within the home cache line, so one
  /// prefetch hides most of a subsequent Find/TryEmplace miss; callers
  /// pipelining a batch of lookups (the keyed engine's run demux) issue
  /// this a few iterations ahead. Safe at any time — a stale address
  /// after growth is only a wasted hint.
  void Prefetch(K key) const {
    if (cap_ == 0) return;
    const uint64_t i = Home(key);
    __builtin_prefetch(&full_[i]);
    __builtin_prefetch(&slots_[i]);
  }

  /// Inserts `(key, value)` if the key is absent. Returns {slot value
  /// pointer, inserted?} like std::unordered_map::try_emplace. A hit on
  /// an existing key never grows the table (so value pointers from prior
  /// lookups stay valid across read-mostly use).
  std::pair<V*, bool> TryEmplace(K key, const V& value) {
    if (cap_ != 0) {
      for (uint64_t i = Home(key);; i = (i + 1) & Mask()) {
        if (!full_[i]) break;
        if (slots_[i].key == key) return {&slots_[i].value, false};
      }
    }
    GrowIfNeeded(size_ + 1);  // key absent: grow (maybe), then insert
    for (uint64_t i = Home(key);; i = (i + 1) & Mask()) {
      if (!full_[i]) {
        full_[i] = 1;
        slots_[i].key = key;
        slots_[i].value = value;
        ++size_;
        return {&slots_[i].value, true};
      }
    }
  }

  /// Mapped value for `key`, default-constructed on first access.
  V& operator[](K key) { return *TryEmplace(key, V{}).first; }

  /// Removes `key` if present (backward-shift deletion, Knuth's Algorithm
  /// R: walk the rest of the cluster and pull back every element whose
  /// home lies at or before the hole, so no tombstone is left and probe
  /// sequences never decay). Returns true iff removed.
  bool Erase(K key) {
    if (size_ == 0) return false;
    uint64_t i = Home(key);
    for (;; i = (i + 1) & Mask()) {
      if (!full_[i]) return false;
      if (slots_[i].key == key) break;
    }
    uint64_t hole = i;
    for (uint64_t j = (hole + 1) & Mask(); full_[j]; j = (j + 1) & Mask()) {
      // The element at j stays iff its home lies cyclically in (hole, j]
      // — its probe path would not cross the hole. Otherwise it fills the
      // hole and leaves a new one at j.
      const uint64_t home = Home(slots_[j].key);
      if (((j - home) & Mask()) < ((j - hole) & Mask())) continue;
      slots_[hole] = slots_[j];
      hole = j;
    }
    full_[hole] = 0;
    --size_;
    return true;
  }

  /// Forgets every entry, keeping the table memory.
  void Clear() {
    if (cap_ != 0) std::memset(full_, 0, cap_);
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without rehash churn.
  void Reserve(uint64_t n) {
    if (n > 0) GrowIfNeeded(n);
  }

  /// Visits every (key, mapped value) pair; `fn(K, V&)`.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (uint64_t i = 0; i < cap_; ++i) {
      if (full_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t i = 0; i < cap_; ++i) {
      if (full_[i]) {
        fn(slots_[i].key, static_cast<const V&>(slots_[i].value));
      }
    }
  }

 private:
  struct Slot {
    K key;
    V value;
  };

  uint64_t Mask() const { return cap_ - 1; }
  uint64_t Home(K key) const {
    return SplitMix64Hash(static_cast<uint64_t>(key)) & Mask();
  }

  void GrowIfNeeded(uint64_t need) {
    // Keep load <= 3/4 so linear probes stay short.
    if (cap_ != 0 && need * 4 <= cap_ * 3) return;
    uint64_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    while (need * 4 > new_cap * 3) new_cap *= 2;
    Slot* old_slots = slots_;
    uint8_t* old_full = full_;
    const uint64_t old_cap = cap_;
    if (size_ == 0) arena_.Reset();  // nothing live: recycle old tables
    slots_ = arena_.AllocateArray<Slot>(new_cap);
    full_ = arena_.AllocateArray<uint8_t>(new_cap);
    std::memset(full_, 0, new_cap);
    cap_ = new_cap;
    for (uint64_t i = 0; i < old_cap; ++i) {
      if (!old_full[i]) continue;
      for (uint64_t j = Home(old_slots[i].key);; j = (j + 1) & Mask()) {
        if (full_[j]) continue;
        full_[j] = 1;
        slots_[j] = old_slots[i];
        break;
      }
    }
    // Old arrays are abandoned inside the arena (reclaimed on destruction
    // or the next empty-grow Reset); geometric growth bounds the waste.
  }

  Arena arena_;
  Slot* slots_ = nullptr;
  uint8_t* full_ = nullptr;
  uint64_t cap_ = 0;  // power of two (or 0)
  uint64_t size_ = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_FLAT_MAP_H_
