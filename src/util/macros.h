// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Assertion macros used across the library.
//
// SWS_CHECK is always on and aborts with a message: used to guard API
// misuse that would otherwise corrupt sampler state (cheap predicates only).
// SWS_DCHECK compiles away in release builds: used for internal invariants
// on hot paths (e.g. covering-decomposition structure checks).

#ifndef SWSAMPLE_UTIL_MACROS_H_
#define SWSAMPLE_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define SWS_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SWS_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define SWS_DCHECK(cond) SWS_CHECK(cond)
#else
#define SWS_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // SWSAMPLE_UTIL_MACROS_H_
