// Copyright (c) swsample authors. Licensed under the MIT license.

#include "util/rng.h"

namespace swsample {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// SplitMix64 step; used for seeding so that even adjacent integer seeds
/// yield well-separated xoshiro states.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The single copy of the xoshiro256** step. NextU64 and the Fill*
/// batch loops all run through this; the batch loops pass local copies
/// of the state words so the compiler keeps them in registers.
inline uint64_t XoshiroStep(uint64_t& s0, uint64_t& s1, uint64_t& s2,
                            uint64_t& s3) {
  const uint64_t result = Rotl(s1 * 5, 7) * 9;
  const uint64_t t = s1 << 17;
  s2 ^= s0;
  s3 ^= s1;
  s1 ^= s2;
  s0 ^= s3;
  s2 ^= t;
  s3 = Rotl(s3, 45);
  return result;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::NextU64() { return XoshiroStep(s_[0], s_[1], s_[2], s_[3]); }

void Rng::FillU64(std::span<uint64_t> out) {
  uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
  for (uint64_t& word : out) word = XoshiroStep(s0, s1, s2, s3);
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

void Rng::FillUniform01(std::span<double> out) {
  uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
  for (double& x : out) {
    x = static_cast<double>(XoshiroStep(s0, s1, s2, s3) >> 11) * 0x1.0p-53;
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

uint64_t Rng::UniformIndex(uint64_t bound) {
  SWS_DCHECK(bound >= 1);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  SWS_DCHECK(lo <= hi);
  return lo + UniformIndex(hi - lo + 1);
}

double Rng::Uniform01() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform01() < p;
}

bool Rng::BernoulliRational(uint64_t num, uint64_t den) {
  SWS_DCHECK(den >= 1);
  if (num >= den) return true;
  return UniformIndex(den) < num;
}

Rng Rng::Split() { return Rng(NextU64()); }

uint64_t Rng::ForkSeed(uint64_t seed, uint64_t stream_id) {
  // Two SplitMix64 rounds over a mix of both inputs: one round already
  // decorrelates adjacent integers; the second decouples the (seed,
  // stream_id) lanes from each other.
  uint64_t state = seed ^ (stream_id * 0xbf58476d1ce4e5b9ULL);
  state = SplitMix64(state);
  state ^= stream_id + 0x9e3779b97f4a7c15ULL;
  return SplitMix64(state);
}

Rng Rng::Fork(uint64_t stream_id) const {
  return Rng(ForkSeed(s_[0] ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 47), stream_id));
}

}  // namespace swsample
