// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through a single `Rng` so that every
// sampler, test and benchmark is reproducible from one seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64; it is small
// (4 words of state), fast (sub-ns per draw) and passes BigCrush, which
// matters here because the samplers' statistical guarantees are only as good
// as the underlying uniform bits.

#ifndef SWSAMPLE_UTIL_RNG_H_
#define SWSAMPLE_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <span>

#include "util/macros.h"

namespace swsample {

/// xoshiro256** PRNG with convenience draws used by the samplers.
///
/// Not thread-safe; create one instance per thread. `Split()` derives an
/// independent child generator, used to give each of the k independent
/// sampler copies (Theorems 2.1/3.9 "repeat k times independently") its own
/// stream of bits.
class Rng {
 public:
  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64 uniform bits.
  uint64_t NextU64();

  /// Batched draws: fills `out` with raw words / uniform doubles in one
  /// tight loop (state stays in registers across the loop; one shared
  /// xoshiro step backs these and NextU64). Used where a whole vector of
  /// draws is needed up front — the bench harness's per-batch value
  /// fills — and the natural surface for future pre-drawn skip/threshold
  /// vectors.
  void FillU64(std::span<uint64_t> out);
  void FillUniform01(std::span<double> out);

  /// Uniform integer in [0, bound). Requires bound >= 1. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformIndex(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double Uniform01();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Bernoulli trial with rational probability num/den, den >= 1, exact
  /// (no floating point). Used where the paper prescribes probabilities
  /// like alpha/beta or 1/2 that we want bit-exact.
  bool BernoulliRational(uint64_t num, uint64_t den);

  /// Derives an independently seeded child generator, consuming one draw
  /// from this generator's sequence.
  Rng Split();

  /// Deterministically derives the seed of an independent stream from a
  /// base seed: well-separated SplitMix64 mixing of (seed, stream_id), so
  /// adjacent stream ids (and adjacent base seeds) yield unrelated
  /// generators. This is the library-wide replacement for ad-hoc
  /// `seed + i` arithmetic, whose adjacent xoshiro states would otherwise
  /// only be decorrelated by the seeding scrambler.
  static uint64_t ForkSeed(uint64_t seed, uint64_t stream_id);

  /// Child generator for stream `stream_id`, derived from this
  /// generator's current state WITHOUT consuming from its sequence:
  /// Fork(0), Fork(1), ... are mutually independent streams and leave the
  /// parent's own draw sequence untouched.
  Rng Fork(uint64_t stream_id) const;

  /// Raw state words, for checkpointing. Restoring via FromState resumes
  /// the exact bit stream.
  std::array<uint64_t, 4> SaveState() const { return s_; }

  /// Rebuilds a generator from SaveState() output.
  static Rng FromState(const std::array<uint64_t, 4>& state) {
    Rng rng(0);
    rng.s_ = state;
    return rng;
  }

 private:
  std::array<uint64_t, 4> s_;
};

/// Serves fair coins (the covering decomposition's binomial-split merge
/// coins) from a cached word of raw bits: one NextU64 refills 64 coins,
/// so a batch that performs many merges draws from the generator once per
/// 64 coins instead of once per coin.
///
/// Scope a CoinSource to a single Observe/ObserveBatch call and discard
/// it at the end: pending bits are not part of any persisted state, and
/// checkpoints are taken only at batch boundaries where no CoinSource is
/// live — which is what keeps checkpoint/resume bit-identical.
class CoinSource {
 public:
  explicit CoinSource(Rng& rng) : rng_(rng) {}

  /// Fair coin: true with probability 1/2, exact.
  bool Coin() {
    if (remaining_ == 0) {
      bits_ = rng_.NextU64();
      remaining_ = 64;
    }
    const bool coin = (bits_ & 1) != 0;
    bits_ >>= 1;
    --remaining_;
    return coin;
  }

 private:
  Rng& rng_;
  uint64_t bits_ = 0;
  uint32_t remaining_ = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_RNG_H_
