// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Minimal binary serialization for checkpointing.
//
// Streaming deployments checkpoint operator state to survive restarts; a
// sampler that cannot be persisted mid-stream is not adoptable. The format
// is fixed-width little-endian (sinks hold O(k log n) words, so varint
// savings are irrelevant) with a magic/version envelope per top-level blob
// (core/checkpoint.h). Readers are fail-soft: every Get returns false on
// truncation and the checkpoint restore factories turn that into Status.
// Length-prefixed fields (bytes/strings) are double-guarded: the prefix
// must fit in both the remaining input and an explicit size cap, so a
// corrupt length can neither over-read nor over-allocate.

#ifndef SWSAMPLE_UTIL_SERIAL_H_
#define SWSAMPLE_UTIL_SERIAL_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace swsample {

/// Default cap for length-prefixed fields (names, config strings). Payload
/// sections are not length-prefixed, so this only bounds metadata.
inline constexpr uint64_t kMaxLengthPrefixed = uint64_t{1} << 20;

/// Appends fixed-width little-endian fields to a byte string.
class BinaryWriter {
 public:
  void PutU64(uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
    out_.append(buf, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutBool(bool b) { out_.push_back(b ? 1 : 0); }

  /// Exact bit-cast round trip (estimator state holds doubles; a decimal
  /// detour would break the restored-behaviour-is-bit-identical contract).
  void PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

  /// Length-prefixed raw bytes.
  void PutBytes(std::string_view bytes) {
    PutU64(bytes.size());
    out_.append(bytes.data(), bytes.size());
  }

  /// Length-prefixed string (same wire format as PutBytes).
  void PutString(std::string_view s) { PutBytes(s); }

  const std::string& str() const { return out_; }
  std::string Release() { return std::move(out_); }

 private:
  std::string out_;
};

/// Reads fields written by BinaryWriter; all getters are truncation-safe.
///
/// Non-owning: the reader views the caller's buffer, which must outlive
/// it. Taking std::string_view (rather than const std::string&) lets
/// callers pass sub-ranges and avoids the silent dangling-temporary
/// hazard of a stored reference — but do not construct one from a
/// temporary string expression either.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetBool(bool* b) {
    if (pos_ >= data_.size()) return false;
    *b = data_[pos_++] != 0;
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

  /// Length-prefixed bytes written by PutBytes. Fails (without reading)
  /// when the prefix exceeds `max_len` or the remaining input, so a
  /// corrupt length cannot trigger a huge allocation.
  bool GetBytes(std::string* out, uint64_t max_len = kMaxLengthPrefixed) {
    uint64_t len = 0;
    if (!GetU64(&len)) return false;
    if (len > max_len || len > data_.size() - pos_) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  /// Length-prefixed string written by PutString.
  bool GetString(std::string* out, uint64_t max_len = kMaxLengthPrefixed) {
    return GetBytes(out, max_len);
  }

  /// True iff every byte has been consumed (catches trailing garbage).
  bool AtEnd() const { return pos_ == data_.size(); }

  /// Bytes not yet consumed (bounds untrusted element counts).
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_SERIAL_H_
