// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Minimal binary serialization for sampler checkpointing.
//
// Streaming deployments checkpoint operator state to survive restarts; a
// sampler that cannot be persisted mid-stream is not adoptable. The format
// is fixed-width little-endian (samplers hold O(k log n) words, so varint
// savings are irrelevant) with a magic/version prefix per top-level blob.
// Readers are fail-soft: every Get returns false on truncation and the
// sampler Restore() factories turn that into Status.

#ifndef SWSAMPLE_UTIL_SERIAL_H_
#define SWSAMPLE_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace swsample {

/// Appends fixed-width little-endian fields to a byte string.
class BinaryWriter {
 public:
  void PutU64(uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
    out_.append(buf, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutBool(bool b) { out_.push_back(b ? 1 : 0); }

  const std::string& str() const { return out_; }
  std::string Release() { return std::move(out_); }

 private:
  std::string out_;
};

/// Reads fields written by BinaryWriter; all getters are truncation-safe.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& data) : data_(data) {}

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetBool(bool* b) {
    if (pos_ >= data_.size()) return false;
    *b = data_[pos_++] != 0;
    return true;
  }

  /// True iff every byte has been consumed (catches trailing garbage).
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_SERIAL_H_
