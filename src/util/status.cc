// Copyright (c) swsample authors. Licensed under the MIT license.

#include "util/status.h"

namespace swsample {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace swsample
