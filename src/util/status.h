// Copyright (c) swsample authors. Licensed under the MIT license.
//
// RocksDB/Arrow-style error handling: configuration and API-misuse errors
// are reported as `Status`/`Result<T>` values from factory functions instead
// of exceptions; internal invariants use SWS_DCHECK. Hot-path methods
// (Observe/Sample) never allocate a Status.

#ifndef SWSAMPLE_UTIL_STATUS_H_
#define SWSAMPLE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace swsample {

/// Error category for `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnavailable,
};

/// Lightweight status value. Ok status carries no message and no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// True for transient faults (I/O hiccups, ENOSPC, injected failures)
  /// where re-running the same idempotent operation may succeed. Permanent
  /// classes (bad config, corrupt data, API misuse) are never retryable.
  bool retryable() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be >= 1".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. `ValueOrDie()` aborts on error and is
/// intended for tests/examples where the inputs are known-valid.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {        // NOLINT(implicit)
    SWS_CHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() {
    SWS_CHECK(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    SWS_CHECK(ok());
    return std::get<T>(v_);
  }

  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "Result error: %s\n",
                   std::get<Status>(v_).ToString().c_str());
      std::abort();
    }
    return std::move(std::get<T>(v_));
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace swsample

#endif  // SWSAMPLE_UTIL_STATUS_H_
